//! Lane-count bit-identity: every engine workload must return
//! EXACTLY the same results through the 64-wide block kernel
//! (`lanes: 64`, the default) as through the scalar reference path
//! (`lanes: 1`) — for any shard size, thread count, and pattern
//! counts that do and do not divide by the lane width. `lanes` is a
//! throughput knob, never a results knob; these tests pin that
//! contract at the workload level the same way the core crate pins it
//! per block.

use nanoleak_cells::{CellLibrary, CellType, CharacterizeOptions};
use nanoleak_device::Technology;
use nanoleak_engine::{
    mc_streaming, mlv_search, sweep, sweep_streaming, MemoLibraryCache, MlvConfig, MlvGoal,
    MlvStrategy, SweepConfig,
};
use nanoleak_netlist::{Circuit, CircuitBuilder};
use nanoleak_variation::{char_opts_for, CircuitMcConfig, VariationSigmas};
use std::sync::Arc;

fn library() -> Arc<CellLibrary> {
    CellLibrary::shared_with_options(
        &Technology::d25(),
        300.0,
        &CharacterizeOptions::coarse(&[CellType::Inv, CellType::Nand2]),
    )
}

/// A NAND2 chain over `inputs` primary inputs (reconvergence-free but
/// load-bearing: every internal net drives the next stage, so the Lut
/// mode's loading corrections are all exercised).
fn chain_circuit(inputs: usize) -> Circuit {
    let mut b = CircuitBuilder::new("lane-identity");
    let pis: Vec<_> = (0..inputs).map(|i| b.add_input(&format!("i{i}"))).collect();
    let mut prev = b.add_gate(CellType::Nand2, &[pis[0], pis[1]], "n0");
    for (k, &pi) in pis.iter().enumerate().skip(2) {
        prev = b.add_gate(CellType::Nand2, &[prev, pi], &format!("n{}", k - 1));
    }
    let y = b.add_gate(CellType::Inv, &[prev], "y");
    b.mark_output(y);
    b.build().unwrap()
}

/// Sweep: scalar and block paths agree bit-for-bit over full blocks
/// AND a 100-vector count whose 36-lane tail block is partially
/// filled, across shard sizes and thread counts.
#[test]
fn sweep_stats_are_bit_identical_across_lanes() {
    let circuit = chain_circuit(5);
    let lib = library();
    // 100 = 1 full block + a 36-pattern tail; 64 = exactly one block;
    // 7 = a lone tail block.
    for vectors in [7usize, 64, 100] {
        let scalar_cfg =
            SweepConfig { vectors, seed: 42, threads: 1, lanes: 1, ..Default::default() };
        let scalar = sweep(&circuit, &lib, &scalar_cfg).unwrap();
        for lanes in [0usize, 64] {
            for threads in [1usize, 3] {
                let cfg = SweepConfig { lanes, threads, ..scalar_cfg };
                let block = sweep(&circuit, &lib, &cfg).unwrap();
                assert_eq!(
                    scalar.stats, block.stats,
                    "vectors = {vectors}, lanes = {lanes}, threads = {threads}"
                );
                // Shard boundaries that straddle blocks change nothing.
                for shard_vectors in [3usize, 33] {
                    let streamed = sweep_streaming(&circuit, &lib, &cfg, shard_vectors, |_| true)
                        .unwrap()
                        .expect("not cancelled");
                    assert_eq!(
                        scalar.stats, streamed.stats,
                        "vectors = {vectors}, lanes = {lanes}, threads = {threads}, \
                         shard_vectors = {shard_vectors}"
                    );
                }
            }
        }
    }
}

/// MLV exhaustive + random scans: the block path's two-level
/// earliest-wins reduction reproduces the scalar scan's winner (index
/// ties break to the earliest pattern in both), over assignment
/// counts below, at, and above one block.
#[test]
fn mlv_scans_are_bit_identical_across_lanes() {
    let lib = library();
    for goal in [MlvGoal::Min, MlvGoal::Max] {
        // 5 inputs = 32 assignments (tail-only); 7 = 128 (two blocks).
        for inputs in [5usize, 7] {
            let circuit = chain_circuit(inputs);
            for strategy in [MlvStrategy::Exhaustive, MlvStrategy::Random { samples: 70 }] {
                let base = MlvConfig {
                    goal,
                    strategy,
                    seed: 9,
                    threads: 1,
                    lanes: 1,
                    ..Default::default()
                };
                let scalar = mlv_search(&circuit, &lib, &base).unwrap();
                for lanes in [0usize, 64] {
                    for threads in [1usize, 3] {
                        let cfg = MlvConfig { lanes, threads, ..base };
                        let block = mlv_search(&circuit, &lib, &cfg).unwrap();
                        assert_eq!(
                            scalar.pattern, block.pattern,
                            "inputs = {inputs}, {strategy:?}, lanes = {lanes}, threads = {threads}"
                        );
                        assert_eq!(scalar.objective, block.objective);
                        assert_eq!(scalar.leakage, block.leakage);
                        assert_eq!(scalar.telemetry.evaluations, block.telemetry.evaluations);
                    }
                }
            }
        }
    }
}

/// Hill-climb ignores `lanes` entirely (its serial flip loop stays
/// scalar), so any setting returns the identical climb.
#[test]
fn mlv_hill_climb_is_lane_invariant() {
    let circuit = chain_circuit(6);
    let lib = library();
    let strategy = MlvStrategy::HillClimb { restarts: 4, max_steps: 16 };
    let base = MlvConfig { strategy, lanes: 1, ..Default::default() };
    let scalar = mlv_search(&circuit, &lib, &base).unwrap();
    let block = mlv_search(&circuit, &lib, &MlvConfig { lanes: 64, ..base }).unwrap();
    assert_eq!(scalar.pattern, block.pattern);
    assert_eq!(scalar.objective, block.objective);
    assert_eq!(scalar.telemetry.evaluations, block.telemetry.evaluations);
}

/// Monte Carlo: each die's loaded/unloaded arms fold per-pattern
/// sums in the same order whether the patterns run packed or scalar,
/// so summaries match bit-for-bit — including a per-die vector count
/// (5) that never fills a block.
#[test]
fn mc_summaries_are_bit_identical_across_lanes() {
    let circuit = chain_circuit(3);
    let tech = Technology::d25();
    let base = CircuitMcConfig {
        samples: 4,
        seed: 11,
        sigmas: VariationSigmas::paper_nominal(),
        vectors: 5,
        threads: 1,
        lanes: 1,
        char_opts: char_opts_for(&circuit, true),
        ..Default::default()
    };
    let cache = MemoLibraryCache::memory_only();
    let scalar =
        mc_streaming(&circuit, &tech, &cache, &base, 0, |_| true).unwrap().expect("not cancelled");
    for lanes in [0usize, 64] {
        for threads in [1usize, 3] {
            for shard_samples in [0usize, 3] {
                let cfg = CircuitMcConfig { lanes, threads, ..base.clone() };
                let cache = MemoLibraryCache::memory_only();
                let block = mc_streaming(&circuit, &tech, &cache, &cfg, shard_samples, |_| true)
                    .unwrap()
                    .expect("not cancelled");
                assert_eq!(
                    scalar.summary, block.summary,
                    "lanes = {lanes}, threads = {threads}, shard_samples = {shard_samples}"
                );
            }
        }
    }
}
