//! Failpoint behavior of the engine's chaos hooks.
//!
//! Lives in its own test binary (not the engine unit tests): the
//! fault registry is process-global, and arming e.g. `cache-io` here
//! must not bleed into unrelated cache tests running in parallel
//! threads of the lib test binary. Within this binary the tests
//! still serialize on one mutex for the same reason.

use std::sync::{Mutex, MutexGuard, OnceLock};

use nanoleak_cells::{CellType, CharacterizeOptions};
use nanoleak_device::Technology;
use nanoleak_engine::{
    mc_streaming, mc_streaming_mode, sweep_streaming, CacheOutcome, EngineError, LibraryCache,
    McMode, MemoLibraryCache, SweepConfig,
};
use nanoleak_fault::{arm, arm_limited, disarm_all, FaultAction};
use nanoleak_netlist::{Circuit, CircuitBuilder};

fn serial() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = GATE
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    disarm_all();
    guard
}

fn opts() -> CharacterizeOptions {
    CharacterizeOptions::coarse(&[CellType::Inv, CellType::Nand2, CellType::Nor2])
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("nanoleak-fault-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn cache_io_fault_fails_the_store_without_litter() {
    let _g = serial();
    let tech = Technology::d25();
    let dir = temp_dir("io");
    let cache = LibraryCache::new(dir.clone());
    arm_limited("cache-io", FaultAction::Error("disk unplugged".into()), Some(1));
    let err = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap_err();
    match err {
        EngineError::Cache(msg) => assert!(msg.contains("disk unplugged"), "{msg}"),
        other => panic!("expected Cache error, got {other:?}"),
    }
    // Self-disarmed after one fire: the retry succeeds and recovers.
    let (_, outcome) = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
    assert_eq!(outcome, CacheOutcome::Miss);
    disarm_all();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cache_corrupt_fault_forces_invalidation_recovery() {
    let _g = serial();
    let tech = Technology::d25();
    let dir = temp_dir("corrupt");
    let cache = LibraryCache::new(dir.clone());
    let (_, outcome) = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
    assert_eq!(outcome, CacheOutcome::Miss);
    arm_limited("cache-corrupt", FaultAction::Error("torn read".into()), Some(1));
    let (lib, outcome) = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
    assert_eq!(outcome, CacheOutcome::Invalidated, "fault reads as a torn file");
    assert!(lib.cell(CellType::Inv).is_some());
    let (_, outcome) = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
    assert_eq!(outcome, CacheOutcome::Hit, "rewritten entry is healthy");
    disarm_all();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn characterize_fault_is_a_solver_error_but_spares_memory_hits() {
    let _g = serial();
    let tech = Technology::d25();
    let memo = MemoLibraryCache::memory_only();
    let (_, outcome) = memo.get_or_characterize(&tech, 300.0, &opts()).unwrap();
    assert_eq!(outcome, CacheOutcome::Miss);
    arm("characterize", FaultAction::Error("injected".into()));
    // Resident request: unaffected (the hook sits on the miss path).
    let (_, outcome) = memo.get_or_characterize(&tech, 300.0, &opts()).unwrap();
    assert_eq!(outcome, CacheOutcome::MemoryHit);
    // Fresh request: injected solver non-convergence.
    let err = memo.get_or_characterize(&tech, 310.0, &opts()).unwrap_err();
    assert!(matches!(err, EngineError::Solver(_)), "{err:?}");
    disarm_all();
}

fn small_circuit() -> Circuit {
    let mut b = CircuitBuilder::new("fault-test");
    let a = b.add_input("a");
    let c = b.add_input("b");
    let n = b.add_gate(CellType::Nand2, &[a, c], "n");
    let y = b.add_gate(CellType::Inv, &[n], "y");
    b.mark_output(y);
    b.build().unwrap()
}

/// Reads one labeled counter value out of the rendered global
/// metrics registry (the same text `/metrics` serves).
fn scrape_counter(rendered: &str, line_prefix: &str) -> u64 {
    rendered
        .lines()
        .find_map(|l| l.strip_prefix(line_prefix))
        .map_or(0, |rest| rest.trim().parse().unwrap_or(0))
}

#[test]
fn char_sensitivity_fault_degrades_fast_mc_to_exact() {
    let _g = serial();
    let tech = Technology::d25();
    let circuit = small_circuit();
    let memo = MemoLibraryCache::memory_only();
    let mc = nanoleak_variation::CircuitMcConfig {
        samples: 2,
        vectors: 2,
        threads: 1,
        char_opts: opts(),
        ..nanoleak_variation::CircuitMcConfig::default()
    };
    let exact = mc_streaming_mode(&circuit, &tech, &memo, &mc, McMode::Exact, 0, |_| true)
        .unwrap()
        .unwrap();

    // The traced nominal characterization fails; the fast run must
    // degrade to the exact path (same summary, no fast report) and
    // count the degradation where operators can see it.
    const PREFIX: &str = "nanoleak_mc_fallback_total{reason=\"sens-build\"} ";
    let before = scrape_counter(&nanoleak_obs::global().render(), PREFIX);
    arm_limited("char-sensitivity", FaultAction::Error("trace lost".into()), Some(1));
    let degraded = mc_streaming_mode(&circuit, &tech, &memo, &mc, McMode::fast(), 0, |_| true)
        .unwrap()
        .unwrap();
    disarm_all();
    assert!(degraded.summary.fast.is_none(), "degraded run took the exact path");
    assert_eq!(degraded.summary, exact.summary, "degradation is bit-exact");
    let after = scrape_counter(&nanoleak_obs::global().render(), PREFIX);
    assert_eq!(after, before + 1, "sens-build fallback counted");

    // Failpoint self-disarmed after one fire: the next fast run
    // derives its dies again.
    let fast = mc_streaming_mode(&circuit, &tech, &memo, &mc, McMode::fast(), 0, |_| true)
        .unwrap()
        .unwrap();
    let report = fast.summary.fast.expect("recovered fast run self-reports");
    assert!(report.diag.dies_derived > 0, "{:?}", report.diag);
}

#[test]
fn slow_shard_error_stops_sweep_and_mc_between_shards() {
    let _g = serial();
    let tech = Technology::d25();
    let memo = MemoLibraryCache::memory_only();
    let (library, _) = memo.get_or_characterize(&tech, 300.0, &opts()).unwrap();
    let circuit = small_circuit();
    let config = SweepConfig { vectors: 8, threads: 1, ..SweepConfig::default() };

    // Arm the fault from inside the first shard's callback: the first
    // shard streams its partial, the second hits the failpoint — the
    // between-shards contract the job layer relies on.
    let mut seen = 0;
    let err = sweep_streaming(&circuit, &library, &config, 4, |_| {
        seen += 1;
        arm("slow-shard", FaultAction::Error("shard gave up".into()));
        true
    })
    .unwrap_err();
    assert!(matches!(err, nanoleak_core::EstimateError::Solver(_)), "{err:?}");
    assert_eq!(seen, 1, "exactly the pre-fault shard completed");
    disarm_all();

    // Same contract for MC.
    let mc = nanoleak_variation::CircuitMcConfig {
        samples: 4,
        vectors: 2,
        threads: 1,
        char_opts: opts(),
        ..nanoleak_variation::CircuitMcConfig::default()
    };
    let mut seen = 0;
    let err = mc_streaming(&circuit, &tech, &memo, &mc, 2, |_| {
        seen += 1;
        arm("slow-shard", FaultAction::Error("shard gave up".into()));
        true
    })
    .unwrap_err();
    assert!(matches!(err, EngineError::Solver(_)), "{err:?}");
    assert_eq!(seen, 1);
    disarm_all();
}
