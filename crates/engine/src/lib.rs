//! # nanoleak-engine
//!
//! The high-throughput analysis layer over the single-shot Fig. 13
//! estimator of `nanoleak-core`. The paper (Mukhopadhyay, Bhunia &
//! Roy, DATE 2005) shows leakage is strongly input-vector dependent
//! (Fig. 7) and that the loading-aware estimator is fast enough to
//! evaluate thousands of vectors per second — this crate turns that
//! into three production workloads:
//!
//! * [`sweep`](crate::sweep::sweep) — a parallel **pattern-sweep
//!   executor** that fans one circuit across N random input patterns
//!   on a configurable number of threads. Per-pattern RNG streams are
//!   derived from the base seed with SplitMix64, so the results (and
//!   every merged statistic) are bit-identical for any thread count.
//! * [`mlv_search`](crate::mlv::mlv_search) — **minimum/maximum
//!   leakage input-vector search** for standby-power optimization,
//!   with pluggable strategies: exhaustive enumeration (small input
//!   counts), random sampling, and greedy bit-flip hill-climbing with
//!   parallel restarts. Returns the best vector, its full leakage
//!   report, and search telemetry.
//! * [`LibraryCache`](crate::cache::LibraryCache) — a **persistent
//!   characterization cache** that serializes [`CellLibrary`] LUTs to
//!   disk behind a versioned, checksummed header keyed on the
//!   technology/temperature/options hash, so repeated CLI and bench
//!   runs skip the expensive characterize step entirely.
//! * [`mc_streaming`](crate::mc::mc_streaming) — **circuit-level
//!   Monte-Carlo variation** (the paper's Section 5.3 at circuit
//!   scale): sharded, cancellable execution of
//!   `nanoleak-variation`'s perturbed-die sampling, with per-sample
//!   libraries served through the memoized cache and merged summaries
//!   bit-identical to a monolithic run for any shard size or thread
//!   count.
//! * [`DeltaLibraryProvider`](crate::cache::DeltaLibraryProvider) —
//!   **delta-from-nominal characterization** for the fast Monte-Carlo
//!   path ([`mc_streaming_mode`](crate::mc::mc_streaming_mode)): the
//!   nominal library is characterized once with traced Newton solves
//!   recording per-`(cell, vector)` sensitivity slabs, and every
//!   perturbed die's library is derived as `nominal + J·Δ` with a
//!   per-entry linearization-error fallback to a full solve. The
//!   exact path stays available end to end (`mc --exact`, the
//!   server's `"exact"` MC-job flag) and fast runs self-report their
//!   measured deviation from it.
//!
//! ## Quickstart
//!
//! ```
//! use nanoleak_cells::{CellLibrary, CellType, CharacterizeOptions};
//! use nanoleak_device::Technology;
//! use nanoleak_engine::{mlv_search, sweep, MlvConfig, SweepConfig};
//! use nanoleak_netlist::CircuitBuilder;
//!
//! let tech = Technology::d25();
//! let lib = CellLibrary::shared_with_options(
//!     &tech, 300.0, &CharacterizeOptions::coarse(&[CellType::Inv, CellType::Nand2]));
//! let mut b = CircuitBuilder::new("pair");
//! let a = b.add_input("a");
//! let c = b.add_input("b");
//! let n = b.add_gate(CellType::Nand2, &[a, c], "n");
//! let y = b.add_gate(CellType::Inv, &[n], "y");
//! b.mark_output(y);
//! let circuit = b.build()?;
//!
//! // Statistics of leakage over 64 random vectors, on all cores.
//! let report = sweep(&circuit, &lib, &SweepConfig { vectors: 64, ..Default::default() })?;
//! assert!(report.stats.total.min <= report.stats.total.mean);
//!
//! // The standby vector minimizing leakage (2 inputs: exhaustive).
//! let best = mlv_search(&circuit, &lib, &MlvConfig::default())?;
//! assert_eq!(best.leakage.total.total(), report.stats.total.min);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod block;
pub mod cache;
pub mod exec;
pub mod mc;
pub mod mlv;
pub mod plan_cache;
pub mod stats;
pub mod sweep;

use std::fmt;

use nanoleak_core::EstimateError;
use nanoleak_solver::SolverError;

pub use block::{block_metrics, eval_block_timed, BlockMetrics};
pub use cache::{
    CacheOutcome, DeltaLibraryProvider, LibraryCache, MemoCacheStats, MemoLibraryCache,
    CACHE_FORMAT_VERSION, MAX_RESIDENT_LIBRARIES,
};
pub use mc::{
    mc_streaming, mc_streaming_mode, McMode, McReport, McShard, McTelemetry,
    DEFAULT_DEVIATION_PROBE,
};
pub use mlv::{mlv_search, MlvConfig, MlvGoal, MlvResult, MlvStrategy, MlvTelemetry};
pub use plan_cache::{shared_plan, MAX_RESIDENT_PLANS};
pub use stats::ScalarStats;
pub use sweep::{
    pattern_for_index, shard_count, sweep, sweep_streaming, ExtremeVector, SweepConfig,
    SweepMerger, SweepReport, SweepShard, SweepStats, SweepTelemetry,
};

/// Errors from the analysis engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A per-pattern estimate failed.
    Estimate(EstimateError),
    /// Characterization failed while filling a cache miss.
    Solver(SolverError),
    /// Exhaustive enumeration was requested for an input space larger
    /// than the enumeration limit.
    SearchSpaceTooLarge {
        /// Primary inputs + DFF state bits of the circuit.
        bits: usize,
        /// Largest enumerable bit count.
        limit: usize,
    },
    /// A cache file could not be read or written.
    Cache(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Estimate(e) => write!(f, "estimation failed: {e}"),
            EngineError::Solver(e) => write!(f, "characterization failed: {e}"),
            EngineError::SearchSpaceTooLarge { bits, limit } => write!(
                f,
                "exhaustive search over {bits} input bits exceeds the {limit}-bit limit; \
                 use the hill-climb or random strategy"
            ),
            EngineError::Cache(msg) => write!(f, "characterization cache: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Estimate(e) => Some(e),
            EngineError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EstimateError> for EngineError {
    fn from(e: EstimateError) -> Self {
        EngineError::Estimate(e)
    }
}

impl From<SolverError> for EngineError {
    fn from(e: SolverError) -> Self {
        EngineError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_cells::CellType;

    #[test]
    fn error_displays_are_informative() {
        let e = EngineError::SearchSpaceTooLarge { bits: 40, limit: 22 };
        assert!(e.to_string().contains("40 input bits"));
        let e: EngineError = EstimateError::MissingCell(CellType::Nor2).into();
        assert!(e.to_string().contains("nor2"));
        let e = EngineError::Cache("bad header".into());
        assert!(e.to_string().contains("bad header"));
    }

    #[test]
    fn error_sources_chain() {
        use std::error::Error as _;
        let e: EngineError = EstimateError::BadPattern("x".into()).into();
        assert!(e.source().is_some());
        assert!(EngineError::Cache("y".into()).source().is_none());
    }
}
