//! Summary statistics over per-pattern scalar series.

use serde::{Deserialize, Serialize};

/// Summary of one scalar series (e.g. total leakage over a sweep's
/// input-pattern space): moments, extremes, and percentiles.
///
/// Built by a sequential pass over the series in pattern-index order,
/// so the result is bit-identical for any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalarStats {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (linear-interpolated).
    pub p50: f64,
    /// 90th percentile (linear-interpolated).
    pub p90: f64,
    /// 99th percentile (linear-interpolated).
    pub p99: f64,
}

impl ScalarStats {
    /// Computes the summary of a series.
    ///
    /// # Panics
    /// Panics on an empty series or non-finite samples.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "stats of an empty series");
        assert!(xs.iter().all(|x| x.is_finite()), "non-finite sample in series");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Self {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile(&sorted, 0.50),
            p90: percentile(&sorted, 0.90),
            p99: percentile(&sorted, 0.99),
        }
    }

    /// Coefficient of variation (`std / mean`); 0 for a zero mean.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean
        }
    }
}

/// Linear-interpolated percentile of an already-sorted series.
///
/// Rank indexing audited for small N: `pos = q * (n - 1)` lies in
/// `[0, n - 1]` for any `q` in `[0, 1]`, so `lo = floor(pos)` and
/// `hi = ceil(pos)` are both in-bounds — N = 1 short-circuits, N = 2
/// interpolates between the only two samples, N = 3 hits the middle
/// sample exactly at q = 0.5 (`pos = 1.0`, `lo == hi`, `frac = 0`).
/// Empty series never reach here ([`ScalarStats::of`] rejects them,
/// and the sweep merger skips empty shards).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    debug_assert!(hi < n, "rank {hi} out of bounds for {n} samples (q = {q})");
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_series() {
        let s = ScalarStats::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.p50 - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs: Vec<f64> = (0..101).map(f64::from).collect();
        let s = ScalarStats::of(&xs);
        assert!((s.p50 - 50.0).abs() < 1e-12);
        assert!((s.p90 - 90.0).abs() < 1e-12);
        assert!((s.p99 - 99.0).abs() < 1e-12);
    }

    #[test]
    fn order_invariance() {
        let a = ScalarStats::of(&[3.0, 1.0, 2.0]);
        let b = ScalarStats::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a.p50, b.p50);
        assert_eq!(a.min, b.min);
        // Note: mean/std are summed in input order by design; the
        // engine always presents series in pattern-index order.
    }

    #[test]
    fn singleton_series() {
        let s = ScalarStats::of(&[7.5]);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.p99, 7.5);
        assert_eq!(s.std, 0.0);
    }

    /// Regression pins for the small-N rank indexing (exact values,
    /// written as the same FP expressions the reduction computes).
    #[test]
    fn small_n_percentiles_are_pinned() {
        // N = 1: every percentile is the sample itself.
        let s = ScalarStats::of(&[3.25]);
        assert_eq!((s.p50, s.p90, s.p99), (3.25, 3.25, 3.25));

        // N = 2: pos = q, interpolating between the two samples.
        let s = ScalarStats::of(&[3.0, 1.0]);
        assert_eq!(s.p50, 1.0 + (3.0 - 1.0) * 0.5);
        assert_eq!(s.p90, 1.0 + (3.0 - 1.0) * 0.9);
        assert_eq!(s.p99, 1.0 + (3.0 - 1.0) * 0.99);

        // N = 3: pos = 2q; p50 lands exactly on the middle sample
        // (lo == hi == 1, frac 0 — no interpolation artifacts).
        let s = ScalarStats::of(&[4.0, 1.0, 2.0]);
        assert_eq!(s.p50, 2.0);
        let frac90 = 0.90 * 2.0 - 1.0;
        assert_eq!(s.p90, 2.0 + (4.0 - 2.0) * frac90);
        let frac99 = 0.99 * 2.0 - 1.0;
        assert_eq!(s.p99, 2.0 + (4.0 - 2.0) * frac99);
    }

    /// Percentiles never index out of bounds at the q → 1 edge, and
    /// q = 1 degenerates to the max.
    #[test]
    fn rank_edges_stay_in_bounds() {
        for n in 1..=5 {
            let xs: Vec<f64> = (0..n).map(f64::from).collect();
            let s = ScalarStats::of(&xs);
            assert!(s.p99 <= s.max && s.p50 >= s.min, "n = {n}");
        }
    }

    #[test]
    fn cv_handles_zero_mean() {
        assert_eq!(ScalarStats::of(&[0.0, 0.0]).cv(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty series")]
    fn empty_series_panics() {
        ScalarStats::of(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_rejected() {
        ScalarStats::of(&[1.0, f64::NAN]);
    }
}
