//! Streaming circuit-level Monte-Carlo execution.
//!
//! [`mc_streaming`] runs `nanoleak-variation`'s circuit workload
//! ([`run_circuit_mc_range`]) the way [`sweep_streaming`] runs pattern
//! sweeps: the sample space executes in contiguous index-order shards,
//! each shard yields a serializable [`McShard`] partial (its own
//! [`McSummary`] over the shard) to the caller's callback — the
//! cancellation point — and the raw per-sample series concatenates in
//! index order so the final summary is the *same* sequential reduction
//! a monolithic [`run_circuit_mc`](nanoleak_variation::run_circuit_mc)
//! finishes with. Merged results are therefore **bit-identical for any
//! shard size and thread count**.
//!
//! Per-sample libraries flow through the [`MemoLibraryCache`] (which
//! implements [`LibraryProvider`]): unique perturbed dies miss and
//! characterize, but re-running the same seed — a re-submitted job, a
//! bench re-measure, the nominal corner — hits RAM or disk instead of
//! the solver.

use std::time::Instant;

use nanoleak_cells::DEFAULT_DELTA_TOL;
use nanoleak_core::{resolve_lanes, LANES};
use nanoleak_device::Technology;
use nanoleak_netlist::Circuit;
use nanoleak_variation::{
    run_circuit_mc_range, run_circuit_mc_range_fast, summarize, CircuitMcConfig, FastMcDiag,
    FastMcReport, LibraryProvider, McError, McSample, McSummary, DEFAULT_HIST_BINS,
};
use serde::{Deserialize, Serialize};

use crate::cache::{delta_metrics, DeltaLibraryProvider, MemoLibraryCache};
use crate::sweep::shard_count;
use crate::EngineError;

/// Process-wide MC shard latency (shard granularity only — the
/// per-sample path inside `run_circuit_mc_range` stays untouched).
fn mc_shard_seconds() -> &'static nanoleak_obs::Histogram {
    static METRIC: std::sync::OnceLock<nanoleak_obs::Histogram> = std::sync::OnceLock::new();
    METRIC.get_or_init(|| {
        nanoleak_obs::global().histogram(
            "nanoleak_mc_shard_seconds",
            "Wall time to run one Monte-Carlo shard (all workers)",
        )
    })
}

impl LibraryProvider for MemoLibraryCache {
    fn library(
        &self,
        tech: &Technology,
        temp: f64,
        opts: &nanoleak_cells::CharacterizeOptions,
    ) -> Result<std::sync::Arc<nanoleak_cells::CellLibrary>, McError> {
        self.get_or_characterize(tech, temp, opts).map(|(lib, _)| lib).map_err(|e| match e {
            EngineError::Solver(e) => McError::Solver(e),
            EngineError::Estimate(e) => McError::Estimate(e),
            other => McError::Library(other.to_string()),
        })
    }
}

impl From<McError> for EngineError {
    fn from(e: McError) -> Self {
        match e {
            McError::Solver(e) => EngineError::Solver(e),
            McError::Estimate(e) => EngineError::Estimate(e),
            McError::Library(msg) => EngineError::Cache(msg),
        }
    }
}

/// One completed shard of a streaming Monte Carlo, yielded to the
/// [`mc_streaming`] callback as soon as its samples are done.
///
/// Serializable so job front-ends can page shard partials to clients
/// incrementally (`GET /v1/jobs/{id}/result?shard=K` in
/// `nanoleak-serve`), exactly like [`SweepShard`](crate::SweepShard).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McShard {
    /// Shard index (0-based, in execution = sample-index order).
    pub shard: usize,
    /// Total shards the run will execute.
    pub shards_total: usize,
    /// Global sample index of this shard's first sample.
    pub start: usize,
    /// Samples in this shard.
    pub samples: usize,
    /// Distribution summary over this shard alone.
    pub summary: McSummary,
}

/// Wall-clock measurements of one MC run (not deterministic; kept
/// separate from the summary so determinism is assertable on the
/// summary alone).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McTelemetry {
    /// Wall-clock duration of the run.
    pub elapsed: std::time::Duration,
    /// Throughput in samples per second.
    pub samples_per_sec: f64,
}

/// Result of [`mc_streaming`] / [`mc_streaming_mode`].
#[derive(Debug, Clone, PartialEq)]
pub struct McReport {
    /// Deterministic distribution summary over all samples. Fast runs
    /// additionally carry their derivation diagnostics and measured
    /// deviation in `summary.fast`.
    pub summary: McSummary,
    /// Wall-clock telemetry.
    pub telemetry: McTelemetry,
}

/// How many leading samples a fast MC re-runs through the bit-exact
/// path after the timed phase to measure the fast path's deviation
/// (reported in [`FastMcReport`]; excluded from `samples_per_sec`).
pub const DEFAULT_DEVIATION_PROBE: usize = 4;

/// Which per-die library path a Monte-Carlo run uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum McMode {
    /// Every die runs a full characterization (through the memo) —
    /// the pre-existing bit-exact path.
    Exact,
    /// Dies derive their library from the nominal's traced
    /// sensitivities ([`DeltaLibraryProvider`]); both arms evaluate
    /// through the 64-lane block kernel. Degrades to [`McMode::Exact`]
    /// if the traced nominal characterization fails.
    Fast {
        /// Per-entry linearization-error tolerance (log units).
        tol: f64,
        /// Leading samples re-run exactly for the deviation report.
        deviation_probe: usize,
    },
}

impl McMode {
    /// The default fast mode: [`DEFAULT_DELTA_TOL`] tolerance,
    /// [`DEFAULT_DEVIATION_PROBE`] probe samples.
    pub fn fast() -> Self {
        McMode::Fast { tol: DEFAULT_DELTA_TOL, deviation_probe: DEFAULT_DEVIATION_PROBE }
    }

    /// Maps the CLI/server `exact` switch: `true` → [`McMode::Exact`],
    /// `false` → the default [`McMode::fast`].
    pub fn from_exact(exact: bool) -> Self {
        if exact {
            McMode::Exact
        } else {
            Self::fast()
        }
    }
}

impl Default for McMode {
    fn default() -> Self {
        Self::fast()
    }
}

/// Relative deviation of the fast samples from their exact re-runs:
/// `(max, mean)` over both arms' total leakage of each probed sample.
fn deviation(fast: &[McSample], exact: &[McSample]) -> (f64, f64) {
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    let mut n = 0u32;
    for (f, e) in fast.iter().zip(exact) {
        for (ft, et) in
            [(f.loaded.total(), e.loaded.total()), (f.unloaded.total(), e.unloaded.total())]
        {
            let d = if et == 0.0 {
                if ft == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                ((ft - et) / et).abs()
            };
            max = max.max(d);
            sum += d;
            n += 1;
        }
    }
    (max, if n == 0 { 0.0 } else { sum / f64::from(n) })
}

/// Runs `config.samples` Monte-Carlo samples in contiguous shards of
/// `shard_samples` (`0` = one monolithic shard), calling `on_shard`
/// after each shard completes. The callback returning `false` cancels
/// the run (`Ok(None)`); otherwise the merged report is returned,
/// bit-identical to a monolithic run of the same config for any shard
/// size and thread count.
///
/// # Errors
/// The first per-sample failure ([`EngineError::Solver`] /
/// [`EngineError::Estimate`] / [`EngineError::Cache`]) in index order.
///
/// # Panics
/// Panics if `config.samples` or `config.vectors` is zero.
pub fn mc_streaming(
    circuit: &Circuit,
    tech: &Technology,
    cache: &MemoLibraryCache,
    config: &CircuitMcConfig,
    shard_samples: usize,
    on_shard: impl FnMut(&McShard) -> bool,
) -> Result<Option<McReport>, EngineError> {
    mc_streaming_mode(circuit, tech, cache, config, McMode::Exact, shard_samples, on_shard)
}

/// [`mc_streaming`] with an explicit [`McMode`].
///
/// [`McMode::Fast`] characterizes the nominal technology once with
/// traced sensitivities and derives every die's library from it
/// (`nominal + J·Δ` with per-entry fallback), running both fixture
/// arms through the 64-lane block kernel. After the timed phase, the
/// first `deviation_probe` samples re-run through the exact path and
/// the measured max/mean relative deviation lands in `summary.fast`
/// (the probe counts toward `elapsed` but not `samples_per_sec`).
/// If the traced nominal characterization fails, the run degrades to
/// exact and `nanoleak_mc_fallback_total{reason="sens-build"}` is
/// incremented. Fast results within one mode are bit-identical across
/// thread counts, shard sizes, and lane settings, but differ from
/// exact results by the (reported) linearization error.
///
/// # Errors
/// The first per-sample failure ([`EngineError::Solver`] /
/// [`EngineError::Estimate`] / [`EngineError::Cache`]) in index order.
///
/// # Panics
/// Panics if `config.samples` or `config.vectors` is zero.
pub fn mc_streaming_mode(
    circuit: &Circuit,
    tech: &Technology,
    cache: &MemoLibraryCache,
    config: &CircuitMcConfig,
    mode: McMode,
    shard_samples: usize,
    mut on_shard: impl FnMut(&McShard) -> bool,
) -> Result<Option<McReport>, EngineError> {
    assert!(config.samples > 0, "MC needs at least one sample");
    let shards_total = shard_count(config.samples, shard_samples);
    let shard_size = if shard_samples == 0 { config.samples } else { shard_samples };
    let start_time = Instant::now();

    // Fast mode front-loads the one traced nominal characterization;
    // if that fails the run degrades to the exact path (counted, so
    // operators can see silent degradations at /metrics).
    let prepared: Option<(DeltaLibraryProvider, usize)> = match mode {
        McMode::Exact => None,
        McMode::Fast { tol, deviation_probe } => {
            let nominal_tech = config.op.tech(tech);
            match DeltaLibraryProvider::prepare(
                cache,
                &nominal_tech,
                config.op.temp,
                &config.char_opts,
                tol,
            ) {
                Ok(provider) => Some((provider, deviation_probe)),
                Err(_) => {
                    delta_metrics().fallback_sens_build.inc();
                    None
                }
            }
        }
    };

    // Raw samples concatenate in index order; the final summary is the
    // one sequential reduction the monolithic path runs (32 B/sample
    // resident — the same exactness-for-memory trade as SweepMerger).
    let mut merged = Vec::with_capacity(config.samples);
    let mut diag = FastMcDiag::default();
    for shard in 0..shards_total {
        let start = shard * shard_size;
        let len = shard_size.min(config.samples - start);
        // Chaos hook at the shard boundary, mirroring sweep_streaming:
        // delays and injected failures land between shards, never
        // inside the per-sample kernels.
        if nanoleak_fault::inject("slow-shard").is_some() {
            return Err(EngineError::Solver(nanoleak_solver::SolverError::NoConvergence {
                iterations: 0,
                residual: f64::INFINITY,
            }));
        }
        let shard_start = Instant::now();
        let samples = {
            let _span = nanoleak_obs::span!("estimate", shard = shard, samples = len);
            match &prepared {
                Some((provider, _)) => {
                    let (samples, shard_diag) =
                        run_circuit_mc_range_fast(circuit, tech, provider, config, start, len)?;
                    diag.merge(&shard_diag);
                    samples
                }
                None => run_circuit_mc_range(circuit, tech, cache, config, start, len)?,
            }
        };
        mc_shard_seconds().record_duration(shard_start.elapsed());
        if resolve_lanes(config.lanes) != 1 {
            // `nanoleak-variation` stays free of observability
            // dependencies, so its per-die block-kernel work is
            // accounted for here arithmetically: one unloaded-arm
            // block per LANES patterns per sample, and on the fast
            // path the loaded arm runs as blocks too.
            let arms = if prepared.is_some() { 2 } else { 1 };
            let per_sample = config.vectors.div_ceil(LANES) as u64;
            let tail = ((LANES - config.vectors % LANES) % LANES) as u64;
            crate::block::record_external_blocks(
                arms * len as u64 * per_sample,
                arms * len as u64 * tail,
            );
        }
        let partial = {
            let _span = nanoleak_obs::span!("merge", shard = shard);
            let partial = McShard {
                shard,
                shards_total,
                start,
                samples: len,
                summary: summarize(&samples, DEFAULT_HIST_BINS),
            };
            merged.extend(samples);
            partial
        };
        if !on_shard(&partial) {
            return Ok(None);
        }
    }

    let mc_elapsed = start_time.elapsed();
    let mut summary = {
        let _span = nanoleak_obs::span!("merge");
        summarize(&merged, DEFAULT_HIST_BINS)
    };
    if let Some((provider, deviation_probe)) = &prepared {
        // Deviation probe, after the timed phase: re-run the leading
        // samples bit-exactly and compare total leakage per arm. The
        // probe's full characterizations land in the memo, so a later
        // exact run of the same seed starts warm.
        let probed = (*deviation_probe).min(config.samples);
        let (max_deviation, mean_deviation) = if probed > 0 {
            let _span = nanoleak_obs::span!("deviation-probe", samples = probed);
            let exact = run_circuit_mc_range(circuit, tech, cache, config, 0, probed)?;
            deviation(&merged[..probed], &exact)
        } else {
            (0.0, 0.0)
        };
        summary.fast =
            Some(FastMcReport { diag, tol: provider.tol(), probed, max_deviation, mean_deviation });
    }
    Ok(Some(McReport {
        summary,
        telemetry: McTelemetry {
            elapsed: start_time.elapsed(),
            samples_per_sec: config.samples as f64 / mc_elapsed.as_secs_f64().max(1e-9),
        },
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_cells::CellType;
    use nanoleak_netlist::CircuitBuilder;
    use nanoleak_variation::{char_opts_for, run_circuit_mc, SolverProvider};

    fn small_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("engine-mc");
        let a = b.add_input("a");
        let c = b.add_input("b");
        let n = b.add_gate(CellType::Nand2, &[a, c], "n");
        let y = b.add_gate(CellType::Inv, &[n], "y");
        b.mark_output(y);
        b.build().unwrap()
    }

    fn config(samples: usize) -> CircuitMcConfig {
        CircuitMcConfig {
            samples,
            seed: 11,
            vectors: 2,
            char_opts: char_opts_for(&small_circuit(), true),
            ..Default::default()
        }
    }

    /// The tentpole acceptance at the engine layer: sharded MC merges
    /// to exactly the monolithic summary across shard sizes and
    /// thread counts, and the memoized provider changes nothing.
    #[test]
    fn sharded_mc_is_bit_identical_to_monolithic() {
        let circuit = small_circuit();
        let tech = Technology::d25();
        let base = config(7);
        let mono = run_circuit_mc(&circuit, &tech, &SolverProvider, &base).unwrap();
        let mono_summary = mono.summary(DEFAULT_HIST_BINS);
        for shard_samples in [0usize, 1, 3, 7, 16] {
            for threads in [1usize, 3] {
                let cache = MemoLibraryCache::memory_only();
                let cfg = CircuitMcConfig { threads, ..base.clone() };
                let mut seen = Vec::new();
                let report = mc_streaming(&circuit, &tech, &cache, &cfg, shard_samples, |s| {
                    seen.push((s.shard, s.start, s.samples));
                    true
                })
                .unwrap()
                .expect("not cancelled");
                assert_eq!(
                    report.summary, mono_summary,
                    "shard_samples = {shard_samples}, threads = {threads}"
                );
                let expected = shard_count(7, shard_samples);
                assert_eq!(seen.len(), expected);
                // Shards tile the sample space contiguously, in order.
                let mut next = 0;
                for (i, (shard, start, samples)) in seen.iter().enumerate() {
                    assert_eq!((*shard, *start), (i, next));
                    next += samples;
                }
                assert_eq!(next, 7, "shards cover every sample exactly once");
            }
        }
    }

    #[test]
    fn cancel_stops_between_shards() {
        let circuit = small_circuit();
        let tech = Technology::d25();
        let cache = MemoLibraryCache::memory_only();
        let mut seen = 0;
        let out = mc_streaming(&circuit, &tech, &cache, &config(6), 2, |_| {
            seen += 1;
            seen < 2
        })
        .unwrap();
        assert!(out.is_none(), "cancelled runs yield no report");
        assert_eq!(seen, 2, "the cancelling callback is the last one invoked");
    }

    #[test]
    fn memo_provider_reuses_libraries_across_reruns() {
        // The same seed re-run through one cache must not
        // re-characterize a single die — that is the point of routing
        // the MC through the memoized library path.
        let circuit = small_circuit();
        let tech = Technology::d25();
        let cache = MemoLibraryCache::memory_only();
        let cfg = config(3);
        let first = mc_streaming(&circuit, &tech, &cache, &cfg, 0, |_| true).unwrap().unwrap();
        let solves = cache.stats().characterizations;
        assert_eq!(solves, 3, "one characterization per unique die");
        let second = mc_streaming(&circuit, &tech, &cache, &cfg, 0, |_| true).unwrap().unwrap();
        assert_eq!(cache.stats().characterizations, solves, "re-run served from RAM");
        assert_eq!(first.summary, second.summary);
    }

    /// The tentpole acceptance at the engine layer, fast arm: the
    /// delta-derived path stays within the linearization tolerance of
    /// the bit-exact path, self-reports its deviation, and is itself
    /// bit-identical across shard sizes and thread counts.
    #[test]
    fn fast_mode_tracks_exact_and_stays_deterministic() {
        let circuit = small_circuit();
        let tech = Technology::d25();
        let cache = MemoLibraryCache::memory_only();
        let cfg = config(4);
        let exact = mc_streaming_mode(&circuit, &tech, &cache, &cfg, McMode::Exact, 0, |_| true)
            .unwrap()
            .unwrap();
        assert!(exact.summary.fast.is_none(), "exact runs carry no fast report");
        assert_eq!(
            exact.summary,
            mc_streaming(&circuit, &tech, &cache, &cfg, 0, |_| true).unwrap().unwrap().summary,
            "mc_streaming is the exact mode"
        );
        let fast = mc_streaming_mode(&circuit, &tech, &cache, &cfg, McMode::fast(), 0, |_| true)
            .unwrap()
            .unwrap();
        let report = fast.summary.fast.expect("fast runs self-report");
        assert_eq!(report.probed, 4);
        assert!(report.diag.dies_derived > 0, "no die derived: {:?}", report.diag);
        assert!(
            report.max_deviation.is_finite() && report.max_deviation < 0.25,
            "fast path drifted: {report:?}"
        );
        assert!(report.mean_deviation <= report.max_deviation);
        assert!(
            (fast.summary.mean_shift - exact.summary.mean_shift).abs() < 0.05,
            "loading statistics diverged: fast {} vs exact {}",
            fast.summary.mean_shift,
            exact.summary.mean_shift
        );
        // Shard/thread invariance of the *whole* fast summary,
        // deviation report included (the probe is deterministic too).
        for (shard_samples, threads) in [(1usize, 1usize), (3, 3), (0, 2)] {
            let cfg = CircuitMcConfig { threads, ..cfg.clone() };
            let again = mc_streaming_mode(
                &circuit,
                &tech,
                &cache,
                &cfg,
                McMode::fast(),
                shard_samples,
                |_| true,
            )
            .unwrap()
            .unwrap();
            assert_eq!(
                again.summary, fast.summary,
                "shard_samples = {shard_samples}, threads = {threads}"
            );
        }
    }

    #[test]
    fn missing_cell_surfaces_in_index_order() {
        let circuit = small_circuit();
        let tech = Technology::d25();
        let cache = MemoLibraryCache::memory_only();
        // Characterize only the inverter: every sample fails on the
        // NAND2 at compile time.
        let cfg = CircuitMcConfig {
            char_opts: nanoleak_cells::CharacterizeOptions::coarse(&[CellType::Inv]),
            ..config(2)
        };
        let err = mc_streaming(&circuit, &tech, &cache, &cfg, 0, |_| true).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Estimate(nanoleak_core::EstimateError::MissingCell(CellType::Nand2))
        ));
    }
}
