//! Minimum/maximum-leakage input-vector (MLV) search.
//!
//! Fig. 7 of the paper shows NAND leakage spanning ~4x across input
//! vectors; at circuit scale the spread makes the *standby vector* a
//! real power knob. This module searches the input space for the
//! extreme vector with three pluggable strategies:
//!
//! * [`MlvStrategy::Exhaustive`] — enumerate all `2^bits` assignments
//!   (primary inputs + DFF state bits); exact, for small circuits;
//! * [`MlvStrategy::Random`] — uniform sampling, sharing the sweep's
//!   seed-derived pattern streams;
//! * [`MlvStrategy::HillClimb`] — greedy single-bit-flip descent with
//!   parallel restarts; near-exact in practice at a tiny fraction of
//!   the exhaustive cost.
//!
//! All strategies are deterministic for a given seed regardless of the
//! thread count: candidates are scored in a fixed order and ties
//! resolve to the earliest candidate.

use std::time::Instant;

use nanoleak_cells::CellLibrary;
use nanoleak_core::{
    resolve_lanes, CircuitLeakage, CompiledEstimator, EstimateError, EstimateScratch,
    EstimatorMode, PatternBlock, LANES,
};
use nanoleak_netlist::{Circuit, Pattern};

use crate::block::{eval_block_timed, eval_packed_block_timed};
use crate::exec::{par_map_with, resolve_threads};
use crate::sweep::pattern_for_index;
use crate::EngineError;

/// Largest input-bit count [`MlvStrategy::Exhaustive`] will enumerate
/// (`2^22` ≈ 4.2M estimator calls).
pub const MAX_EXHAUSTIVE_BITS: usize = 22;

/// Search direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MlvGoal {
    /// Find the minimum-leakage vector (standby-power optimization).
    #[default]
    Min,
    /// Find the maximum-leakage vector (worst-case bound).
    Max,
}

impl MlvGoal {
    /// `true` if `candidate` strictly beats `incumbent` for this goal.
    fn improves(self, candidate: f64, incumbent: f64) -> bool {
        match self {
            MlvGoal::Min => candidate < incumbent,
            MlvGoal::Max => candidate > incumbent,
        }
    }
}

/// How the input space is explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MlvStrategy {
    /// Enumerate every assignment (up to [`MAX_EXHAUSTIVE_BITS`] bits).
    Exhaustive,
    /// Score `samples` seed-derived random patterns.
    Random {
        /// Number of random patterns.
        samples: usize,
    },
    /// Greedy bit-flip hill climbing from `restarts` random starts,
    /// each limited to `max_steps` accepted moves.
    HillClimb {
        /// Independent random starts (parallelized).
        restarts: usize,
        /// Accepted-move limit per restart.
        max_steps: usize,
    },
}

impl Default for MlvStrategy {
    fn default() -> Self {
        MlvStrategy::HillClimb { restarts: 8, max_steps: 64 }
    }
}

impl MlvStrategy {
    /// Short name for logs and telemetry.
    pub fn name(&self) -> &'static str {
        match self {
            MlvStrategy::Exhaustive => "exhaustive",
            MlvStrategy::Random { .. } => "random",
            MlvStrategy::HillClimb { .. } => "hill-climb",
        }
    }
}

/// Configuration of one MLV search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlvConfig {
    /// Search direction.
    pub goal: MlvGoal,
    /// Exploration strategy.
    pub strategy: MlvStrategy,
    /// Base RNG seed (random starts / random sampling).
    pub seed: u64,
    /// Worker threads (`0` = all cores, capped at 16).
    pub threads: usize,
    /// Estimator mode used to score candidates.
    pub mode: EstimatorMode,
    /// Evaluation lanes: `0` (auto) and [`LANES`] score exhaustive /
    /// random candidates through the 64-way block kernel; `1` forces
    /// the scalar path. The winner is identical either way (per-block
    /// earliest-best folds in block order reproduce the scalar
    /// earliest-wins scan). Hill climbing always scores scalar — its
    /// candidates are sequentially dependent.
    pub lanes: usize,
}

impl Default for MlvConfig {
    fn default() -> Self {
        Self {
            goal: MlvGoal::Min,
            strategy: MlvStrategy::Exhaustive,
            seed: 2005,
            threads: 0,
            mode: EstimatorMode::Lut,
            lanes: 0,
        }
    }
}

/// Search cost and progress counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlvTelemetry {
    /// Strategy that produced the result.
    pub strategy: &'static str,
    /// Estimator invocations.
    pub evaluations: u64,
    /// Accepted hill-climb moves (0 for other strategies).
    pub improving_moves: u64,
    /// Restarts executed (1 for other strategies).
    pub restarts: usize,
    /// Wall-clock duration.
    pub elapsed: std::time::Duration,
}

/// Result of [`mlv_search`]: the best vector found, its full leakage
/// report, and the search telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct MlvResult {
    /// The best input pattern found.
    pub pattern: Pattern,
    /// Its full per-gate leakage report.
    pub leakage: CircuitLeakage,
    /// Total leakage of `pattern` \[A\] (the search objective).
    pub objective: f64,
    /// Search cost counters.
    pub telemetry: MlvTelemetry,
}

/// One scored candidate flowing through a search.
#[derive(Debug, Clone)]
struct Candidate {
    pattern: Pattern,
    objective: f64,
}

/// Refills `pattern` with the assignment encoded by the low `bits` of
/// `index`: primary inputs first (bit 0 = first input), then DFF state
/// bits. Allocation-free once the buffers are warm.
fn fill_pattern_from_bits(circuit: &Circuit, index: u64, pattern: &mut Pattern) {
    let n_pi = circuit.inputs().len();
    pattern.pi.clear();
    pattern.pi.extend((0..n_pi).map(|j| index >> j & 1 == 1));
    pattern.states.clear();
    pattern.states.extend((0..circuit.state_inputs().len()).map(|j| index >> (n_pi + j) & 1 == 1));
}

/// Builds the pattern encoded by the low `bits` of `index`.
fn pattern_from_bits(circuit: &Circuit, index: u64) -> Pattern {
    let mut p = Pattern::default();
    fill_pattern_from_bits(circuit, index, &mut p);
    p
}

/// Folds candidates in iteration order; ties keep the earliest, so
/// the winner is deterministic for any thread count.
fn pick_best(goal: MlvGoal, candidates: impl IntoIterator<Item = Candidate>) -> Option<Candidate> {
    let mut best: Option<Candidate> = None;
    for c in candidates {
        match &best {
            Some(b) if !goal.improves(c.objective, b.objective) => {}
            _ => best = Some(c),
        }
    }
    best
}

/// Scores `n` candidates in parallel (per-worker scratch state, no
/// per-candidate allocations) and picks the winning `(index,
/// objective)`. Objectives are materialized in index order and the
/// fold keeps the earliest on ties, so the winner is deterministic
/// for any thread count — the winning *pattern* is regenerated from
/// its index by the caller.
fn scored_scan<S>(
    goal: MlvGoal,
    threads: usize,
    n: usize,
    init: impl Fn() -> S + Sync,
    score_at: impl Fn(&mut S, usize) -> Result<f64, EstimateError> + Sync,
) -> Result<(usize, f64), EngineError> {
    let scored: Vec<Result<f64, EstimateError>> = par_map_with(n, threads, init, score_at);
    let mut best: Option<(usize, f64)> = None;
    for (i, r) in scored.into_iter().enumerate() {
        let objective = r?;
        match best {
            Some((_, b)) if !goal.improves(objective, b) => {}
            _ => best = Some((i, objective)),
        }
    }
    Ok(best.expect("scored_scan evaluates at least one candidate"))
}

/// Earliest-best candidate of one scored block: `totals[j]` holds the
/// objective breakdown of global candidate `start + j`, and ties keep
/// the lowest index — the same rule [`scored_scan`] applies.
fn block_best(
    goal: MlvGoal,
    start: usize,
    totals: &[nanoleak_device::LeakageBreakdown],
) -> (usize, f64) {
    let mut best = (start, totals[0].total());
    for (j, t) in totals.iter().enumerate().skip(1) {
        let objective = t.total();
        if goal.improves(objective, best.1) {
            best = (start + j, objective);
        }
    }
    best
}

/// Block-kernel counterpart of [`scored_scan`]: the candidate space
/// tiles into [`LANES`]-sized blocks (only the last can be partial),
/// `score_block` reduces each to its earliest-best `(index,
/// objective)` (via [`block_best`]), and the per-block winners fold
/// in block order with the same earliest-wins rule. Two-level
/// earliest-wins over an ordered tiling picks exactly the candidate
/// the flat scalar scan picks, for any thread count.
fn scored_scan_block<S>(
    goal: MlvGoal,
    threads: usize,
    n: usize,
    init: impl Fn() -> S + Sync,
    score_block: impl Fn(&mut S, usize, usize) -> Result<(usize, f64), EstimateError> + Sync,
) -> Result<(usize, f64), EngineError> {
    let blocks = n.div_ceil(LANES);
    let per_block: Vec<Result<(usize, f64), EstimateError>> =
        par_map_with(blocks, threads, init, |s, b| {
            let start = b * LANES;
            score_block(s, start, LANES.min(n - start))
        });
    let mut best: Option<(usize, f64)> = None;
    for r in per_block {
        let (index, objective) = r?;
        match best {
            Some((_, b)) if !goal.improves(objective, b) => {}
            _ => best = Some((index, objective)),
        }
    }
    Ok(best.expect("scored_scan_block evaluates at least one candidate"))
}

/// Searches for the extreme-leakage input vector of `circuit`.
///
/// # Errors
/// * [`EngineError::SearchSpaceTooLarge`] for exhaustive search over
///   more than [`MAX_EXHAUSTIVE_BITS`] input bits;
/// * [`EngineError::Estimate`] if any candidate fails to estimate.
pub fn mlv_search(
    circuit: &Circuit,
    library: &CellLibrary,
    config: &MlvConfig,
) -> Result<MlvResult, EngineError> {
    let start = Instant::now();
    let threads = resolve_threads(config.threads);
    let bits = circuit.inputs().len() + circuit.state_inputs().len();
    if let MlvStrategy::Exhaustive = config.strategy {
        if bits > MAX_EXHAUSTIVE_BITS {
            return Err(EngineError::SearchSpaceTooLarge { bits, limit: MAX_EXHAUSTIVE_BITS });
        }
    }

    // One plan for the whole search — shared process-wide via the
    // structural cache, so repeated searches over isomorphic netlists
    // skip the compile; candidate scoring runs allocation-free against
    // per-worker scratches.
    let shared = crate::plan_cache::shared_plan(circuit, library)?;
    let plan = shared.plan();
    // Block scanning serves the two flat strategies; hill climbing is
    // sequentially dependent and always scores scalar.
    let block_scan = resolve_lanes(config.lanes) != 1
        && !matches!(config.strategy, MlvStrategy::HillClimb { .. });
    if block_scan && config.mode == EstimatorMode::Lut {
        // Charge the response-table build to the search setup, not
        // the first scored block (cached on the shared plan).
        plan.prepare_block();
    }

    let (best, evaluations, improving_moves, restarts) = match config.strategy {
        MlvStrategy::Exhaustive => {
            let n = 1usize << bits;
            let (index, objective) = if block_scan {
                scored_scan_block(
                    config.goal,
                    threads,
                    n,
                    || {
                        (
                            plan.block_scratch(),
                            PatternBlock::for_circuit(circuit),
                            Pattern::default(),
                        )
                    },
                    |(scratch, block, pattern), start, count| {
                        block.clear();
                        for j in 0..count {
                            fill_pattern_from_bits(circuit, (start + j) as u64, pattern);
                            block.push(pattern);
                        }
                        eval_packed_block_timed(plan, scratch, block, config.mode)?;
                        Ok(block_best(config.goal, start, scratch.totals()))
                    },
                )?
            } else {
                scored_scan(
                    config.goal,
                    threads,
                    n,
                    || (plan.scratch(), Pattern::default()),
                    |(scratch, pattern), i| {
                        fill_pattern_from_bits(circuit, i as u64, pattern);
                        plan.estimate_into(scratch, pattern, config.mode).map(|b| b.total())
                    },
                )?
            };
            let best = Candidate { pattern: pattern_from_bits(circuit, index as u64), objective };
            (best, n as u64, 0, 1)
        }
        MlvStrategy::Random { samples } => {
            assert!(samples > 0, "random MLV search needs at least one sample");
            let (index, objective) = if block_scan {
                scored_scan_block(
                    config.goal,
                    threads,
                    samples,
                    || plan.block_scratch(),
                    |scratch, start, count| {
                        eval_block_timed(plan, scratch, config.seed, start, count, config.mode)?;
                        Ok(block_best(config.goal, start, scratch.totals()))
                    },
                )?
            } else {
                scored_scan(
                    config.goal,
                    threads,
                    samples,
                    || plan.scratch(),
                    |scratch, i| {
                        plan.estimate_index_into(scratch, config.seed, i, config.mode)
                            .map(|b| b.total())
                    },
                )?
            };
            let best =
                Candidate { pattern: pattern_for_index(circuit, config.seed, index), objective };
            (best, samples as u64, 0, 1)
        }
        MlvStrategy::HillClimb { restarts, max_steps } => {
            assert!(restarts > 0, "hill climb needs at least one restart");
            type ClimbOutcome = Result<(Candidate, u64, u64), EngineError>;
            let climbs: Vec<ClimbOutcome> = par_map_with(
                restarts,
                threads,
                || plan.scratch(),
                |scratch, r| climb(plan, scratch, config, r, max_steps),
            );
            let mut merged = Vec::with_capacity(restarts);
            let (mut evals, mut moves) = (0u64, 0u64);
            for c in climbs {
                let (cand, e, m) = c?;
                evals += e;
                moves += m;
                merged.push(cand);
            }
            let best =
                pick_best(config.goal, merged).expect("at least one restart produced a candidate");
            (best, evals, moves, restarts)
        }
    };

    let mut scratch = plan.scratch();
    let leakage = plan.estimate_report(&mut scratch, &best.pattern, config.mode)?;
    Ok(MlvResult {
        pattern: best.pattern,
        objective: best.objective,
        leakage,
        telemetry: MlvTelemetry {
            strategy: config.strategy.name(),
            evaluations,
            improving_moves,
            restarts,
            elapsed: start.elapsed(),
        },
    })
}

/// One hill-climb restart: greedy steepest-ascent/descent over
/// single-bit flips, scanning bits in a fixed order for determinism.
/// The candidate pattern is mutated in place (flip, score, flip back),
/// so a whole restart performs no per-step allocations.
fn climb(
    plan: &CompiledEstimator<'_>,
    scratch: &mut EstimateScratch,
    config: &MlvConfig,
    restart: usize,
    max_steps: usize,
) -> Result<(Candidate, u64, u64), EngineError> {
    // Restart streams reuse the sweep's per-index derivation, offset
    // so hill-climb starts differ from sweep/random sample patterns.
    let mut current = pattern_for_index(plan.circuit(), config.seed ^ 0x4d4c56, restart);
    let mut objective = plan.estimate_into(scratch, &current, config.mode)?.total();
    let mut evaluations = 1u64;
    let mut moves = 0u64;
    let bits = current.pi.len() + current.states.len();

    for _ in 0..max_steps {
        let mut best_flip: Option<(usize, f64)> = None;
        for bit in 0..bits {
            flip_in_place(&mut current, bit);
            let cand_obj = plan.estimate_into(scratch, &current, config.mode)?.total();
            flip_in_place(&mut current, bit);
            evaluations += 1;
            let beats_current = config.goal.improves(cand_obj, objective);
            let beats_best = match best_flip {
                Some((_, b)) => config.goal.improves(cand_obj, b),
                None => true,
            };
            if beats_current && beats_best {
                best_flip = Some((bit, cand_obj));
            }
        }
        match best_flip {
            Some((bit, obj)) => {
                flip_in_place(&mut current, bit);
                objective = obj;
                moves += 1;
            }
            None => break,
        }
    }
    Ok((Candidate { pattern: current, objective }, evaluations, moves))
}

/// Flips one bit of `pattern` (primary inputs first, then DFF states)
/// in place.
fn flip_in_place(pattern: &mut Pattern, bit: usize) {
    if bit < pattern.pi.len() {
        pattern.pi[bit] = !pattern.pi[bit];
    } else {
        let s = bit - pattern.pi.len();
        pattern.states[s] = !pattern.states[s];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_cells::{CellLibrary, CellType, CharacterizeOptions};
    use nanoleak_core::estimate;
    use nanoleak_device::Technology;
    use nanoleak_netlist::CircuitBuilder;
    use std::sync::Arc;

    fn library() -> Arc<CellLibrary> {
        CellLibrary::shared_with_options(
            &Technology::d25(),
            300.0,
            &CharacterizeOptions::coarse(&[CellType::Inv, CellType::Nand2]),
        )
    }

    fn chain_circuit(inputs: usize) -> Circuit {
        let mut b = CircuitBuilder::new("mlv-test");
        let pis: Vec<_> = (0..inputs).map(|i| b.add_input(&format!("i{i}"))).collect();
        let mut prev = b.add_gate(CellType::Nand2, &[pis[0], pis[1]], "n0");
        for (k, &pi) in pis.iter().enumerate().skip(2) {
            prev = b.add_gate(CellType::Nand2, &[prev, pi], &format!("n{}", k - 1));
        }
        let y = b.add_gate(CellType::Inv, &[prev], "y");
        b.mark_output(y);
        b.build().unwrap()
    }

    #[test]
    fn exhaustive_agrees_with_brute_force_scan() {
        let circuit = chain_circuit(4);
        let lib = library();
        let result = mlv_search(&circuit, &lib, &MlvConfig::default()).unwrap();
        // Independent brute force in plain code.
        let mut best = f64::INFINITY;
        for idx in 0..(1u64 << 4) {
            let p = pattern_from_bits(&circuit, idx);
            let t = estimate(&circuit, &lib, &p, EstimatorMode::Lut).unwrap().total.total();
            if t < best {
                best = t;
            }
        }
        assert_eq!(result.objective, best);
        assert_eq!(result.telemetry.evaluations, 16);
        assert_eq!(result.leakage.total.total(), result.objective);
    }

    #[test]
    fn max_goal_finds_the_other_extreme() {
        let circuit = chain_circuit(3);
        let lib = library();
        let min =
            mlv_search(&circuit, &lib, &MlvConfig { goal: MlvGoal::Min, ..Default::default() })
                .unwrap();
        let max =
            mlv_search(&circuit, &lib, &MlvConfig { goal: MlvGoal::Max, ..Default::default() })
                .unwrap();
        assert!(max.objective > min.objective);
    }

    #[test]
    fn search_space_guard_rejects_wide_circuits() {
        // One inverter per input: the guard fires on the bit count
        // before any estimator work happens.
        let wide = MAX_EXHAUSTIVE_BITS + 1;
        let mut b = CircuitBuilder::new("wide");
        for i in 0..wide {
            let a = b.add_input(&format!("i{i}"));
            let y = b.add_gate(CellType::Inv, &[a], &format!("y{i}"));
            b.mark_output(y);
        }
        let circuit = b.build().unwrap();
        let lib = library();
        let err = mlv_search(&circuit, &lib, &MlvConfig::default()).unwrap_err();
        assert_eq!(
            err,
            EngineError::SearchSpaceTooLarge { bits: wide, limit: MAX_EXHAUSTIVE_BITS }
        );
    }

    #[test]
    fn hill_climb_is_deterministic_across_thread_counts() {
        let circuit = chain_circuit(6);
        let lib = library();
        let strategy = MlvStrategy::HillClimb { restarts: 6, max_steps: 32 };
        let base = MlvConfig { strategy, threads: 1, ..Default::default() };
        let one = mlv_search(&circuit, &lib, &base).unwrap();
        for threads in [2, 5, 8] {
            let multi = mlv_search(&circuit, &lib, &MlvConfig { threads, ..base }).unwrap();
            assert_eq!(one.pattern, multi.pattern, "threads = {threads}");
            assert_eq!(one.objective, multi.objective);
            assert_eq!(one.telemetry.evaluations, multi.telemetry.evaluations);
        }
    }

    #[test]
    fn random_strategy_improves_with_more_samples() {
        let circuit = chain_circuit(6);
        let lib = library();
        let few = mlv_search(
            &circuit,
            &lib,
            &MlvConfig { strategy: MlvStrategy::Random { samples: 2 }, ..Default::default() },
        )
        .unwrap();
        let many = mlv_search(
            &circuit,
            &lib,
            &MlvConfig { strategy: MlvStrategy::Random { samples: 48 }, ..Default::default() },
        )
        .unwrap();
        assert!(many.objective <= few.objective, "more samples never hurt");
        assert_eq!(many.telemetry.evaluations, 48);
    }
}
