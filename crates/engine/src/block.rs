//! Block-kernel telemetry shared by the engine's workloads.
//!
//! Every 64-lane block evaluation the engine issues — sweep shards,
//! MLV scans, Monte-Carlo arms — is counted here so operators can see
//! how much of the load runs word-parallel, how much lane capacity
//! tail blocks waste, and how long the packed kernel takes. The
//! counters live in [`nanoleak_obs::global()`] and therefore surface
//! through `/metrics` and `?debug=timings` like every other engine
//! metric. The per-lane arithmetic inside the kernel stays untouched:
//! telemetry is recorded once per block, never per pattern.

use std::time::Instant;

use nanoleak_core::{
    BlockScratch, CompiledEstimator, EstimateError, EstimatorMode, PatternBlock, LANES,
};

/// Process-wide block-kernel telemetry.
pub struct BlockMetrics {
    /// Blocks evaluated through the packed kernel.
    pub blocks: nanoleak_obs::Counter,
    /// Unused lanes of partially-filled tail blocks (a block carrying
    /// `n < 64` patterns wastes `64 - n` lanes of kernel capacity).
    pub tail_lane_waste: nanoleak_obs::Counter,
    /// Wall time of one block evaluation (simulate + resolve).
    pub kernel_seconds: nanoleak_obs::Histogram,
}

/// The engine's shared block metrics, registered on first use.
pub fn block_metrics() -> &'static BlockMetrics {
    static METRICS: std::sync::OnceLock<BlockMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| BlockMetrics {
        blocks: nanoleak_obs::global().counter(
            "nanoleak_block_blocks_total",
            "64-lane pattern blocks evaluated through the packed kernel",
        ),
        tail_lane_waste: nanoleak_obs::global().counter(
            "nanoleak_block_tail_lane_waste_total",
            "Unused lanes of partially-filled tail blocks",
        ),
        kernel_seconds: nanoleak_obs::global().histogram(
            "nanoleak_block_kernel_seconds",
            "Wall time to evaluate one pattern block (simulate + resolve)",
        ),
    })
}

/// Evaluates the seed-derived index range `start .. start + count`
/// (at most [`LANES`] patterns) through the packed block kernel,
/// recording the block counters and kernel latency. Totals land in
/// `scratch.totals()` in lane = index order, bit-identical to the
/// scalar `estimate_index_into` stream.
///
/// # Errors
/// Forwards the kernel's [`EstimateError`].
pub fn eval_block_timed(
    plan: &CompiledEstimator<'_>,
    scratch: &mut BlockScratch,
    seed: u64,
    start: usize,
    count: usize,
    mode: EstimatorMode,
) -> Result<(), EstimateError> {
    let t = Instant::now();
    plan.estimate_index_block_into(scratch, seed, start, count, mode)?;
    let m = block_metrics();
    m.kernel_seconds.record_duration(t.elapsed());
    m.blocks.inc();
    m.tail_lane_waste.add((LANES - count) as u64);
    Ok(())
}

/// Like [`eval_block_timed`] for a caller-packed [`PatternBlock`]
/// (the MLV exhaustive scan packs bit-encoded assignments rather than
/// seed-derived streams).
///
/// # Errors
/// Forwards the kernel's [`EstimateError`].
pub fn eval_packed_block_timed(
    plan: &CompiledEstimator<'_>,
    scratch: &mut BlockScratch,
    block: &PatternBlock,
    mode: EstimatorMode,
) -> Result<(), EstimateError> {
    let t = Instant::now();
    plan.estimate_block_into(scratch, block, mode)?;
    let m = block_metrics();
    m.kernel_seconds.record_duration(t.elapsed());
    m.blocks.inc();
    m.tail_lane_waste.add((LANES - block.len()) as u64);
    Ok(())
}

/// Records `blocks` block evaluations and `tail_lane_waste` unused
/// tail lanes that happened outside [`eval_block_timed`] — the
/// Monte-Carlo path accounts for its per-die arms arithmetically so
/// `nanoleak-variation` stays free of observability dependencies.
pub fn record_external_blocks(blocks: u64, tail_lane_waste: u64) {
    let m = block_metrics();
    m.blocks.add(blocks);
    m.tail_lane_waste.add(tail_lane_waste);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_register_once_and_accumulate() {
        let before = block_metrics().blocks.get();
        record_external_blocks(3, 5);
        assert_eq!(block_metrics().blocks.get(), before + 3);
        // Same statics on re-entry: the registry never double-registers.
        let again = block_metrics();
        again.blocks.inc();
        assert_eq!(block_metrics().blocks.get(), before + 4);
    }
}
