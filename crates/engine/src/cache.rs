//! Persistent characterization cache.
//!
//! Characterizing the full cell family at default resolution costs
//! seconds of solver time per (technology, temperature, options)
//! triple, and every CLI or bench invocation used to pay it again.
//! [`LibraryCache`] serializes the characterized [`CellLibrary`] to
//! disk so later runs (including across processes) skip the solve.
//!
//! ## File format (`*.nlc`)
//!
//! | bytes | content |
//! |---|---|
//! | 4 | magic `NLKC` |
//! | 4 | format version, u32 LE ([`CACHE_FORMAT_VERSION`]) |
//! | 8 | request key, u64 LE — FNV-1a over the serialized (tech, temp, options) |
//! | 8 | payload length, u64 LE |
//! | 8 | payload checksum, u64 LE (FNV-1a) |
//! | n | payload: the `CellLibrary` in vendored-serde binary encoding |
//!
//! Any mismatch — magic, version, key, length, checksum, decode
//! failure, or a decoded library whose (tech, temp, options) differ
//! from the request (a key collision) — is treated as a stale entry:
//! the library is re-characterized and the file overwritten. Changing
//! the characterization options changes the key and therefore the
//! file name, so old entries can never shadow new requests.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use nanoleak_cells::{CellLibrary, CharacterizeOptions};
use nanoleak_device::Technology;

use crate::EngineError;

/// Bump when the header layout or the serialized library shape
/// changes; old files then re-characterize instead of mis-decoding.
pub const CACHE_FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 4] = b"NLKC";
const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8;

/// How a [`LibraryCache::load_or_characterize`] request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// A valid cache file was loaded; no solver work ran.
    Hit,
    /// No cache file existed; the library was characterized and stored.
    Miss,
    /// A cache file existed but was stale or corrupt; the library was
    /// re-characterized and the file replaced.
    Invalidated,
}

/// An on-disk cache of characterized cell libraries.
#[derive(Debug, Clone)]
pub struct LibraryCache {
    dir: PathBuf,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl LibraryCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The default location: `$NANOLEAK_CACHE_DIR` if set, else
    /// `.nanoleak-cache` under the current directory.
    pub fn default_location() -> Self {
        let dir = std::env::var_os("NANOLEAK_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(".nanoleak-cache"));
        Self::new(dir)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The request key: FNV-1a over the serialized (tech, temp,
    /// options) triple. Every field of the technology (device designs
    /// included) participates, so e.g. an oxide-thickness tweak yields
    /// a different key.
    pub fn request_key(tech: &Technology, temp: f64, opts: &CharacterizeOptions) -> u64 {
        let request = (tech.clone(), temp, opts.clone());
        fnv1a(&serde::to_bytes(&request))
    }

    /// The file path backing one request.
    pub fn path_for(&self, tech: &Technology, temp: f64, opts: &CharacterizeOptions) -> PathBuf {
        let key = Self::request_key(tech, temp, opts);
        let name = tech.name.to_lowercase().replace(|c: char| !c.is_alphanumeric(), "-");
        self.dir.join(format!("{name}-v{CACHE_FORMAT_VERSION}-{key:016x}.nlc"))
    }

    /// Loads the cached library for a request, or characterizes and
    /// stores it.
    ///
    /// Returns the library plus how it was obtained; a hit performs no
    /// solver work. Write failures after a successful characterization
    /// surface as [`EngineError::Cache`] (the characterization is not
    /// silently discarded as that would hide a misconfigured cache
    /// directory on every run).
    ///
    /// # Errors
    /// * [`EngineError::Solver`] if characterization fails on a miss;
    /// * [`EngineError::Cache`] if the fresh entry cannot be written.
    pub fn load_or_characterize(
        &self,
        tech: &Technology,
        temp: f64,
        opts: &CharacterizeOptions,
    ) -> Result<(Arc<CellLibrary>, CacheOutcome), EngineError> {
        let path = self.path_for(tech, temp, opts);
        let existed = path.exists();
        if existed {
            if let Some(lib) = self.try_load(&path, tech, temp, opts) {
                return Ok((Arc::new(lib), CacheOutcome::Hit));
            }
        }
        let lib = CellLibrary::characterize(tech, temp, opts)?;
        self.store(&lib)?;
        let outcome = if existed { CacheOutcome::Invalidated } else { CacheOutcome::Miss };
        Ok((Arc::new(lib), outcome))
    }

    /// Writes `lib` into the cache, creating the directory on demand.
    ///
    /// # Errors
    /// [`EngineError::Cache`] on any I/O failure.
    pub fn store(&self, lib: &CellLibrary) -> Result<PathBuf, EngineError> {
        let path = self.path_for(&lib.tech, lib.temp, &lib.options);
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| EngineError::Cache(format!("create {}: {e}", self.dir.display())))?;
        let key = Self::request_key(&lib.tech, lib.temp, &lib.options);
        let payload = serde::to_bytes(lib);

        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&CACHE_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&key.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        // Write-then-rename so a crashed writer never leaves a torn
        // file behind for the next reader.
        let tmp = path.with_extension("nlc.tmp");
        std::fs::write(&tmp, &bytes)
            .map_err(|e| EngineError::Cache(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| EngineError::Cache(format!("rename to {}: {e}", path.display())))?;
        Ok(path)
    }

    /// Attempts to load and fully validate one cache file; any
    /// problem returns `None` (the caller re-characterizes).
    fn try_load(
        &self,
        path: &Path,
        tech: &Technology,
        temp: f64,
        opts: &CharacterizeOptions,
    ) -> Option<CellLibrary> {
        let bytes = std::fs::read(path).ok()?;
        if bytes.len() < HEADER_LEN || &bytes[..4] != MAGIC {
            return None;
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
        if version != CACHE_FORMAT_VERSION {
            return None;
        }
        let key = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
        if key != Self::request_key(tech, temp, opts) {
            return None;
        }
        let len = u64::from_le_bytes(bytes[16..24].try_into().ok()?) as usize;
        let checksum = u64::from_le_bytes(bytes[24..32].try_into().ok()?);
        let payload = &bytes[HEADER_LEN..];
        if payload.len() != len || fnv1a(payload) != checksum {
            return None;
        }
        let lib: CellLibrary = serde::from_bytes(payload).ok()?;
        // Key collisions are astronomically unlikely but cheap to rule
        // out: the decoded request must match the asked-for request.
        if lib.tech != *tech || lib.temp != temp || lib.options != *opts {
            return None;
        }
        Some(lib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_cells::CellType;

    fn opts() -> CharacterizeOptions {
        CharacterizeOptions::coarse(&[CellType::Inv])
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nanoleak-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn keys_separate_requests() {
        let tech = Technology::d25();
        let base = LibraryCache::request_key(&tech, 300.0, &opts());
        assert_ne!(base, LibraryCache::request_key(&tech, 310.0, &opts()));
        let wider = CharacterizeOptions { max_loading: 9e-6, ..opts() };
        assert_ne!(base, LibraryCache::request_key(&tech, 300.0, &wider));
        let mut other_tech = tech.clone();
        other_tech.vdd += 0.05;
        assert_ne!(base, LibraryCache::request_key(&other_tech, 300.0, &opts()));
    }

    #[test]
    fn miss_then_hit_round_trips_bit_identically() {
        let tech = Technology::d25();
        let cache = LibraryCache::new(temp_dir("roundtrip"));
        let (first, outcome) = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let (second, outcome) = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(*first, *second, "loaded library equals characterized library");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_payload_invalidates() {
        let tech = Technology::d25();
        let cache = LibraryCache::new(temp_dir("corrupt"));
        let (_, outcome) = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        // Flip one payload byte behind the header.
        let path = cache.path_for(&tech, 300.0, &opts());
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (lib, outcome) = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Invalidated);
        assert!(lib.cell(CellType::Inv).is_some(), "recovered by re-characterizing");
        // And the replacement file is valid again.
        let (_, outcome) = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn truncated_header_invalidates() {
        let tech = Technology::d25();
        let cache = LibraryCache::new(temp_dir("truncated"));
        cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
        let path = cache.path_for(&tech, 300.0, &opts());
        std::fs::write(&path, b"NLKC").unwrap();
        let (_, outcome) = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Invalidated);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn option_change_is_a_fresh_miss_not_a_stale_hit() {
        let tech = Technology::d25();
        let cache = LibraryCache::new(temp_dir("options"));
        let (_, outcome) = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let denser = CharacterizeOptions { points: 5, ..opts() };
        let (lib, outcome) = cache.load_or_characterize(&tech, 300.0, &denser).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss, "different options, different entry");
        assert_eq!(lib.options.points, 5);
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
