//! Persistent characterization cache.
//!
//! Characterizing the full cell family at default resolution costs
//! seconds of solver time per (technology, temperature, options)
//! triple, and every CLI or bench invocation used to pay it again.
//! [`LibraryCache`] serializes the characterized [`CellLibrary`] to
//! disk so later runs (including across processes) skip the solve.
//!
//! ## File format (`*.nlc`)
//!
//! | bytes | content |
//! |---|---|
//! | 4 | magic `NLKC` |
//! | 4 | format version, u32 LE ([`CACHE_FORMAT_VERSION`]) |
//! | 8 | request key, u64 LE — FNV-1a over the serialized (tech, temp, options) |
//! | 8 | payload length, u64 LE |
//! | 8 | payload checksum, u64 LE (FNV-1a) |
//! | n | payload: the `CellLibrary` in vendored-serde binary encoding |
//!
//! Any mismatch — magic, version, key, length, checksum, decode
//! failure, or a decoded library whose (tech, temp, options) differ
//! from the request (a key collision) — is treated as a stale entry:
//! the library is re-characterized and the file overwritten. Changing
//! the characterization options changes the key and therefore the
//! file name, so old entries can never shadow new requests.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nanoleak_cells::{
    characterize_with_sensitivity, CellLibrary, CharacterizeOptions, LibrarySens, OperatingPoint,
};
use nanoleak_device::Technology;
use nanoleak_obs::{global, Counter, Histogram};
use nanoleak_variation::{DeltaProvider, DieDiag, LibraryProvider, McError, SensDeltaProvider};
use parking_lot::Mutex;

use crate::EngineError;

/// Process-wide cache telemetry aggregated over every
/// [`MemoLibraryCache`] instance (per-instance counts stay on the
/// instance; see [`MemoLibraryCache::stats`]).
struct CacheMetrics {
    memory_hits: Counter,
    disk_hits: Counter,
    characterizations: Counter,
    characterize_seconds: Histogram,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: std::sync::OnceLock<CacheMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| CacheMetrics {
        memory_hits: global().counter(
            "nanoleak_cache_memory_hits_total",
            "Library requests served from the in-RAM memo layer",
        ),
        disk_hits: global().counter(
            "nanoleak_cache_disk_hits_total",
            "Library requests served from the on-disk cache",
        ),
        characterizations: global().counter(
            "nanoleak_cache_characterizations_total",
            "Library requests that ran a full characterization",
        ),
        characterize_seconds: global().histogram(
            "nanoleak_cache_characterize_seconds",
            "Wall time of full library characterizations (cache misses)",
        ),
    })
}

/// Process-wide telemetry of the delta-from-nominal fast path
/// ([`DeltaLibraryProvider`]): how per-die library requests degraded
/// out of the first-order derivation, and how long derivations take.
pub(crate) struct DeltaMetrics {
    /// `nanoleak_mc_fallback_total{reason="tolerance"}` — individual
    /// `(cell, vector)` entries clamped back to a full solve because
    /// the linearization-error estimate exceeded the tolerance.
    pub(crate) fallback_tolerance: Counter,
    /// `nanoleak_mc_fallback_total{reason="unrecognized"}` — whole
    /// dies fully characterized because their perturbation was not a
    /// recognizable delta of the nominal technology.
    pub(crate) fallback_unrecognized: Counter,
    /// `nanoleak_mc_fallback_total{reason="sens-build"}` — fast runs
    /// degraded to the exact path because the traced nominal
    /// characterization itself failed.
    pub(crate) fallback_sens_build: Counter,
    /// Wall time to derive one per-die library from the sensitivities.
    pub(crate) delta_seconds: Histogram,
}

pub(crate) fn delta_metrics() -> &'static DeltaMetrics {
    static METRICS: std::sync::OnceLock<DeltaMetrics> = std::sync::OnceLock::new();
    const FALLBACKS: &str = "nanoleak_mc_fallback_total";
    const FALLBACKS_HELP: &str =
        "Monte-Carlo fast-path fallbacks to full solves, by reason (tolerance = per-entry \
         linearization clamp, unrecognized = whole-die full characterization, sens-build = run \
         degraded to exact)";
    METRICS.get_or_init(|| DeltaMetrics {
        fallback_tolerance: global().counter_with(
            FALLBACKS,
            FALLBACKS_HELP,
            &[("reason", "tolerance")],
        ),
        fallback_unrecognized: global().counter_with(
            FALLBACKS,
            FALLBACKS_HELP,
            &[("reason", "unrecognized")],
        ),
        fallback_sens_build: global().counter_with(
            FALLBACKS,
            FALLBACKS_HELP,
            &[("reason", "sens-build")],
        ),
        delta_seconds: global().histogram(
            "nanoleak_delta_library_seconds",
            "Wall time to derive one per-die library from nominal sensitivities",
        ),
    })
}

/// Bump when the header layout or the serialized library shape
/// changes; old files then re-characterize instead of mis-decoding.
pub const CACHE_FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 4] = b"NLKC";
const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8;

/// How a characterization request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The request was served from process RAM; neither disk I/O nor
    /// solver work ran ([`MemoLibraryCache`] only).
    MemoryHit,
    /// A valid cache file was loaded; no solver work ran.
    Hit,
    /// No cache file existed; the library was characterized and stored.
    Miss,
    /// A cache file existed but was stale or corrupt; the library was
    /// re-characterized and the file replaced.
    Invalidated,
}

/// An on-disk cache of characterized cell libraries.
#[derive(Debug, Clone)]
pub struct LibraryCache {
    dir: PathBuf,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl LibraryCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The default location: `$NANOLEAK_CACHE_DIR` if set, else
    /// `.nanoleak-cache` under the current directory.
    pub fn default_location() -> Self {
        let dir = std::env::var_os("NANOLEAK_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(".nanoleak-cache"));
        Self::new(dir)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The request key: FNV-1a over the serialized (tech, temp,
    /// options) triple. Every field of the technology (device designs
    /// included) participates, so e.g. an oxide-thickness tweak yields
    /// a different key. Delegates to [`CellLibrary::request_key`] —
    /// the same hash keys the cells crate's process-wide memo, so
    /// every cache layer (RAM memo, shared-library memo, `*.nlc`
    /// disk files) agrees on request identity.
    pub fn request_key(tech: &Technology, temp: f64, opts: &CharacterizeOptions) -> u64 {
        CellLibrary::request_key(tech, temp, opts)
    }

    /// The file path backing one request.
    pub fn path_for(&self, tech: &Technology, temp: f64, opts: &CharacterizeOptions) -> PathBuf {
        let key = Self::request_key(tech, temp, opts);
        let name = tech.name.to_lowercase().replace(|c: char| !c.is_alphanumeric(), "-");
        self.dir.join(format!("{name}-v{CACHE_FORMAT_VERSION}-{key:016x}.nlc"))
    }

    /// Loads the cached library for a request, or characterizes and
    /// stores it.
    ///
    /// Returns the library plus how it was obtained; a hit performs no
    /// solver work. Write failures after a successful characterization
    /// surface as [`EngineError::Cache`] (the characterization is not
    /// silently discarded as that would hide a misconfigured cache
    /// directory on every run).
    ///
    /// # Errors
    /// * [`EngineError::Solver`] if characterization fails on a miss;
    /// * [`EngineError::Cache`] if the fresh entry cannot be written.
    pub fn load_or_characterize(
        &self,
        tech: &Technology,
        temp: f64,
        opts: &CharacterizeOptions,
    ) -> Result<(Arc<CellLibrary>, CacheOutcome), EngineError> {
        let path = self.path_for(tech, temp, opts);
        let existed = path.exists();
        if existed {
            if let Some(lib) = self.try_load(&path, tech, temp, opts) {
                return Ok((Arc::new(lib), CacheOutcome::Hit));
            }
        }
        let lib = CellLibrary::characterize(tech, temp, opts)?;
        self.store(&lib)?;
        let outcome = if existed { CacheOutcome::Invalidated } else { CacheOutcome::Miss };
        Ok((Arc::new(lib), outcome))
    }

    /// Writes `lib` into the cache, creating the directory on demand.
    ///
    /// # Errors
    /// [`EngineError::Cache`] on any I/O failure.
    pub fn store(&self, lib: &CellLibrary) -> Result<PathBuf, EngineError> {
        let path = self.path_for(&lib.tech, lib.temp, &lib.options);
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| EngineError::Cache(format!("create {}: {e}", self.dir.display())))?;
        let key = Self::request_key(&lib.tech, lib.temp, &lib.options);
        let payload = serde::to_bytes(lib);

        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&CACHE_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&key.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        // Write-then-rename so a crashed writer never leaves a torn
        // file behind for the next reader. The tmp name carries the
        // pid and a process-unique sequence number: two processes (or
        // two threads racing the same key through MemoLibraryCache)
        // must never interleave writes into one tmp file and rename a
        // spliced payload into place.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "nlc.tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if let Some(msg) = nanoleak_fault::inject("cache-io") {
            let _ = std::fs::remove_file(&tmp);
            return Err(EngineError::Cache(format!("write {}: {msg}", tmp.display())));
        }
        std::fs::write(&tmp, &bytes)
            .map_err(|e| EngineError::Cache(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| EngineError::Cache(format!("rename to {}: {e}", path.display())))?;
        Ok(path)
    }

    /// Attempts to load and fully validate one cache file; any
    /// problem returns `None` (the caller re-characterizes).
    fn try_load(
        &self,
        path: &Path,
        tech: &Technology,
        temp: f64,
        opts: &CharacterizeOptions,
    ) -> Option<CellLibrary> {
        // Chaos hook: an armed `cache-corrupt` failpoint makes every
        // existing entry read as torn, forcing the invalidation path.
        if nanoleak_fault::inject("cache-corrupt").is_some() {
            return None;
        }
        let bytes = std::fs::read(path).ok()?;
        if bytes.len() < HEADER_LEN || &bytes[..4] != MAGIC {
            return None;
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
        if version != CACHE_FORMAT_VERSION {
            return None;
        }
        let key = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
        if key != Self::request_key(tech, temp, opts) {
            return None;
        }
        let len = u64::from_le_bytes(bytes[16..24].try_into().ok()?) as usize;
        let checksum = u64::from_le_bytes(bytes[24..32].try_into().ok()?);
        let payload = &bytes[HEADER_LEN..];
        if payload.len() != len || fnv1a(payload) != checksum {
            return None;
        }
        let lib: CellLibrary = serde::from_bytes(payload).ok()?;
        // Key collisions are astronomically unlikely but cheap to rule
        // out: the decoded request must match the asked-for request.
        if lib.tech != *tech || lib.temp != temp || lib.options != *opts {
            return None;
        }
        Some(lib)
    }
}

/// Counters describing how a [`MemoLibraryCache`] has served requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoCacheStats {
    /// Requests served from process RAM.
    pub memory_hits: u64,
    /// Requests served from a valid `*.nlc` disk file.
    pub disk_hits: u64,
    /// Requests that ran the characterization solver (disk miss or
    /// stale entry, or the disk layer disabled).
    pub characterizations: u64,
}

impl MemoCacheStats {
    /// Total requests observed.
    pub fn requests(&self) -> u64 {
        self.memory_hits + self.disk_hits + self.characterizations
    }

    /// Fraction of requests that avoided solver work (memory + disk
    /// hits); `0.0` before any request.
    pub fn hit_rate(&self) -> f64 {
        let total = self.requests();
        if total == 0 {
            0.0
        } else {
            (self.memory_hits + self.disk_hits) as f64 / total as f64
        }
    }
}

/// An in-memory memoizing layer over the `*.nlc` disk cache.
///
/// A long-lived process (the `nanoleak-serve` front-end, batch
/// condition-grid jobs) asks for the same `(technology, temperature,
/// options)` characterization over and over; paying even the disk
/// decode per request is wasted work. This layer keeps every library
/// the process has seen as a shared [`Arc`] keyed by
/// [`LibraryCache::request_key`], falling through to the disk cache
/// (and from there to the solver) only on first contact. It is the
/// first step toward the ROADMAP's per-(cell, vector) incremental
/// caching.
///
/// Thread-safe: concurrent requests for *different* keys characterize
/// in parallel; concurrent requests for the *same* key may both run
/// the solve (last write wins — both produce identical libraries, so
/// this trades a rare duplicated solve for never serializing distinct
/// requests behind one lock).
///
/// Residency is bounded at [`MAX_RESIDENT_LIBRARIES`] entries (an
/// arbitrary entry is evicted beyond that), so a long-lived server
/// fed adversarially unique `(temp, Vdd)` requests cannot grow RAM
/// without bound — evicted entries fall back to the disk layer.
#[derive(Debug)]
pub struct MemoLibraryCache {
    disk: Option<LibraryCache>,
    entries: Mutex<HashMap<u64, Arc<CellLibrary>>>,
    /// Sensitivity slabs recorded alongside a library by
    /// [`MemoLibraryCache::get_or_characterize_with_sens`], keyed by
    /// the same request key. RAM-only (sensitivities are cheap to
    /// re-record relative to their serialized size) and bounded by the
    /// same residency cap as the library memo.
    sens: Mutex<HashMap<u64, Arc<LibrarySens>>>,
    max_resident: usize,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    characterizations: AtomicU64,
}

/// Default bound on libraries held in RAM by a [`MemoLibraryCache`]
/// (a characterized full-family library is several MB).
pub const MAX_RESIDENT_LIBRARIES: usize = 64;

impl Default for MemoLibraryCache {
    fn default() -> Self {
        Self {
            disk: None,
            entries: Mutex::new(HashMap::new()),
            sens: Mutex::new(HashMap::new()),
            max_resident: MAX_RESIDENT_LIBRARIES,
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            characterizations: AtomicU64::new(0),
        }
    }
}

impl MemoLibraryCache {
    /// A memo layered over `disk`.
    pub fn over(disk: LibraryCache) -> Self {
        Self { disk: Some(disk), ..Self::default() }
    }

    /// A memo with no disk layer (RAM only; misses go straight to the
    /// solver).
    pub fn memory_only() -> Self {
        Self::default()
    }

    /// Overrides the residency bound (`0` is clamped to 1).
    #[must_use]
    pub fn with_max_resident(mut self, max_resident: usize) -> Self {
        self.max_resident = max_resident.max(1);
        self
    }

    /// The disk layer, if one is attached.
    pub fn disk(&self) -> Option<&LibraryCache> {
        self.disk.as_ref()
    }

    /// Returns the characterized library for a request, from RAM if
    /// this process has seen the request before, else through the
    /// disk cache, else by characterizing.
    ///
    /// # Errors
    /// * [`EngineError::Solver`] if characterization fails;
    /// * [`EngineError::Cache`] if a fresh disk entry cannot be
    ///   written (RAM-only requests never return this).
    pub fn get_or_characterize(
        &self,
        tech: &Technology,
        temp: f64,
        opts: &CharacterizeOptions,
    ) -> Result<(Arc<CellLibrary>, CacheOutcome), EngineError> {
        let key = LibraryCache::request_key(tech, temp, opts);
        if let Some(lib) = self.entries.lock().get(&key) {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            cache_metrics().memory_hits.inc();
            return Ok((Arc::clone(lib), CacheOutcome::MemoryHit));
        }
        let started = std::time::Instant::now();
        let _span = nanoleak_obs::span!("library", temp = temp);
        // Chaos hook: `characterize` injects a solver non-convergence
        // on the miss path (memory hits above stay unaffected — an
        // already-resident library cannot fail retroactively).
        if nanoleak_fault::inject("characterize").is_some() {
            return Err(EngineError::Solver(nanoleak_solver::SolverError::NoConvergence {
                iterations: 0,
                residual: f64::INFINITY,
            }));
        }
        let (lib, outcome) = match &self.disk {
            Some(disk) => disk.load_or_characterize(tech, temp, opts)?,
            None => {
                let lib = CellLibrary::characterize(tech, temp, opts)?;
                (Arc::new(lib), CacheOutcome::Miss)
            }
        };
        match outcome {
            CacheOutcome::Hit => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                cache_metrics().disk_hits.inc();
            }
            _ => {
                self.characterizations.fetch_add(1, Ordering::Relaxed);
                cache_metrics().characterizations.inc();
                cache_metrics().characterize_seconds.record_duration(started.elapsed());
            }
        };
        let mut entries = self.entries.lock();
        if entries.len() >= self.max_resident {
            // Arbitrary eviction keeps the bound without LRU
            // bookkeeping; the disk layer (if any) still serves the
            // evicted request without re-solving.
            if let Some(&evict) = entries.keys().next() {
                entries.remove(&evict);
                self.sens.lock().remove(&evict);
            }
        }
        entries.insert(key, Arc::clone(&lib));
        Ok((lib, outcome))
    }

    /// [`MemoLibraryCache::get_or_characterize`] at an
    /// [`OperatingPoint`]: derives the scaled technology through the
    /// shared [`OperatingPoint::tech`] path and characterizes at the
    /// point's temperature. This is the one condition-derivation route
    /// the server's grid and Monte-Carlo jobs use — no caller scales
    /// `vdd` by hand anymore.
    ///
    /// # Errors
    /// As [`MemoLibraryCache::get_or_characterize`].
    pub fn get_or_characterize_at(
        &self,
        base: &Technology,
        op: &OperatingPoint,
        opts: &CharacterizeOptions,
    ) -> Result<(Arc<CellLibrary>, CacheOutcome), EngineError> {
        self.get_or_characterize(&op.tech(base), op.temp, opts)
    }

    /// Returns the characterized library for a request *with* its
    /// per-`(cell, vector)` sensitivity slabs, recalled from RAM when
    /// this process has traced the request before.
    ///
    /// Sensitivities only exist on entries that went through this
    /// method: a library memoized by the plain
    /// [`MemoLibraryCache::get_or_characterize`] path (or recalled
    /// from disk) has no recorded slabs, so the request re-runs the
    /// traced characterization — bit-identical library, now with
    /// sensitivities — and replaces the entry. The traced solve counts
    /// as one characterization in [`MemoLibraryCache::stats`] and is
    /// stored to the disk layer (as a plain library) when one is
    /// attached.
    ///
    /// Chaos: the `char-sensitivity` failpoint injects a solver
    /// failure on the trace path (RAM recalls stay unaffected), so
    /// drills can verify that fast Monte-Carlo runs degrade to the
    /// exact path.
    ///
    /// # Errors
    /// * [`EngineError::Solver`] if the traced characterization fails;
    /// * [`EngineError::Cache`] if a fresh disk entry cannot be
    ///   written.
    pub fn get_or_characterize_with_sens(
        &self,
        tech: &Technology,
        temp: f64,
        opts: &CharacterizeOptions,
    ) -> Result<(Arc<CellLibrary>, Arc<LibrarySens>, CacheOutcome), EngineError> {
        let key = LibraryCache::request_key(tech, temp, opts);
        {
            let entries = self.entries.lock();
            if let (Some(lib), Some(sens)) = (entries.get(&key), self.sens.lock().get(&key)) {
                self.memory_hits.fetch_add(1, Ordering::Relaxed);
                cache_metrics().memory_hits.inc();
                return Ok((Arc::clone(lib), Arc::clone(sens), CacheOutcome::MemoryHit));
            }
        }
        let started = std::time::Instant::now();
        let _span = nanoleak_obs::span!("library-sens", temp = temp);
        if nanoleak_fault::inject("char-sensitivity").is_some() {
            return Err(EngineError::Solver(nanoleak_solver::SolverError::NoConvergence {
                iterations: 0,
                residual: f64::INFINITY,
            }));
        }
        let (lib, sens) = characterize_with_sensitivity(tech, temp, opts)?;
        let (lib, sens) = (Arc::new(lib), Arc::new(sens));
        self.characterizations.fetch_add(1, Ordering::Relaxed);
        cache_metrics().characterizations.inc();
        cache_metrics().characterize_seconds.record_duration(started.elapsed());
        if let Some(disk) = &self.disk {
            disk.store(&lib)?;
        }
        let mut entries = self.entries.lock();
        let mut sens_entries = self.sens.lock();
        if entries.len() >= self.max_resident {
            if let Some(&evict) = entries.keys().next() {
                entries.remove(&evict);
                sens_entries.remove(&evict);
            }
        }
        if sens_entries.len() >= self.max_resident {
            if let Some(&evict) = sens_entries.keys().next() {
                sens_entries.remove(&evict);
            }
        }
        entries.insert(key, Arc::clone(&lib));
        sens_entries.insert(key, Arc::clone(&sens));
        Ok((lib, sens, CacheOutcome::Miss))
    }

    /// Number of libraries currently held in RAM.
    pub fn resident(&self) -> usize {
        self.entries.lock().len()
    }

    /// Snapshot of the request counters.
    pub fn stats(&self) -> MemoCacheStats {
        MemoCacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            characterizations: self.characterizations.load(Ordering::Relaxed),
        }
    }
}

/// The delta-from-nominal library source for fast Monte-Carlo runs,
/// mounted on the RAM memo.
///
/// [`DeltaLibraryProvider::prepare`] characterizes the nominal
/// technology **once** with traced Newton solves (recording
/// per-`(cell, vector)` `∂I/∂Vt`- and `∂I/∂Vdd`-style sensitivity
/// slabs through [`MemoLibraryCache::get_or_characterize_with_sens`]);
/// every perturbed die's library is then *derived* as
/// `nominal + J·Δ` instead of re-solved. A per-entry
/// linearization-error check clamps individual entries back to a full
/// solve when the tolerance is exceeded, and dies whose perturbation
/// is not a recognizable delta of the nominal fall back to the memo's
/// full characterization path.
///
/// Degradations surface in the process-wide metrics registry as
/// `nanoleak_mc_fallback_total{reason="tolerance"|"unrecognized"}`
/// (plus `reason="sens-build"` recorded by
/// [`mc_streaming_mode`](crate::mc_streaming_mode) when `prepare`
/// itself fails), and derivation wall time feeds the
/// `nanoleak_delta_library_seconds` histogram — both visible at the
/// server's `/metrics` endpoint.
pub struct DeltaLibraryProvider<'a> {
    inner: SensDeltaProvider<&'a MemoLibraryCache>,
}

impl<'a> DeltaLibraryProvider<'a> {
    /// Characterizes (or recalls from `memo`) the nominal library with
    /// its sensitivity slabs and mounts the per-die deriver over the
    /// memo; `tol` is the per-entry linearization-error tolerance in
    /// log units ([`nanoleak_cells::DEFAULT_DELTA_TOL`] is the
    /// default-tuned bound).
    ///
    /// # Errors
    /// As [`MemoLibraryCache::get_or_characterize_with_sens`]; callers
    /// running a fast MC degrade to the exact path on failure.
    pub fn prepare(
        memo: &'a MemoLibraryCache,
        tech: &Technology,
        temp: f64,
        opts: &CharacterizeOptions,
        tol: f64,
    ) -> Result<Self, EngineError> {
        let (nominal, sens, _) = memo.get_or_characterize_with_sens(tech, temp, opts)?;
        Ok(Self { inner: SensDeltaProvider { nominal, sens, tol, fallback: memo } })
    }

    /// The nominal library every die derives from.
    pub fn nominal(&self) -> &Arc<CellLibrary> {
        &self.inner.nominal
    }

    /// The per-entry linearization-error tolerance (log units).
    pub fn tol(&self) -> f64 {
        self.inner.tol
    }
}

impl DeltaProvider for DeltaLibraryProvider<'_> {
    fn die_library(
        &self,
        tech: &Technology,
        temp: f64,
        opts: &CharacterizeOptions,
    ) -> Result<(Arc<CellLibrary>, DieDiag), McError> {
        let started = std::time::Instant::now();
        let (lib, diag) = self.inner.die_library(tech, temp, opts)?;
        let metrics = delta_metrics();
        if diag.derived {
            metrics.delta_seconds.record_duration(started.elapsed());
            if diag.fallbacks > 0 {
                metrics.fallback_tolerance.add(u64::from(diag.fallbacks));
            }
        } else {
            metrics.fallback_unrecognized.inc();
        }
        Ok((lib, diag))
    }
}

impl LibraryProvider for DeltaLibraryProvider<'_> {
    fn library(
        &self,
        tech: &Technology,
        temp: f64,
        opts: &CharacterizeOptions,
    ) -> Result<Arc<CellLibrary>, McError> {
        self.die_library(tech, temp, opts).map(|(lib, _)| lib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_cells::CellType;

    fn opts() -> CharacterizeOptions {
        CharacterizeOptions::coarse(&[CellType::Inv])
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nanoleak-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn keys_separate_requests() {
        let tech = Technology::d25();
        let base = LibraryCache::request_key(&tech, 300.0, &opts());
        assert_ne!(base, LibraryCache::request_key(&tech, 310.0, &opts()));
        let wider = CharacterizeOptions { max_loading: 9e-6, ..opts() };
        assert_ne!(base, LibraryCache::request_key(&tech, 300.0, &wider));
        let mut other_tech = tech.clone();
        other_tech.vdd += 0.05;
        assert_ne!(base, LibraryCache::request_key(&other_tech, 300.0, &opts()));
    }

    #[test]
    fn miss_then_hit_round_trips_bit_identically() {
        let tech = Technology::d25();
        let cache = LibraryCache::new(temp_dir("roundtrip"));
        let (first, outcome) = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let (second, outcome) = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(*first, *second, "loaded library equals characterized library");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_payload_invalidates() {
        let tech = Technology::d25();
        let cache = LibraryCache::new(temp_dir("corrupt"));
        let (_, outcome) = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        // Flip one payload byte behind the header.
        let path = cache.path_for(&tech, 300.0, &opts());
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (lib, outcome) = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Invalidated);
        assert!(lib.cell(CellType::Inv).is_some(), "recovered by re-characterizing");
        // And the replacement file is valid again.
        let (_, outcome) = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn truncated_header_invalidates() {
        let tech = Technology::d25();
        let cache = LibraryCache::new(temp_dir("truncated"));
        cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
        let path = cache.path_for(&tech, 300.0, &opts());
        std::fs::write(&path, b"NLKC").unwrap();
        let (_, outcome) = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Invalidated);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn memo_layer_hits_ram_before_disk() {
        let tech = Technology::d25();
        let memo = MemoLibraryCache::over(LibraryCache::new(temp_dir("memo")));
        let (first, outcome) = memo.get_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let (second, outcome) = memo.get_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::MemoryHit);
        assert!(Arc::ptr_eq(&first, &second), "RAM hit shares one allocation");
        // A different temperature is a distinct entry.
        let (_, outcome) = memo.get_or_characterize(&tech, 310.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(memo.resident(), 2);
        let stats = memo.stats();
        assert_eq!(
            (stats.memory_hits, stats.disk_hits, stats.characterizations),
            (1, 0, 2),
            "{stats:?}"
        );
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        // A fresh memo over the same directory hits disk, not RAM.
        let cold =
            MemoLibraryCache::over(LibraryCache::new(memo.disk().unwrap().dir().to_path_buf()));
        let (_, outcome) = cold.get_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(cold.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(memo.disk().unwrap().dir());
    }

    #[test]
    fn residency_is_bounded_with_disk_fallback() {
        let tech = Technology::d25();
        let memo =
            MemoLibraryCache::over(LibraryCache::new(temp_dir("bounded"))).with_max_resident(2);
        for temp in [300.0, 310.0, 320.0] {
            let (_, outcome) = memo.get_or_characterize(&tech, temp, &opts()).unwrap();
            assert_eq!(outcome, CacheOutcome::Miss);
        }
        assert_eq!(memo.resident(), 2, "third insert evicted one entry");
        // Every request still answers correctly; at most one of the
        // three can need the solver again (the evicted one comes back
        // from disk as a Hit).
        for temp in [300.0, 310.0, 320.0] {
            let (lib, outcome) = memo.get_or_characterize(&tech, temp, &opts()).unwrap();
            assert_eq!(lib.temp, temp);
            assert_ne!(outcome, CacheOutcome::Miss, "disk layer serves evictions");
        }
        let _ = std::fs::remove_dir_all(memo.disk().unwrap().dir());
    }

    #[test]
    fn operating_point_requests_share_entries_with_raw_requests() {
        // The same physics asked for two ways — a raw (tech, temp)
        // pair and an OperatingPoint — must name the same memo entry,
        // and distinct points must not collide.
        let base = Technology::d25();
        let memo = MemoLibraryCache::memory_only();
        let op = OperatingPoint::new(300.0, 0.9);
        let (via_op, outcome) = memo.get_or_characterize_at(&base, &op, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let (via_raw, outcome) = memo.get_or_characterize(&op.tech(&base), 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::MemoryHit, "same request, same entry");
        assert!(Arc::ptr_eq(&via_op, &via_raw));
        let hotter = OperatingPoint::new(310.0, 0.9);
        let (_, outcome) = memo.get_or_characterize_at(&base, &hotter, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss, "different point, different entry");
    }

    #[test]
    fn memory_only_memo_characterizes_once() {
        let tech = Technology::d25();
        let memo = MemoLibraryCache::memory_only();
        let (_, outcome) = memo.get_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let (_, outcome) = memo.get_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::MemoryHit);
        assert_eq!(memo.stats().characterizations, 1);
    }

    #[test]
    fn concurrent_same_key_writers_never_tear_the_entry() {
        // Both writers produce identical bytes, but before tmp names
        // were writer-unique they could interleave into one shared
        // `.nlc.tmp` and rename a spliced file into place. Pin that
        // racing stores always leave a loadable entry behind.
        let tech = Technology::d25();
        let cache = LibraryCache::new(temp_dir("race"));
        let lib = CellLibrary::characterize(&tech, 300.0, &opts()).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..8 {
                        cache.store(&lib).unwrap();
                    }
                });
            }
        });
        let (_, outcome) = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit, "entry survived racing writers intact");
        // No tmp litter: every writer renamed (or failed loudly).
        let leftovers: Vec<_> = std::fs::read_dir(cache.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_none_or(|ext| ext != "nlc"))
            .collect();
        assert!(leftovers.is_empty(), "stray tmp files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn option_change_is_a_fresh_miss_not_a_stale_hit() {
        let tech = Technology::d25();
        let cache = LibraryCache::new(temp_dir("options"));
        let (_, outcome) = cache.load_or_characterize(&tech, 300.0, &opts()).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let denser = CharacterizeOptions { points: 5, ..opts() };
        let (lib, outcome) = cache.load_or_characterize(&tech, 300.0, &denser).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss, "different options, different entry");
        assert_eq!(lib.options.points, 5);
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
