//! The parallel pattern-sweep executor.
//!
//! Fans one circuit across N random input patterns (the paper's
//! "100 random vectors" methodology at scale): every pattern is
//! estimated independently on a worker thread, per-pattern results are
//! materialized in pattern-index order, and all statistics are reduced
//! sequentially over that order — so a sweep's output is bit-identical
//! for any thread count.

use std::time::Instant;

use nanoleak_cells::CellLibrary;
use nanoleak_core::{estimate, EstimateError, EstimatorMode};
use nanoleak_device::LeakageBreakdown;
use nanoleak_netlist::{Circuit, Pattern};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::exec::{mix, par_map, resolve_threads};
use crate::stats::ScalarStats;

/// Configuration of one pattern sweep.
///
/// Serializable so job front-ends (the `nanoleak-serve` HTTP API)
/// can carry sweep requests and reproduce them exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Number of random input patterns.
    pub vectors: usize,
    /// Base RNG seed; pattern `i` is drawn from stream `mix(seed, i)`,
    /// so the pattern set is independent of the thread count.
    pub seed: u64,
    /// Worker threads (`0` = all cores, capped at 16).
    pub threads: usize,
    /// Estimator mode for every pattern.
    pub mode: EstimatorMode,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self { vectors: 100, seed: 2005, threads: 0, mode: EstimatorMode::Lut }
    }
}

/// The pattern the sweep evaluates at `index` (public so callers can
/// reproduce any sweep sample exactly).
pub fn pattern_for_index(circuit: &Circuit, seed: u64, index: usize) -> Pattern {
    let mut rng = rand::rngs::StdRng::seed_from_u64(mix(seed, index as u64));
    Pattern::random(circuit, &mut rng)
}

/// An extreme point of the swept input space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtremeVector {
    /// Sweep index of the pattern (reproducible via
    /// [`pattern_for_index`]).
    pub index: usize,
    /// The pattern itself.
    pub pattern: Pattern,
    /// Its circuit-total leakage breakdown.
    pub leakage: LeakageBreakdown,
}

/// Deterministic sweep output: per-component statistics over the
/// pattern space plus the extreme vectors.
///
/// Serializable (like [`SweepConfig`]) so reports can cross process
/// boundaries — notably as `nanoleak-serve` job results — without
/// losing bit-exactness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Number of patterns evaluated.
    pub vectors: usize,
    /// Statistics of total leakage \[A\].
    pub total: ScalarStats,
    /// Statistics of the subthreshold component \[A\].
    pub sub: ScalarStats,
    /// Statistics of the gate-tunneling component \[A\].
    pub gate: ScalarStats,
    /// Statistics of the junction BTBT component \[A\].
    pub btbt: ScalarStats,
    /// The lowest-leakage pattern seen (first index on ties).
    pub min: ExtremeVector,
    /// The highest-leakage pattern seen (first index on ties).
    pub max: ExtremeVector,
}

/// Wall-clock measurements of one sweep run (not deterministic; kept
/// separate from [`SweepStats`] so determinism can be asserted on the
/// stats alone).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepTelemetry {
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock duration of the sweep.
    pub elapsed: std::time::Duration,
    /// Throughput in patterns per second.
    pub patterns_per_sec: f64,
}

/// Result of [`sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Deterministic statistics.
    pub stats: SweepStats,
    /// Wall-clock telemetry.
    pub telemetry: SweepTelemetry,
}

/// Sweeps `config.vectors` random patterns over `circuit` in parallel.
///
/// # Errors
/// The first per-pattern [`EstimateError`], if any (e.g. a cell
/// missing from `library`).
///
/// # Panics
/// Panics if `config.vectors` is zero.
pub fn sweep(
    circuit: &Circuit,
    library: &CellLibrary,
    config: &SweepConfig,
) -> Result<SweepReport, EstimateError> {
    assert!(config.vectors > 0, "sweep needs at least one vector");
    // Clamp exactly like par_map will, so the telemetry reports the
    // worker count actually used, not just the resolved request.
    let threads = resolve_threads(config.threads).min(config.vectors);
    let start = Instant::now();

    let per_pattern: Vec<Result<LeakageBreakdown, EstimateError>> =
        par_map(config.vectors, threads, |i| {
            let pattern = pattern_for_index(circuit, config.seed, i);
            estimate(circuit, library, &pattern, config.mode).map(|r| r.total)
        });
    let mut totals = Vec::with_capacity(config.vectors);
    for r in per_pattern {
        totals.push(r?);
    }

    let elapsed = start.elapsed();
    let series = |f: fn(&LeakageBreakdown) -> f64| -> Vec<f64> { totals.iter().map(f).collect() };
    let total_series = series(LeakageBreakdown::total);

    let extreme = |best_is_less: bool| -> ExtremeVector {
        let mut best = 0usize;
        for (i, &t) in total_series.iter().enumerate().skip(1) {
            if (best_is_less && t < total_series[best]) || (!best_is_less && t > total_series[best])
            {
                best = i;
            }
        }
        ExtremeVector {
            index: best,
            pattern: pattern_for_index(circuit, config.seed, best),
            leakage: totals[best],
        }
    };

    Ok(SweepReport {
        stats: SweepStats {
            vectors: config.vectors,
            total: ScalarStats::of(&total_series),
            sub: ScalarStats::of(&series(|b| b.sub)),
            gate: ScalarStats::of(&series(|b| b.gate)),
            btbt: ScalarStats::of(&series(|b| b.btbt)),
            min: extreme(true),
            max: extreme(false),
        },
        telemetry: SweepTelemetry {
            threads,
            elapsed,
            patterns_per_sec: config.vectors as f64 / elapsed.as_secs_f64().max(1e-9),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_cells::{CellType, CharacterizeOptions};
    use nanoleak_device::Technology;
    use nanoleak_netlist::CircuitBuilder;
    use std::sync::Arc;

    fn library() -> Arc<CellLibrary> {
        CellLibrary::shared_with_options(
            &Technology::d25(),
            300.0,
            &CharacterizeOptions::coarse(&[CellType::Inv, CellType::Nand2]),
        )
    }

    fn small_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("sweep-test");
        let a = b.add_input("a");
        let c = b.add_input("b");
        let d = b.add_input("c");
        let n1 = b.add_gate(CellType::Nand2, &[a, c], "n1");
        let n2 = b.add_gate(CellType::Nand2, &[n1, d], "n2");
        let y = b.add_gate(CellType::Inv, &[n2], "y");
        b.mark_output(y);
        b.build().unwrap()
    }

    #[test]
    fn stats_are_identical_for_any_thread_count() {
        let circuit = small_circuit();
        let lib = library();
        let base = SweepConfig { vectors: 40, seed: 7, threads: 1, ..Default::default() };
        let one = sweep(&circuit, &lib, &base).unwrap();
        for threads in [2, 3, 8] {
            let cfg = SweepConfig { threads, ..base };
            let multi = sweep(&circuit, &lib, &cfg).unwrap();
            assert_eq!(one.stats, multi.stats, "threads = {threads}");
        }
    }

    #[test]
    fn seed_controls_the_pattern_set() {
        let circuit = small_circuit();
        let lib = library();
        let a = sweep(&circuit, &lib, &SweepConfig { vectors: 16, seed: 1, ..Default::default() })
            .unwrap();
        let b = sweep(&circuit, &lib, &SweepConfig { vectors: 16, seed: 2, ..Default::default() })
            .unwrap();
        assert_ne!(a.stats.total, b.stats.total, "different seeds sample differently");
    }

    #[test]
    fn extremes_bound_the_distribution() {
        let circuit = small_circuit();
        let lib = library();
        let r = sweep(&circuit, &lib, &SweepConfig { vectors: 32, ..Default::default() }).unwrap();
        let s = &r.stats;
        assert_eq!(s.min.leakage.total(), s.total.min);
        assert_eq!(s.max.leakage.total(), s.total.max);
        assert!(s.total.min <= s.total.p50 && s.total.p50 <= s.total.max);
        // The extreme patterns reproduce through pattern_for_index.
        assert_eq!(s.min.pattern, pattern_for_index(&circuit, 2005, s.min.index));
    }

    #[test]
    fn missing_cell_surfaces_as_error() {
        let circuit = small_circuit();
        let lib = CellLibrary::shared_with_options(
            &Technology::d25(),
            300.0,
            &CharacterizeOptions::coarse(&[CellType::Inv]),
        );
        let err = sweep(&circuit, &lib, &SweepConfig::default()).unwrap_err();
        assert!(matches!(err, EstimateError::MissingCell(CellType::Nand2)));
    }
}
