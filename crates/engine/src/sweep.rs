//! The parallel pattern-sweep executor.
//!
//! Fans one circuit across N random input patterns (the paper's
//! "100 random vectors" methodology at scale): every pattern is
//! estimated independently on a worker thread, per-pattern results are
//! materialized in pattern-index order, and all statistics are reduced
//! sequentially over that order — so a sweep's output is bit-identical
//! for any thread count.
//!
//! Large sweeps stream: [`sweep_streaming`] executes the pattern space
//! in contiguous index-order shards, yielding a [`SweepShard`] partial
//! (its own [`SweepStats`] over the shard) after each one, and merges
//! shards through a [`SweepMerger`] that concatenates the per-pattern
//! series in index order and runs the *same* sequential reduction the
//! monolithic path uses — so the merged stats are bit-identical to
//! [`sweep`] for any shard size and thread count. The callback also
//! gives callers a cancellation point between shards.

use std::time::Instant;

use nanoleak_cells::CellLibrary;
use nanoleak_core::{resolve_lanes, CompiledEstimator, EstimateError, EstimatorMode, LANES};
use nanoleak_device::LeakageBreakdown;
use nanoleak_netlist::{Circuit, Pattern};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::block::eval_block_timed;
use crate::exec::{mix, par_map_with, resolve_threads};
use crate::stats::ScalarStats;

/// Process-wide sweep telemetry (latency histograms only — never on
/// the per-pattern path, which stays zero-allocation).
struct SweepMetrics {
    compile_seconds: nanoleak_obs::Histogram,
    shard_seconds: nanoleak_obs::Histogram,
}

fn sweep_metrics() -> &'static SweepMetrics {
    static METRICS: std::sync::OnceLock<SweepMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| SweepMetrics {
        compile_seconds: nanoleak_obs::global().histogram(
            "nanoleak_sweep_compile_seconds",
            "Wall time to compile a (circuit, library) estimator plan",
        ),
        shard_seconds: nanoleak_obs::global().histogram(
            "nanoleak_sweep_shard_seconds",
            "Wall time to estimate one sweep shard (all workers)",
        ),
    })
}

/// Configuration of one pattern sweep.
///
/// Serializable so job front-ends (the `nanoleak-serve` HTTP API)
/// can carry sweep requests and reproduce them exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Number of random input patterns.
    pub vectors: usize,
    /// Base RNG seed; pattern `i` is drawn from stream `mix(seed, i)`,
    /// so the pattern set is independent of the thread count.
    pub seed: u64,
    /// Worker threads (`0` = all cores, capped at 16).
    pub threads: usize,
    /// Estimator mode for every pattern.
    pub mode: EstimatorMode,
    /// Evaluation lanes: `0` (auto) and [`LANES`] run the 64-way
    /// word-parallel block kernel; `1` forces the scalar path. Both
    /// produce bit-identical statistics — this is a throughput knob,
    /// never a results knob.
    pub lanes: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self { vectors: 100, seed: 2005, threads: 0, mode: EstimatorMode::Lut, lanes: 0 }
    }
}

/// The pattern the sweep evaluates at `index` (public so callers can
/// reproduce any sweep sample exactly).
pub fn pattern_for_index(circuit: &Circuit, seed: u64, index: usize) -> Pattern {
    let mut rng = rand::rngs::StdRng::seed_from_u64(mix(seed, index as u64));
    Pattern::random(circuit, &mut rng)
}

/// An extreme point of the swept input space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtremeVector {
    /// Sweep index of the pattern (reproducible via
    /// [`pattern_for_index`]).
    pub index: usize,
    /// The pattern itself.
    pub pattern: Pattern,
    /// Its circuit-total leakage breakdown.
    pub leakage: LeakageBreakdown,
}

/// Deterministic sweep output: per-component statistics over the
/// pattern space plus the extreme vectors.
///
/// Serializable (like [`SweepConfig`]) so reports can cross process
/// boundaries — notably as `nanoleak-serve` job results — without
/// losing bit-exactness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Number of patterns evaluated.
    pub vectors: usize,
    /// Statistics of total leakage \[A\].
    pub total: ScalarStats,
    /// Statistics of the subthreshold component \[A\].
    pub sub: ScalarStats,
    /// Statistics of the gate-tunneling component \[A\].
    pub gate: ScalarStats,
    /// Statistics of the junction BTBT component \[A\].
    pub btbt: ScalarStats,
    /// The lowest-leakage pattern seen (first index on ties).
    pub min: ExtremeVector,
    /// The highest-leakage pattern seen (first index on ties).
    pub max: ExtremeVector,
}

/// Wall-clock measurements of one sweep run (not deterministic; kept
/// separate from [`SweepStats`] so determinism can be asserted on the
/// stats alone).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepTelemetry {
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock duration of the sweep.
    pub elapsed: std::time::Duration,
    /// Throughput in patterns per second.
    pub patterns_per_sec: f64,
}

/// Result of [`sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Deterministic statistics.
    pub stats: SweepStats,
    /// Wall-clock telemetry.
    pub telemetry: SweepTelemetry,
}

/// Reduces an index-ordered slice of per-pattern leakage totals into
/// [`SweepStats`]. `start` is the global sweep index of `totals[0]`,
/// so extreme-vector indexes stay reproducible via
/// [`pattern_for_index`] whether the slice is one shard or the whole
/// sweep.
///
/// This is the *single* reduction both the monolithic and the
/// streaming paths run — bit-identity between them is by
/// construction, not by parallel-algebra luck.
fn reduce_stats(
    circuit: &Circuit,
    seed: u64,
    start: usize,
    totals: &[LeakageBreakdown],
) -> SweepStats {
    assert!(!totals.is_empty(), "stats over an empty pattern slice");
    let series = |f: fn(&LeakageBreakdown) -> f64| -> Vec<f64> { totals.iter().map(f).collect() };
    let total_series = series(LeakageBreakdown::total);

    let extreme = |best_is_less: bool| -> ExtremeVector {
        let mut best = 0usize;
        for (i, &t) in total_series.iter().enumerate().skip(1) {
            if (best_is_less && t < total_series[best]) || (!best_is_less && t > total_series[best])
            {
                best = i;
            }
        }
        ExtremeVector {
            index: start + best,
            pattern: pattern_for_index(circuit, seed, start + best),
            leakage: totals[best],
        }
    };

    SweepStats {
        vectors: totals.len(),
        total: ScalarStats::of(&total_series),
        sub: ScalarStats::of(&series(|b| b.sub)),
        gate: ScalarStats::of(&series(|b| b.gate)),
        btbt: ScalarStats::of(&series(|b| b.btbt)),
        min: extreme(true),
        max: extreme(false),
    }
}

/// Estimates the contiguous index range `start .. start + len` in
/// parallel on the compiled plan, returning per-pattern totals in
/// index order.
///
/// With `lanes == 1` every pattern is estimated scalar; otherwise the
/// range tiles into [`LANES`]-pattern blocks evaluated through the
/// word-parallel kernel (only the final block can be partial). Each
/// worker keeps one scratch across its share, and the per-pattern /
/// per-block loops never touch the allocator — per-block results copy
/// out once so the index-ordered series can concatenate. Both paths
/// yield bit-identical totals.
fn estimate_chunk(
    plan: &CompiledEstimator<'_>,
    config: &SweepConfig,
    threads: usize,
    start: usize,
    len: usize,
) -> Result<Vec<LeakageBreakdown>, EstimateError> {
    if resolve_lanes(config.lanes) == 1 {
        let per_pattern: Vec<Result<LeakageBreakdown, EstimateError>> = par_map_with(
            len,
            threads,
            || plan.scratch(),
            |scratch, i| plan.estimate_index_into(scratch, config.seed, start + i, config.mode),
        );
        let mut totals = Vec::with_capacity(len);
        for r in per_pattern {
            totals.push(r?);
        }
        return Ok(totals);
    }
    let blocks = len.div_ceil(LANES);
    let per_block: Vec<Result<Vec<LeakageBreakdown>, EstimateError>> = par_map_with(
        blocks,
        threads,
        || plan.block_scratch(),
        |scratch, b| {
            let off = b * LANES;
            let n = LANES.min(len - off);
            eval_block_timed(plan, scratch, config.seed, start + off, n, config.mode)?;
            Ok(scratch.totals().to_vec())
        },
    );
    let mut totals = Vec::with_capacity(len);
    for r in per_block {
        totals.extend(r?);
    }
    Ok(totals)
}

/// One completed shard of a streaming sweep, yielded to the
/// [`sweep_streaming`] callback as soon as its patterns are done.
///
/// Serializable so job front-ends can page shard partials to clients
/// incrementally (`GET /v1/jobs/{id}/result?shard=K` in
/// `nanoleak-serve`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepShard {
    /// Shard index (0-based, in execution = pattern-index order).
    pub shard: usize,
    /// Total shards the sweep will execute.
    pub shards_total: usize,
    /// Global sweep index of this shard's first pattern.
    pub start: usize,
    /// Patterns in this shard.
    pub vectors: usize,
    /// Statistics over this shard alone. Extreme-vector indexes are
    /// global sweep indexes (reproducible via [`pattern_for_index`]).
    pub stats: SweepStats,
}

/// Number of shards a streaming sweep of `vectors` patterns executes
/// with the given shard size (`0` means one monolithic shard).
pub fn shard_count(vectors: usize, shard_vectors: usize) -> usize {
    if shard_vectors == 0 {
        1
    } else {
        vectors.div_ceil(shard_vectors)
    }
}

/// Merges index-ordered shard series into sweep-wide statistics.
///
/// The merger concatenates per-pattern totals in the order they are
/// pushed and [`SweepMerger::finish`] runs the same sequential
/// index-order reduction the monolithic [`sweep`] uses — so for shards
/// pushed in index order the merged stats are bit-identical to a
/// monolithic sweep of the same seed, for any shard size and thread
/// count. Memory cost is 32 bytes per pattern (the raw
/// [`LeakageBreakdown`] series), i.e. ~32 MB for a 10^6-vector sweep —
/// the price of exactness, bounded and predictable.
#[derive(Debug, Default)]
pub struct SweepMerger {
    totals: Vec<LeakageBreakdown>,
}

impl SweepMerger {
    /// A merger with capacity for `vectors` patterns.
    pub fn with_capacity(vectors: usize) -> Self {
        Self { totals: Vec::with_capacity(vectors) }
    }

    /// Appends one shard's per-pattern totals (must be pushed in
    /// index order). An empty shard is a no-op — merging it can never
    /// panic the percentile reduction or perturb the stats.
    pub fn push(&mut self, shard_totals: &[LeakageBreakdown]) {
        self.totals.extend_from_slice(shard_totals);
    }

    /// Patterns merged so far.
    pub fn vectors(&self) -> usize {
        self.totals.len()
    }

    /// The merged statistics, or `None` if nothing was merged.
    pub fn finish(&self, circuit: &Circuit, seed: u64) -> Option<SweepStats> {
        if self.totals.is_empty() {
            return None;
        }
        Some(reduce_stats(circuit, seed, 0, &self.totals))
    }
}

/// Sweeps `config.vectors` random patterns over `circuit` in parallel.
///
/// # Errors
/// The first per-pattern [`EstimateError`], if any (e.g. a cell
/// missing from `library`).
///
/// # Panics
/// Panics if `config.vectors` is zero.
pub fn sweep(
    circuit: &Circuit,
    library: &CellLibrary,
    config: &SweepConfig,
) -> Result<SweepReport, EstimateError> {
    let report = sweep_streaming(circuit, library, config, 0, |_| true)?;
    Ok(report.expect("monolithic sweep cannot be cancelled"))
}

/// Sweeps `config.vectors` patterns in contiguous shards of
/// `shard_vectors` (`0` = one monolithic shard), calling `on_shard`
/// after each shard completes. The callback returning `false` cancels
/// the sweep (`Ok(None)`); otherwise the merged report is returned,
/// bit-identical to [`sweep`] with the same config.
///
/// Shards execute strictly in index order (each internally parallel
/// across `config.threads`), so partials stream to the caller in the
/// same order the merger consumes them.
///
/// # Errors
/// The first per-pattern [`EstimateError`], if any.
///
/// # Panics
/// Panics if `config.vectors` is zero.
pub fn sweep_streaming(
    circuit: &Circuit,
    library: &CellLibrary,
    config: &SweepConfig,
    shard_vectors: usize,
    mut on_shard: impl FnMut(&SweepShard) -> bool,
) -> Result<Option<SweepReport>, EstimateError> {
    assert!(config.vectors > 0, "sweep needs at least one vector");
    // Clamp exactly like par_map will, so the telemetry reports the
    // worker count actually used, not just the resolved request.
    let threads = resolve_threads(config.threads).min(config.vectors);
    let shards_total = shard_count(config.vectors, shard_vectors);
    let shard_size = if shard_vectors == 0 { config.vectors } else { shard_vectors };
    let start_time = Instant::now();

    // One plan per sweep, shared process-wide via the structural
    // cache — every shard and worker (and any later sweep over an
    // isomorphic netlist) shares the same compile.
    let shared = {
        let _span = nanoleak_obs::span!("compile");
        let compile_start = Instant::now();
        let shared = crate::plan_cache::shared_plan(circuit, library)?;
        // Build the block response tables eagerly so their cost is
        // charged to the compile span, not the first shard (they are
        // cached on the shared plan, so isomorphic re-sweeps skip
        // this too). Only the Lut block path reads them.
        if resolve_lanes(config.lanes) != 1 && config.mode == EstimatorMode::Lut {
            shared.plan().prepare_block();
        }
        sweep_metrics().compile_seconds.record_duration(compile_start.elapsed());
        shared
    };
    let plan = shared.plan();
    // The merger is only fed on multi-shard sweeps — the monolithic
    // path reuses its single shard's stats, so don't reserve
    // vectors-sized backing storage it would never touch.
    let mut merger = if shards_total > 1 {
        SweepMerger::with_capacity(config.vectors)
    } else {
        SweepMerger::default()
    };
    let mut mono_stats = None;
    for shard in 0..shards_total {
        let start = shard * shard_size;
        let len = shard_size.min(config.vectors - start);
        // Chaos hook at the shard boundary (never inside the kernel):
        // a sleep action models a slow shard, an error action a shard
        // whose solve gave up — both leave lane/shard determinism
        // untouched because no per-pattern work has started yet.
        if nanoleak_fault::inject("slow-shard").is_some() {
            return Err(EstimateError::Solver(nanoleak_solver::SolverError::NoConvergence {
                iterations: 0,
                residual: f64::INFINITY,
            }));
        }
        let shard_start = Instant::now();
        let totals = {
            let _span = nanoleak_obs::span!("estimate", shard = shard, vectors = len);
            estimate_chunk(plan, config, threads, start, len)?
        };
        sweep_metrics().shard_seconds.record_duration(shard_start.elapsed());
        let partial = {
            let _span = nanoleak_obs::span!("merge", shard = shard);
            let partial = SweepShard {
                shard,
                shards_total,
                start,
                vectors: len,
                stats: reduce_stats(circuit, config.seed, start, &totals),
            };
            if shards_total > 1 {
                merger.push(&totals);
            }
            partial
        };
        if !on_shard(&partial) {
            return Ok(None);
        }
        if shards_total == 1 {
            // A single shard's partial covers the whole sweep with
            // `start == 0` — the merged reduction would recompute the
            // identical stats over the identical series, so reuse
            // them (this is the monolithic `sweep()` hot path).
            mono_stats = Some(partial.stats);
        }
    }

    let elapsed = start_time.elapsed();
    let stats = match mono_stats {
        Some(stats) => stats,
        None => {
            let _span = nanoleak_obs::span!("merge");
            merger.finish(circuit, config.seed).expect("at least one non-empty shard ran")
        }
    };
    Ok(Some(SweepReport {
        stats,
        telemetry: SweepTelemetry {
            threads,
            elapsed,
            patterns_per_sec: config.vectors as f64 / elapsed.as_secs_f64().max(1e-9),
        },
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_cells::{CellType, CharacterizeOptions};
    use nanoleak_device::Technology;
    use nanoleak_netlist::CircuitBuilder;
    use std::sync::Arc;

    fn library() -> Arc<CellLibrary> {
        CellLibrary::shared_with_options(
            &Technology::d25(),
            300.0,
            &CharacterizeOptions::coarse(&[CellType::Inv, CellType::Nand2]),
        )
    }

    fn small_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("sweep-test");
        let a = b.add_input("a");
        let c = b.add_input("b");
        let d = b.add_input("c");
        let n1 = b.add_gate(CellType::Nand2, &[a, c], "n1");
        let n2 = b.add_gate(CellType::Nand2, &[n1, d], "n2");
        let y = b.add_gate(CellType::Inv, &[n2], "y");
        b.mark_output(y);
        b.build().unwrap()
    }

    #[test]
    fn stats_are_identical_for_any_thread_count() {
        let circuit = small_circuit();
        let lib = library();
        let base = SweepConfig { vectors: 40, seed: 7, threads: 1, ..Default::default() };
        let one = sweep(&circuit, &lib, &base).unwrap();
        for threads in [2, 3, 8] {
            let cfg = SweepConfig { threads, ..base };
            let multi = sweep(&circuit, &lib, &cfg).unwrap();
            assert_eq!(one.stats, multi.stats, "threads = {threads}");
        }
    }

    #[test]
    fn seed_controls_the_pattern_set() {
        let circuit = small_circuit();
        let lib = library();
        let a = sweep(&circuit, &lib, &SweepConfig { vectors: 16, seed: 1, ..Default::default() })
            .unwrap();
        let b = sweep(&circuit, &lib, &SweepConfig { vectors: 16, seed: 2, ..Default::default() })
            .unwrap();
        assert_ne!(a.stats.total, b.stats.total, "different seeds sample differently");
    }

    #[test]
    fn extremes_bound_the_distribution() {
        let circuit = small_circuit();
        let lib = library();
        let r = sweep(&circuit, &lib, &SweepConfig { vectors: 32, ..Default::default() }).unwrap();
        let s = &r.stats;
        assert_eq!(s.min.leakage.total(), s.total.min);
        assert_eq!(s.max.leakage.total(), s.total.max);
        assert!(s.total.min <= s.total.p50 && s.total.p50 <= s.total.max);
        // The extreme patterns reproduce through pattern_for_index.
        assert_eq!(s.min.pattern, pattern_for_index(&circuit, 2005, s.min.index));
    }

    /// The tentpole acceptance: streamed shards merge to exactly the
    /// monolithic result, across shard sizes *and* thread counts.
    #[test]
    fn sharded_sweep_is_bit_identical_to_monolithic() {
        let circuit = small_circuit();
        let lib = library();
        let base = SweepConfig { vectors: 41, seed: 99, threads: 1, ..Default::default() };
        let mono = sweep(&circuit, &lib, &base).unwrap();
        for shard_vectors in [1, 5, 16, 40, 41, 64] {
            for threads in [1, 3] {
                let cfg = SweepConfig { threads, ..base };
                let mut seen_shards = Vec::new();
                let streamed = sweep_streaming(&circuit, &lib, &cfg, shard_vectors, |s| {
                    seen_shards.push((s.shard, s.start, s.vectors));
                    true
                })
                .unwrap()
                .expect("not cancelled");
                assert_eq!(
                    streamed.stats, mono.stats,
                    "shard_vectors = {shard_vectors}, threads = {threads}"
                );
                let expected_shards = shard_count(41, shard_vectors);
                assert_eq!(seen_shards.len(), expected_shards);
                // Shards tile the index space contiguously, in order.
                let mut next = 0;
                for (i, (shard, start, vectors)) in seen_shards.iter().enumerate() {
                    assert_eq!((*shard, *start), (i, next));
                    next += vectors;
                }
                assert_eq!(next, 41, "shards cover every pattern exactly once");
            }
        }
    }

    #[test]
    fn shard_partials_are_self_consistent() {
        let circuit = small_circuit();
        let lib = library();
        let cfg = SweepConfig { vectors: 20, seed: 3, threads: 2, ..Default::default() };
        let mut partials = Vec::new();
        sweep_streaming(&circuit, &lib, &cfg, 8, |s| {
            partials.push(s.clone());
            true
        })
        .unwrap()
        .unwrap();
        assert_eq!(partials.len(), 3, "20 vectors in shards of 8");
        for p in &partials {
            assert_eq!(p.shards_total, 3);
            assert_eq!(p.stats.vectors, p.vectors);
            // Extreme indexes are global and land inside the shard.
            for idx in [p.stats.min.index, p.stats.max.index] {
                assert!(idx >= p.start && idx < p.start + p.vectors, "{idx} in shard {}", p.shard);
            }
            // ... and reproduce through pattern_for_index.
            assert_eq!(p.stats.min.pattern, pattern_for_index(&circuit, 3, p.stats.min.index));
        }
        // A shard's stats equal a standalone sweep over that range
        // seeded the same way (shard 0 starts at index 0).
        let first = sweep(&circuit, &lib, &SweepConfig { vectors: 8, ..cfg }).unwrap();
        assert_eq!(partials[0].stats, first.stats);
    }

    #[test]
    fn streaming_cancel_stops_between_shards() {
        let circuit = small_circuit();
        let lib = library();
        let cfg = SweepConfig { vectors: 30, seed: 1, threads: 1, ..Default::default() };
        let mut seen = 0;
        let out = sweep_streaming(&circuit, &lib, &cfg, 10, |_| {
            seen += 1;
            seen < 2 // cancel after the second shard reports
        })
        .unwrap();
        assert!(out.is_none(), "cancelled sweeps yield no report");
        assert_eq!(seen, 2, "the cancelling callback is the last one invoked");
    }

    #[test]
    fn merger_ignores_empty_shards_and_requires_data() {
        let circuit = small_circuit();
        let lib = library();
        let cfg = SweepConfig { vectors: 6, seed: 12, threads: 1, ..Default::default() };
        let mono = sweep(&circuit, &lib, &cfg).unwrap();

        let plan = CompiledEstimator::compile(&circuit, &lib).unwrap();
        let totals = estimate_chunk(&plan, &cfg, 1, 0, 6).unwrap();
        let mut merger = SweepMerger::default();
        assert!(merger.finish(&circuit, 12).is_none(), "nothing merged yet");
        merger.push(&[]); // empty shard: no-op, must not panic later
        merger.push(&totals[..2]);
        merger.push(&[]);
        merger.push(&totals[2..]);
        assert_eq!(merger.vectors(), 6);
        let merged = merger.finish(&circuit, 12).unwrap();
        assert_eq!(merged, mono.stats, "empty shards do not perturb the merge");
    }

    #[test]
    fn shard_count_tiles_the_space() {
        assert_eq!(shard_count(100, 0), 1, "0 means monolithic");
        assert_eq!(shard_count(100, 100), 1);
        assert_eq!(shard_count(100, 33), 4);
        assert_eq!(shard_count(1, 1000), 1);
    }

    #[test]
    fn missing_cell_surfaces_as_error() {
        let circuit = small_circuit();
        let lib = CellLibrary::shared_with_options(
            &Technology::d25(),
            300.0,
            &CharacterizeOptions::coarse(&[CellType::Inv]),
        );
        let err = sweep(&circuit, &lib, &SweepConfig::default()).unwrap_err();
        assert!(matches!(err, EstimateError::MissingCell(CellType::Nand2)));
    }
}
