//! Process-wide structural plan cache.
//!
//! Compiling a [`CompiledEstimator`](nanoleak_core::CompiledEstimator)
//! flattens the circuit against the characterized library — cheap
//! next to characterization, but pure waste when the same netlist is
//! submitted over and over (a server re-analyzing one design across
//! operating points, a CLI loop, repeated jobs on isomorphic
//! circuits). [`shared_plan`] memoizes compiled plans process-wide,
//! keyed on
//! `(Circuit::structural_key, CellLibrary::request_key)`.
//!
//! ## Why this key is sound
//!
//! A hit hands back a plan compiled for a *different* `Circuit`
//! instance than the one submitted. That is only legitimate because
//! both key halves pin down bit-identical behavior:
//!
//! * [`Circuit::structural_key`] is name-independent but gate-order-
//!   and pin-order-exact, and the estimator's FP reduction runs in
//!   gate-id order — so the cached circuit folds leakage in exactly
//!   the submitted circuit's order;
//! * library contents are a pure deterministic function of the
//!   [`CellLibrary::request_key`] inputs (tech, temperature,
//!   characterization options), so equal keys mean bit-equal LUTs.
//!
//! Monte-Carlo paths deliberately bypass this cache: each die
//! perturbs the technology, producing single-use keys that would just
//! churn residency.
//!
//! Residency is bounded at [`MAX_RESIDENT_PLANS`]; eviction picks an
//! arbitrary entry (same policy as the library memo cache — the
//! working set is tiny and any victim is recompilable). Hit/miss/
//! eviction counters and a residency gauge live in
//! [`nanoleak_obs::global`] as `nanoleak_plan_cache_*`, so they show
//! up on every `/metrics` scrape.

use std::collections::HashMap;
use std::sync::Arc;

use nanoleak_cells::CellLibrary;
use nanoleak_core::{EstimateError, SharedEstimator};
use nanoleak_netlist::Circuit;
use nanoleak_obs::{global, Counter, Gauge, Histogram};
use parking_lot::Mutex;

/// Largest number of compiled plans kept resident.
pub const MAX_RESIDENT_PLANS: usize = 64;

struct PlanCacheMetrics {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    resident: Gauge,
    compile_seconds: Histogram,
}

fn plan_cache_metrics() -> &'static PlanCacheMetrics {
    static METRICS: std::sync::OnceLock<PlanCacheMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| PlanCacheMetrics {
        hits: global().counter(
            "nanoleak_plan_cache_hits_total",
            "Plan requests served from the structural plan cache",
        ),
        misses: global().counter(
            "nanoleak_plan_cache_misses_total",
            "Plan requests that compiled a fresh estimator plan",
        ),
        evictions: global().counter(
            "nanoleak_plan_cache_evictions_total",
            "Plans evicted to hold the residency bound",
        ),
        resident: global().gauge(
            "nanoleak_plan_cache_resident",
            "Compiled plans currently resident in the structural cache",
        ),
        compile_seconds: global().histogram(
            "nanoleak_plan_cache_compile_seconds",
            "Wall time of plan compilations (structural cache misses)",
        ),
    })
}

type Key = (u64, u64);

fn cache() -> &'static Mutex<HashMap<Key, Arc<SharedEstimator>>> {
    static CACHE: std::sync::OnceLock<Mutex<HashMap<Key, Arc<SharedEstimator>>>> =
        std::sync::OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The cache key for a (circuit, library) pair.
pub fn plan_key(circuit: &Circuit, library: &CellLibrary) -> Key {
    (
        circuit.structural_key(),
        CellLibrary::request_key(&library.tech, library.temp, &library.options),
    )
}

/// Returns the process-wide shared plan for `circuit` × `library`,
/// compiling (and caching) it on first sight of this structural key.
///
/// The returned plan may be backed by clones of earlier, structurally
/// identical arguments; by key construction (see module docs) every
/// estimate through it is bit-identical to a fresh local compile.
///
/// # Errors
/// Propagates compile failures ([`EstimateError::MissingCell`]);
/// nothing is cached on error.
pub fn shared_plan(
    circuit: &Circuit,
    library: &CellLibrary,
) -> Result<Arc<SharedEstimator>, EstimateError> {
    let metrics = plan_cache_metrics();
    let key = plan_key(circuit, library);
    if let Some(hit) = cache().lock().get(&key) {
        metrics.hits.inc();
        return Ok(Arc::clone(hit));
    }
    // Compile outside the lock; misses are rare enough that cloning
    // the circuit and library into co-owning Arcs is noise next to
    // the compile itself.
    metrics.misses.inc();
    let start = std::time::Instant::now();
    let fresh =
        Arc::new(SharedEstimator::new(Arc::new(circuit.clone()), Arc::new(library.clone()))?);
    metrics.compile_seconds.record_duration(start.elapsed());
    let mut map = cache().lock();
    if !map.contains_key(&key) && map.len() >= MAX_RESIDENT_PLANS {
        if let Some(&victim) = map.keys().next() {
            map.remove(&victim);
            metrics.evictions.inc();
        }
    }
    // A racing caller may have inserted first; keep the incumbent so
    // every holder shares one plan.
    let plan = Arc::clone(map.entry(key).or_insert(fresh));
    metrics.resident.set(map.len() as i64);
    Ok(plan)
}

/// Drops every resident plan (benchmarks use this to measure cold
/// compiles; never required for correctness).
pub fn clear() {
    let mut map = cache().lock();
    map.clear();
    plan_cache_metrics().resident.set(0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_cells::{CellType, CharacterizeOptions};
    use nanoleak_core::EstimatorMode;
    use nanoleak_device::Technology;
    use nanoleak_netlist::generate::{random_circuit, RandomCircuitSpec};
    use nanoleak_netlist::normalize::normalize;
    use nanoleak_netlist::{CircuitBuilder, Pattern};
    use rand::SeedableRng;

    fn library() -> Arc<CellLibrary> {
        CellLibrary::shared_with_options(
            &Technology::d25(),
            300.0,
            &CharacterizeOptions::coarse(&CellType::ALL),
        )
    }

    #[test]
    fn isomorphic_circuits_share_one_plan() {
        fn build(names: [&str; 3]) -> Circuit {
            let mut b = CircuitBuilder::new(names[0]);
            let a = b.add_input(names[1]);
            let y = b.add_gate(CellType::Inv, &[a], names[2]);
            b.mark_output(y);
            b.build().unwrap()
        }
        let lib = library();
        let c1 = build(["one", "a", "y"]);
        let c2 = build(["two", "p", "q"]);
        let p1 = shared_plan(&c1, &lib).unwrap();
        let p2 = shared_plan(&c2, &lib).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "isomorphic circuits hit the same plan");

        // And the shared plan is bit-identical to a local compile for
        // the second circuit.
        let pattern = Pattern { pi: vec![true], states: vec![] };
        let local = nanoleak_core::CompiledEstimator::compile(&c2, &lib).unwrap();
        let mut ls = local.scratch();
        let want = local.estimate_into(&mut ls, &pattern, EstimatorMode::Lut).unwrap();
        let mut ss = p2.plan().scratch();
        let got = p2.plan().estimate_into(&mut ss, &pattern, EstimatorMode::Lut).unwrap();
        assert_eq!(got.total().to_bits(), want.total().to_bits());
    }

    #[test]
    fn distinct_structures_get_distinct_plans() {
        let lib = library();
        let raw1 = random_circuit(&RandomCircuitSpec::new("pc1", 4, 2, 20, 0, 5));
        let raw2 = random_circuit(&RandomCircuitSpec::new("pc2", 4, 2, 21, 0, 6));
        let c1 = normalize(&raw1).unwrap();
        let c2 = normalize(&raw2).unwrap();
        let p1 = shared_plan(&c1, &lib).unwrap();
        let p2 = shared_plan(&c2, &lib).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p2));
        // Same circuit, different operating point: different key too.
        let hot = CellLibrary::shared_with_options(
            &Technology::d25(),
            360.0,
            &CharacterizeOptions::coarse(&CellType::ALL),
        );
        let p3 = shared_plan(&c1, &hot).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p3));
    }

    #[test]
    fn shared_plan_streams_match_compiled_streams() {
        let lib = library();
        let raw = random_circuit(&RandomCircuitSpec::new("pc3", 6, 3, 40, 2, 77));
        let circuit = normalize(&raw).unwrap();
        let shared = shared_plan(&circuit, &lib).unwrap();
        let local = nanoleak_core::CompiledEstimator::compile(&circuit, &lib).unwrap();
        let mut ss = shared.plan().scratch();
        let mut ls = local.scratch();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..8 {
            let p = Pattern::random(&circuit, &mut rng);
            let a = shared.plan().estimate_into(&mut ss, &p, EstimatorMode::Lut).unwrap();
            let b = local.estimate_into(&mut ls, &p, EstimatorMode::Lut).unwrap();
            assert_eq!(a.total().to_bits(), b.total().to_bits());
        }
    }
}
