//! Deterministic parallel execution primitives.
//!
//! The engine's contract is that every result is **bit-identical for
//! any thread count**. Two rules make that hold:
//!
//! 1. anything random is derived per *work item* from the base seed
//!    with [`mix`] (SplitMix64), never from a shared RNG stream;
//! 2. per-item outputs are materialized in item order and every
//!    floating-point reduction runs sequentially over that order —
//!    threads only compute, they never reduce.

/// SplitMix64: decorrelates per-item seeds from a base seed.
///
/// The same mixer `nanoleak-variation` uses for Monte-Carlo sample
/// streams, so engine sweeps and MC runs share one seeding discipline.
pub fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9e3779b97f4a7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Resolves a requested worker count: `0` means "all cores" (capped
/// at 16); anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16)
    } else {
        requested
    }
}

/// Maps `f` over `0..n` on up to `threads` workers, returning results
/// in index order.
///
/// Work is split into contiguous index chunks, one per worker; chunk
/// outputs are concatenated in chunk order, so the returned vector is
/// identical to `(0..n).map(f).collect()` regardless of `threads`.
///
/// # Panics
/// Propagates panics from `f`.
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(n);
                scope.spawn(move || (start..end).map(f).collect::<Vec<T>>())
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("engine worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_streams_do_not_collide_trivially() {
        let a: Vec<u64> = (0..64).map(|i| mix(2005, i)).collect();
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len(), "no duplicates in the first 64 streams");
        assert_ne!(mix(2005, 0), mix(2006, 0), "seed changes the stream");
    }

    #[test]
    fn par_map_preserves_index_order_for_any_thread_count() {
        let expect: Vec<usize> = (0..103).map(|i| i * i).collect();
        for threads in [1, 2, 3, 7, 16, 64] {
            assert_eq!(par_map(103, threads, |i| i * i), expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_degenerate_sizes() {
        assert_eq!(par_map(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn requested_threads_are_honored() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }
}
