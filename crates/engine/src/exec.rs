//! Deterministic parallel execution primitives.
//!
//! These historically lived in the engine; PR 4 moved them down into
//! [`nanoleak_core::exec`] so the estimator's own batch entry points
//! (`estimate_batch`, the compiled plan's sweep hook) share one
//! threading and seeding discipline with the engine. This module
//! re-exports them unchanged — engine-internal and downstream paths
//! (`nanoleak_engine::exec::par_map`, ...) keep working.

pub use nanoleak_core::exec::{mix, par_map, par_map_with, resolve_threads};
