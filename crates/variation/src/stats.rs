//! Sample statistics and histograms for Monte-Carlo results.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Sample count.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Stats {
    /// Computes statistics of `xs`.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "stats of empty sample");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self { n, mean, std: var.sqrt(), min, max }
    }

    /// Coefficient of variation `std / mean`.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean
        }
    }
}

/// A fixed-width histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Left edge of the first bin.
    pub lo: f64,
    /// Right edge of the last bin.
    pub hi: f64,
    /// Per-bin occurrence counts.
    pub counts: Vec<usize>,
    /// Samples below `lo` / above `hi`.
    pub outliers: usize,
}

impl Histogram {
    /// Builds a histogram of `xs` with `bins` equal bins over
    /// `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn of(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "empty histogram range");
        let mut counts = vec![0usize; bins];
        let mut outliers = 0usize;
        let w = (hi - lo) / bins as f64;
        for &x in xs {
            if x < lo || x >= hi {
                outliers += 1;
                continue;
            }
            let k = ((x - lo) / w) as usize;
            counts[k.min(bins - 1)] += 1;
        }
        Self { lo, hi, counts, outliers }
    }

    /// Centers of the bins.
    pub fn centers(&self) -> Vec<f64> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (0..self.counts.len()).map(|i| self.lo + w * (i as f64 + 0.5)).collect()
    }

    /// The most-occupied bin's center (mode estimate).
    pub fn mode_center(&self) -> f64 {
        let (i, _) =
            self.counts.iter().enumerate().max_by_key(|(_, &c)| c).expect("at least one bin");
        self.centers()[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_sample() {
        let s = Stats::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.cv() - s.std / 5.0).abs() < 1e-15);
    }

    #[test]
    fn single_sample_has_zero_std() {
        let s = Stats::of(&[3.0]);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        Stats::of(&[]);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let h = Histogram::of(&[0.1, 0.2, 0.55, 0.9, -1.0, 2.0], 0.0, 1.0, 4);
        assert_eq!(h.counts, vec![2, 0, 1, 1]);
        assert_eq!(h.outliers, 2);
        assert_eq!(h.centers().len(), 4);
        assert!((h.mode_center() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn histogram_total_preserved() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let h = Histogram::of(&xs, 0.0, 1.0, 10);
        assert_eq!(h.counts.iter().sum::<usize>() + h.outliers, xs.len());
    }
}
