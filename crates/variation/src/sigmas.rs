//! Variation magnitudes and Gaussian perturbation sampling.

use nanoleak_device::consts::NM;
use nanoleak_device::Perturbation;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Standard deviations of the varying process parameters, split into
/// inter-die (shared by all devices of a sample) and intra-die
/// (independent per device) parts as in the paper's Section 5.3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationSigmas {
    /// Channel length sigma \[m\] (intra-die).
    pub l: f64,
    /// Oxide thickness sigma \[m\] (intra-die).
    pub tox: f64,
    /// Supply voltage sigma \[V\] (inter-die).
    pub vdd: f64,
    /// Threshold-voltage sigma, inter-die component \[V\].
    pub vt_inter: f64,
    /// Threshold-voltage sigma, intra-die component \[V\].
    pub vt_intra: f64,
}

impl VariationSigmas {
    /// The paper's Fig. 10/11 nominal corner: sigma_L = 2 nm,
    /// sigma_Tox = 0.67 Angstrom, sigma_VDD = 33.3 mV,
    /// sigma_Vt = 30 mV inter and intra.
    ///
    /// (The paper's caption prints sigma_VDD = 333 mV, which would be
    /// 37% of VDD; we use a tenth of that — see EXPERIMENTS.md.)
    pub fn paper_nominal() -> Self {
        Self { l: 2.0 * NM, tox: 0.067 * NM, vdd: 33.3e-3, vt_inter: 30e-3, vt_intra: 30e-3 }
    }

    /// Checks the magnitudes are physical: every sigma finite and
    /// non-negative, voltage sigmas at most 1 V and geometry sigmas at
    /// most 100 nm — generous bounds that still reject the NaN /
    /// 1e308 garbage a request or flag could smuggle into the
    /// perturbation model (where it would poison every draw).
    ///
    /// # Errors
    /// A human-readable description of the offending field.
    pub fn validate(&self) -> Result<(), String> {
        let volts = [("vt_inter", self.vt_inter), ("vt_intra", self.vt_intra), ("vdd", self.vdd)];
        for (name, v) in volts {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(format!("sigma {name} must be within 0..=1 V, got {v}"));
            }
        }
        for (name, v) in [("l", self.l), ("tox", self.tox)] {
            if !(v.is_finite() && (0.0..=100.0 * NM).contains(&v)) {
                return Err(format!("sigma {name} must be within 0..=100 nm, got {v}"));
            }
        }
        Ok(())
    }

    /// Returns a copy with a different inter-die Vt sigma (the Fig. 11
    /// sweep variable).
    #[must_use]
    pub fn with_vt_inter(mut self, sigma: f64) -> Self {
        self.vt_inter = sigma;
        self
    }

    /// Returns a copy with a different intra-die Vt sigma.
    #[must_use]
    pub fn with_vt_intra(mut self, sigma: f64) -> Self {
        self.vt_intra = sigma;
        self
    }

    /// Samples the inter-die (per-sample, shared) perturbation.
    pub fn sample_inter<R: Rng + ?Sized>(&self, rng: &mut R) -> Perturbation {
        Perturbation {
            dl: 0.0,
            dtox: 0.0,
            dvth: self.vt_inter * gaussian(rng),
            dvdd: self.vdd * gaussian(rng),
        }
    }

    /// Samples the intra-die (per-device) perturbation.
    pub fn sample_intra<R: Rng + ?Sized>(&self, rng: &mut R) -> Perturbation {
        Perturbation {
            dl: self.l * gaussian(rng),
            dtox: self.tox * gaussian(rng),
            dvth: self.vt_intra * gaussian(rng),
            dvdd: 0.0,
        }
    }
}

/// Standard normal variate via Box–Muller (the offline `rand` has no
/// normal distribution without `rand_distr`).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..20000).map(|_| gaussian(&mut rng)).collect();
        let s = Stats::of(&xs);
        assert!(s.mean.abs() < 0.03, "mean = {}", s.mean);
        assert!((s.std - 1.0).abs() < 0.03, "std = {}", s.std);
    }

    #[test]
    fn inter_and_intra_touch_different_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = VariationSigmas::paper_nominal();
        let inter = s.sample_inter(&mut rng);
        assert_eq!(inter.dl, 0.0);
        assert_eq!(inter.dtox, 0.0);
        let intra = s.sample_intra(&mut rng);
        assert_eq!(intra.dvdd, 0.0);
        assert!(intra.dl.abs() > 0.0);
    }

    #[test]
    fn sampled_sigmas_scale() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let s = VariationSigmas::paper_nominal().with_vt_inter(50e-3);
        let xs: Vec<f64> = (0..5000).map(|_| s.sample_inter(&mut rng).dvth).collect();
        let st = Stats::of(&xs);
        assert!((st.std - 50e-3).abs() < 3e-3, "std = {}", st.std);
    }

    #[test]
    fn validation_rejects_nonphysical_sigmas() {
        assert!(VariationSigmas::paper_nominal().validate().is_ok());
        let bad = VariationSigmas::paper_nominal().with_vt_inter(f64::NAN);
        assert!(bad.validate().unwrap_err().contains("vt_inter"));
        let bad = VariationSigmas::paper_nominal().with_vt_intra(-0.01);
        assert!(bad.validate().unwrap_err().contains("vt_intra"));
        let bad = VariationSigmas { l: 1e-3, ..VariationSigmas::paper_nominal() };
        assert!(bad.validate().unwrap_err().contains("100 nm"));
        let bad = VariationSigmas { vdd: 2.0, ..VariationSigmas::paper_nominal() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn builders_change_only_their_field() {
        let base = VariationSigmas::paper_nominal();
        let a = base.with_vt_inter(0.05);
        assert_eq!(a.vt_intra, base.vt_intra);
        assert_eq!(a.vt_inter, 0.05);
        let b = base.with_vt_intra(0.09);
        assert_eq!(b.vt_inter, base.vt_inter);
        assert_eq!(b.vt_intra, 0.09);
    }
}
