//! # nanoleak-variation
//!
//! Monte-Carlo process-variation engine for the *nanoleak*
//! reproduction of the DATE 2005 loading-effect paper (Section 5.3,
//! Figs. 10–11).
//!
//! Random variation of channel length, oxide thickness, threshold
//! voltage and supply voltage is applied to every transistor
//! (inter-die + intra-die split), and the paired loaded/unloaded
//! inverter fixtures are solved at transistor level. Because geometry
//! deltas re-derive *all* electrical parameters
//! ([`nanoleak_device::DeviceDesign::derive`]), subthreshold leakage
//! reacts far more violently than the other components — which is why
//! loading, acting chiefly on subthreshold leakage, widens the total
//! leakage distribution (the paper's >40% std increase at
//! sigma_Vt = 50 mV).
//!
//! Two workloads share the sampling discipline:
//!
//! * [`run_inverter_mc`] — the paper's paired inverter fixture, solved
//!   at transistor level with full per-device intra-die resolution
//!   (Figs. 10–11);
//! * [`run_circuit_mc`] — the same question at circuit scale: each
//!   sample derives a perturbed [`Technology`](nanoleak_device::Technology)
//!   (die-wide draw), characterizes it through a pluggable
//!   [`LibraryProvider`], and estimates the whole circuit with and
//!   without loading on a compiled plan. Bit-identical for any thread
//!   count or shard split (see [`circuit`]).
//!
//! ## Example
//!
//! ```no_run
//! use nanoleak_device::Technology;
//! use nanoleak_variation::{run_inverter_mc, McConfig};
//!
//! let tech = Technology::d25();
//! let result = run_inverter_mc(&tech, &McConfig { samples: 1000, ..Default::default() })?;
//! println!("loading shifts the leakage mean by {:.1}% and the spread by {:.1}%",
//!          100.0 * result.mean_shift(), 100.0 * result.std_shift());
//! # Ok::<(), nanoleak_solver::SolverError>(())
//! ```

pub mod circuit;
pub mod mc;
pub mod sigmas;
pub mod stats;

pub use circuit::{
    char_opts_for, run_circuit_mc, run_circuit_mc_range, run_circuit_mc_range_fast, summarize,
    CircuitMcConfig, CircuitMcResult, DeltaProvider, DieDiag, FastMcDiag, FastMcReport,
    LibraryProvider, McError, McSummary, SensDeltaProvider, SeriesSummary, SolverProvider,
    DEFAULT_HIST_BINS, TABLE_AMORTIZE_VECTORS,
};
pub use mc::{run_inverter_mc, series_of, stats_of, McConfig, McResult, McSample, Series};
pub use sigmas::{gaussian, VariationSigmas};
pub use stats::{Histogram, Stats};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Sampled perturbations stay within ~6 sigma and never produce
        /// non-physical derived devices.
        #[test]
        fn perturbations_stay_physical(seed in any::<u64>()) {
            use nanoleak_device::{DeviceDesign, MosKind};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let s = VariationSigmas::paper_nominal();
            let base = DeviceDesign::nano25(MosKind::Nmos);
            for _ in 0..16 {
                let p = s.sample_inter(&mut rng).combined(&s.sample_intra(&mut rng));
                let d = p.apply(&base);
                let params = d.derive();
                prop_assert!(params.vth0.is_finite());
                prop_assert!(params.eta > 0.0 && params.eta < 1.0);
                prop_assert!(d.geometry.l > 0.0 && d.geometry.tox > 0.0);
            }
        }

        /// Histogram bookkeeping never loses samples.
        #[test]
        fn histogram_conserves_mass(xs in proptest::collection::vec(-10.0f64..10.0, 1..200)) {
            let h = Histogram::of(&xs, -5.0, 5.0, 16);
            prop_assert_eq!(h.counts.iter().sum::<usize>() + h.outliers, xs.len());
        }
    }

    /// The workload's determinism contract, property-tested: for any
    /// seed, any thread count, and any shard split, the circuit MC
    /// reproduces the same sample set and summary bit-for-bit.
    mod circuit_determinism {
        use super::*;
        use crate::circuit::{
            char_opts_for, run_circuit_mc, run_circuit_mc_range, summarize, CircuitMcConfig,
            SolverProvider,
        };
        use nanoleak_cells::CellType;
        use nanoleak_device::Technology;
        use nanoleak_netlist::{Circuit, CircuitBuilder};

        fn chain() -> Circuit {
            let mut b = CircuitBuilder::new("prop-chain");
            let a = b.add_input("a");
            let m = b.add_gate(CellType::Inv, &[a], "m");
            let y = b.add_gate(CellType::Inv, &[m], "y");
            b.mark_output(y);
            b.build().unwrap()
        }

        fn config(seed: u64) -> CircuitMcConfig {
            CircuitMcConfig {
                samples: 3,
                seed,
                vectors: 1,
                char_opts: char_opts_for(&chain(), true),
                ..Default::default()
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            /// Stats are invariant across thread counts and shard
            /// splits, and the same seed reproduces the same samples.
            #[test]
            fn threads_and_shards_never_move_a_bit(
                seed in any::<u64>(),
                threads in 1usize..5,
                split in 1usize..3,
            ) {
                let circuit = chain();
                let tech = Technology::d25();
                let reference = run_circuit_mc(
                    &circuit,
                    &tech,
                    &SolverProvider,
                    &CircuitMcConfig { threads: 1, ..config(seed) },
                )
                .unwrap();
                // Thread-count invariance.
                let multi = run_circuit_mc(
                    &circuit,
                    &tech,
                    &SolverProvider,
                    &CircuitMcConfig { threads, ..config(seed) },
                )
                .unwrap();
                prop_assert_eq!(&multi.samples, &reference.samples);
                // Shard invariance: split at `split`, concatenate.
                let cfg = config(seed);
                let mut sharded =
                    run_circuit_mc_range(&circuit, &tech, &SolverProvider, &cfg, 0, split)
                        .unwrap();
                sharded.extend(
                    run_circuit_mc_range(&circuit, &tech, &SolverProvider, &cfg, split, 3 - split)
                        .unwrap(),
                );
                prop_assert_eq!(&sharded, &reference.samples);
                prop_assert_eq!(summarize(&sharded, 8), reference.summary(8));
                // Same seed, same set (fresh run, fresh provider).
                let again =
                    run_circuit_mc(&circuit, &tech, &SolverProvider, &config(seed)).unwrap();
                prop_assert_eq!(again.samples, reference.samples);
            }
        }
    }

    /// The delta-from-nominal fast path holds the same determinism
    /// contract as the exact path: for any seed, fast samples are
    /// bit-identical across thread counts, shard splits, and lane
    /// settings (scalar vs 64-lane block kernel) — and they track the
    /// exact path within the linearization tolerance.
    mod fast_determinism {
        use super::*;
        use crate::circuit::{
            char_opts_for, run_circuit_mc_range, run_circuit_mc_range_fast, CircuitMcConfig,
            SensDeltaProvider, SolverProvider,
        };
        use nanoleak_cells::{characterize_with_sensitivity, CellType, DEFAULT_DELTA_TOL};
        use nanoleak_core::LANES;
        use nanoleak_device::Technology;
        use nanoleak_netlist::{Circuit, CircuitBuilder};
        use std::sync::{Arc, OnceLock};

        fn chain() -> Circuit {
            let mut b = CircuitBuilder::new("fast-prop-chain");
            let a = b.add_input("a");
            let m = b.add_gate(CellType::Inv, &[a], "m");
            let y = b.add_gate(CellType::Inv, &[m], "y");
            b.mark_output(y);
            b.build().unwrap()
        }

        fn config(seed: u64) -> CircuitMcConfig {
            CircuitMcConfig {
                samples: 3,
                seed,
                vectors: 2,
                char_opts: char_opts_for(&chain(), true),
                ..Default::default()
            }
        }

        /// One traced nominal characterization shared by every case
        /// (the sensitivities depend only on the nominal request, not
        /// on the per-case seed).
        fn provider() -> &'static SensDeltaProvider<SolverProvider> {
            static PROVIDER: OnceLock<SensDeltaProvider<SolverProvider>> = OnceLock::new();
            PROVIDER.get_or_init(|| {
                let cfg = config(0);
                let nominal_tech = cfg.op.tech(&Technology::d25());
                let (lib, sens) =
                    characterize_with_sensitivity(&nominal_tech, cfg.op.temp, &cfg.char_opts)
                        .unwrap();
                SensDeltaProvider {
                    nominal: Arc::new(lib),
                    sens: Arc::new(sens),
                    tol: DEFAULT_DELTA_TOL,
                    fallback: SolverProvider,
                }
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]

            #[test]
            fn fast_samples_never_move_a_bit(
                seed in any::<u64>(),
                threads in 1usize..4,
                split in 1usize..3,
            ) {
                let circuit = chain();
                let tech = Technology::d25();
                let cfg = config(seed);
                let p = provider();
                let scalar = CircuitMcConfig { threads: 1, lanes: 1, ..cfg.clone() };
                let (reference, ref_diag) =
                    run_circuit_mc_range_fast(&circuit, &tech, p, &scalar, 0, 3).unwrap();
                // Thread-count and lane invariance (1 = per-pattern
                // scalar path, LANES = 64-lane block kernel).
                for lanes in [1usize, LANES] {
                    let cfg = CircuitMcConfig { threads, lanes, ..cfg.clone() };
                    let (again, diag) =
                        run_circuit_mc_range_fast(&circuit, &tech, p, &cfg, 0, 3).unwrap();
                    prop_assert_eq!(&again, &reference, "lanes = {}", lanes);
                    prop_assert_eq!(diag, ref_diag);
                }
                // Shard invariance: split, concatenate, merge diags.
                let (mut sharded, mut diag) =
                    run_circuit_mc_range_fast(&circuit, &tech, p, &cfg, 0, split).unwrap();
                let (rest, rest_diag) =
                    run_circuit_mc_range_fast(&circuit, &tech, p, &cfg, split, 3 - split).unwrap();
                sharded.extend(rest);
                diag.merge(&rest_diag);
                prop_assert_eq!(&sharded, &reference);
                prop_assert_eq!(diag, ref_diag);
                // Every die derived (paper-nominal draws sit well
                // inside the linearization tolerance)...
                prop_assert_eq!(ref_diag.dies_derived, 3, "{:?}", ref_diag);
                // ...and the exact path — untouched by the fast-path
                // refactor — stays within tolerance of it.
                let exact =
                    run_circuit_mc_range(&circuit, &tech, &SolverProvider, &cfg, 0, 3).unwrap();
                for (f, e) in reference.iter().zip(&exact) {
                    let (ft, et) = (f.loaded.total(), e.loaded.total());
                    prop_assert!(((ft - et) / et).abs() < 0.25, "fast {ft} vs exact {et}");
                }
            }
        }
    }

    /// The inverter fixture holds the same contract after its port to
    /// the shared exec/OperatingPoint plumbing.
    mod fixture_determinism {
        use super::*;
        use nanoleak_device::Technology;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[test]
            fn inverter_mc_reproduces_across_threads(seed in any::<u64>()) {
                let tech = Technology::d25();
                let base = McConfig { samples: 6, seed, threads: 1, ..Default::default() };
                let one = run_inverter_mc(&tech, &base).unwrap();
                let multi = run_inverter_mc(
                    &tech,
                    &McConfig { threads: 3, ..base },
                )
                .unwrap();
                prop_assert_eq!(one.samples, multi.samples);
            }
        }
    }
}
