//! # nanoleak-variation
//!
//! Monte-Carlo process-variation engine for the *nanoleak*
//! reproduction of the DATE 2005 loading-effect paper (Section 5.3,
//! Figs. 10–11).
//!
//! Random variation of channel length, oxide thickness, threshold
//! voltage and supply voltage is applied to every transistor
//! (inter-die + intra-die split), and the paired loaded/unloaded
//! inverter fixtures are solved at transistor level. Because geometry
//! deltas re-derive *all* electrical parameters
//! ([`nanoleak_device::DeviceDesign::derive`]), subthreshold leakage
//! reacts far more violently than the other components — which is why
//! loading, acting chiefly on subthreshold leakage, widens the total
//! leakage distribution (the paper's >40% std increase at
//! sigma_Vt = 50 mV).
//!
//! ## Example
//!
//! ```no_run
//! use nanoleak_device::Technology;
//! use nanoleak_variation::{run_inverter_mc, McConfig};
//!
//! let tech = Technology::d25();
//! let result = run_inverter_mc(&tech, &McConfig { samples: 1000, ..Default::default() })?;
//! println!("loading shifts the leakage mean by {:.1}% and the spread by {:.1}%",
//!          100.0 * result.mean_shift(), 100.0 * result.std_shift());
//! # Ok::<(), nanoleak_solver::SolverError>(())
//! ```

pub mod mc;
pub mod sigmas;
pub mod stats;

pub use mc::{run_inverter_mc, McConfig, McResult, McSample, Series};
pub use sigmas::{gaussian, VariationSigmas};
pub use stats::{Histogram, Stats};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Sampled perturbations stay within ~6 sigma and never produce
        /// non-physical derived devices.
        #[test]
        fn perturbations_stay_physical(seed in any::<u64>()) {
            use nanoleak_device::{DeviceDesign, MosKind};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let s = VariationSigmas::paper_nominal();
            let base = DeviceDesign::nano25(MosKind::Nmos);
            for _ in 0..16 {
                let p = s.sample_inter(&mut rng).combined(&s.sample_intra(&mut rng));
                let d = p.apply(&base);
                let params = d.derive();
                prop_assert!(params.vth0.is_finite());
                prop_assert!(params.eta > 0.0 && params.eta < 1.0);
                prop_assert!(d.geometry.l > 0.0 && d.geometry.tox > 0.0);
            }
        }

        /// Histogram bookkeeping never loses samples.
        #[test]
        fn histogram_conserves_mass(xs in proptest::collection::vec(-10.0f64..10.0, 1..200)) {
            let h = Histogram::of(&xs, -5.0, 5.0, 16);
            prop_assert_eq!(h.counts.iter().sum::<usize>() + h.outliers, xs.len());
        }
    }
}
