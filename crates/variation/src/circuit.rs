//! Circuit-level Monte-Carlo process variation.
//!
//! The paper's Section 5.3 result — loading widens the leakage
//! distribution under process variation — is demonstrated on a paired
//! inverter fixture ([`crate::run_inverter_mc`], Figs. 10–11). This
//! module scales the question to whole logic circuits: every sample
//! draws a die-wide process perturbation, derives a perturbed
//! [`Technology`], characterizes it into a [`CellLibrary`] (through a
//! pluggable, cacheable [`LibraryProvider`]), and estimates the
//! circuit's leakage with and without loading on a compiled
//! [`CompiledEstimator`] plan.
//!
//! ## Modeling scope
//!
//! The LUT estimator shares one characterized device pair across the
//! whole die, so per-sample variation is **die-wide**: the inter-die
//! deltas (threshold voltage, supply) plus one draw of the intra-die
//! sigmas (channel length, oxide thickness, threshold) applied
//! identically to every transistor. True per-device intra-die
//! resolution remains the inverter fixture's job, where each
//! transistor is solved individually. The split mirrors how the two
//! workloads are used: the fixture reproduces the paper's figures; the
//! circuit workload answers "how wide is my chip's leakage
//! distribution" at production scale.
//!
//! ## Determinism
//!
//! Sample `i` is a pure function of `(config, i)`: its RNG stream is
//! `mix(seed, i)` (the workspace-wide SplitMix64 convention), patterns
//! come from the engine's `mix(pattern_seed, k)` streams, per-sample
//! outputs materialize in index order, and every floating-point
//! reduction (the per-sample vector mean and the summary statistics)
//! runs sequentially over that order. Results are therefore
//! bit-identical for any thread count, and a sharded run that
//! concatenates [`run_circuit_mc_range`] outputs in index order
//! reproduces the monolithic run exactly.

use std::fmt;
use std::sync::Arc;

use nanoleak_cells::{
    delta_library, infer_deltas, CellLibrary, CellType, CharacterizeOptions, LibrarySens,
    OperatingPoint,
};
use nanoleak_core::exec::{mix, par_map_with};
use nanoleak_core::{
    resolve_lanes, BlockScratch, CompiledEstimator, EstimateError, EstimateScratch, EstimatorMode,
    PatternBlock, LANES,
};
use nanoleak_device::{LeakageBreakdown, Technology};
use nanoleak_netlist::{Circuit, Pattern};
use nanoleak_solver::SolverError;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::mc::{series_of, McSample, Series};
use crate::sigmas::VariationSigmas;
use crate::stats::{Histogram, Stats};

/// Errors from the circuit-level Monte Carlo.
#[derive(Debug, Clone, PartialEq)]
pub enum McError {
    /// A per-sample characterization failed to converge.
    Solver(SolverError),
    /// A per-sample estimate failed (e.g. a cell missing from the
    /// characterized set).
    Estimate(EstimateError),
    /// The library provider failed outside the solver (cache I/O and
    /// the like).
    Library(String),
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::Solver(e) => write!(f, "sample characterization failed: {e}"),
            McError::Estimate(e) => write!(f, "sample estimation failed: {e}"),
            McError::Library(msg) => write!(f, "library provider: {msg}"),
        }
    }
}

impl std::error::Error for McError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McError::Solver(e) => Some(e),
            McError::Estimate(e) => Some(e),
            McError::Library(_) => None,
        }
    }
}

impl From<SolverError> for McError {
    fn from(e: SolverError) -> Self {
        McError::Solver(e)
    }
}

impl From<EstimateError> for McError {
    fn from(e: EstimateError) -> Self {
        McError::Estimate(e)
    }
}

/// Supplies the characterized library for one perturbed technology.
///
/// Every Monte-Carlo sample asks for a fresh `(tech, temp, options)`
/// characterization; where that answer comes from is the caller's
/// policy. [`SolverProvider`] characterizes directly (hermetic tests,
/// one-shot runs); the engine layers its `MemoLibraryCache` behind
/// this trait so repeated runs of the same seed hit RAM/disk instead
/// of the solver. Implementations must be deterministic: the same
/// request must yield the same library bit-for-bit, or the MC loses
/// its reproducibility guarantee.
pub trait LibraryProvider: Sync {
    /// The characterized library for `tech` at `temp`.
    ///
    /// # Errors
    /// [`McError`] describing the characterization or cache failure.
    fn library(
        &self,
        tech: &Technology,
        temp: f64,
        opts: &CharacterizeOptions,
    ) -> Result<Arc<CellLibrary>, McError>;
}

/// The trivial provider: characterize every request from scratch.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverProvider;

impl LibraryProvider for SolverProvider {
    fn library(
        &self,
        tech: &Technology,
        temp: f64,
        opts: &CharacterizeOptions,
    ) -> Result<Arc<CellLibrary>, McError> {
        Ok(Arc::new(CellLibrary::characterize(tech, temp, opts)?))
    }
}

impl<P: LibraryProvider + ?Sized> LibraryProvider for &P {
    fn library(
        &self,
        tech: &Technology,
        temp: f64,
        opts: &CharacterizeOptions,
    ) -> Result<Arc<CellLibrary>, McError> {
        (**self).library(tech, temp, opts)
    }
}

impl<P: LibraryProvider + Send + ?Sized> LibraryProvider for Arc<P> {
    fn library(
        &self,
        tech: &Technology,
        temp: f64,
        opts: &CharacterizeOptions,
    ) -> Result<Arc<CellLibrary>, McError> {
        (**self).library(tech, temp, opts)
    }
}

/// How one die's library was produced by a [`DeltaProvider`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DieDiag {
    /// `true` when the library was derived from nominal sensitivities,
    /// `false` when the die fell back to a full characterization (its
    /// perturbation was not recognized as a delta of the nominal).
    pub derived: bool,
    /// `(cell, vector)` entries in the derived library (0 on fallback).
    pub entries: u32,
    /// Entries whose linearization-error estimate exceeded the
    /// tolerance and re-solved exactly.
    pub fallbacks: u32,
    /// Largest per-entry linearization-error estimate seen (log units).
    pub max_est: f64,
}

/// Supplies per-die libraries for the fast Monte-Carlo path, reporting
/// per die how the library was produced (delta-derived vs. fully
/// solved). Implementations must be deterministic, like
/// [`LibraryProvider`].
pub trait DeltaProvider: Sync {
    /// The library for one perturbed die, plus derivation diagnostics.
    ///
    /// # Errors
    /// [`McError`] describing the derivation or fallback failure.
    fn die_library(
        &self,
        tech: &Technology,
        temp: f64,
        opts: &CharacterizeOptions,
    ) -> Result<(Arc<CellLibrary>, DieDiag), McError>;
}

/// The reference [`DeltaProvider`]: derives each die from a nominal
/// library's recorded sensitivities ([`delta_library`]) when the die's
/// perturbation round-trips through [`infer_deltas`], and falls back
/// to `fallback` (a plain [`LibraryProvider`]) otherwise. The engine
/// wraps this over its RAM memo and adds metrics.
#[derive(Debug, Clone)]
pub struct SensDeltaProvider<F> {
    /// The nominal library the sensitivities were recorded against.
    pub nominal: Arc<CellLibrary>,
    /// Per-`(cell, vector)` sensitivity models from the traced nominal
    /// characterization.
    pub sens: Arc<LibrarySens>,
    /// Per-entry linearization-error tolerance (log units); entries
    /// estimating above it re-solve exactly.
    pub tol: f64,
    /// Full-characterization fallback for unrecognized requests.
    pub fallback: F,
}

impl<F: LibraryProvider + Sync> DeltaProvider for SensDeltaProvider<F> {
    fn die_library(
        &self,
        tech: &Technology,
        temp: f64,
        opts: &CharacterizeOptions,
    ) -> Result<(Arc<CellLibrary>, DieDiag), McError> {
        if temp == self.nominal.temp && *opts == self.nominal.options {
            if let Some(deltas) = infer_deltas(&self.nominal.tech, tech) {
                let (lib, report) = delta_library(&self.nominal, &self.sens, &deltas, self.tol)?;
                let diag = DieDiag {
                    derived: true,
                    entries: report.entries as u32,
                    fallbacks: report.fallbacks as u32,
                    max_est: report.max_est,
                };
                return Ok((Arc::new(lib), diag));
            }
        }
        let lib = self.fallback.library(tech, temp, opts)?;
        Ok((lib, DieDiag::default()))
    }
}

/// Configuration of one circuit-level Monte Carlo.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitMcConfig {
    /// Number of Monte-Carlo samples (perturbed dies).
    pub samples: usize,
    /// Base RNG seed; sample `i` draws from stream `mix(seed, i)`.
    pub seed: u64,
    /// Variation magnitudes (see the modeling-scope note in the module
    /// docs: intra-die sigmas are applied as one die-wide draw).
    pub sigmas: VariationSigmas,
    /// Operating conditions of the nominal die. The per-sample supply
    /// perturbation is applied on top of the scaled nominal.
    pub op: OperatingPoint,
    /// Input patterns averaged per sample (the same engine-convention
    /// pattern set, `mix(pattern_seed, k)`, for every sample — so the
    /// distributions differ only through process variation).
    pub vectors: usize,
    /// Seed of the shared pattern set.
    pub pattern_seed: u64,
    /// Worker threads (`0` = all cores, capped at 16); never changes
    /// the result.
    pub threads: usize,
    /// Characterization options for the per-sample libraries. Use
    /// [`char_opts_for`] to restrict to the circuit's cell set —
    /// characterizing cells the circuit never instantiates is pure
    /// waste at one library per sample.
    pub char_opts: CharacterizeOptions,
    /// Evaluation lanes: `0` (auto) and [`LANES`] pack each sample's
    /// shared pattern set into 64-lane blocks (packed once, reused by
    /// both arms); `1` forces the scalar per-pattern path. Never
    /// changes a bit of the result.
    pub lanes: usize,
}

impl Default for CircuitMcConfig {
    fn default() -> Self {
        Self {
            samples: 1000,
            seed: 2005,
            sigmas: VariationSigmas::paper_nominal(),
            op: OperatingPoint::default(),
            vectors: 1,
            pattern_seed: 2005,
            threads: 0,
            char_opts: CharacterizeOptions::default(),
            lanes: 0,
        }
    }
}

/// Characterization options covering exactly the cells `circuit`
/// instantiates, at coarse (test) or default (production) resolution.
pub fn char_opts_for(circuit: &Circuit, coarse: bool) -> CharacterizeOptions {
    let cells: Vec<CellType> = circuit.cell_histogram().into_iter().map(|(c, _)| c).collect();
    if coarse {
        CharacterizeOptions::coarse(&cells)
    } else {
        CharacterizeOptions { cells, ..CharacterizeOptions::default() }
    }
}

/// Result of [`run_circuit_mc`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitMcResult {
    /// The configuration that produced the samples.
    pub config: CircuitMcConfig,
    /// Per-sample paired outcomes, in sample-index order.
    pub samples: Vec<McSample>,
}

impl CircuitMcResult {
    /// Extracts a series over samples.
    pub fn series(&self, which: Series, loaded: bool) -> Vec<f64> {
        series_of(&self.samples, which, loaded)
    }

    /// Statistics of a series.
    pub fn stats(&self, which: Series, loaded: bool) -> Stats {
        crate::mc::stats_of(&self.samples, which, loaded)
    }

    /// The full distribution summary (see [`summarize`]).
    pub fn summary(&self, bins: usize) -> McSummary {
        summarize(&self.samples, bins)
    }
}

/// Distribution summary of one component series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSummary {
    /// Subthreshold-component statistics \[A\].
    pub sub: Stats,
    /// Gate-tunneling statistics \[A\].
    pub gate: Stats,
    /// Junction-BTBT statistics \[A\].
    pub btbt: Stats,
    /// Total-leakage statistics \[A\].
    pub total: Stats,
    /// Histogram of total leakage. Loaded and unloaded summaries share
    /// one bin range so the panels overlay like the paper's Fig. 10.
    pub histogram: Histogram,
}

/// Distribution summary of a paired Monte-Carlo sample set — the
/// serializable payload MC jobs return over HTTP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McSummary {
    /// Samples summarized.
    pub samples: usize,
    /// Distributions with loading modeled.
    pub loaded: SeriesSummary,
    /// Distributions with loading ignored.
    pub unloaded: SeriesSummary,
    /// Loading-induced shift of the total-leakage mean, as a fraction
    /// of the unloaded mean (paper Fig. 11 left).
    pub mean_shift: f64,
    /// Loading-induced shift of the total-leakage standard deviation,
    /// as a fraction of the unloaded std (paper Fig. 11 right).
    pub std_shift: f64,
    /// Fast-path (delta-derived) diagnostics; `None` on the exact path
    /// (and on per-shard partials — only the engine's final merge
    /// fills it in).
    pub fast: Option<FastMcReport>,
}

/// Diagnostics of one fast (delta-derived) Monte-Carlo run, summed
/// over dies in sample-index order — deterministic for any thread
/// count or shard split.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FastMcDiag {
    /// Dies whose library was derived from nominal sensitivities.
    pub dies_derived: u64,
    /// Dies that fell back to a full characterization (perturbation
    /// not recognized as a delta of the nominal).
    pub dies_full: u64,
    /// `(cell, vector)` entries served by the delta model.
    pub entries_derived: u64,
    /// Entries whose linearization-error estimate exceeded the
    /// tolerance and re-solved exactly.
    pub entries_fallback: u64,
    /// Largest per-entry linearization-error estimate seen (log units).
    pub max_error_estimate: f64,
}

impl FastMcDiag {
    /// Folds one die's diagnostics in.
    pub fn absorb(&mut self, d: &DieDiag) {
        if d.derived {
            self.dies_derived += 1;
            self.entries_derived += u64::from(d.entries - d.fallbacks);
            self.entries_fallback += u64::from(d.fallbacks);
        } else {
            self.dies_full += 1;
        }
        self.max_error_estimate = self.max_error_estimate.max(d.max_est);
    }

    /// Merges another run segment's diagnostics (shard concatenation).
    pub fn merge(&mut self, o: &FastMcDiag) {
        self.dies_derived += o.dies_derived;
        self.dies_full += o.dies_full;
        self.entries_derived += o.entries_derived;
        self.entries_fallback += o.entries_fallback;
        self.max_error_estimate = self.max_error_estimate.max(o.max_error_estimate);
    }
}

/// The fast path's self-report inside [`McSummary`]: derivation
/// diagnostics plus the measured deviation of the first `probed`
/// samples from the bit-exact path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FastMcReport {
    /// Derivation diagnostics summed over all dies.
    pub diag: FastMcDiag,
    /// The linearization-error tolerance the run used (log units).
    pub tol: f64,
    /// Samples re-run through the exact path for the deviation check.
    pub probed: usize,
    /// Largest relative deviation of a probed sample's total leakage
    /// (max over both arms) from the exact path.
    pub max_deviation: f64,
    /// Mean relative deviation over the probed samples and arms.
    pub mean_deviation: f64,
}

/// Default histogram resolution of MC summaries.
pub const DEFAULT_HIST_BINS: usize = 32;

/// Summarizes a paired sample set: per-component statistics for both
/// arms, total-leakage histograms over one shared `[0, max)` range,
/// and the Fig. 11 mean/std shifts.
///
/// This is a pure sequential function of the index-ordered sample
/// slice — the one reduction both monolithic and sharded runs finish
/// with, so their summaries agree bit-for-bit by construction.
///
/// # Panics
/// Panics on an empty sample set or `bins == 0`.
pub fn summarize(samples: &[McSample], bins: usize) -> McSummary {
    assert!(!samples.is_empty(), "summary of an empty MC sample set");
    let loaded_total = series_of(samples, Series::Total, true);
    let unloaded_total = series_of(samples, Series::Total, false);
    // One shared bin range: slightly past the global max so the
    // extreme sample lands in the last bin, not the outlier bucket.
    let max = loaded_total
        .iter()
        .chain(&unloaded_total)
        .copied()
        .fold(0.0_f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let hi = max * (1.0 + 1e-9);
    let arm = |loaded: bool, totals: &[f64]| SeriesSummary {
        sub: crate::mc::stats_of(samples, Series::Sub, loaded),
        gate: crate::mc::stats_of(samples, Series::Gate, loaded),
        btbt: crate::mc::stats_of(samples, Series::Btbt, loaded),
        total: Stats::of(totals),
        histogram: Histogram::of(totals, 0.0, hi, bins),
    };
    let loaded = arm(true, &loaded_total);
    let unloaded = arm(false, &unloaded_total);
    let mean_shift = (loaded.total.mean - unloaded.total.mean) / unloaded.total.mean;
    let std_shift = (loaded.total.std - unloaded.total.std) / unloaded.total.std;
    McSummary { samples: samples.len(), loaded, unloaded, mean_shift, std_shift, fast: None }
}

/// The perturbed technology of sample `index`: the operating-point
/// nominal with one die-wide draw applied to both device designs and
/// the supply.
fn sample_tech(nominal: &Technology, config: &CircuitMcConfig, index: usize) -> Technology {
    let mut rng = rand::rngs::StdRng::seed_from_u64(mix(config.seed, index as u64));
    let inter = config.sigmas.sample_inter(&mut rng);
    let die = inter.combined(&config.sigmas.sample_intra(&mut rng));
    let mut tech = nominal.clone();
    tech.nmos = die.apply(&tech.nmos);
    tech.pmos = die.apply(&tech.pmos);
    tech.vdd += die.dvdd;
    tech
}

/// Pattern count past which a per-die plan's loaded arm builds the
/// block response tables instead of running the per-lane scalar
/// service. A table build enumerates up to `2^MAX_SUPPORT_BITS`
/// scalar evaluations per gate while one scalar block pass costs
/// `LANES` per gate, so a plan evaluated fewer than a few blocks'
/// worth of patterns never amortizes the build — measured on s838,
/// tables cost ~40 ms/die against ~10 ms of scalar work at 64
/// vectors. Four full blocks is roughly break-even.
pub const TABLE_AMORTIZE_VECTORS: usize = 4 * LANES;

/// Per-worker reusable buffers for circuit MC samples. Plans share
/// the circuit's dimensions, so every buffer warms once and then
/// serves each per-die plan allocation-free.
#[derive(Debug, Default)]
struct SampleScratch {
    scalar: EstimateScratch,
    block: BlockScratch,
    pack: PatternBlock,
    pattern: Pattern,
}

/// Evaluates one die's plan over the shared pattern set, returning the
/// (loaded, unloaded) sums in pattern-index order.
///
/// `block_loaded` selects the loaded (Lut) arm's kernel on the block
/// path: `false` runs the per-lane scalar service, `true` runs the
/// 64-lane block kernel with response tables. A per-die plan is
/// evaluated exactly `vectors` times and then dropped, so tables only
/// pay for themselves past [`TABLE_AMORTIZE_VECTORS`] — callers pick
/// the flag from the pattern volume. Core guarantees both kernels
/// agree bit-for-bit, so the flag never changes a result, only its
/// cost.
fn evaluate_plan(
    plan: &CompiledEstimator,
    circuit: &Circuit,
    config: &CircuitMcConfig,
    scratch: &mut SampleScratch,
    block_loaded: bool,
) -> Result<(LeakageBreakdown, LeakageBreakdown), McError> {
    if resolve_lanes(config.lanes) == 1 {
        // Sequential index-order mean over the shared pattern set;
        // both arms run on the same plan (the unloaded arm simply
        // skips the loading pass), so one characterization serves
        // both.
        let scalar = &mut scratch.scalar;
        let mut arm = |mode: EstimatorMode| -> Result<LeakageBreakdown, McError> {
            let mut sum = LeakageBreakdown::ZERO;
            for k in 0..config.vectors {
                sum += plan.estimate_index_into(scalar, config.pattern_seed, k, mode)?;
            }
            Ok(sum)
        };
        Ok((arm(EstimatorMode::Lut)?, arm(EstimatorMode::NoLoading)?))
    } else {
        // Block path: each 64-pattern chunk of the shared set is
        // packed once and reused by both arms. The unloaded arm runs
        // the word-parallel kernel (no tables needed); the loaded arm
        // runs the kernel `block_loaded` selects. Each arm's sum adds
        // its per-pattern values in index order, so both means are
        // bit-identical to the scalar path's.
        let mut loaded = LeakageBreakdown::ZERO;
        let mut unloaded = LeakageBreakdown::ZERO;
        if scratch.pack.pi_words().len() != circuit.inputs().len()
            || scratch.pack.state_words().len() != circuit.state_inputs().len()
        {
            scratch.pack = PatternBlock::for_circuit(circuit);
        }
        let mut k = 0usize;
        while k < config.vectors {
            let n = LANES.min(config.vectors - k);
            scratch.pack.clear();
            for j in 0..n {
                let mut rng =
                    rand::rngs::StdRng::seed_from_u64(mix(config.pattern_seed, (k + j) as u64));
                scratch.pattern.fill_random(circuit, &mut rng);
                scratch.pack.push(&scratch.pattern);
            }
            if block_loaded {
                plan.estimate_block_into(&mut scratch.block, &scratch.pack, EstimatorMode::Lut)?;
            } else {
                plan.estimate_block_scalar_into(
                    &mut scratch.block,
                    &scratch.pack,
                    EstimatorMode::Lut,
                )?;
            }
            for t in scratch.block.totals() {
                loaded += *t;
            }
            plan.estimate_block_into(&mut scratch.block, &scratch.pack, EstimatorMode::NoLoading)?;
            for t in scratch.block.totals() {
                unloaded += *t;
            }
            k += n;
        }
        Ok((loaded, unloaded))
    }
}

fn run_circuit_sample(
    circuit: &Circuit,
    nominal: &Technology,
    provider: &dyn LibraryProvider,
    config: &CircuitMcConfig,
    index: usize,
    scratch: &mut SampleScratch,
) -> Result<McSample, McError> {
    let tech = sample_tech(nominal, config, index);
    let lib = provider.library(&tech, config.op.temp, &config.char_opts)?;
    let plan = CompiledEstimator::compile(circuit, &lib)?;
    let (loaded, unloaded) = evaluate_plan(&plan, circuit, config, scratch, false)?;
    Ok(McSample {
        loaded: loaded.scaled(1.0 / config.vectors as f64),
        unloaded: unloaded.scaled(1.0 / config.vectors as f64),
    })
}

fn run_circuit_sample_fast(
    circuit: &Circuit,
    nominal: &Technology,
    provider: &dyn DeltaProvider,
    config: &CircuitMcConfig,
    index: usize,
    scratch: &mut SampleScratch,
) -> Result<(McSample, DieDiag), McError> {
    let tech = sample_tech(nominal, config, index);
    let (lib, diag) = provider.die_library(&tech, config.op.temp, &config.char_opts)?;
    let plan = CompiledEstimator::compile(circuit, &lib)?;
    let tables = config.vectors >= TABLE_AMORTIZE_VECTORS;
    let (loaded, unloaded) = evaluate_plan(&plan, circuit, config, scratch, tables)?;
    let sample = McSample {
        loaded: loaded.scaled(1.0 / config.vectors as f64),
        unloaded: unloaded.scaled(1.0 / config.vectors as f64),
    };
    Ok((sample, diag))
}

/// Runs the contiguous sample range `start .. start + len` of the
/// Monte Carlo, returning paired samples in index order — the
/// building block streaming front-ends shard over. Each worker keeps
/// one scratch set (scalar, block, and pattern buffers) across its
/// samples — plans share the circuit's dimensions, so everything
/// warms once.
///
/// # Errors
/// The first per-sample [`McError`] in index order.
///
/// # Panics
/// Panics if `config.vectors` is zero.
pub fn run_circuit_mc_range(
    circuit: &Circuit,
    tech: &Technology,
    provider: &dyn LibraryProvider,
    config: &CircuitMcConfig,
    start: usize,
    len: usize,
) -> Result<Vec<McSample>, McError> {
    assert!(config.vectors > 0, "circuit MC needs at least one pattern per sample");
    let nominal = config.op.tech(tech);
    let per_sample: Vec<Result<McSample, McError>> =
        par_map_with(len, config.threads, SampleScratch::default, |scratch, k| {
            run_circuit_sample(circuit, &nominal, provider, config, start + k, scratch)
        });
    let mut samples = Vec::with_capacity(len);
    for r in per_sample {
        samples.push(r?);
    }
    Ok(samples)
}

/// The fast (delta-derived) counterpart of [`run_circuit_mc_range`]:
/// per-die libraries come from a [`DeltaProvider`] (nominal
/// sensitivities plus a full-solve fallback) instead of a per-die
/// characterization, and the loaded (Lut) arm runs the 64-lane block
/// kernel with response tables — the per-die library cost no longer
/// dwarfs the table build.
///
/// Determinism matches the exact path's contract: samples and
/// diagnostics are bit-identical for any thread count, shard split, or
/// `lanes` setting. The *values* differ from the exact path by the
/// linearization error the provider's tolerance admits.
///
/// # Errors
/// The first per-sample [`McError`] in index order.
///
/// # Panics
/// Panics if `config.vectors` is zero.
pub fn run_circuit_mc_range_fast(
    circuit: &Circuit,
    tech: &Technology,
    provider: &dyn DeltaProvider,
    config: &CircuitMcConfig,
    start: usize,
    len: usize,
) -> Result<(Vec<McSample>, FastMcDiag), McError> {
    assert!(config.vectors > 0, "circuit MC needs at least one pattern per sample");
    let nominal = config.op.tech(tech);
    let per_sample: Vec<Result<(McSample, DieDiag), McError>> =
        par_map_with(len, config.threads, SampleScratch::default, |scratch, k| {
            run_circuit_sample_fast(circuit, &nominal, provider, config, start + k, scratch)
        });
    let mut samples = Vec::with_capacity(len);
    let mut diag = FastMcDiag::default();
    for r in per_sample {
        let (sample, die) = r?;
        diag.absorb(&die);
        samples.push(sample);
    }
    Ok((samples, diag))
}

/// Runs the full circuit-level Monte Carlo (all `config.samples`
/// samples, in parallel, bit-identical for any thread count).
///
/// # Errors
/// The first per-sample [`McError`] in index order.
///
/// # Panics
/// Panics if `config.samples` or `config.vectors` is zero.
pub fn run_circuit_mc(
    circuit: &Circuit,
    tech: &Technology,
    provider: &dyn LibraryProvider,
    config: &CircuitMcConfig,
) -> Result<CircuitMcResult, McError> {
    assert!(config.samples > 0, "circuit MC needs at least one sample");
    let samples = run_circuit_mc_range(circuit, tech, provider, config, 0, config.samples)?;
    Ok(CircuitMcResult { config: config.clone(), samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_netlist::CircuitBuilder;

    /// A small circuit with real gate-to-gate loading: a NAND2 chain
    /// fanning into inverters.
    fn small_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("mc-test");
        let a = b.add_input("a");
        let c = b.add_input("b");
        let n1 = b.add_gate(CellType::Nand2, &[a, c], "n1");
        let n2 = b.add_gate(CellType::Nand2, &[n1, a], "n2");
        let y1 = b.add_gate(CellType::Inv, &[n1], "y1");
        let y2 = b.add_gate(CellType::Inv, &[n2], "y2");
        b.mark_output(y1);
        b.mark_output(y2);
        b.build().unwrap()
    }

    fn small_config(samples: usize) -> CircuitMcConfig {
        CircuitMcConfig {
            samples,
            seed: 7,
            vectors: 2,
            char_opts: char_opts_for(&small_circuit(), true),
            ..Default::default()
        }
    }

    #[test]
    fn char_opts_cover_exactly_the_circuit_cells() {
        let opts = char_opts_for(&small_circuit(), true);
        assert_eq!(opts.cells, vec![CellType::Inv, CellType::Nand2]);
        let full = char_opts_for(&small_circuit(), false);
        assert_eq!(full.points, CharacterizeOptions::default().points);
        assert_eq!(full.cells, opts.cells);
    }

    #[test]
    fn same_seed_reproduces_the_same_sample_set() {
        let circuit = small_circuit();
        let tech = Technology::d25();
        let cfg = small_config(4);
        let a = run_circuit_mc(&circuit, &tech, &SolverProvider, &cfg).unwrap();
        let b = run_circuit_mc(&circuit, &tech, &SolverProvider, &cfg).unwrap();
        assert_eq!(a, b);
        // A different seed perturbs differently.
        let c =
            run_circuit_mc(&circuit, &tech, &SolverProvider, &CircuitMcConfig { seed: 8, ..cfg })
                .unwrap();
        assert_ne!(a.samples, c.samples);
    }

    #[test]
    fn thread_count_never_moves_a_bit() {
        let circuit = small_circuit();
        let tech = Technology::d25();
        let base = small_config(5);
        let one = run_circuit_mc(
            &circuit,
            &tech,
            &SolverProvider,
            &CircuitMcConfig { threads: 1, ..base.clone() },
        )
        .unwrap();
        for threads in [2, 4] {
            let multi = run_circuit_mc(
                &circuit,
                &tech,
                &SolverProvider,
                &CircuitMcConfig { threads, ..base.clone() },
            )
            .unwrap();
            assert_eq!(one.samples, multi.samples, "threads = {threads}");
            assert_eq!(one.summary(16), multi.summary(16), "threads = {threads}");
        }
    }

    #[test]
    fn range_concatenation_equals_the_monolithic_run() {
        let circuit = small_circuit();
        let tech = Technology::d25();
        let cfg = small_config(6);
        let mono = run_circuit_mc(&circuit, &tech, &SolverProvider, &cfg).unwrap();
        // Shard as 2 + 3 + 1 and concatenate in index order.
        let mut sharded = Vec::new();
        for (start, len) in [(0usize, 2usize), (2, 3), (5, 1)] {
            sharded.extend(
                run_circuit_mc_range(&circuit, &tech, &SolverProvider, &cfg, start, len).unwrap(),
            );
        }
        assert_eq!(sharded, mono.samples);
        assert_eq!(summarize(&sharded, 16), mono.summary(16));
    }

    #[test]
    fn loading_shifts_the_circuit_distribution() {
        // The tentpole claim at circuit level: the loaded distribution
        // sits above the unloaded one (subthreshold-driven, like the
        // paper's inverter result).
        let circuit = small_circuit();
        let tech = Technology::d25();
        let r = run_circuit_mc(&circuit, &tech, &SolverProvider, &small_config(8)).unwrap();
        let s = r.summary(16);
        assert_eq!(s.samples, 8);
        assert!(s.loaded.total.mean != s.unloaded.total.mean, "loading must move the estimate");
        assert!(s.loaded.sub.mean > s.unloaded.sub.mean, "sub rises under loading");
        // Histograms conserve mass over the shared range.
        for arm in [&s.loaded, &s.unloaded] {
            assert_eq!(arm.histogram.counts.iter().sum::<usize>() + arm.histogram.outliers, 8);
            assert_eq!(arm.histogram.lo, 0.0);
        }
        assert_eq!(s.loaded.histogram.hi, s.unloaded.histogram.hi, "shared bin range");
    }

    #[test]
    fn sample_tech_applies_one_die_wide_draw() {
        let tech = Technology::d25();
        let cfg = small_config(1);
        let t0 = sample_tech(&tech, &cfg, 0);
        let t1 = sample_tech(&tech, &cfg, 1);
        assert_ne!(t0, t1, "different samples, different dies");
        assert_eq!(sample_tech(&tech, &cfg, 0), t0, "per-index draws are pure");
        // Both polarities carry the same vth shift (die-wide draw).
        let dn = t0.nmos.flavor.vth_shift - tech.nmos.flavor.vth_shift;
        let dp = t0.pmos.flavor.vth_shift - tech.pmos.flavor.vth_shift;
        assert_eq!(dn, dp);
        assert!(dn.abs() > 0.0, "the draw actually moved the threshold");
        assert_ne!(t0.vdd, tech.vdd, "supply perturbed");
    }

    #[test]
    fn summary_serializes_and_round_trips() {
        use serde::Deserialize as _;
        let circuit = small_circuit();
        let tech = Technology::d25();
        let r = run_circuit_mc(&circuit, &tech, &SolverProvider, &small_config(3)).unwrap();
        let summary = r.summary(8);
        let text = serde::json::to_string(&summary);
        let back = McSummary::from_value(&serde::json::value_from_str(&text).unwrap()).unwrap();
        assert_eq!(back, summary, "JSON round-trip is bit-exact");
    }
}
