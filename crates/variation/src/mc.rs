//! The paper's Monte-Carlo experiment (Figs. 10–11): leakage
//! distribution of an inverter with and without loading under process
//! variation.
//!
//! Each sample perturbs every transistor (inter-die deltas shared
//! across the sample, intra-die deltas independent per device) and
//! solves two fixtures at transistor level:
//!
//! * **loaded** — the inverter G with a real driver on its input,
//!   `input_loads` inverters sharing its input net, and `output_loads`
//!   inverters loading its output net (the paper's 6 + 6 setup);
//! * **unloaded** — the same perturbed G alone with ideal rail inputs.
//!
//! The same device samples are used in both arms, so the distributions
//! differ only through the loading effect.

use nanoleak_cells::OperatingPoint;
use nanoleak_core::exec::{mix, par_map};
use nanoleak_device::{DeviceDesign, LeakageBreakdown, Technology, Transistor};
use nanoleak_solver::{solve_dc, MosNetlist, NewtonOptions, SolverError};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::sigmas::VariationSigmas;
use crate::stats::Stats;

/// Monte-Carlo configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McConfig {
    /// Number of samples (the paper uses 10,000).
    pub samples: usize,
    /// Base RNG seed; per-sample streams are derived deterministically,
    /// so results do not depend on thread count.
    pub seed: u64,
    /// Variation magnitudes.
    pub sigmas: VariationSigmas,
    /// Inverters loading the input net (paper: 6).
    pub input_loads: usize,
    /// Inverters loading the output net (paper: 6).
    pub output_loads: usize,
    /// Operating conditions (temperature and supply scale) the
    /// fixtures are solved at. The supply perturbation `dvdd` is
    /// applied on top of the scaled nominal.
    pub op: OperatingPoint,
    /// Logic level at G's input (paper: '0', output '1').
    pub input_level: bool,
    /// Worker threads (`0` = all cores, capped at 16). Never changes
    /// the result — only how fast it arrives.
    pub threads: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            samples: 10_000,
            seed: 2005,
            sigmas: VariationSigmas::paper_nominal(),
            input_loads: 6,
            output_loads: 6,
            op: OperatingPoint::default(),
            input_level: false,
            threads: 0,
        }
    }
}

/// One sample's paired outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McSample {
    /// G's leakage in the loaded fixture.
    pub loaded: LeakageBreakdown,
    /// G's leakage in isolation.
    pub unloaded: LeakageBreakdown,
}

/// Which series of a sample to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Series {
    /// Subthreshold component.
    Sub,
    /// Gate-tunneling component.
    Gate,
    /// Junction BTBT component.
    Btbt,
    /// Total leakage.
    Total,
}

/// Extracts one series over a paired sample set — shared by the
/// inverter fixture ([`McResult`]) and the circuit-level workload
/// (`CircuitMcResult`), so the two analyses can never diverge on what
/// "the loaded subthreshold series" means.
pub fn series_of(samples: &[McSample], which: Series, loaded: bool) -> Vec<f64> {
    samples
        .iter()
        .map(|s| {
            let b = if loaded { &s.loaded } else { &s.unloaded };
            match which {
                Series::Sub => b.sub,
                Series::Gate => b.gate,
                Series::Btbt => b.btbt,
                Series::Total => b.total(),
            }
        })
        .collect()
}

/// Statistics of one series over a paired sample set (see
/// [`series_of`]).
pub fn stats_of(samples: &[McSample], which: Series, loaded: bool) -> Stats {
    Stats::of(&series_of(samples, which, loaded))
}

/// Monte-Carlo result set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McResult {
    /// The configuration that produced the samples.
    pub config: McConfig,
    /// Per-sample paired outcomes.
    pub samples: Vec<McSample>,
}

impl McResult {
    /// Extracts a series over samples.
    pub fn series(&self, which: Series, loaded: bool) -> Vec<f64> {
        series_of(&self.samples, which, loaded)
    }

    /// Statistics of a series.
    pub fn stats(&self, which: Series, loaded: bool) -> Stats {
        stats_of(&self.samples, which, loaded)
    }

    /// Fig. 11 (left): loading-induced shift of the mean of total
    /// leakage, as a fraction of the unloaded mean.
    pub fn mean_shift(&self) -> f64 {
        let l = self.stats(Series::Total, true).mean;
        let u = self.stats(Series::Total, false).mean;
        (l - u) / u
    }

    /// Fig. 11 (right): loading-induced shift of the standard
    /// deviation of total leakage, as a fraction of the unloaded std.
    pub fn std_shift(&self) -> f64 {
        let l = self.stats(Series::Total, true).std;
        let u = self.stats(Series::Total, false).std;
        (l - u) / u
    }
}

/// Runs the paired inverter Monte Carlo, in parallel.
///
/// # Errors
/// Propagates the first solver failure (extreme corners are clamped by
/// the perturbation model, so the default configurations converge).
pub fn run_inverter_mc(tech: &Technology, config: &McConfig) -> Result<McResult, SolverError> {
    // Per-item outputs land in index order and the reduction below is
    // sequential, so the result is thread-count invariant (the
    // workspace-wide `exec` contract).
    let per_sample: Vec<Result<McSample, SolverError>> =
        par_map(config.samples, config.threads, |i| run_sample(tech, config, i));
    let mut samples = Vec::with_capacity(config.samples);
    for r in per_sample {
        samples.push(r?);
    }
    Ok(McResult { config: *config, samples })
}

fn run_sample(tech: &Technology, config: &McConfig, index: usize) -> Result<McSample, SolverError> {
    // Per-sample streams come from the workspace-wide SplitMix64
    // `mix(seed, i)` convention (`nanoleak_core::exec::mix`), the same
    // mixer the engine's sweeps and the circuit-level MC use.
    let mut rng = rand::rngs::StdRng::seed_from_u64(mix(config.seed, index as u64));
    let tech = &config.op.tech(tech);
    let sigmas = &config.sigmas;
    let inter = sigmas.sample_inter(&mut rng);
    let vdd = tech.vdd + inter.dvdd;

    let draw = |design: &DeviceDesign, rng: &mut rand::rngs::StdRng| {
        let p = inter.combined(&sigmas.sample_intra(rng));
        Transistor::new(p.apply(design).derive())
    };

    // Device order is fixed: G first (shared between arms), then the
    // driver, then the loading inverters.
    let g_n = draw(&tech.nmos, &mut rng);
    let g_p = draw(&tech.pmos, &mut rng);
    let d_n = draw(&tech.nmos, &mut rng);
    let d_p = draw(&tech.pmos, &mut rng);
    let loads: Vec<(Transistor, Transistor)> = (0..config.input_loads + config.output_loads)
        .map(|_| {
            let n = draw(&tech.nmos, &mut rng);
            let p = draw(&tech.pmos, &mut rng);
            (n, p)
        })
        .collect();

    // ---- Loaded fixture ----
    let mut nl = MosNetlist::new();
    let vdd_n = nl.add_fixed_node("vdd", vdd);
    let gnd_n = nl.add_fixed_node("gnd", 0.0);
    // Driver input is the complement of G's input level.
    let drv_in = nl.add_fixed_node("drv_in", if config.input_level { 0.0 } else { vdd });
    let node_in = nl.add_node("in");
    let node_out = nl.add_node("out");
    nl.add_mos(d_n, node_in, drv_in, gnd_n, gnd_n);
    nl.add_mos(d_p, node_in, drv_in, vdd_n, vdd_n);
    let g_first = nl.device_count();
    nl.add_mos(g_n, node_out, node_in, gnd_n, gnd_n);
    nl.add_mos(g_p, node_out, node_in, vdd_n, vdd_n);
    let mut load_outs = Vec::new();
    for (k, (n, p)) in loads.into_iter().enumerate() {
        let pin = if k < config.input_loads { node_in } else { node_out };
        let lo = nl.add_node(&format!("lo{k}"));
        nl.add_mos(n, lo, pin, gnd_n, gnd_n);
        nl.add_mos(p, lo, pin, vdd_n, vdd_n);
        load_outs.push((lo, pin));
    }

    let in_rail = if config.input_level { vdd } else { 0.0 };
    let out_rail = if config.input_level { 0.0 } else { vdd };
    let mut guess = vec![0.5 * vdd; nl.node_count()];
    guess[node_in.0] = in_rail;
    guess[node_out.0] = out_rail;
    for &(lo, pin) in &load_outs {
        guess[lo.0] = if pin == node_in { out_rail } else { in_rail };
    }
    let sol = solve_dc(&nl, config.op.temp, Some(&guess), &NewtonOptions::default())?;
    let loaded = sol.device_breakdowns[g_first] + sol.device_breakdowns[g_first + 1];

    // ---- Unloaded fixture: same G, ideal input ----
    let mut nl2 = MosNetlist::new();
    let vdd2 = nl2.add_fixed_node("vdd", vdd);
    let gnd2 = nl2.add_fixed_node("gnd", 0.0);
    let in2 = nl2.add_fixed_node("in", in_rail);
    let out2 = nl2.add_node("out");
    nl2.add_mos(g_n, out2, in2, gnd2, gnd2);
    nl2.add_mos(g_p, out2, in2, vdd2, vdd2);
    let mut guess2 = vec![out_rail; nl2.node_count()];
    guess2[out2.0] = out_rail;
    let sol2 = solve_dc(&nl2, config.op.temp, Some(&guess2), &NewtonOptions::default())?;
    let unloaded = sol2.device_breakdowns[0] + sol2.device_breakdowns[1];

    Ok(McSample { loaded, unloaded })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_device::consts::NA;

    fn small_config() -> McConfig {
        McConfig { samples: 160, ..Default::default() }
    }

    #[test]
    fn deterministic_across_runs() {
        let tech = Technology::d25();
        let a = run_inverter_mc(&tech, &small_config()).unwrap();
        let b = run_inverter_mc(&tech, &small_config()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn loading_shifts_subthreshold_up_and_others_down() {
        // Paper Fig. 10: the loaded subthreshold distribution moves
        // right; gate and junction distributions move slightly left.
        let tech = Technology::d25();
        let r = run_inverter_mc(&tech, &small_config()).unwrap();
        let sub_l = r.stats(Series::Sub, true).mean;
        let sub_u = r.stats(Series::Sub, false).mean;
        assert!(sub_l > sub_u * 1.005, "sub: loaded {} vs unloaded {}", sub_l, sub_u);
        let gate_l = r.stats(Series::Gate, true).mean;
        let gate_u = r.stats(Series::Gate, false).mean;
        assert!(gate_l < gate_u * 1.002, "gate must not increase");
    }

    #[test]
    fn loading_widens_the_total_spread() {
        // Paper Fig. 11 (right): loading increases the standard
        // deviation of total leakage.
        let tech = Technology::d25();
        let cfg = McConfig {
            samples: 240,
            sigmas: VariationSigmas::paper_nominal().with_vt_intra(90e-3).with_vt_inter(50e-3),
            ..Default::default()
        };
        let r = run_inverter_mc(&tech, &cfg).unwrap();
        assert!(r.std_shift() > 0.0, "std shift = {}", r.std_shift());
        assert!(r.mean_shift() > 0.0, "mean shift = {}", r.mean_shift());
    }

    #[test]
    fn magnitudes_match_figure_10_axes() {
        // Fig. 10 histograms: subthreshold up to ~2000 nA, junction
        // 5-20 nA scale.
        let tech = Technology::d25();
        let r = run_inverter_mc(&tech, &small_config()).unwrap();
        let sub = r.stats(Series::Sub, true);
        assert!(sub.mean > 100.0 * NA && sub.mean < 1500.0 * NA, "sub mean = {}", sub.mean / NA);
        let btbt = r.stats(Series::Btbt, true);
        assert!(btbt.mean > 1.0 * NA && btbt.mean < 60.0 * NA, "btbt mean = {}", btbt.mean / NA);
        // Variation makes the subthreshold spread large (log-normal-ish).
        assert!(sub.std / sub.mean > 0.2, "cv = {}", sub.std / sub.mean);
    }
}
