//! The compiled estimator's zero-allocation guarantee, asserted with
//! a counting global allocator.
//!
//! This file intentionally holds a single test: integration-test
//! binaries get their own process, so the allocation counter observes
//! only this test's activity (cargo's libtest would otherwise
//! interleave other tests' allocations into the measured window).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use nanoleak_cells::{CellLibrary, CellType, CharacterizeOptions};
use nanoleak_core::{CompiledEstimator, EstimatorMode};
use nanoleak_device::Technology;
use nanoleak_netlist::generate::{random_circuit, RandomCircuitSpec};
use nanoleak_netlist::normalize::normalize;
use nanoleak_netlist::Pattern;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: defers every operation to `System`; the counter is a
// side-effect only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn lut_hot_path_performs_zero_allocations_after_warm_up() {
    // Setup (allocates freely): library, circuit, plan, scratch.
    let tech = Technology::d25();
    let lib = CellLibrary::characterize(&tech, 300.0, &CharacterizeOptions::coarse(&CellType::ALL))
        .unwrap();
    let raw = random_circuit(&RandomCircuitSpec::new("zero-alloc", 8, 3, 120, 4, 2005));
    let circuit = normalize(&raw).unwrap();
    let plan = CompiledEstimator::compile(&circuit, &lib).unwrap();
    let mut scratch = plan.scratch();
    let pattern = Pattern::zeros(&circuit);

    // Warm-up: grow every scratch buffer to its steady-state size.
    for mode in [EstimatorMode::Lut, EstimatorMode::NoLoading] {
        plan.estimate_into(&mut scratch, &pattern, mode).unwrap();
    }
    for index in 0..2 {
        plan.estimate_index_into(&mut scratch, 7, index, EstimatorMode::Lut).unwrap();
    }

    // Measured window: per-pattern estimation, fixed patterns and
    // seed-derived sweep patterns alike, must never hit the allocator.
    let mut sink = 0.0;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for index in 0..256 {
        sink += plan.estimate_into(&mut scratch, &pattern, EstimatorMode::Lut).unwrap().total();
        sink +=
            plan.estimate_index_into(&mut scratch, 7, index, EstimatorMode::Lut).unwrap().total();
        sink += plan.estimate_into(&mut scratch, &pattern, EstimatorMode::NoLoading).unwrap().sub;
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(sink.is_finite() && sink > 0.0, "estimates actually ran");
    assert_eq!(
        after - before,
        0,
        "the warm Lut/NoLoading hot path must not allocate (saw {} allocations)",
        after - before
    );
}
