//! The block kernel's zero-allocation guarantee, asserted with a
//! counting global allocator.
//!
//! Separate binary from `zero_alloc.rs` for the same reason that file
//! holds a single test: each integration-test binary gets its own
//! process, so the counter observes only this test's activity.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use nanoleak_cells::{CellLibrary, CellType, CharacterizeOptions};
use nanoleak_core::{CompiledEstimator, EstimatorMode, PatternBlock, LANES};
use nanoleak_device::Technology;
use nanoleak_netlist::generate::{random_circuit, RandomCircuitSpec};
use nanoleak_netlist::normalize::normalize;
use nanoleak_netlist::Pattern;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: defers every operation to `System`; the counter is a
// side-effect only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn block_hot_path_performs_zero_allocations_after_warm_up() {
    // Setup (allocates freely): library, circuit, plan, block tables,
    // scratch, packed block.
    let tech = Technology::d25();
    let lib = CellLibrary::characterize(&tech, 300.0, &CharacterizeOptions::coarse(&CellType::ALL))
        .unwrap();
    let raw = random_circuit(&RandomCircuitSpec::new("zero-alloc-block", 8, 3, 120, 4, 2005));
    let circuit = normalize(&raw).unwrap();
    let plan = CompiledEstimator::compile(&circuit, &lib).unwrap();
    plan.prepare_block();
    let mut scratch = plan.block_scratch();
    let mut block = PatternBlock::for_circuit(&circuit);
    let mut pattern = Pattern::zeros(&circuit);
    while !block.is_full() {
        block.push(&pattern);
    }

    // Warm-up: grow every scratch buffer (both modes, both entry
    // points, full and tail blocks) to its steady-state size.
    for mode in [EstimatorMode::Lut, EstimatorMode::NoLoading] {
        plan.estimate_block_into(&mut scratch, &block, mode).unwrap();
        plan.estimate_index_block_into(&mut scratch, 7, 0, LANES, mode).unwrap();
        plan.estimate_index_block_into(&mut scratch, 7, 0, 3, mode).unwrap();
    }

    // Measured window: warm block evaluation — packed blocks,
    // seed-derived index blocks, tail blocks, both fast modes, plus
    // re-packing an existing block — must never hit the allocator.
    let mut sink = 0.0;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for round in 0..32 {
        block.clear();
        while !block.is_full() {
            block.push(&pattern);
        }
        plan.estimate_block_into(&mut scratch, &block, EstimatorMode::Lut).unwrap();
        sink += scratch.totals().iter().map(|t| t.total()).sum::<f64>();
        plan.estimate_index_block_into(&mut scratch, 7, round * LANES, LANES, EstimatorMode::Lut)
            .unwrap();
        sink += scratch.totals()[0].total();
        plan.estimate_index_block_into(&mut scratch, 7, round, 5, EstimatorMode::NoLoading)
            .unwrap();
        sink += scratch.totals()[4].total();
        block.get_into(round % LANES, &mut pattern);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(sink.is_finite() && sink > 0.0, "block estimates actually ran");
    assert_eq!(
        after - before,
        0,
        "the warm block kernel must not allocate (saw {} allocations)",
        after - before
    );
}
