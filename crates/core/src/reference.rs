//! Full-circuit reference simulator — the role SPICE plays in the paper.
//!
//! Solves the *complete* nonlinear DC network of a gate-level circuit
//! over the same transistor models the estimator's characterization
//! uses. Net voltages are the unknowns; a Gauss–Seidel relaxation
//! sweeps the nets in topological order, solving each net's scalar KCL
//! with a damped Newton update:
//!
//! * the net's **driver** contributes its output current, obtained by
//!   re-solving the driver cell's internal (stack) nodes with the
//!   candidate output voltage pinned;
//! * every **fanout pin** contributes its gate-tunneling current,
//!   evaluated against the fanout cell's stored internal state (which
//!   is refreshed each sweep when that cell is visited as a driver).
//!
//! Unlike the Fig. 13 estimator, nothing is truncated: loading
//! propagates through as many levels as the physics carries it, which
//! is exactly why this solver is the accuracy yardstick (paper
//! Fig. 12a).

use std::collections::HashMap;

use nanoleak_cells::{add_cell, CellType};
use nanoleak_device::{Bias, LeakageBreakdown, Technology, Transistor};
use nanoleak_netlist::logic::simulate;
use nanoleak_netlist::{Circuit, GateId, Pattern};
use nanoleak_solver::{newton, MosNetlist, NewtonOptions, SolverError};

use crate::error::EstimateError;
use crate::report::CircuitLeakage;

/// Options for the reference relaxation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferenceOptions {
    /// Maximum Gauss–Seidel sweeps over all nets.
    pub max_sweeps: usize,
    /// Convergence threshold on the largest per-sweep net-voltage
    /// change \[V\].
    pub tol_v: f64,
    /// Per-net Newton iterations.
    pub net_iters: usize,
}

impl Default for ReferenceOptions {
    fn default() -> Self {
        Self { max_sweeps: 10, tol_v: 2e-7, net_iters: 6 }
    }
}

/// Result of a reference solve.
#[derive(Debug, Clone)]
pub struct ReferenceResult {
    /// Per-gate and total leakage, with the same attribution rules as
    /// the estimator.
    pub leakage: CircuitLeakage,
    /// Sweeps performed.
    pub sweeps: usize,
    /// Final largest per-sweep voltage change \[V\].
    pub final_dv: f64,
    /// Converged net voltages, indexed by `NetId.0` \[V\].
    pub net_voltages: Vec<f64>,
}

/// Where a cell-model device terminal connects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeRef {
    Vdd,
    Gnd,
    In(usize),
    Out,
    Internal(usize),
}

#[derive(Debug, Clone)]
struct ModelDevice {
    t: Transistor,
    d: NodeRef,
    g: NodeRef,
    s: NodeRef,
    b: NodeRef,
}

/// A standard cell lowered to a flat device list with symbolic node
/// references — evaluated directly against net/internal voltages.
#[derive(Debug, Clone)]
struct CellModel {
    devices: Vec<ModelDevice>,
    internals_init: Vec<f64>,
}

impl CellModel {
    fn build(tech: &Technology, cell: CellType) -> Self {
        let mut nl = MosNetlist::new();
        let vdd = nl.add_fixed_node("vdd", tech.vdd);
        let gnd = nl.add_fixed_node("gnd", 0.0);
        let ins: Vec<_> =
            (0..cell.num_inputs()).map(|i| nl.add_fixed_node(&format!("in{i}"), 0.0)).collect();
        let out = nl.add_node("out");
        let pins = add_cell(&mut nl, tech, cell, &ins, out, vdd, gnd, "m");
        let classify = |n: nanoleak_solver::NodeId| -> NodeRef {
            if n == vdd {
                NodeRef::Vdd
            } else if n == gnd {
                NodeRef::Gnd
            } else if n == out {
                NodeRef::Out
            } else if let Some(k) = ins.iter().position(|&i| i == n) {
                NodeRef::In(k)
            } else {
                let k = pins
                    .internals
                    .iter()
                    .position(|&(i, _)| i == n)
                    .expect("node must be an internal");
                NodeRef::Internal(k)
            }
        };
        let devices = nl
            .devices()
            .iter()
            .map(|d| ModelDevice {
                t: d.transistor,
                d: classify(d.d),
                g: classify(d.g),
                s: classify(d.s),
                b: classify(d.b),
            })
            .collect();
        Self { devices, internals_init: pins.internals.iter().map(|&(_, v)| v).collect() }
    }

    #[inline]
    fn resolve(r: NodeRef, vdd: f64, vin: &[f64], vout: f64, internals: &[f64]) -> f64 {
        match r {
            NodeRef::Vdd => vdd,
            NodeRef::Gnd => 0.0,
            NodeRef::In(k) => vin[k],
            NodeRef::Out => vout,
            NodeRef::Internal(k) => internals[k],
        }
    }

    /// Solves the internal stack nodes for pinned pins; `internals` is
    /// both the warm start and the output.
    fn solve_internals(
        &self,
        vdd: f64,
        temp: f64,
        vin: &[f64],
        vout: f64,
        internals: &mut [f64],
    ) -> Result<(), SolverError> {
        if internals.is_empty() {
            return Ok(());
        }
        let residual = |x: &[f64], f: &mut [f64]| {
            f.iter_mut().for_each(|v| *v = 0.0);
            for dev in &self.devices {
                let bias = Bias::new(
                    Self::resolve(dev.g, vdd, vin, vout, x),
                    Self::resolve(dev.d, vdd, vin, vout, x),
                    Self::resolve(dev.s, vdd, vin, vout, x),
                    Self::resolve(dev.b, vdd, vin, vout, x),
                );
                let tc = dev.t.terminal_currents(bias, temp);
                for (node, i) in [(dev.d, tc.d), (dev.g, tc.g), (dev.s, tc.s), (dev.b, tc.b)] {
                    if let NodeRef::Internal(k) = node {
                        f[k] += i;
                    }
                }
            }
        };
        newton::solve(residual, internals, &NewtonOptions::default())?;
        Ok(())
    }

    /// Current flowing from the output node into the cell \[A\].
    fn output_current(
        &self,
        vdd: f64,
        temp: f64,
        vin: &[f64],
        vout: f64,
        internals: &[f64],
    ) -> f64 {
        let mut total = 0.0;
        for dev in &self.devices {
            let bias = Bias::new(
                Self::resolve(dev.g, vdd, vin, vout, internals),
                Self::resolve(dev.d, vdd, vin, vout, internals),
                Self::resolve(dev.s, vdd, vin, vout, internals),
                Self::resolve(dev.b, vdd, vin, vout, internals),
            );
            let tc = dev.t.terminal_currents(bias, temp);
            for (node, i) in [(dev.d, tc.d), (dev.g, tc.g), (dev.s, tc.s), (dev.b, tc.b)] {
                if node == NodeRef::Out {
                    total += i;
                }
            }
        }
        total
    }

    /// Gate-pin current from the net into devices gated by `pin` \[A\].
    fn pin_current(
        &self,
        vdd: f64,
        temp: f64,
        vin: &[f64],
        vout: f64,
        internals: &[f64],
        pin: usize,
    ) -> f64 {
        let mut total = 0.0;
        for dev in &self.devices {
            if dev.g != NodeRef::In(pin) {
                continue;
            }
            let bias = Bias::new(
                vin[pin],
                Self::resolve(dev.d, vdd, vin, vout, internals),
                Self::resolve(dev.s, vdd, vin, vout, internals),
                Self::resolve(dev.b, vdd, vin, vout, internals),
            );
            total += dev.t.terminal_currents(bias, temp).g;
        }
        total
    }

    /// Leakage breakdown of the whole cell.
    fn breakdown(
        &self,
        vdd: f64,
        temp: f64,
        vin: &[f64],
        vout: f64,
        internals: &[f64],
    ) -> LeakageBreakdown {
        let mut total = LeakageBreakdown::ZERO;
        for dev in &self.devices {
            let bias = Bias::new(
                Self::resolve(dev.g, vdd, vin, vout, internals),
                Self::resolve(dev.d, vdd, vin, vout, internals),
                Self::resolve(dev.s, vdd, vin, vout, internals),
                Self::resolve(dev.b, vdd, vin, vout, internals),
            );
            total += dev.t.leakage(bias, temp).1;
        }
        total
    }
}

/// Solves the full circuit and reports leakage.
///
/// # Errors
/// [`EstimateError::BadPattern`] on arity mismatch;
/// [`EstimateError::Solver`] if an internal-node solve diverges.
pub fn reference_leakage(
    circuit: &Circuit,
    tech: &Technology,
    temp: f64,
    pattern: &Pattern,
    opts: &ReferenceOptions,
) -> Result<ReferenceResult, EstimateError> {
    if pattern.pi.len() != circuit.inputs().len()
        || pattern.states.len() != circuit.state_inputs().len()
    {
        return Err(EstimateError::BadPattern("pattern arity mismatch".to_string()));
    }
    let vdd = tech.vdd;
    let values = simulate(circuit, &pattern.pi, &pattern.states);

    // Cell models per type.
    let mut models: HashMap<CellType, CellModel> = HashMap::new();
    for gate in circuit.gates() {
        models.entry(gate.cell).or_insert_with(|| CellModel::build(tech, gate.cell));
    }

    // Initial state: every net at its logic rail; internals at their
    // suggested points.
    let mut net_v: Vec<f64> =
        (0..circuit.net_count()).map(|i| if values[i] { vdd } else { 0.0 }).collect();
    let mut internals: Vec<Vec<f64>> =
        circuit.gates().iter().map(|g| models[&g.cell].internals_init.clone()).collect();

    let gate_vin = |circuit: &Circuit, gid: GateId, net_v: &[f64]| -> Vec<f64> {
        circuit.gate(gid).inputs.iter().map(|n| net_v[n.0]).collect()
    };

    let mut sweeps = 0;
    let mut final_dv = f64::INFINITY;
    for sweep in 0..opts.max_sweeps {
        sweeps = sweep + 1;
        let mut max_dv = 0.0_f64;
        for &gid in circuit.topo_order() {
            let out_net = circuit.gate(gid).output;
            let v0 = net_v[out_net.0];
            let vin_driver = gate_vin(circuit, gid, &net_v);
            let driver_model = &models[&circuit.gate(gid).cell];

            // Residual: current from the net into the driver plus into
            // every fanout pin. Fanout internal states are the stored
            // ones (refreshed when those gates drive their own nets).
            let mut loads_ctx: Vec<(GateId, usize, Vec<f64>, f64)> = Vec::new();
            for load in circuit.net_loads(out_net) {
                let lg = circuit.gate(load.gate);
                let vin_load = gate_vin(circuit, load.gate, &net_v);
                loads_ctx.push((load.gate, load.pin, vin_load, net_v[lg.output.0]));
            }

            let mut v = v0;
            let mut scratch = internals[gid.0].clone();
            for _ in 0..opts.net_iters {
                let r = eval_net_residual(
                    circuit,
                    &models,
                    driver_model,
                    gid,
                    &vin_driver,
                    v,
                    &mut scratch,
                    &loads_ctx,
                    &internals,
                    vdd,
                    temp,
                )?;
                if r.abs() < 1e-14 {
                    break;
                }
                let dh = 2e-5;
                let mut scratch2 = scratch.clone();
                let r2 = eval_net_residual(
                    circuit,
                    &models,
                    driver_model,
                    gid,
                    &vin_driver,
                    v + dh,
                    &mut scratch2,
                    &loads_ctx,
                    &internals,
                    vdd,
                    temp,
                )?;
                let g = (r2 - r) / dh;
                if g.abs().partial_cmp(&1e-18) != Some(std::cmp::Ordering::Greater) {
                    break;
                }
                let step = (-r / g).clamp(-0.05, 0.05);
                v = (v + step).clamp(-0.2, vdd + 0.2);
                if step.abs() < 1e-10 {
                    break;
                }
            }
            // Refresh the driver's internal state at the accepted
            // voltage.
            driver_model.solve_internals(vdd, temp, &vin_driver, v, &mut scratch)?;
            internals[gid.0] = scratch;
            net_v[out_net.0] = v;
            max_dv = max_dv.max((v - v0).abs());
        }
        final_dv = max_dv;
        if max_dv < opts.tol_v {
            break;
        }
    }

    // Accounting pass at the converged state.
    let mut per_gate = vec![LeakageBreakdown::ZERO; circuit.gate_count()];
    for &gid in circuit.topo_order() {
        let gate = circuit.gate(gid);
        let vin = gate_vin(circuit, gid, &net_v);
        let model = &models[&gate.cell];
        per_gate[gid.0] = model.breakdown(vdd, temp, &vin, net_v[gate.output.0], &internals[gid.0]);
    }

    Ok(ReferenceResult {
        leakage: CircuitLeakage::from_gates(per_gate),
        sweeps,
        final_dv,
        net_voltages: net_v,
    })
}

/// KCL residual at a candidate net voltage `v` (current *out of* the
/// net into all attached devices).
#[allow(clippy::too_many_arguments)]
fn eval_net_residual(
    circuit: &Circuit,
    models: &HashMap<CellType, CellModel>,
    driver_model: &CellModel,
    _driver: GateId,
    vin_driver: &[f64],
    v: f64,
    driver_internals: &mut [f64],
    loads_ctx: &[(GateId, usize, Vec<f64>, f64)],
    internals: &[Vec<f64>],
    vdd: f64,
    temp: f64,
) -> Result<f64, SolverError> {
    driver_model.solve_internals(vdd, temp, vin_driver, v, driver_internals)?;
    let mut total = driver_model.output_current(vdd, temp, vin_driver, v, driver_internals);
    for (lgid, pin, vin_load, vout_load) in loads_ctx {
        let model = &models[&circuit.gate(*lgid).cell];
        let mut vin = vin_load.clone();
        vin[*pin] = v;
        total += model.pin_current(vdd, temp, &vin, *vout_load, &internals[lgid.0], *pin);
    }
    Ok(total)
}

/// Runs the reference over a batch of patterns, in parallel.
///
/// # Errors
/// First error encountered.
pub fn reference_batch(
    circuit: &Circuit,
    tech: &Technology,
    temp: f64,
    patterns: &[Pattern],
    opts: &ReferenceOptions,
) -> Result<Vec<ReferenceResult>, EstimateError> {
    if patterns.len() < 2 {
        return patterns.iter().map(|p| reference_leakage(circuit, tech, temp, p, opts)).collect();
    }
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16);
    let chunk = patterns.len().div_ceil(workers);
    let results: Vec<Result<Vec<ReferenceResult>, EstimateError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = patterns
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    slice
                        .iter()
                        .map(|p| reference_leakage(circuit, tech, temp, p, opts))
                        .collect::<Result<Vec<_>, _>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("reference thread panicked")).collect()
    });
    let mut out = Vec::with_capacity(patterns.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_cells::{eval_loaded, CellLibrary, CharacterizeOptions, InputVector};
    use nanoleak_netlist::CircuitBuilder;

    fn tech() -> Technology {
        Technology::d25()
    }

    fn fanout_circuit(n: usize) -> Circuit {
        let mut b = CircuitBuilder::new("fanout");
        let a = b.add_input("a");
        let mid = b.add_gate(CellType::Inv, &[a], "mid");
        for i in 0..n {
            let y = b.add_gate(CellType::Inv, &[mid], &format!("y{i}"));
            b.mark_output(y);
        }
        b.build().unwrap()
    }

    #[test]
    fn single_inverter_matches_cell_eval() {
        // A lone inverter driven by a PI has no loading; the reference
        // must agree with the isolated cell solve to sub-percent.
        let mut b = CircuitBuilder::new("one");
        let a = b.add_input("a");
        let y = b.add_gate(CellType::Inv, &[a], "y");
        b.mark_output(y);
        let c = b.build().unwrap();
        let p = Pattern { pi: vec![false], states: vec![] };
        let r = reference_leakage(&c, &tech(), 300.0, &p, &ReferenceOptions::default()).unwrap();
        let iso = nanoleak_cells::eval_isolated(
            &tech(),
            300.0,
            CellType::Inv,
            InputVector::parse("0").unwrap(),
        )
        .unwrap();
        let rel = (r.leakage.total.total() - iso.breakdown.total()).abs() / iso.breakdown.total();
        assert!(rel < 0.01, "reference vs isolated = {}%", rel * 100.0);
    }

    #[test]
    fn fanout_web_sags_the_shared_net() {
        let c = fanout_circuit(6);
        let p = Pattern { pi: vec![false], states: vec![] };
        let r = reference_leakage(&c, &tech(), 300.0, &p, &ReferenceOptions::default()).unwrap();
        let mid = c.find_net("mid").unwrap();
        let v = r.net_voltages[mid.0];
        // Logic 1, pulled below VDD by six gate pins.
        assert!(v < 0.9 - 2e-4, "V(mid) = {v}");
        assert!(v > 0.9 - 0.02, "V(mid) = {v}");
        assert!(r.final_dv < 1e-6, "converged, final_dv = {}", r.final_dv);
    }

    #[test]
    fn reference_agrees_with_loaded_cell_fixture() {
        // The fanout inverters see an input held by a real driver and
        // loaded by 5 sibling pins — the same physics as eval_loaded
        // with that loading magnitude. Totals should agree to ~1-2%.
        let c = fanout_circuit(6);
        let p = Pattern { pi: vec![false], states: vec![] };
        let r = reference_leakage(&c, &tech(), 300.0, &p, &ReferenceOptions::default()).unwrap();
        // Loading current of 5 sibling INV pins at logic '1'.
        let lib = CellLibrary::shared_with_options(
            &tech(),
            300.0,
            &CharacterizeOptions::coarse(&[CellType::Inv]),
        );
        let pin =
            lib.vector_char(CellType::Inv, InputVector::parse("1").unwrap()).unwrap().pin_currents
                [0];
        let fixture = eval_loaded(
            &tech(),
            300.0,
            CellType::Inv,
            InputVector::parse("1").unwrap(),
            &[(5.0 * pin).abs()],
            0.0,
        )
        .unwrap();
        let per_fanout = r.leakage.per_gate[1];
        let rel =
            (per_fanout.total() - fixture.breakdown.total()).abs() / fixture.breakdown.total();
        assert!(rel < 0.02, "reference vs fixture = {}%", rel * 100.0);
    }

    #[test]
    fn nand_chain_with_stack_nodes_converges() {
        let mut b = CircuitBuilder::new("nands");
        let a = b.add_input("a");
        let c2 = b.add_input("b");
        let mut prev = b.add_gate(CellType::Nand2, &[a, c2], "n0");
        for i in 1..6 {
            prev = b.add_gate(CellType::Nand2, &[prev, a], &format!("n{i}"));
        }
        b.mark_output(prev);
        let c = b.build().unwrap();
        for (pa, pb) in [(false, false), (true, false), (true, true)] {
            let p = Pattern { pi: vec![pa, pb], states: vec![] };
            let r =
                reference_leakage(&c, &tech(), 300.0, &p, &ReferenceOptions::default()).unwrap();
            assert!(r.final_dv < 1e-6, "({pa},{pb}): final_dv = {}", r.final_dv);
            assert!(r.leakage.total.total() > 0.0);
        }
    }

    #[test]
    fn pattern_arity_checked() {
        let c = fanout_circuit(2);
        let p = Pattern { pi: vec![], states: vec![] };
        assert!(matches!(
            reference_leakage(&c, &tech(), 300.0, &p, &ReferenceOptions::default()),
            Err(EstimateError::BadPattern(_))
        ));
    }
}
