//! Leakage reports and estimator-vs-reference comparisons.

use nanoleak_device::LeakageBreakdown;
use serde::{Deserialize, Serialize};

/// Circuit-level leakage result: per-gate breakdowns plus the total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitLeakage {
    /// Breakdown per gate, indexed by `GateId.0`.
    pub per_gate: Vec<LeakageBreakdown>,
    /// Sum over gates.
    pub total: LeakageBreakdown,
}

impl CircuitLeakage {
    /// Builds a report from per-gate breakdowns.
    pub fn from_gates(per_gate: Vec<LeakageBreakdown>) -> Self {
        let total = per_gate.iter().fold(LeakageBreakdown::ZERO, |acc, b| acc + *b);
        Self { per_gate, total }
    }

    /// Leakage power at the given supply \[W\]: `Vdd * I_total`.
    pub fn power(&self, vdd: f64) -> f64 {
        vdd * self.total.total()
    }

    /// Per-component relative change of `self` against `base`
    /// (the paper's "% variation in leakage due to loading" metric of
    /// Fig. 12b/c when `base` is the no-loading estimate).
    pub fn relative_change(&self, base: &Self) -> LeakageBreakdown {
        self.total.relative_to(&base.total, 1e-18)
    }

    /// Relative change of the *total* leakage against `base`.
    pub fn total_relative_change(&self, base: &Self) -> f64 {
        let b = base.total.total();
        if b.abs() <= 1e-18 {
            0.0
        } else {
            (self.total.total() - b) / b
        }
    }
}

/// Accuracy of an estimate against the reference, over one pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Accuracy {
    /// Relative error of total leakage (signed).
    pub total_rel_err: f64,
    /// Mean absolute per-gate relative error (gates below 1 pA are
    /// skipped).
    pub mean_gate_rel_err: f64,
    /// Worst per-gate relative error magnitude.
    pub max_gate_rel_err: f64,
}

/// Compares an estimate to a reference solution.
///
/// # Panics
/// Panics if the gate counts differ.
pub fn accuracy(estimate: &CircuitLeakage, reference: &CircuitLeakage) -> Accuracy {
    assert_eq!(
        estimate.per_gate.len(),
        reference.per_gate.len(),
        "reports cover different circuits"
    );
    let total_rel_err = {
        let r = reference.total.total();
        (estimate.total.total() - r) / r
    };
    let mut sum = 0.0;
    let mut count = 0usize;
    let mut worst: f64 = 0.0;
    for (e, r) in estimate.per_gate.iter().zip(&reference.per_gate) {
        let rt = r.total();
        if rt < 1e-12 {
            continue;
        }
        let rel = ((e.total() - rt) / rt).abs();
        sum += rel;
        count += 1;
        worst = worst.max(rel);
    }
    Accuracy {
        total_rel_err,
        mean_gate_rel_err: if count == 0 { 0.0 } else { sum / count as f64 },
        max_gate_rel_err: worst,
    }
}

/// Aggregates the paper's Fig. 12b/12c statistics over a batch of
/// patterns: the average and maximum per-component % change of leakage
/// caused by loading.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LoadingImpact {
    /// Mean over patterns of the per-component relative change.
    pub avg: LeakageBreakdown,
    /// Mean over patterns of the total-leakage relative change.
    pub avg_total: f64,
    /// Maximum-magnitude per-component relative change over patterns.
    pub max: LeakageBreakdown,
    /// Maximum-magnitude total relative change over patterns.
    pub max_total: f64,
}

impl LoadingImpact {
    /// Computes the impact statistics from per-pattern (loaded,
    /// unloaded) report pairs.
    ///
    /// # Panics
    /// Panics on an empty batch.
    pub fn from_pairs(pairs: &[(CircuitLeakage, CircuitLeakage)]) -> Self {
        assert!(!pairs.is_empty(), "need at least one pattern");
        let n = pairs.len() as f64;
        let mut avg = LeakageBreakdown::ZERO;
        let mut avg_total = 0.0;
        let mut max = LeakageBreakdown::ZERO;
        let mut max_total: f64 = 0.0;
        let keep_larger = |acc: &mut f64, v: f64| {
            if v.abs() > acc.abs() {
                *acc = v;
            }
        };
        for (loaded, unloaded) in pairs {
            let rel = loaded.relative_change(unloaded);
            let rel_total = loaded.total_relative_change(unloaded);
            avg += rel;
            avg_total += rel_total;
            keep_larger(&mut max.sub, rel.sub);
            keep_larger(&mut max.gate, rel.gate);
            keep_larger(&mut max.btbt, rel.btbt);
            keep_larger(&mut max_total, rel_total);
        }
        Self { avg: avg.scaled(1.0 / n), avg_total: avg_total / n, max, max_total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bd(sub: f64, gate: f64, btbt: f64) -> LeakageBreakdown {
        LeakageBreakdown { sub, gate, btbt }
    }

    #[test]
    fn totals_accumulate() {
        let r = CircuitLeakage::from_gates(vec![bd(1.0, 2.0, 3.0), bd(4.0, 5.0, 6.0)]);
        assert_eq!(r.total, bd(5.0, 7.0, 9.0));
        assert!((r.power(0.9) - 0.9 * 21.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_metrics() {
        let est = CircuitLeakage::from_gates(vec![bd(1.1, 0.0, 0.0), bd(2.0, 0.0, 0.0)]);
        let reference = CircuitLeakage::from_gates(vec![bd(1.0, 0.0, 0.0), bd(2.0, 0.0, 0.0)]);
        let a = accuracy(&est, &reference);
        assert!((a.total_rel_err - 0.1 / 3.0).abs() < 1e-12);
        assert!((a.max_gate_rel_err - 0.1).abs() < 1e-12);
        assert!((a.mean_gate_rel_err - 0.05).abs() < 1e-12);
    }

    #[test]
    fn loading_impact_statistics() {
        let unloaded = CircuitLeakage::from_gates(vec![bd(100.0, 50.0, 10.0)]);
        let loaded_a = CircuitLeakage::from_gates(vec![bd(110.0, 49.0, 9.5)]);
        let loaded_b = CircuitLeakage::from_gates(vec![bd(104.0, 50.0, 10.0)]);
        let impact =
            LoadingImpact::from_pairs(&[(loaded_a, unloaded.clone()), (loaded_b, unloaded)]);
        assert!((impact.avg.sub - 0.07).abs() < 1e-12);
        assert!((impact.max.sub - 0.10).abs() < 1e-12);
        assert!(impact.max.gate < 0.0, "gate change is negative");
        assert!(impact.avg_total > 0.0);
    }

    #[test]
    #[should_panic(expected = "different circuits")]
    fn mismatched_reports_panic() {
        let a = CircuitLeakage::from_gates(vec![bd(1.0, 0.0, 0.0)]);
        let b = CircuitLeakage::from_gates(vec![]);
        accuracy(&a, &b);
    }
}
