//! The compiled estimation pipeline: a per-(circuit, library) plan
//! that runs the Fig. 13 pass with **zero heap allocations per
//! pattern** after warm-up.
//!
//! [`estimate`](crate::estimate) is the readable reference
//! implementation, but it re-pays compilation-class costs on every
//! pattern: per-gate `BTreeMap` lookups of the characterized
//! `VectorChar`, per-gate pin-current clones, per-gate `il_in`
//! buffers, and three binary searches per `BreakdownLut::eval`. A
//! 10^6-vector sweep over a 1k-gate circuit performs billions of
//! avoidable allocations and tree walks. [`CompiledEstimator`]
//! hoists all of that work to construction time:
//!
//! * the circuit is flattened into CSR gate-input adjacency
//!   (`in_off`/`in_nets`), per-gate output nets, and per-net
//!   gate-driven flags — no `Gate` pointer chasing in the loop;
//! * every gate's full `2^k` `VectorChar` table is resolved into a
//!   dense index-addressed slab, so the per-pattern lookup is
//!   `vcs[vc_base[gate] + vector_bits]` — no map walks, and
//!   missing-cell errors surface once, at compile time;
//! * the characterization LUTs are re-laid out with their abscissa
//!   grids interned and detected-uniform grids given an O(1)
//!   arithmetic segment index (binary-search fallback for non-uniform
//!   tables), with one segment lookup shared across the sub/gate/btbt
//!   components of each table;
//! * all per-pattern state lives in a reusable [`EstimateScratch`]
//!   (net values, net currents, a flat CSR-aligned pin-current
//!   buffer, a reusable `Pattern`), and per-gate input loading uses a
//!   stack-bounded buffer.
//!
//! ## Bit-identity contract
//!
//! [`CompiledEstimator::estimate_into`] is **bit-identical** to
//! [`estimate`](crate::estimate) for every mode: the same segment
//! selection (including the exact-knot fast-return of `Lut1::eval`),
//! the same interpolation formula evaluated in the same order, the
//! same per-pin/output delta accumulation order, and the same
//! sequential gate-id-order total reduction. The engine's sweeps and
//! MLV searches run on this path, so every determinism guarantee
//! (thread-count and shard-size invariance) carries over unchanged —
//! and is enforced by proptests below plus the engine's cross-path
//! tests.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use nanoleak_cells::{BreakdownLut, CellLibrary, CellType, InputVector};
use nanoleak_device::LeakageBreakdown;
use nanoleak_netlist::{Circuit, Driver, GateId, Pattern};
use rand::SeedableRng;

use crate::error::EstimateError;
use crate::estimator::EstimatorMode;
use crate::exec::mix;
use crate::report::CircuitLeakage;

/// Largest cell fanin the stack-bounded loading buffers support
/// (the cell family tops out at 4 pins; 8 matches `InputVector`).
const MAX_PINS: usize = 8;

/// Where a lookup lands in a grid: exactly on a knot (return the
/// stored sample, like `Lut1::eval`'s `Ok` arm) or inside/beyond a
/// segment (interpolate/extrapolate).
#[derive(Clone, Copy)]
enum Seg {
    Knot(usize),
    Interp(usize),
}

/// One interned abscissa grid shared by many compiled tables. The
/// knots themselves live in the plan's flat `xs_slab`, so the struct
/// stays small and the hot path dereferences one slab, not a
/// `Vec<Vec<f64>>` chain.
#[derive(Debug, Clone, Copy)]
struct PlanGrid {
    xs_off: u32,
    len: u32,
    /// `(n-1) / xs[n-1]` when the grid is numerically uniform from
    /// zero (the `CharacterizeOptions::grid` layout) — enables the
    /// O(1) arithmetic segment index. NaN marks a non-uniform grid
    /// (binary-search fallback).
    inv_step: f64,
}

impl PlanGrid {
    fn describe(xs: &[f64], xs_off: u32) -> Self {
        let n = xs.len();
        let inv_step = if n >= 2 && xs[0] == 0.0 && xs[n - 1] > 0.0 {
            let step = xs[n - 1] / (n - 1) as f64;
            let uniform =
                xs.iter().enumerate().all(|(i, &x)| (x - step * i as f64).abs() <= step * 1e-9);
            if uniform {
                (n - 1) as f64 / xs[n - 1]
            } else {
                f64::NAN
            }
        } else {
            f64::NAN
        };
        Self { xs_off, len: n as u32, inv_step }
    }
}

/// Selects the same knot-or-segment `Lut1::eval`'s
/// `binary_search_by(total_cmp)` would.
#[inline]
fn locate(xs: &[f64], inv_step: f64, x: f64) -> Seg {
    if inv_step.is_nan() {
        locate_binary(xs, x)
    } else {
        locate_uniform(xs, inv_step, x)
    }
}

/// Verbatim clone of `Lut1::eval`'s segment selection.
fn locate_binary(xs: &[f64], x: f64) -> Seg {
    let n = xs.len();
    match xs.binary_search_by(|v| v.total_cmp(&x)) {
        Ok(i) => Seg::Knot(i),
        Err(0) => Seg::Interp(0),
        Err(i) if i >= n => Seg::Interp(n - 2),
        Err(i) => Seg::Interp(i - 1),
    }
}

/// O(1) arithmetic hint plus a local total-order fix-up, so the
/// result agrees with [`locate_binary`] bit-for-bit even at rounding
/// boundaries, below the grid, beyond it, and for NaN (which
/// total-orders above every finite knot).
#[inline]
fn locate_uniform(xs: &[f64], inv_step: f64, x: f64) -> Seg {
    let n = xs.len();
    // NaN and negative x cast to 0; oversized x saturates.
    let mut i = ((x * inv_step) as usize).min(n - 2);
    while i > 0 && xs[i].total_cmp(&x) == Ordering::Greater {
        i -= 1;
    }
    while i + 1 < n - 1 && xs[i + 1].total_cmp(&x) != Ordering::Greater {
        i += 1;
    }
    if xs[i].total_cmp(&x) == Ordering::Equal {
        Seg::Knot(i)
    } else if xs[i + 1].total_cmp(&x) == Ordering::Equal {
        Seg::Knot(i + 1)
    } else {
        Seg::Interp(i)
    }
}

/// One compiled `Lut1`: an interned grid plus an ordinate run in the
/// shared slab.
#[derive(Clone, Copy)]
struct PlanLut1 {
    grid: u32,
    ys: u32,
}

/// One compiled `BreakdownLut`.
///
/// Characterization samples all three components on one abscissa
/// sweep, so the common (`Shared`) layout interleaves their ordinates
/// as `[sub, gate, btbt]` triples per knot: evaluation does a single
/// segment lookup and reads two adjacent triples. `Split` is the
/// fallback for tables whose components somehow carry different
/// grids (possible only through hand-built libraries).
enum PlanBreakdownLut {
    Shared { grid: u32, ys: u32 },
    Split { sub: PlanLut1, gate: PlanLut1, btbt: PlanLut1 },
}

/// One resolved (cell, vector) characterization in the dense slab.
struct PlanVectorChar {
    nominal: LeakageBreakdown,
    /// The vector itself (needed by direct-solve mode).
    vector: InputVector,
    /// Pin count.
    pins: u32,
    /// Offset of this state's pin currents in the flat slab.
    pin_off: u32,
    /// Offset of this state's tables in `luts`: `pins` input-response
    /// tables followed by the output-response table.
    lut_off: u32,
}

/// A compiled estimation plan for one (circuit, library) pair.
///
/// Construction ([`CompiledEstimator::compile`]) pays every lookup,
/// clone, and validation once; [`CompiledEstimator::estimate_into`]
/// then evaluates patterns with zero heap allocations (LUT and
/// no-loading modes) against a reusable [`EstimateScratch`].
///
/// # Examples
/// ```
/// use nanoleak_cells::{CellLibrary, CellType, CharacterizeOptions};
/// use nanoleak_core::{estimate, CompiledEstimator, EstimatorMode};
/// use nanoleak_device::Technology;
/// use nanoleak_netlist::{CircuitBuilder, Pattern};
///
/// let tech = Technology::d25();
/// let lib = CellLibrary::shared_with_options(
///     &tech, 300.0, &CharacterizeOptions::coarse(&[CellType::Inv]));
/// let mut b = CircuitBuilder::new("pair");
/// let a = b.add_input("a");
/// let x = b.add_gate(CellType::Inv, &[a], "x");
/// let y = b.add_gate(CellType::Inv, &[x], "y");
/// b.mark_output(y);
/// let circuit = b.build()?;
///
/// let plan = CompiledEstimator::compile(&circuit, &lib)?;
/// let mut scratch = plan.scratch();
/// let p = Pattern::zeros(&circuit);
/// let total = plan.estimate_into(&mut scratch, &p, EstimatorMode::Lut)?;
/// // Bit-identical to the reference implementation.
/// let reference = estimate(&circuit, &lib, &p, EstimatorMode::Lut)?;
/// assert_eq!(total, reference.total);
/// assert_eq!(scratch.per_gate(), reference.per_gate.as_slice());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct CompiledEstimator<'a> {
    circuit: &'a Circuit,
    library: &'a CellLibrary,
    /// CSR offsets into `in_nets`, one entry per gate plus a tail.
    in_off: Vec<u32>,
    /// Flattened per-gate input nets, pin order.
    in_nets: Vec<u32>,
    /// Output net per gate.
    out_net: Vec<u32>,
    /// Cell type per gate (direct-solve mode).
    gate_cell: Vec<CellType>,
    /// Base of each gate's `2^k` vector-char block in `vcs`.
    vc_base: Vec<u32>,
    /// Per-net flag: driven by a gate (`true`) or held by an ideal
    /// primary/state input (`false`, no loading shift).
    gate_driven: Vec<bool>,
    /// Gate evaluation order for the simulation and leakage passes
    /// (mirrors `estimate`'s traversal, so direct-solve errors surface
    /// for the same gate).
    topo: Vec<u32>,
    vcs: Vec<PlanVectorChar>,
    /// Output logic level per `vcs` entry, precomputed from
    /// `CellType::eval_logic` — the fused simulation pass is one slab
    /// read per gate.
    logic_slab: Vec<bool>,
    pin_current_slab: Vec<f64>,
    luts: Vec<PlanBreakdownLut>,
    ys_slab: Vec<f64>,
    xs_slab: Vec<f64>,
    grids: Vec<PlanGrid>,
}

/// Reusable per-worker buffers for [`CompiledEstimator`]. All vectors
/// are pre-sized by [`CompiledEstimator::scratch`], so repeated
/// estimates never touch the allocator.
#[derive(Debug, Default)]
pub struct EstimateScratch {
    /// Logic value per net.
    values: Vec<bool>,
    /// Summed pin current per net \[A\].
    net_current: Vec<f64>,
    /// Resolved vector-char slab index per gate.
    gate_vc: Vec<u32>,
    /// Leakage breakdown per gate, indexed by `GateId.0`.
    per_gate: Vec<LeakageBreakdown>,
    /// Reusable pattern buffer for index-derived sweep patterns.
    pattern: Pattern,
}

impl EstimateScratch {
    /// Per-gate breakdowns of the most recent estimate, indexed by
    /// `GateId.0`.
    pub fn per_gate(&self) -> &[LeakageBreakdown] {
        &self.per_gate
    }
}

impl<'a> CompiledEstimator<'a> {
    /// Flattens `circuit` against `library` into a compiled plan.
    ///
    /// # Errors
    /// [`EstimateError::MissingCell`] if the library lacks any cell
    /// type the circuit uses (reported for the lowest-id offending
    /// gate, like the reference path).
    pub fn compile(circuit: &'a Circuit, library: &'a CellLibrary) -> Result<Self, EstimateError> {
        let n_gates = circuit.gate_count();
        let n_nets = circuit.net_count();

        let mut plan = Self {
            circuit,
            library,
            in_off: Vec::with_capacity(n_gates + 1),
            in_nets: Vec::new(),
            out_net: Vec::with_capacity(n_gates),
            gate_cell: Vec::with_capacity(n_gates),
            vc_base: Vec::with_capacity(n_gates),
            gate_driven: (0..n_nets)
                .map(|n| matches!(circuit.net_driver(nanoleak_netlist::NetId(n)), Driver::Gate(_)))
                .collect(),
            topo: circuit.topo_order().iter().map(|g| g.0 as u32).collect(),
            vcs: Vec::new(),
            logic_slab: Vec::new(),
            pin_current_slab: Vec::new(),
            luts: Vec::new(),
            ys_slab: Vec::new(),
            xs_slab: Vec::new(),
            grids: Vec::new(),
        };

        let mut cell_blocks: BTreeMap<CellType, u32> = BTreeMap::new();
        plan.in_off.push(0);
        for gid in 0..n_gates {
            let gate = circuit.gate(GateId(gid));
            let base = match cell_blocks.get(&gate.cell) {
                Some(&base) => base,
                None => {
                    let base = plan.compile_cell(gate.cell)?;
                    cell_blocks.insert(gate.cell, base);
                    base
                }
            };
            plan.vc_base.push(base);
            plan.gate_cell.push(gate.cell);
            plan.out_net.push(gate.output.0 as u32);
            plan.in_nets.extend(gate.inputs.iter().map(|n| n.0 as u32));
            plan.in_off.push(plan.in_nets.len() as u32);
        }
        Ok(plan)
    }

    /// Resolves one cell type's full `2^k` vector table into the slab,
    /// returning the block base.
    fn compile_cell(&mut self, cell: CellType) -> Result<u32, EstimateError> {
        assert!(cell.num_inputs() <= MAX_PINS, "{cell}: fanin exceeds {MAX_PINS}");
        let chars = self.library.cell(cell).ok_or(EstimateError::MissingCell(cell))?;
        let base = self.vcs.len() as u32;
        for vc in chars.vectors() {
            let pin_off = self.pin_current_slab.len() as u32;
            self.pin_current_slab.extend_from_slice(&vc.pin_currents);
            let lut_off = self.luts.len() as u32;
            for resp in &vc.input_resp {
                let compiled = self.compile_blut(resp);
                self.luts.push(compiled);
            }
            let output = self.compile_blut(&vc.output_resp);
            self.luts.push(output);
            // The fused simulation pass propagates logic through this
            // table; derive it from `eval_logic` (exactly what the
            // reference `simulate` computes), not from the solver's
            // characterized output level.
            self.logic_slab.push(cell.eval_logic(&vc.vector.to_bools()));
            self.vcs.push(PlanVectorChar {
                nominal: vc.nominal,
                vector: vc.vector,
                pins: vc.pin_currents.len() as u32,
                pin_off,
                lut_off,
            });
        }
        Ok(base)
    }

    fn compile_blut(&mut self, lut: &BreakdownLut) -> PlanBreakdownLut {
        let g_sub = self.intern_grid(lut.sub.xs());
        let g_gate = self.intern_grid(lut.gate.xs());
        let g_btbt = self.intern_grid(lut.btbt.xs());
        if g_sub == g_gate && g_gate == g_btbt {
            // Shared grid: interleave the ordinates as [sub, gate,
            // btbt] triples so one segment lookup reads contiguous
            // memory.
            let ys = self.ys_slab.len() as u32;
            for i in 0..lut.sub.xs().len() {
                self.ys_slab.push(lut.sub.ys()[i]);
                self.ys_slab.push(lut.gate.ys()[i]);
                self.ys_slab.push(lut.btbt.ys()[i]);
            }
            PlanBreakdownLut::Shared { grid: g_sub, ys }
        } else {
            PlanBreakdownLut::Split {
                sub: self.compile_lut1(g_sub, lut.sub.ys()),
                gate: self.compile_lut1(g_gate, lut.gate.ys()),
                btbt: self.compile_lut1(g_btbt, lut.btbt.ys()),
            }
        }
    }

    fn compile_lut1(&mut self, grid: u32, ys_in: &[f64]) -> PlanLut1 {
        let ys = self.ys_slab.len() as u32;
        self.ys_slab.extend_from_slice(ys_in);
        PlanLut1 { grid, ys }
    }

    /// Interns an abscissa grid, deduplicating bit-exact repeats (the
    /// common case: every table in a library shares one
    /// characterization grid).
    fn intern_grid(&mut self, xs: &[f64]) -> u32 {
        let same = |g: &&PlanGrid| {
            let gx = &self.xs_slab[g.xs_off as usize..(g.xs_off + g.len) as usize];
            gx.len() == xs.len() && gx.iter().zip(xs).all(|(a, b)| a.to_bits() == b.to_bits())
        };
        if let Some(i) = self.grids.iter().position(|g| same(&g)) {
            return i as u32;
        }
        let xs_off = self.xs_slab.len() as u32;
        self.xs_slab.extend_from_slice(xs);
        self.grids.push(PlanGrid::describe(xs, xs_off));
        (self.grids.len() - 1) as u32
    }

    /// The knot slice backing one interned grid.
    #[inline]
    fn grid_xs(&self, g: PlanGrid) -> &[f64] {
        &self.xs_slab[g.xs_off as usize..(g.xs_off + g.len) as usize]
    }

    /// The circuit this plan was compiled for.
    pub fn circuit(&self) -> &'a Circuit {
        self.circuit
    }

    /// The library this plan was compiled against.
    pub fn library(&self) -> &'a CellLibrary {
        self.library
    }

    /// A scratch pre-sized for this plan, ready for allocation-free
    /// estimates. Keep one per worker thread.
    pub fn scratch(&self) -> EstimateScratch {
        let n_gates = self.gate_cell.len();
        EstimateScratch {
            values: vec![false; self.gate_driven.len()],
            net_current: vec![0.0; self.gate_driven.len()],
            gate_vc: vec![0; n_gates],
            per_gate: vec![LeakageBreakdown::ZERO; n_gates],
            pattern: Pattern {
                pi: Vec::with_capacity(self.circuit.inputs().len()),
                states: Vec::with_capacity(self.circuit.state_inputs().len()),
            },
        }
    }

    /// The nets currently assigned to `gate`'s input pins, in pin
    /// order (raw net indices). Reflects any
    /// [`permute_gate_inputs`](Self::permute_gate_inputs) applied
    /// since compilation.
    pub fn gate_input_nets(&self, gate: GateId) -> &[u32] {
        &self.in_nets[self.in_off[gate.0] as usize..self.in_off[gate.0 + 1] as usize]
    }

    /// Reorders one gate's pin assignment in place: after the call,
    /// pin `k` of `gate` is driven by the net that previously drove
    /// pin `perm[k]`.
    ///
    /// This is *exactly* equivalent to recompiling against a circuit
    /// whose gate has the permuted input list — the fused passes build
    /// the vector-char index from `in_nets` order, deposit pin
    /// currents by the same positions, and the own-pin loading
    /// subtraction reads them back positionally — so `nanoleak-opt`
    /// can score every pin assignment of a gate without a recompile or
    /// an allocation. The caller must keep the permutation inside the
    /// cell's commutative prefix
    /// ([`CellType::commutative_prefix`](nanoleak_cells::CellType::commutative_prefix)):
    /// the simulation pass reads pins positionally, so permuting an
    /// asymmetric pin would change the computed logic function. Note
    /// the plan no longer matches [`circuit`](Self::circuit) pin-level
    /// until permutations are undone or the circuit is rebuilt.
    ///
    /// # Panics
    /// If `perm.len()` differs from the gate's pin count.
    pub fn permute_gate_inputs(&mut self, gate: GateId, perm: &[usize]) {
        let s = self.in_off[gate.0] as usize;
        let e = self.in_off[gate.0 + 1] as usize;
        let n = e - s;
        assert_eq!(perm.len(), n, "permutation arity mismatch");
        let mut tmp = [0u32; MAX_PINS];
        tmp[..n].copy_from_slice(&self.in_nets[s..e]);
        for (k, &p) in perm.iter().enumerate() {
            self.in_nets[s + k] = tmp[p];
        }
    }

    /// Fig. 13 for one pattern on the compiled plan, bit-identical to
    /// [`estimate`](crate::estimate) (same total *and* the same
    /// per-gate breakdowns, readable via
    /// [`EstimateScratch::per_gate`]). Performs no heap allocation in
    /// `Lut`/`NoLoading` modes once `scratch` is warm.
    ///
    /// # Errors
    /// * [`EstimateError::BadPattern`] on arity mismatch;
    /// * [`EstimateError::Solver`] from direct-solve mode.
    pub fn estimate_into(
        &self,
        scratch: &mut EstimateScratch,
        pattern: &Pattern,
        mode: EstimatorMode,
    ) -> Result<LeakageBreakdown, EstimateError> {
        if pattern.pi.len() != self.circuit.inputs().len() {
            return Err(EstimateError::BadPattern(format!(
                "{} primary-input values for {} inputs",
                pattern.pi.len(),
                self.circuit.inputs().len()
            )));
        }
        if pattern.states.len() != self.circuit.state_inputs().len() {
            return Err(EstimateError::BadPattern(format!(
                "{} DFF states for {} flip-flops",
                pattern.states.len(),
                self.circuit.state_inputs().len()
            )));
        }
        self.run(scratch, &pattern.pi, &pattern.states, mode)
    }

    /// Estimates the seed-derived sweep pattern at `index` (the same
    /// stream as the engine's `pattern_for_index`: a `StdRng` seeded
    /// with SplitMix64 `mix(seed, index)`), generating the pattern
    /// straight into the scratch's reusable buffer — no per-index
    /// `Pattern` allocation.
    ///
    /// # Errors
    /// As [`CompiledEstimator::estimate_into`].
    pub fn estimate_index_into(
        &self,
        scratch: &mut EstimateScratch,
        seed: u64,
        index: usize,
        mode: EstimatorMode,
    ) -> Result<LeakageBreakdown, EstimateError> {
        let mut pattern = std::mem::take(&mut scratch.pattern);
        let mut rng = rand::rngs::StdRng::seed_from_u64(mix(seed, index as u64));
        pattern.fill_random(self.circuit, &mut rng);
        let out = self.estimate_into(scratch, &pattern, mode);
        scratch.pattern = pattern;
        out
    }

    /// [`CompiledEstimator::estimate_into`] packaged as an owned
    /// [`CircuitLeakage`] report (allocates the report itself).
    ///
    /// # Errors
    /// As [`CompiledEstimator::estimate_into`].
    pub fn estimate_report(
        &self,
        scratch: &mut EstimateScratch,
        pattern: &Pattern,
        mode: EstimatorMode,
    ) -> Result<CircuitLeakage, EstimateError> {
        let total = self.estimate_into(scratch, pattern, mode)?;
        Ok(CircuitLeakage { per_gate: scratch.per_gate.clone(), total })
    }

    /// The fused simulation + loading + leakage passes.
    fn run(
        &self,
        scratch: &mut EstimateScratch,
        pi: &[bool],
        states: &[bool],
        mode: EstimatorMode,
    ) -> Result<LeakageBreakdown, EstimateError> {
        let n_gates = self.gate_cell.len();
        scratch.values.clear();
        scratch.values.resize(self.gate_driven.len(), false);
        scratch.gate_vc.clear();
        scratch.gate_vc.resize(n_gates, 0);
        scratch.per_gate.clear();
        scratch.per_gate.resize(n_gates, LeakageBreakdown::ZERO);

        // Fused simulation pass (topo order, like `simulate`): collect
        // each gate's input bits once, resolve its vector-char slab
        // index, and propagate its output level from the precomputed
        // `eval_logic` slab.
        for (net, &v) in self.circuit.inputs().iter().zip(pi) {
            scratch.values[net.0] = v;
        }
        for (net, &state) in self.circuit.state_inputs().iter().zip(states) {
            scratch.values[net.0] = !state;
        }
        for &g in &self.topo {
            let g = g as usize;
            let (s, e) = (self.in_off[g] as usize, self.in_off[g + 1] as usize);
            let mut bits = 0u32;
            for (k, &net) in self.in_nets[s..e].iter().enumerate() {
                bits |= (scratch.values[net as usize] as u32) << k;
            }
            let vc_idx = self.vc_base[g] + bits;
            scratch.gate_vc[g] = vc_idx;
            scratch.values[self.out_net[g] as usize] = self.logic_slab[vc_idx as usize];
        }

        // Loading pass, gate-id order — the accumulation order of
        // `LoadingState::build`, so per-net sums are bit-identical.
        if mode != EstimatorMode::NoLoading {
            scratch.net_current.clear();
            scratch.net_current.resize(self.gate_driven.len(), 0.0);
            for g in 0..n_gates {
                let vc = &self.vcs[scratch.gate_vc[g] as usize];
                let s = self.in_off[g] as usize;
                let pins = vc.pins as usize;
                for k in 0..pins {
                    scratch.net_current[self.in_nets[s + k] as usize] +=
                        self.pin_current_slab[vc.pin_off as usize + k];
                }
            }
        }

        // Leakage pass. Gates are independent given the loading state,
        // so traversal order cannot change any value — the Lut and
        // NoLoading passes run in gate-id order (cache-sequential over
        // every per-gate array), while DirectSolve keeps the reference
        // walk's topo order so solver errors surface for the same gate
        // `estimate()` would report.
        match mode {
            EstimatorMode::NoLoading => {
                for g in 0..n_gates {
                    scratch.per_gate[g] = self.vcs[scratch.gate_vc[g] as usize].nominal;
                }
            }
            EstimatorMode::Lut => {
                for g in 0..n_gates {
                    let vc = &self.vcs[scratch.gate_vc[g] as usize];
                    let pins = vc.pins as usize;
                    let in_off = self.in_off[g] as usize;
                    // `VectorChar::leakage` verbatim: nominal, plus the
                    // per-pin input deltas in pin order, plus the
                    // output delta, clamped non-negative.
                    let mut b = vc.nominal;
                    for k in 0..pins {
                        let il = self.input_loading(scratch, vc, in_off, k);
                        b += self.blut_eval(&self.luts[vc.lut_off as usize + k], il.abs());
                    }
                    let il_out = scratch.net_current[self.out_net[g] as usize].abs();
                    b += self.blut_eval(&self.luts[vc.lut_off as usize + pins], il_out.abs());
                    scratch.per_gate[g] = LeakageBreakdown {
                        sub: b.sub.max(0.0),
                        gate: b.gate.max(0.0),
                        btbt: b.btbt.max(0.0),
                    };
                }
            }
            EstimatorMode::DirectSolve => {
                for &g in &self.topo {
                    let g = g as usize;
                    let vc = &self.vcs[scratch.gate_vc[g] as usize];
                    let pins = vc.pins as usize;
                    let in_off = self.in_off[g] as usize;
                    let mut il_in = [0.0_f64; MAX_PINS];
                    for (k, slot) in il_in[..pins].iter_mut().enumerate() {
                        *slot = self.input_loading(scratch, vc, in_off, k);
                    }
                    let il_out = scratch.net_current[self.out_net[g] as usize].abs();
                    scratch.per_gate[g] = nanoleak_cells::eval_loaded(
                        &self.library.tech,
                        self.library.temp,
                        self.gate_cell[g],
                        vc.vector,
                        &il_in[..pins],
                        il_out,
                    )?
                    .breakdown;
                }
            }
        }

        // The same sequential gate-id-order reduction as
        // `CircuitLeakage::from_gates`.
        Ok(scratch.per_gate.iter().fold(LeakageBreakdown::ZERO, |acc, b| acc + *b))
    }

    /// Input-loading magnitude on one pin: the other gates' summed pin
    /// currents on that net (`LoadingState::input_loading` verbatim —
    /// the gate's own contribution comes straight from the pin-current
    /// slab); zero on ideal-source nets.
    #[inline]
    fn input_loading(
        &self,
        scratch: &EstimateScratch,
        vc: &PlanVectorChar,
        in_off: usize,
        pin: usize,
    ) -> f64 {
        let net = self.in_nets[in_off + pin] as usize;
        if self.gate_driven[net] {
            let own = self.pin_current_slab[vc.pin_off as usize + pin];
            (scratch.net_current[net] - own).abs()
        } else {
            0.0
        }
    }

    /// Evaluates one compiled breakdown table at loading magnitude
    /// `x`: one segment lookup shared across the three components, and
    /// (in the interleaved layout) two adjacent ordinate triples. The
    /// per-component arithmetic is `Lut1::eval`'s, verbatim.
    #[inline]
    fn blut_eval(&self, lut: &PlanBreakdownLut, x: f64) -> LeakageBreakdown {
        match *lut {
            PlanBreakdownLut::Shared { grid, ys } => {
                let grid = self.grids[grid as usize];
                let xs = self.grid_xs(grid);
                let ys = ys as usize;
                match locate(xs, grid.inv_step, x) {
                    Seg::Knot(i) => {
                        let t = &self.ys_slab[ys + 3 * i..ys + 3 * i + 3];
                        LeakageBreakdown { sub: t[0], gate: t[1], btbt: t[2] }
                    }
                    Seg::Interp(s) => {
                        let (x0, x1) = (xs[s], xs[s + 1]);
                        let t = &self.ys_slab[ys + 3 * s..ys + 3 * s + 6];
                        // One division for all three components —
                        // `Lut1::eval` computes the identical `d`.
                        let d = (x - x0) / (x1 - x0);
                        LeakageBreakdown {
                            sub: t[0] + d * (t[3] - t[0]),
                            gate: t[1] + d * (t[4] - t[1]),
                            btbt: t[2] + d * (t[5] - t[2]),
                        }
                    }
                }
            }
            PlanBreakdownLut::Split { sub, gate, btbt } => LeakageBreakdown {
                sub: self.lut_eval(sub, x),
                gate: self.lut_eval(gate, x),
                btbt: self.lut_eval(btbt, x),
            },
        }
    }

    #[inline]
    fn lut_eval(&self, lut: PlanLut1, x: f64) -> f64 {
        let grid = self.grids[lut.grid as usize];
        let xs = self.grid_xs(grid);
        let ys = lut.ys as usize;
        match locate(xs, grid.inv_step, x) {
            Seg::Knot(i) => self.ys_slab[ys + i],
            Seg::Interp(s) => {
                let (x0, x1) = (xs[s], xs[s + 1]);
                let (y0, y1) = (self.ys_slab[ys + s], self.ys_slab[ys + s + 1]);
                let d = (x - x0) / (x1 - x0);
                y0 + d * (y1 - y0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::estimate;
    use nanoleak_cells::CharacterizeOptions;
    use nanoleak_device::Technology;
    use nanoleak_netlist::generate::{random_circuit, RandomCircuitSpec};
    use nanoleak_netlist::normalize::normalize;
    use nanoleak_netlist::CircuitBuilder;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn library() -> Arc<CellLibrary> {
        CellLibrary::shared_with_options(
            &Technology::d25(),
            300.0,
            &CharacterizeOptions::coarse(&CellType::ALL),
        )
    }

    fn assert_bit_identical(
        circuit: &Circuit,
        lib: &CellLibrary,
        pattern: &Pattern,
        mode: EstimatorMode,
    ) {
        let reference = estimate(circuit, lib, pattern, mode).unwrap();
        let plan = CompiledEstimator::compile(circuit, lib).unwrap();
        let mut scratch = plan.scratch();
        let total = plan.estimate_into(&mut scratch, pattern, mode).unwrap();
        assert_eq!(total.total().to_bits(), reference.total.total().to_bits(), "{mode:?}");
        assert_eq!(total, reference.total);
        assert_eq!(scratch.per_gate(), reference.per_gate.as_slice(), "{mode:?}");
    }

    #[test]
    fn compiled_matches_reference_on_fanout_web() {
        let mut b = CircuitBuilder::new("fanout");
        let a = b.add_input("a");
        let mid = b.add_gate(CellType::Inv, &[a], "mid");
        for i in 0..6 {
            let y = b.add_gate(CellType::Inv, &[mid], &format!("y{i}"));
            b.mark_output(y);
        }
        let circuit = b.build().unwrap();
        let lib = library();
        for pi in [false, true] {
            let p = Pattern { pi: vec![pi], states: vec![] };
            for mode in [EstimatorMode::NoLoading, EstimatorMode::Lut, EstimatorMode::DirectSolve] {
                assert_bit_identical(&circuit, &lib, &p, mode);
            }
        }
    }

    #[test]
    fn compiled_index_stream_matches_reference_pattern_stream() {
        let raw = random_circuit(&RandomCircuitSpec::new("plan-idx", 6, 3, 40, 2, 17));
        let circuit = normalize(&raw).unwrap();
        let lib = library();
        let plan = CompiledEstimator::compile(&circuit, &lib).unwrap();
        let mut scratch = plan.scratch();
        for index in 0..16 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(mix(2005, index as u64));
            let pattern = Pattern::random(&circuit, &mut rng);
            let reference = estimate(&circuit, &lib, &pattern, EstimatorMode::Lut).unwrap();
            let total =
                plan.estimate_index_into(&mut scratch, 2005, index, EstimatorMode::Lut).unwrap();
            assert_eq!(total, reference.total, "index {index}");
        }
    }

    #[test]
    fn permuted_plan_matches_recompiled_permuted_circuit() {
        // In-place pin permutation must be bit-identical to compiling
        // a circuit built with that pin order — totals and per-gate
        // breakdowns — in every estimator mode.
        fn build(swap: bool) -> Circuit {
            let mut b = CircuitBuilder::new("perm");
            let a = b.add_input("a");
            let c = b.add_input("b");
            let x = b.add_gate(CellType::Inv, &[c], "x");
            let pins = if swap { [x, a] } else { [a, x] };
            let y = b.add_gate(CellType::Nand2, &pins, "y");
            b.mark_output(y);
            b.build().unwrap()
        }
        let base = build(false);
        let swapped = build(true);
        let lib = library();
        let mut plan = CompiledEstimator::compile(&base, &lib).unwrap();
        let swapped_plan = CompiledEstimator::compile(&swapped, &lib).unwrap();
        let mut s1 = plan.scratch();
        let mut s2 = swapped_plan.scratch();
        let nand = GateId(1);
        for mode in [EstimatorMode::NoLoading, EstimatorMode::Lut, EstimatorMode::DirectSolve] {
            for bits in 0..4u32 {
                let p = Pattern { pi: vec![bits & 1 == 1, bits & 2 == 2], states: vec![] };
                plan.permute_gate_inputs(nand, &[1, 0]);
                let permuted = plan.estimate_into(&mut s1, &p, mode).unwrap();
                let direct = swapped_plan.estimate_into(&mut s2, &p, mode).unwrap();
                assert_eq!(permuted.total().to_bits(), direct.total().to_bits(), "{mode:?}");
                assert_eq!(s1.per_gate(), s2.per_gate(), "{mode:?} {bits}");
                // Undo restores the original plan exactly.
                plan.permute_gate_inputs(nand, &[1, 0]);
                let restored = plan.estimate_into(&mut s1, &p, mode).unwrap();
                let reference = estimate(&base, &lib, &p, mode).unwrap();
                assert_eq!(restored.total().to_bits(), reference.total.total().to_bits());
            }
        }
    }

    #[test]
    fn scratch_state_never_leaks_across_patterns() {
        // Estimating A, then B, then A again must reproduce A exactly
        // even though the scratch was dirtied in between (different
        // vector, different mode).
        let raw = random_circuit(&RandomCircuitSpec::new("plan-reuse", 5, 3, 30, 1, 3));
        let circuit = normalize(&raw).unwrap();
        let lib = library();
        let plan = CompiledEstimator::compile(&circuit, &lib).unwrap();
        let mut scratch = plan.scratch();
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let a = Pattern::random(&circuit, &mut rng);
        let b = Pattern::random(&circuit, &mut rng);
        let first = plan.estimate_into(&mut scratch, &a, EstimatorMode::Lut).unwrap();
        let _ = plan.estimate_into(&mut scratch, &b, EstimatorMode::NoLoading).unwrap();
        let _ = plan.estimate_into(&mut scratch, &b, EstimatorMode::Lut).unwrap();
        let again = plan.estimate_into(&mut scratch, &a, EstimatorMode::Lut).unwrap();
        assert_eq!(first, again);
    }

    #[test]
    fn compile_reports_missing_cells_up_front() {
        let mut b = CircuitBuilder::new("missing");
        let a = b.add_input("a");
        let x = b.add_gate(CellType::Nor2, &[a, a], "x");
        b.mark_output(x);
        let circuit = b.build().unwrap();
        let lib = CellLibrary::shared_with_options(
            &Technology::d25(),
            300.0,
            &CharacterizeOptions::coarse(&[CellType::Inv]),
        );
        assert!(matches!(
            CompiledEstimator::compile(&circuit, &lib),
            Err(EstimateError::MissingCell(CellType::Nor2))
        ));
    }

    #[test]
    fn bad_pattern_arity_rejected() {
        let mut b = CircuitBuilder::new("arity");
        let a = b.add_input("a");
        let y = b.add_gate(CellType::Inv, &[a], "y");
        b.mark_output(y);
        let circuit = b.build().unwrap();
        let lib = library();
        let plan = CompiledEstimator::compile(&circuit, &lib).unwrap();
        let mut scratch = plan.scratch();
        let p = Pattern { pi: vec![], states: vec![] };
        assert!(matches!(
            plan.estimate_into(&mut scratch, &p, EstimatorMode::Lut),
            Err(EstimateError::BadPattern(_))
        ));
    }

    #[test]
    fn uniform_segment_index_agrees_with_binary_search_everywhere() {
        // Drive locate through knots, midpoints, boundaries, below,
        // beyond, and NaN on a grid laid out exactly like
        // `CharacterizeOptions::grid`.
        let n = 11;
        let max = 7.0e-6;
        let xs: Vec<f64> = (0..n).map(|i| max * i as f64 / (n - 1) as f64).collect();
        let grid = PlanGrid::describe(&xs, 0);
        assert!(!grid.inv_step.is_nan(), "grid() layout must be detected uniform");
        let mut probes: Vec<f64> = vec![-1.0, -1e-12, 0.0, 1e-9, max, max + 1e-7, 1e-3, f64::NAN];
        for w in xs.windows(2) {
            probes.push(w[0]);
            probes.push((w[0] + w[1]) / 2.0);
            probes.push(f64::midpoint(w[0], w[1]).next_up());
            probes.push(w[1].next_down());
        }
        for &x in &probes {
            let a = locate_uniform(&xs, grid.inv_step, x);
            let b = locate_binary(&xs, x);
            let key = |s: &Seg| match *s {
                Seg::Knot(i) => (0, i),
                Seg::Interp(i) => (1, i),
            };
            assert_eq!(key(&a), key(&b), "x = {x:e}");
        }
    }

    #[test]
    fn irregular_grids_fall_back_to_binary_search() {
        let g = PlanGrid::describe(&[0.0, 1.0, 10.0, 11.0], 0);
        assert!(g.inv_step.is_nan(), "non-uniform grid must not take the arithmetic path");
        let g = PlanGrid::describe(&[1.0, 2.0, 3.0], 0);
        assert!(g.inv_step.is_nan(), "grids not anchored at zero are not uniform");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The tentpole contract: on random circuits (with DFF state
        /// bits) and random patterns the compiled plan reproduces the
        /// reference `estimate()` bit-for-bit in every mode.
        #[test]
        fn compiled_path_is_bit_identical_to_estimate(seed in any::<u64>()) {
            let lib = library();
            let raw = random_circuit(&RandomCircuitSpec::new("plan-prop", 6, 2, 35, 2, seed));
            let circuit = normalize(&raw).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x706c616e);
            for _ in 0..3 {
                let p = Pattern::random(&circuit, &mut rng);
                for mode in [EstimatorMode::NoLoading, EstimatorMode::Lut] {
                    assert_bit_identical(&circuit, &lib, &p, mode);
                }
            }
        }

        /// Direct-solve mode (slow: per-gate transistor re-solves) on
        /// small circuits.
        #[test]
        fn compiled_direct_solve_is_bit_identical(seed in any::<u64>()) {
            let lib = library();
            let raw = random_circuit(&RandomCircuitSpec::new("plan-ds", 4, 2, 8, 0, seed));
            let circuit = normalize(&raw).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x6473);
            let p = Pattern::random(&circuit, &mut rng);
            assert_bit_identical(&circuit, &lib, &p, EstimatorMode::DirectSolve);
        }
    }
}
