//! The compiled estimation pipeline: a per-(circuit, library) plan
//! that runs the Fig. 13 pass with **zero heap allocations per
//! pattern** after warm-up.
//!
//! [`estimate`](crate::estimate) is the readable reference
//! implementation, but it re-pays compilation-class costs on every
//! pattern: per-gate `BTreeMap` lookups of the characterized
//! `VectorChar`, per-gate pin-current clones, per-gate `il_in`
//! buffers, and three binary searches per `BreakdownLut::eval`. A
//! 10^6-vector sweep over a 1k-gate circuit performs billions of
//! avoidable allocations and tree walks. [`CompiledEstimator`]
//! hoists all of that work to construction time:
//!
//! * the circuit is flattened into CSR gate-input adjacency
//!   (`in_off`/`in_nets`), per-gate output nets, and per-net
//!   gate-driven flags — no `Gate` pointer chasing in the loop;
//! * every gate's full `2^k` `VectorChar` table is resolved into a
//!   dense index-addressed slab, so the per-pattern lookup is
//!   `vcs[vc_base[gate] + vector_bits]` — no map walks, and
//!   missing-cell errors surface once, at compile time;
//! * the characterization LUTs are re-laid out with their abscissa
//!   grids interned and detected-uniform grids given an O(1)
//!   arithmetic segment index (binary-search fallback for non-uniform
//!   tables), with one segment lookup shared across the sub/gate/btbt
//!   components of each table;
//! * all per-pattern state lives in a reusable [`EstimateScratch`]
//!   (net values, net currents, a flat CSR-aligned pin-current
//!   buffer, a reusable `Pattern`), and per-gate input loading uses a
//!   stack-bounded buffer.
//!
//! ## Bit-identity contract
//!
//! [`CompiledEstimator::estimate_into`] is **bit-identical** to
//! [`estimate`](crate::estimate) for every mode: the same segment
//! selection (including the exact-knot fast-return of `Lut1::eval`),
//! the same interpolation formula evaluated in the same order, the
//! same per-pin/output delta accumulation order, and the same
//! sequential gate-id-order total reduction. The engine's sweeps and
//! MLV searches run on this path, so every determinism guarantee
//! (thread-count and shard-size invariance) carries over unchanged —
//! and is enforced by proptests below plus the engine's cross-path
//! tests.
//!
//! ## The block path: two kernels, [`LANES`] patterns at a time
//!
//! [`CompiledEstimator::estimate_block_into`] evaluates a packed
//! [`PatternBlock`] of up to [`LANES`] (= 64) patterns through two
//! kernels:
//!
//! 1. a **simulate kernel** that holds one `u64` word per net — bit
//!    `l` is lane `l`'s logic value — and walks the topo order once
//!    per block, evaluating each gate as a sum of minterm masks read
//!    off the same `eval_logic` truth-table slab the scalar pass
//!    uses;
//! 2. a **resolve kernel** that turns per-lane net states into
//!    leakage. In `Lut` mode it is table-driven: at (lazy) block-plan
//!    build time, per-gate responses are precomputed for each
//!    combination of their *support nets* — the nets the scalar
//!    arithmetic actually depends on — with exactly the scalar
//!    pass's floating-point operations in exactly the scalar order,
//!    so a lookup is bit-identical to recomputing. Three tiers:
//!    a gate whose whole clamped breakdown has at most
//!    [`MAX_SUPPORT_BITS`] support nets (its inputs plus the inputs
//!    of every gate loading its input and output nets) gets one
//!    whole-gate table (one lookup per lane); wider gates split into
//!    per-*term* tables (one per pin response and one for the output
//!    response, each over its own narrower support, summed per lane
//!    in the scalar order before the clamp); terms still wider than
//!    the bound — high-fanout hub nets — evaluate at runtime from
//!    per-lane net currents, folded in the scalar loading pass's
//!    order. The global [`MAX_TABLE_ENTRIES`] budget caps total
//!    table memory.
//!
//! **The block path is bit-identical to the scalar path** — and hence
//! to [`estimate`](crate::estimate) — for every mode: per-lane totals
//! accumulate per-gate breakdowns sequentially in gate-id order (the
//! scalar reduction order), and callers consume
//! [`BlockScratch::totals`] in lane order, so any stats reduction
//! stays in strict pattern-index order. `DirectSolve` mode and plans
//! whose pin wiring was changed by
//! [`permute_gate_inputs`](CompiledEstimator::permute_gate_inputs)
//! (the optimizer's probe) serve each lane through the scalar kernel
//! instead — same results, no acceleration — because the response
//! tables are compiled against the original wiring.
//! [`BlockScratch`] carries the same zero-allocation-per-block
//! contract as [`EstimateScratch`] once warm (the first `Lut`-mode
//! block builds the response tables and sizes the runtime-current
//! buffer).

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::sync::OnceLock;

use nanoleak_cells::{BreakdownLut, CellLibrary, CellType, InputVector};
use nanoleak_device::LeakageBreakdown;
use nanoleak_netlist::{Circuit, Driver, GateId, NetId, Pattern};
pub use nanoleak_netlist::{PatternBlock, LANES};
use rand::SeedableRng;

use crate::error::EstimateError;
use crate::estimator::EstimatorMode;
use crate::exec::mix;
use crate::report::CircuitLeakage;

/// Largest cell fanin the stack-bounded loading buffers support
/// (the cell family tops out at 4 pins; 8 matches `InputVector`).
const MAX_PINS: usize = 8;

/// Largest support-net count a block response table covers
/// (`2^bits` precomputed entries per table). Applies to whole-gate
/// tables and per-term tables alike; on ISCAS-sized netlists ~75% of
/// gates fit whole and all but a few percent of the remaining terms
/// fit split, leaving only true high-fanout hubs on the runtime
/// path.
pub const MAX_SUPPORT_BITS: usize = 12;

/// Global budget of precomputed response-table entries per plan
/// (~24 MiB of breakdowns at the cap). Gates past the budget fall
/// back like over-wide ones.
pub const MAX_TABLE_ENTRIES: usize = 1 << 20;

/// `tbl_off` sentinel: gate (or term) not served by a table.
const TABLE_FALLBACK: u32 = u32::MAX;

/// One additive term of a split (tier-B) gate response: the pin-`pin`
/// input response (or, at `pin == pins`, the output response), either
/// as a precomputed table over its own support nets or as a runtime
/// evaluation against per-lane net currents.
struct BlockTerm {
    /// Offset of the term's `2^sup_len` entries in `tbl`, or
    /// [`TABLE_FALLBACK`] for runtime evaluation.
    tbl: u32,
    /// Support run in `sup_nets` (table terms only).
    sup_start: u32,
    sup_len: u32,
    /// Input pin index, or the gate's pin count for the output term
    /// (also the term's LUT offset from the gate's `lut_off`).
    pin: u32,
    /// The net whose loading current feeds this term.
    net: u32,
}

/// Resolves a requested lane count (`0` = auto) to a concrete one.
///
/// # Panics
/// If `requested` is not `0`, `1`, or [`LANES`] — config validation
/// belongs at the API edge (CLI/server), so the engine treats any
/// other value as a programming error.
pub fn resolve_lanes(requested: usize) -> usize {
    match requested {
        0 => LANES,
        1 | LANES => requested,
        other => panic!("unsupported lane count {other} (expected 1 or {LANES})"),
    }
}

/// The lazily built block-resolve plan: per-gate response tables plus
/// the runtime-current fallback layout. Built once per
/// [`CompiledEstimator`] (against its compile-time wiring) on first
/// `Lut`-mode block estimate or [`CompiledEstimator::prepare_block`].
struct BlockTables {
    /// Per gate: offset of its `2^support` entry run in `tbl`, or
    /// [`TABLE_FALLBACK`].
    tbl_off: Vec<u32>,
    /// CSR offsets into `sup_nets`, one per gate plus a tail
    /// (fallback gates own an empty run).
    sup_off: Vec<u32>,
    /// Flattened per-gate support nets; bit `j` of a table index is
    /// the value of support net `j`.
    sup_nets: Vec<u32>,
    /// Precomputed breakdowns: whole-gate entries are clamped gate
    /// responses, term entries are unclamped single-LUT deltas.
    tbl: Vec<LeakageBreakdown>,
    /// CSR offsets into `terms`, one per gate plus a tail (whole-gate
    /// table gates own an empty run).
    term_off: Vec<u32>,
    /// Flattened per-gate terms of split gates, pins in order then
    /// the output — the scalar accumulation order.
    terms: Vec<BlockTerm>,
    /// Nets whose runtime per-lane currents the runtime terms read.
    rt_nets: Vec<u32>,
    /// Per net: its slot in `rt_nets`, or `u32::MAX`.
    rt_slot: Vec<u32>,
    /// CSR offsets into `rt_loads`, one per `rt_nets` entry plus a
    /// tail.
    rt_off: Vec<u32>,
    /// Flattened (gate, pin) loads per runtime net, in the scalar
    /// loading pass's accumulation order.
    rt_loads: Vec<(u32, u32)>,
    /// Gates split into per-term service (diagnostics/tests).
    fallback_gates: usize,
    /// Terms evaluated at runtime (diagnostics/tests).
    rt_terms: usize,
}

/// Reusable per-worker buffers for the block path
/// ([`CompiledEstimator::estimate_block_into`]). Like
/// [`EstimateScratch`], repeated block estimates perform no heap
/// allocation once the buffers are warm; keep one per worker thread.
///
/// `Default` yields an unsized scratch that warms up on first use, so
/// workers that see many plans over one circuit (the MC path) can
/// reuse a single scratch across compiles.
#[derive(Debug, Default)]
pub struct BlockScratch {
    /// One packed word per net: bit `l` is lane `l`'s logic value.
    words: Vec<u64>,
    /// Runtime per-lane net currents for fallback gates,
    /// `rt_slot * LANES + lane`.
    rt_cur: Vec<f64>,
    /// Per-lane totals of the most recent block, lane order.
    totals: Vec<LeakageBreakdown>,
    /// Scalar scratch backing the per-lane fallback kernels.
    inner: EstimateScratch,
    /// Reusable block for index-derived sweep patterns.
    index_block: PatternBlock,
}

impl BlockScratch {
    /// Per-lane totals of the most recent block estimate, in lane
    /// (pattern-index) order; one entry per packed lane.
    pub fn totals(&self) -> &[LeakageBreakdown] {
        &self.totals
    }
}

/// Where a lookup lands in a grid: exactly on a knot (return the
/// stored sample, like `Lut1::eval`'s `Ok` arm) or inside/beyond a
/// segment (interpolate/extrapolate).
#[derive(Clone, Copy)]
enum Seg {
    Knot(usize),
    Interp(usize),
}

/// One interned abscissa grid shared by many compiled tables. The
/// knots themselves live in the plan's flat `xs_slab`, so the struct
/// stays small and the hot path dereferences one slab, not a
/// `Vec<Vec<f64>>` chain.
#[derive(Debug, Clone, Copy)]
struct PlanGrid {
    xs_off: u32,
    len: u32,
    /// `(n-1) / xs[n-1]` when the grid is numerically uniform from
    /// zero (the `CharacterizeOptions::grid` layout) — enables the
    /// O(1) arithmetic segment index. NaN marks a non-uniform grid
    /// (binary-search fallback).
    inv_step: f64,
}

impl PlanGrid {
    fn describe(xs: &[f64], xs_off: u32) -> Self {
        let n = xs.len();
        let inv_step = if n >= 2 && xs[0] == 0.0 && xs[n - 1] > 0.0 {
            let step = xs[n - 1] / (n - 1) as f64;
            let uniform =
                xs.iter().enumerate().all(|(i, &x)| (x - step * i as f64).abs() <= step * 1e-9);
            if uniform {
                (n - 1) as f64 / xs[n - 1]
            } else {
                f64::NAN
            }
        } else {
            f64::NAN
        };
        Self { xs_off, len: n as u32, inv_step }
    }
}

/// Selects the same knot-or-segment `Lut1::eval`'s
/// `binary_search_by(total_cmp)` would.
#[inline]
fn locate(xs: &[f64], inv_step: f64, x: f64) -> Seg {
    if inv_step.is_nan() {
        locate_binary(xs, x)
    } else {
        locate_uniform(xs, inv_step, x)
    }
}

/// Verbatim clone of `Lut1::eval`'s segment selection.
fn locate_binary(xs: &[f64], x: f64) -> Seg {
    let n = xs.len();
    match xs.binary_search_by(|v| v.total_cmp(&x)) {
        Ok(i) => Seg::Knot(i),
        Err(0) => Seg::Interp(0),
        Err(i) if i >= n => Seg::Interp(n - 2),
        Err(i) => Seg::Interp(i - 1),
    }
}

/// O(1) arithmetic hint plus a local total-order fix-up, so the
/// result agrees with [`locate_binary`] bit-for-bit even at rounding
/// boundaries, below the grid, beyond it, and for NaN (which
/// total-orders above every finite knot).
#[inline]
fn locate_uniform(xs: &[f64], inv_step: f64, x: f64) -> Seg {
    let n = xs.len();
    // NaN and negative x cast to 0; oversized x saturates.
    let mut i = ((x * inv_step) as usize).min(n - 2);
    while i > 0 && xs[i].total_cmp(&x) == Ordering::Greater {
        i -= 1;
    }
    while i + 1 < n - 1 && xs[i + 1].total_cmp(&x) != Ordering::Greater {
        i += 1;
    }
    if xs[i].total_cmp(&x) == Ordering::Equal {
        Seg::Knot(i)
    } else if xs[i + 1].total_cmp(&x) == Ordering::Equal {
        Seg::Knot(i + 1)
    } else {
        Seg::Interp(i)
    }
}

/// One compiled `Lut1`: an interned grid plus an ordinate run in the
/// shared slab.
#[derive(Clone, Copy)]
struct PlanLut1 {
    grid: u32,
    ys: u32,
}

/// One compiled `BreakdownLut`.
///
/// Characterization samples all three components on one abscissa
/// sweep, so the common (`Shared`) layout interleaves their ordinates
/// as `[sub, gate, btbt]` triples per knot: evaluation does a single
/// segment lookup and reads two adjacent triples. `Split` is the
/// fallback for tables whose components somehow carry different
/// grids (possible only through hand-built libraries).
enum PlanBreakdownLut {
    Shared { grid: u32, ys: u32 },
    Split { sub: PlanLut1, gate: PlanLut1, btbt: PlanLut1 },
}

/// One resolved (cell, vector) characterization in the dense slab.
struct PlanVectorChar {
    nominal: LeakageBreakdown,
    /// The vector itself (needed by direct-solve mode).
    vector: InputVector,
    /// Pin count.
    pins: u32,
    /// Offset of this state's pin currents in the flat slab.
    pin_off: u32,
    /// Offset of this state's tables in `luts`: `pins` input-response
    /// tables followed by the output-response table.
    lut_off: u32,
}

/// A compiled estimation plan for one (circuit, library) pair.
///
/// Construction ([`CompiledEstimator::compile`]) pays every lookup,
/// clone, and validation once; [`CompiledEstimator::estimate_into`]
/// then evaluates patterns with zero heap allocations (LUT and
/// no-loading modes) against a reusable [`EstimateScratch`].
///
/// # Examples
/// ```
/// use nanoleak_cells::{CellLibrary, CellType, CharacterizeOptions};
/// use nanoleak_core::{estimate, CompiledEstimator, EstimatorMode};
/// use nanoleak_device::Technology;
/// use nanoleak_netlist::{CircuitBuilder, Pattern};
///
/// let tech = Technology::d25();
/// let lib = CellLibrary::shared_with_options(
///     &tech, 300.0, &CharacterizeOptions::coarse(&[CellType::Inv]));
/// let mut b = CircuitBuilder::new("pair");
/// let a = b.add_input("a");
/// let x = b.add_gate(CellType::Inv, &[a], "x");
/// let y = b.add_gate(CellType::Inv, &[x], "y");
/// b.mark_output(y);
/// let circuit = b.build()?;
///
/// let plan = CompiledEstimator::compile(&circuit, &lib)?;
/// let mut scratch = plan.scratch();
/// let p = Pattern::zeros(&circuit);
/// let total = plan.estimate_into(&mut scratch, &p, EstimatorMode::Lut)?;
/// // Bit-identical to the reference implementation.
/// let reference = estimate(&circuit, &lib, &p, EstimatorMode::Lut)?;
/// assert_eq!(total, reference.total);
/// assert_eq!(scratch.per_gate(), reference.per_gate.as_slice());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct CompiledEstimator<'a> {
    circuit: &'a Circuit,
    library: &'a CellLibrary,
    /// CSR offsets into `in_nets`, one entry per gate plus a tail.
    in_off: Vec<u32>,
    /// Flattened per-gate input nets, pin order.
    in_nets: Vec<u32>,
    /// Output net per gate.
    out_net: Vec<u32>,
    /// Cell type per gate (direct-solve mode).
    gate_cell: Vec<CellType>,
    /// Base of each gate's `2^k` vector-char block in `vcs`.
    vc_base: Vec<u32>,
    /// Per-net flag: driven by a gate (`true`) or held by an ideal
    /// primary/state input (`false`, no loading shift).
    gate_driven: Vec<bool>,
    /// Gate evaluation order for the simulation and leakage passes
    /// (mirrors `estimate`'s traversal, so direct-solve errors surface
    /// for the same gate).
    topo: Vec<u32>,
    vcs: Vec<PlanVectorChar>,
    /// Output logic level per `vcs` entry, precomputed from
    /// `CellType::eval_logic` — the fused simulation pass is one slab
    /// read per gate.
    logic_slab: Vec<bool>,
    pin_current_slab: Vec<f64>,
    luts: Vec<PlanBreakdownLut>,
    ys_slab: Vec<f64>,
    xs_slab: Vec<f64>,
    grids: Vec<PlanGrid>,
    /// Snapshot of `in_nets` at compile time. The block response
    /// tables are valid only while the live wiring still equals this
    /// snapshot; `permute_gate_inputs` diverges from it (and undoing
    /// the permutation restores it), and the block path compares
    /// before trusting the tables.
    compiled_wiring: Vec<u32>,
    /// Lazily built block-resolve plan (shared across threads).
    block: OnceLock<BlockTables>,
}

/// Reusable per-worker buffers for [`CompiledEstimator`]. All vectors
/// are pre-sized by [`CompiledEstimator::scratch`], so repeated
/// estimates never touch the allocator.
#[derive(Debug, Default)]
pub struct EstimateScratch {
    /// Logic value per net.
    values: Vec<bool>,
    /// Summed pin current per net \[A\].
    net_current: Vec<f64>,
    /// Resolved vector-char slab index per gate.
    gate_vc: Vec<u32>,
    /// Leakage breakdown per gate, indexed by `GateId.0`.
    per_gate: Vec<LeakageBreakdown>,
    /// Reusable pattern buffer for index-derived sweep patterns.
    pattern: Pattern,
}

impl EstimateScratch {
    /// Per-gate breakdowns of the most recent estimate, indexed by
    /// `GateId.0`.
    pub fn per_gate(&self) -> &[LeakageBreakdown] {
        &self.per_gate
    }
}

impl<'a> CompiledEstimator<'a> {
    /// Flattens `circuit` against `library` into a compiled plan.
    ///
    /// # Errors
    /// [`EstimateError::MissingCell`] if the library lacks any cell
    /// type the circuit uses (reported for the lowest-id offending
    /// gate, like the reference path).
    pub fn compile(circuit: &'a Circuit, library: &'a CellLibrary) -> Result<Self, EstimateError> {
        let n_gates = circuit.gate_count();
        let n_nets = circuit.net_count();

        let mut plan = Self {
            circuit,
            library,
            in_off: Vec::with_capacity(n_gates + 1),
            in_nets: Vec::new(),
            out_net: Vec::with_capacity(n_gates),
            gate_cell: Vec::with_capacity(n_gates),
            vc_base: Vec::with_capacity(n_gates),
            gate_driven: (0..n_nets)
                .map(|n| matches!(circuit.net_driver(nanoleak_netlist::NetId(n)), Driver::Gate(_)))
                .collect(),
            topo: circuit.topo_order().iter().map(|g| g.0 as u32).collect(),
            vcs: Vec::new(),
            logic_slab: Vec::new(),
            pin_current_slab: Vec::new(),
            luts: Vec::new(),
            ys_slab: Vec::new(),
            xs_slab: Vec::new(),
            grids: Vec::new(),
            compiled_wiring: Vec::new(),
            block: OnceLock::new(),
        };

        let mut cell_blocks: BTreeMap<CellType, u32> = BTreeMap::new();
        plan.in_off.push(0);
        for gid in 0..n_gates {
            let gate = circuit.gate(GateId(gid));
            let base = match cell_blocks.get(&gate.cell) {
                Some(&base) => base,
                None => {
                    let base = plan.compile_cell(gate.cell)?;
                    cell_blocks.insert(gate.cell, base);
                    base
                }
            };
            plan.vc_base.push(base);
            plan.gate_cell.push(gate.cell);
            plan.out_net.push(gate.output.0 as u32);
            plan.in_nets.extend(gate.inputs.iter().map(|n| n.0 as u32));
            plan.in_off.push(plan.in_nets.len() as u32);
        }
        plan.compiled_wiring = plan.in_nets.clone();
        Ok(plan)
    }

    /// Resolves one cell type's full `2^k` vector table into the slab,
    /// returning the block base.
    fn compile_cell(&mut self, cell: CellType) -> Result<u32, EstimateError> {
        assert!(cell.num_inputs() <= MAX_PINS, "{cell}: fanin exceeds {MAX_PINS}");
        let chars = self.library.cell(cell).ok_or(EstimateError::MissingCell(cell))?;
        let base = self.vcs.len() as u32;
        for vc in chars.vectors() {
            let pin_off = self.pin_current_slab.len() as u32;
            self.pin_current_slab.extend_from_slice(&vc.pin_currents);
            let lut_off = self.luts.len() as u32;
            for resp in &vc.input_resp {
                let compiled = self.compile_blut(resp);
                self.luts.push(compiled);
            }
            let output = self.compile_blut(&vc.output_resp);
            self.luts.push(output);
            // The fused simulation pass propagates logic through this
            // table; derive it from `eval_logic` (exactly what the
            // reference `simulate` computes), not from the solver's
            // characterized output level.
            self.logic_slab.push(cell.eval_logic(&vc.vector.to_bools()));
            self.vcs.push(PlanVectorChar {
                nominal: vc.nominal,
                vector: vc.vector,
                pins: vc.pin_currents.len() as u32,
                pin_off,
                lut_off,
            });
        }
        Ok(base)
    }

    fn compile_blut(&mut self, lut: &BreakdownLut) -> PlanBreakdownLut {
        let g_sub = self.intern_grid(lut.sub.xs());
        let g_gate = self.intern_grid(lut.gate.xs());
        let g_btbt = self.intern_grid(lut.btbt.xs());
        if g_sub == g_gate && g_gate == g_btbt {
            // Shared grid: interleave the ordinates as [sub, gate,
            // btbt] triples so one segment lookup reads contiguous
            // memory.
            let ys = self.ys_slab.len() as u32;
            for i in 0..lut.sub.xs().len() {
                self.ys_slab.push(lut.sub.ys()[i]);
                self.ys_slab.push(lut.gate.ys()[i]);
                self.ys_slab.push(lut.btbt.ys()[i]);
            }
            PlanBreakdownLut::Shared { grid: g_sub, ys }
        } else {
            PlanBreakdownLut::Split {
                sub: self.compile_lut1(g_sub, lut.sub.ys()),
                gate: self.compile_lut1(g_gate, lut.gate.ys()),
                btbt: self.compile_lut1(g_btbt, lut.btbt.ys()),
            }
        }
    }

    fn compile_lut1(&mut self, grid: u32, ys_in: &[f64]) -> PlanLut1 {
        let ys = self.ys_slab.len() as u32;
        self.ys_slab.extend_from_slice(ys_in);
        PlanLut1 { grid, ys }
    }

    /// Interns an abscissa grid, deduplicating bit-exact repeats (the
    /// common case: every table in a library shares one
    /// characterization grid).
    fn intern_grid(&mut self, xs: &[f64]) -> u32 {
        let same = |g: &&PlanGrid| {
            let gx = &self.xs_slab[g.xs_off as usize..(g.xs_off + g.len) as usize];
            gx.len() == xs.len() && gx.iter().zip(xs).all(|(a, b)| a.to_bits() == b.to_bits())
        };
        if let Some(i) = self.grids.iter().position(|g| same(&g)) {
            return i as u32;
        }
        let xs_off = self.xs_slab.len() as u32;
        self.xs_slab.extend_from_slice(xs);
        self.grids.push(PlanGrid::describe(xs, xs_off));
        (self.grids.len() - 1) as u32
    }

    /// The knot slice backing one interned grid.
    #[inline]
    fn grid_xs(&self, g: PlanGrid) -> &[f64] {
        &self.xs_slab[g.xs_off as usize..(g.xs_off + g.len) as usize]
    }

    /// The circuit this plan was compiled for.
    pub fn circuit(&self) -> &'a Circuit {
        self.circuit
    }

    /// The library this plan was compiled against.
    pub fn library(&self) -> &'a CellLibrary {
        self.library
    }

    /// A scratch pre-sized for this plan, ready for allocation-free
    /// estimates. Keep one per worker thread.
    pub fn scratch(&self) -> EstimateScratch {
        let n_gates = self.gate_cell.len();
        EstimateScratch {
            values: vec![false; self.gate_driven.len()],
            net_current: vec![0.0; self.gate_driven.len()],
            gate_vc: vec![0; n_gates],
            per_gate: vec![LeakageBreakdown::ZERO; n_gates],
            pattern: Pattern {
                pi: Vec::with_capacity(self.circuit.inputs().len()),
                states: Vec::with_capacity(self.circuit.state_inputs().len()),
            },
        }
    }

    /// The nets currently assigned to `gate`'s input pins, in pin
    /// order (raw net indices). Reflects any
    /// [`permute_gate_inputs`](Self::permute_gate_inputs) applied
    /// since compilation.
    pub fn gate_input_nets(&self, gate: GateId) -> &[u32] {
        &self.in_nets[self.in_off[gate.0] as usize..self.in_off[gate.0 + 1] as usize]
    }

    /// Reorders one gate's pin assignment in place: after the call,
    /// pin `k` of `gate` is driven by the net that previously drove
    /// pin `perm[k]`.
    ///
    /// This is *exactly* equivalent to recompiling against a circuit
    /// whose gate has the permuted input list — the fused passes build
    /// the vector-char index from `in_nets` order, deposit pin
    /// currents by the same positions, and the own-pin loading
    /// subtraction reads them back positionally — so `nanoleak-opt`
    /// can score every pin assignment of a gate without a recompile or
    /// an allocation. The caller must keep the permutation inside the
    /// cell's commutative prefix
    /// ([`CellType::commutative_prefix`](nanoleak_cells::CellType::commutative_prefix)):
    /// the simulation pass reads pins positionally, so permuting an
    /// asymmetric pin would change the computed logic function. Note
    /// the plan no longer matches [`circuit`](Self::circuit) pin-level
    /// until permutations are undone or the circuit is rebuilt.
    ///
    /// # Panics
    /// If `perm.len()` differs from the gate's pin count.
    pub fn permute_gate_inputs(&mut self, gate: GateId, perm: &[usize]) {
        let s = self.in_off[gate.0] as usize;
        let e = self.in_off[gate.0 + 1] as usize;
        let n = e - s;
        assert_eq!(perm.len(), n, "permutation arity mismatch");
        let mut tmp = [0u32; MAX_PINS];
        tmp[..n].copy_from_slice(&self.in_nets[s..e]);
        for (k, &p) in perm.iter().enumerate() {
            self.in_nets[s + k] = tmp[p];
        }
    }

    /// Fig. 13 for one pattern on the compiled plan, bit-identical to
    /// [`estimate`](crate::estimate) (same total *and* the same
    /// per-gate breakdowns, readable via
    /// [`EstimateScratch::per_gate`]). Performs no heap allocation in
    /// `Lut`/`NoLoading` modes once `scratch` is warm.
    ///
    /// # Errors
    /// * [`EstimateError::BadPattern`] on arity mismatch;
    /// * [`EstimateError::Solver`] from direct-solve mode.
    pub fn estimate_into(
        &self,
        scratch: &mut EstimateScratch,
        pattern: &Pattern,
        mode: EstimatorMode,
    ) -> Result<LeakageBreakdown, EstimateError> {
        if pattern.pi.len() != self.circuit.inputs().len() {
            return Err(EstimateError::BadPattern(format!(
                "{} primary-input values for {} inputs",
                pattern.pi.len(),
                self.circuit.inputs().len()
            )));
        }
        if pattern.states.len() != self.circuit.state_inputs().len() {
            return Err(EstimateError::BadPattern(format!(
                "{} DFF states for {} flip-flops",
                pattern.states.len(),
                self.circuit.state_inputs().len()
            )));
        }
        self.run(scratch, &pattern.pi, &pattern.states, mode)
    }

    /// Estimates the seed-derived sweep pattern at `index` (the same
    /// stream as the engine's `pattern_for_index`: a `StdRng` seeded
    /// with SplitMix64 `mix(seed, index)`), generating the pattern
    /// straight into the scratch's reusable buffer — no per-index
    /// `Pattern` allocation.
    ///
    /// # Errors
    /// As [`CompiledEstimator::estimate_into`].
    pub fn estimate_index_into(
        &self,
        scratch: &mut EstimateScratch,
        seed: u64,
        index: usize,
        mode: EstimatorMode,
    ) -> Result<LeakageBreakdown, EstimateError> {
        let mut pattern = std::mem::take(&mut scratch.pattern);
        let mut rng = rand::rngs::StdRng::seed_from_u64(mix(seed, index as u64));
        pattern.fill_random(self.circuit, &mut rng);
        let out = self.estimate_into(scratch, &pattern, mode);
        scratch.pattern = pattern;
        out
    }

    /// [`CompiledEstimator::estimate_into`] packaged as an owned
    /// [`CircuitLeakage`] report (allocates the report itself).
    ///
    /// # Errors
    /// As [`CompiledEstimator::estimate_into`].
    pub fn estimate_report(
        &self,
        scratch: &mut EstimateScratch,
        pattern: &Pattern,
        mode: EstimatorMode,
    ) -> Result<CircuitLeakage, EstimateError> {
        let total = self.estimate_into(scratch, pattern, mode)?;
        Ok(CircuitLeakage { per_gate: scratch.per_gate.clone(), total })
    }

    /// A block scratch for this plan, ready for allocation-free block
    /// estimates once warm. Keep one per worker thread.
    pub fn block_scratch(&self) -> BlockScratch {
        BlockScratch {
            words: vec![0; self.gate_driven.len()],
            rt_cur: Vec::new(),
            totals: Vec::with_capacity(LANES),
            inner: self.scratch(),
            index_block: PatternBlock::for_circuit(self.circuit),
        }
    }

    /// Builds the block response tables now (they are otherwise built
    /// lazily by the first `Lut`-mode block estimate), so callers can
    /// charge the cost to a compile stage instead of the first shard.
    /// No-op when the plan's wiring has been permuted away from its
    /// compiled state.
    pub fn prepare_block(&self) {
        if self.in_nets == self.compiled_wiring {
            let _ = self.block_tables();
        }
    }

    /// Gates the block plan serves through the runtime fallback
    /// instead of a response table (support wider than
    /// [`MAX_SUPPORT_BITS`] or past the [`MAX_TABLE_ENTRIES`]
    /// budget). Builds the tables if needed.
    pub fn block_fallback_gates(&self) -> usize {
        self.block_tables().fallback_gates
    }

    fn block_tables(&self) -> &BlockTables {
        self.block.get_or_init(|| self.build_block_tables())
    }

    /// Evaluates every packed lane of `block`, leaving one total per
    /// lane in [`BlockScratch::totals`] (lane order = pattern-index
    /// order). Bit-identical to calling
    /// [`estimate_into`](Self::estimate_into) per lane, in every
    /// mode; see the module docs for the kernel split. `Lut` mode
    /// builds the response tables on first use; `DirectSolve` mode
    /// and permuted plans run each lane through the scalar kernel.
    ///
    /// # Errors
    /// * [`EstimateError::BadPattern`] on arity mismatch;
    /// * [`EstimateError::Solver`] from direct-solve mode.
    pub fn estimate_block_into(
        &self,
        scratch: &mut BlockScratch,
        block: &PatternBlock,
        mode: EstimatorMode,
    ) -> Result<(), EstimateError> {
        self.check_block(block)?;
        let len = block.len();
        scratch.totals.clear();
        scratch.totals.resize(len, LeakageBreakdown::ZERO);
        if len == 0 {
            return Ok(());
        }
        if mode == EstimatorMode::DirectSolve || self.in_nets != self.compiled_wiring {
            return self.run_block_scalar(scratch, block, mode);
        }
        self.simulate_block(&mut scratch.words, block);
        match mode {
            EstimatorMode::NoLoading => self.resolve_nominal_block(scratch, len),
            EstimatorMode::Lut => {
                let tables = self.block_tables();
                self.resolve_lut_block(tables, scratch, len);
            }
            EstimatorMode::DirectSolve => unreachable!("handled above"),
        }
        Ok(())
    }

    /// The per-lane reference kernel: every lane is unpacked and run
    /// through the scalar pipeline. Same results and totals layout as
    /// [`estimate_block_into`](Self::estimate_block_into), never any
    /// table build — the right call when a plan is too short-lived to
    /// amortize one (the MC path compiles a fresh plan per die).
    ///
    /// # Errors
    /// As [`estimate_block_into`](Self::estimate_block_into).
    pub fn estimate_block_scalar_into(
        &self,
        scratch: &mut BlockScratch,
        block: &PatternBlock,
        mode: EstimatorMode,
    ) -> Result<(), EstimateError> {
        self.check_block(block)?;
        scratch.totals.clear();
        scratch.totals.resize(block.len(), LeakageBreakdown::ZERO);
        self.run_block_scalar(scratch, block, mode)
    }

    /// Packs the seed-derived sweep patterns `start..start + count`
    /// (the [`estimate_index_into`](Self::estimate_index_into)
    /// stream) into the scratch's reusable block and evaluates them
    /// via [`estimate_block_into`](Self::estimate_block_into).
    ///
    /// # Panics
    /// If `count > LANES`.
    ///
    /// # Errors
    /// As [`estimate_block_into`](Self::estimate_block_into).
    pub fn estimate_index_block_into(
        &self,
        scratch: &mut BlockScratch,
        seed: u64,
        start: usize,
        count: usize,
        mode: EstimatorMode,
    ) -> Result<(), EstimateError> {
        assert!(count <= LANES, "{count} patterns exceed the {LANES}-lane block");
        let mut block = std::mem::take(&mut scratch.index_block);
        let (pis, states) = (self.circuit.inputs().len(), self.circuit.state_inputs().len());
        if block.pi_words().len() != pis || block.state_words().len() != states {
            block = PatternBlock::for_arity(pis, states);
        }
        block.clear();
        let mut pattern = std::mem::take(&mut scratch.inner.pattern);
        for i in 0..count {
            let mut rng = rand::rngs::StdRng::seed_from_u64(mix(seed, (start + i) as u64));
            pattern.fill_random(self.circuit, &mut rng);
            block.push(&pattern);
        }
        scratch.inner.pattern = pattern;
        let out = self.estimate_block_into(scratch, &block, mode);
        scratch.index_block = block;
        out
    }

    fn check_block(&self, block: &PatternBlock) -> Result<(), EstimateError> {
        if block.pi_words().len() != self.circuit.inputs().len() {
            return Err(EstimateError::BadPattern(format!(
                "{} packed primary-input words for {} inputs",
                block.pi_words().len(),
                self.circuit.inputs().len()
            )));
        }
        if block.state_words().len() != self.circuit.state_inputs().len() {
            return Err(EstimateError::BadPattern(format!(
                "{} packed DFF-state words for {} flip-flops",
                block.state_words().len(),
                self.circuit.state_inputs().len()
            )));
        }
        Ok(())
    }

    /// The word-parallel simulate kernel: one topo pass over packed
    /// `u64` net words. Each gate ORs together the minterm masks of
    /// its true truth-table rows — the same `eval_logic`-derived slab
    /// the scalar pass indexes — so bit `l` of every net word equals
    /// the scalar simulation of lane `l`. Lanes beyond the block's
    /// length compute the all-zeros pattern and are never read.
    fn simulate_block(&self, words: &mut Vec<u64>, block: &PatternBlock) {
        words.clear();
        words.resize(self.gate_driven.len(), 0);
        for (net, &w) in self.circuit.inputs().iter().zip(block.pi_words()) {
            words[net.0] = w;
        }
        // DFF slave inverters reproduce the state on Q, so the state
        // pseudo-input is the complement (as in `simulate_into`).
        for (net, &w) in self.circuit.state_inputs().iter().zip(block.state_words()) {
            words[net.0] = !w;
        }
        for &g in &self.topo {
            let g = g as usize;
            let (s, e) = (self.in_off[g] as usize, self.in_off[g + 1] as usize);
            let k = e - s;
            let mut ins = [0u64; MAX_PINS];
            for (slot, &net) in ins[..k].iter_mut().zip(&self.in_nets[s..e]) {
                *slot = words[net as usize];
            }
            let base = self.vc_base[g] as usize;
            let mut out = 0u64;
            for v in 0..1usize << k {
                if self.logic_slab[base + v] {
                    let mut m = !0u64;
                    for (j, &w) in ins[..k].iter().enumerate() {
                        m &= if v >> j & 1 == 1 { w } else { !w };
                    }
                    out |= m;
                }
            }
            words[self.out_net[g] as usize] = out;
        }
    }

    /// Per-lane input bits for gate `g`, gathered with the pin loop
    /// outermost so each packed net word is loaded once per block
    /// (not once per lane) and the lane loop is all register ops.
    #[inline]
    fn gate_bits_block(&self, words: &[u64], g: usize, len: usize) -> [u16; LANES] {
        let (s, e) = (self.in_off[g] as usize, self.in_off[g + 1] as usize);
        let mut bits = [0u16; LANES];
        for (k, &net) in self.in_nets[s..e].iter().enumerate() {
            let w = words[net as usize];
            for (lane, b) in bits[..len].iter_mut().enumerate() {
                *b |= ((w >> lane & 1) as u16) << k;
            }
        }
        bits
    }

    /// Per-lane table indices over support nets `sup`, net loop
    /// outermost for the same one-load-per-word reason.
    #[inline]
    fn gather_block(words: &[u64], sup: &[u32], len: usize) -> [u32; LANES] {
        let mut idx = [0u32; LANES];
        for (j, &net) in sup.iter().enumerate() {
            let w = words[net as usize];
            for (lane, i) in idx[..len].iter_mut().enumerate() {
                *i |= ((w >> lane & 1) as u32) << j;
            }
        }
        idx
    }

    /// `NoLoading` block resolve: per-lane totals accumulate each
    /// gate's nominal breakdown in gate-id order — the scalar
    /// reduction order, so every lane total is bit-identical.
    fn resolve_nominal_block(&self, scratch: &mut BlockScratch, len: usize) {
        for g in 0..self.gate_cell.len() {
            let base = self.vc_base[g] as usize;
            let bits = self.gate_bits_block(&scratch.words, g, len);
            for (lane, total) in scratch.totals[..len].iter_mut().enumerate() {
                *total += self.vcs[base + bits[lane] as usize].nominal;
            }
        }
    }

    /// `Lut` block resolve: whole-gate table gates add their
    /// precomputed clamped breakdown (indexed by packed support-net
    /// state); split gates sum per-term deltas (table lookups, or
    /// runtime evaluations from per-lane net currents for hub terms)
    /// and clamp. Both accumulate into the lane totals in gate-id
    /// order, so every lane reproduces the scalar fold bit-for-bit.
    fn resolve_lut_block(&self, t: &BlockTables, scratch: &mut BlockScratch, len: usize) {
        // Per-lane currents for the nets runtime terms read, folded
        // over each net's loads in the scalar loading pass's
        // (gate, pin) order — the load loop is outermost, but each
        // lane's additions still happen in load order, so every
        // per-lane sum replays the scalar accumulation sequence.
        let need = t.rt_nets.len() * LANES;
        if scratch.rt_cur.len() != need {
            scratch.rt_cur.resize(need, 0.0);
        }
        for slot in 0..t.rt_nets.len() {
            let loads = &t.rt_loads[t.rt_off[slot] as usize..t.rt_off[slot + 1] as usize];
            let cur = &mut scratch.rt_cur[slot * LANES..slot * LANES + LANES];
            cur[..len].fill(0.0);
            for &(h, pin) in loads {
                let h = h as usize;
                let bits = self.gate_bits_block(&scratch.words, h, len);
                let base = self.vc_base[h] as usize;
                for (lane, c) in cur[..len].iter_mut().enumerate() {
                    let vc = &self.vcs[base + bits[lane] as usize];
                    *c += self.pin_current_slab[(vc.pin_off + pin) as usize];
                }
            }
        }
        for g in 0..self.gate_cell.len() {
            let off = t.tbl_off[g];
            if off != TABLE_FALLBACK {
                let sup = &t.sup_nets[t.sup_off[g] as usize..t.sup_off[g + 1] as usize];
                let tbl = &t.tbl[off as usize..off as usize + (1usize << sup.len())];
                let idx = Self::gather_block(&scratch.words, sup, len);
                for (lane, total) in scratch.totals[..len].iter_mut().enumerate() {
                    *total += tbl[idx[lane] as usize];
                }
            } else {
                // Split gate: per lane, sum the per-term deltas in
                // the scalar kernel's order (pin 0..pins, then the
                // output), then clamp the sum — `VectorChar::
                // leakage`'s exact floating-point sequence, with
                // each `blut_eval` value drawn from a term table or
                // evaluated at runtime from the per-lane currents.
                let terms = &t.terms[t.term_off[g] as usize..t.term_off[g + 1] as usize];
                let gbits = self.gate_bits_block(&scratch.words, g, len);
                let base = self.vc_base[g] as usize;
                let mut acc = [LeakageBreakdown::default(); LANES];
                for (lane, a) in acc[..len].iter_mut().enumerate() {
                    *a = self.vcs[base + gbits[lane] as usize].nominal;
                }
                for term in terms {
                    if term.tbl != TABLE_FALLBACK {
                        let sup = &t.sup_nets
                            [term.sup_start as usize..(term.sup_start + term.sup_len) as usize];
                        let idx = Self::gather_block(&scratch.words, sup, len);
                        for (lane, a) in acc[..len].iter_mut().enumerate() {
                            *a += t.tbl[term.tbl as usize + idx[lane] as usize];
                        }
                        continue;
                    }
                    let net = term.net as usize;
                    let pin = term.pin as usize;
                    // Non-driven pin nets have no runtime slot: the
                    // scalar kernel pins their loading to zero.
                    let cur: &[f64] = if self.gate_driven[net] {
                        let s = t.rt_slot[net] as usize * LANES;
                        &scratch.rt_cur[s..s + LANES]
                    } else {
                        &[]
                    };
                    for (lane, a) in acc[..len].iter_mut().enumerate() {
                        let vc = &self.vcs[base + gbits[lane] as usize];
                        let pins = vc.pins as usize;
                        let il = if pin < pins {
                            if self.gate_driven[net] {
                                let own = self.pin_current_slab[vc.pin_off as usize + pin];
                                (cur[lane] - own).abs()
                            } else {
                                0.0
                            }
                        } else {
                            cur[lane].abs()
                        };
                        *a += self.blut_eval(&self.luts[vc.lut_off as usize + pin], il.abs());
                    }
                }
                for (lane, total) in scratch.totals[..len].iter_mut().enumerate() {
                    let b = acc[lane];
                    *total += LeakageBreakdown {
                        sub: b.sub.max(0.0),
                        gate: b.gate.max(0.0),
                        btbt: b.btbt.max(0.0),
                    };
                }
            }
        }
    }

    /// Per-lane scalar service for block calls that cannot use the
    /// packed kernels (direct-solve mode, permuted wiring, or the
    /// explicit reference entry point).
    fn run_block_scalar(
        &self,
        scratch: &mut BlockScratch,
        block: &PatternBlock,
        mode: EstimatorMode,
    ) -> Result<(), EstimateError> {
        let mut pattern = std::mem::take(&mut scratch.inner.pattern);
        let mut result = Ok(());
        for lane in 0..block.len() {
            block.get_into(lane, &mut pattern);
            match self.run(&mut scratch.inner, &pattern.pi, &pattern.states, mode) {
                Ok(total) => scratch.totals[lane] = total,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        scratch.inner.pattern = pattern;
        result
    }

    /// Builds [`BlockTables`] against the compiled wiring. For every
    /// gate, collect the support nets of its whole clamped breakdown
    /// (its own inputs, plus the inputs of every gate loading its
    /// gate-driven input nets and its output net — exactly the nets
    /// its scalar `Lut` arithmetic depends on) and precompute one
    /// entry per support state when it fits [`MAX_SUPPORT_BITS`].
    /// Wider gates split into per-term tables over each term's own
    /// narrower support; terms still too wide (or past the
    /// [`MAX_TABLE_ENTRIES`] budget) register their net for runtime
    /// per-lane current folding.
    fn build_block_tables(&self) -> BlockTables {
        let n_gates = self.gate_cell.len();
        let n_nets = self.gate_driven.len();
        let mut t = BlockTables {
            tbl_off: Vec::with_capacity(n_gates),
            sup_off: Vec::with_capacity(n_gates + 1),
            sup_nets: Vec::new(),
            tbl: Vec::new(),
            term_off: Vec::with_capacity(n_gates + 1),
            terms: Vec::new(),
            rt_nets: Vec::new(),
            rt_slot: vec![u32::MAX; n_nets],
            rt_off: Vec::new(),
            rt_loads: Vec::new(),
            fallback_gates: 0,
            rt_terms: 0,
        };
        t.sup_off.push(0);
        t.term_off.push(0);
        // Scratch for the support set under construction: `pos_of`
        // maps net → bit position (u32::MAX = absent) and is reset
        // after each table.
        let mut pos_of: Vec<u32> = vec![u32::MAX; n_nets];
        let mut support: Vec<u32> = Vec::new();
        for g in 0..n_gates {
            let (s, e) = (self.in_off[g] as usize, self.in_off[g + 1] as usize);
            let pins = e - s;
            let out = self.out_net[g];
            // Whole-gate support: own inputs + loads of every
            // gate-driven pin net and of the output net. (Loads on
            // ideal-source nets never matter: the scalar pass pins
            // their loading to zero.)
            support.clear();
            Self::push_support(&mut support, &mut pos_of, &self.in_nets[s..e]);
            for &net in self.in_nets[s..e].iter().chain(std::iter::once(&out)) {
                if self.gate_driven[net as usize] {
                    self.push_load_support(&mut support, &mut pos_of, net);
                }
            }
            let width = support.len();
            if width <= MAX_SUPPORT_BITS && t.tbl.len() + (1usize << width) <= MAX_TABLE_ENTRIES {
                t.tbl_off.push(t.tbl.len() as u32);
                t.sup_nets.extend_from_slice(&support);
                t.sup_off.push(t.sup_nets.len() as u32);
                for idx in 0..1usize << width {
                    let entry = self.gate_entry(g, idx, &pos_of);
                    t.tbl.push(entry);
                }
                Self::clear_support(&mut support, &mut pos_of);
                t.term_off.push(t.terms.len() as u32);
                continue;
            }
            Self::clear_support(&mut support, &mut pos_of);

            // Split gate: one term per pin response plus the output
            // response, each over its own support.
            t.tbl_off.push(TABLE_FALLBACK);
            t.fallback_gates += 1;
            for pin in 0..=pins {
                let net = if pin < pins { self.in_nets[s + pin] } else { out };
                // The term's LUT choice and own-pin subtraction read
                // the gate's input vector, so the gate's inputs are
                // always in support.
                support.clear();
                Self::push_support(&mut support, &mut pos_of, &self.in_nets[s..e]);
                if self.gate_driven[net as usize] {
                    self.push_load_support(&mut support, &mut pos_of, net);
                }
                let width = support.len();
                if width <= MAX_SUPPORT_BITS && t.tbl.len() + (1usize << width) <= MAX_TABLE_ENTRIES
                {
                    t.terms.push(BlockTerm {
                        tbl: t.tbl.len() as u32,
                        sup_start: t.sup_nets.len() as u32,
                        sup_len: width as u32,
                        pin: pin as u32,
                        net,
                    });
                    t.sup_nets.extend_from_slice(&support);
                    for idx in 0..1usize << width {
                        let entry = self.term_entry(g, pin, net, idx, &pos_of);
                        t.tbl.push(entry);
                    }
                } else {
                    t.rt_terms += 1;
                    if self.gate_driven[net as usize] && t.rt_slot[net as usize] == u32::MAX {
                        t.rt_slot[net as usize] = t.rt_nets.len() as u32;
                        t.rt_nets.push(net);
                    }
                    t.terms.push(BlockTerm {
                        tbl: TABLE_FALLBACK,
                        sup_start: 0,
                        sup_len: 0,
                        pin: pin as u32,
                        net,
                    });
                }
                Self::clear_support(&mut support, &mut pos_of);
            }
            t.sup_off.push(t.sup_nets.len() as u32);
            t.term_off.push(t.terms.len() as u32);
        }
        t.rt_off.push(0);
        for &net in &t.rt_nets {
            for load in self.circuit.net_loads(NetId(net as usize)) {
                t.rt_loads.push((load.gate.0 as u32, load.pin as u32));
            }
            t.rt_off.push(t.rt_loads.len() as u32);
        }
        t
    }

    /// Adds `nets` to the support set under construction (dedup via
    /// `pos_of`).
    fn push_support(support: &mut Vec<u32>, pos_of: &mut [u32], nets: &[u32]) {
        for &net in nets {
            if pos_of[net as usize] == u32::MAX {
                pos_of[net as usize] = support.len() as u32;
                support.push(net);
            }
        }
    }

    /// Adds the inputs of every gate loading `net` to the support
    /// set — the nets `net`'s loading current depends on.
    fn push_load_support(&self, support: &mut Vec<u32>, pos_of: &mut [u32], net: u32) {
        for load in self.circuit.net_loads(NetId(net as usize)) {
            let h = load.gate.0;
            let (hs, he) = (self.in_off[h] as usize, self.in_off[h + 1] as usize);
            Self::push_support(support, pos_of, &self.in_nets[hs..he]);
        }
    }

    fn clear_support(support: &mut Vec<u32>, pos_of: &mut [u32]) {
        for &net in support.iter() {
            pos_of[net as usize] = u32::MAX;
        }
        support.clear();
    }

    /// Gate `h`'s input bits when the support nets hold the values
    /// packed in `idx` (bit `pos_of[net]`). Only valid while every
    /// input of `h` is in the support set.
    fn bits_at(&self, h: usize, idx: usize, pos_of: &[u32]) -> usize {
        let (s, e) = (self.in_off[h] as usize, self.in_off[h + 1] as usize);
        let mut bits = 0usize;
        for (k, &net) in self.in_nets[s..e].iter().enumerate() {
            bits |= (idx >> pos_of[net as usize] & 1) << k;
        }
        bits
    }

    /// `net`'s loading current under support state `idx`: the fold
    /// over `net_loads` in the scalar loading pass's per-net
    /// accumulation sequence, so the sum is bit-identical to
    /// `scratch.net_current[net]` whenever the support nets take
    /// these values.
    fn current_at(&self, net: u32, idx: usize, pos_of: &[u32]) -> f64 {
        let mut c = 0.0;
        for load in self.circuit.net_loads(NetId(net as usize)) {
            let h = load.gate.0;
            let vc = &self.vcs[self.vc_base[h] as usize + self.bits_at(h, idx, pos_of)];
            c += self.pin_current_slab[vc.pin_off as usize + load.pin];
        }
        c
    }

    /// One whole-gate response-table entry: gate `g`'s clamped
    /// `Lut`-mode breakdown under support state `idx`. Every
    /// floating-point operation — the per-net current folds, the
    /// per-pin and output deltas, the clamp — replays the scalar
    /// kernel exactly, so the stored entry is bit-identical to what
    /// the scalar path computes whenever the support nets take these
    /// values.
    fn gate_entry(&self, g: usize, idx: usize, pos_of: &[u32]) -> LeakageBreakdown {
        let s = self.in_off[g] as usize;
        let vc = &self.vcs[self.vc_base[g] as usize + self.bits_at(g, idx, pos_of)];
        let pins = vc.pins as usize;
        let mut b = vc.nominal;
        for k in 0..pins {
            let net = self.in_nets[s + k];
            let il = if self.gate_driven[net as usize] {
                let own = self.pin_current_slab[vc.pin_off as usize + k];
                (self.current_at(net, idx, pos_of) - own).abs()
            } else {
                0.0
            };
            b += self.blut_eval(&self.luts[vc.lut_off as usize + k], il.abs());
        }
        let il_out = self.current_at(self.out_net[g], idx, pos_of).abs();
        b += self.blut_eval(&self.luts[vc.lut_off as usize + pins], il_out.abs());
        LeakageBreakdown { sub: b.sub.max(0.0), gate: b.gate.max(0.0), btbt: b.btbt.max(0.0) }
    }

    /// One per-term table entry: the single LUT delta gate `g`'s
    /// scalar kernel adds for `pin` (or the output response at
    /// `pin == pins`) under support state `idx` — bit-identical to
    /// the scalar `blut_eval` call by the same replay argument as
    /// [`gate_entry`](Self::gate_entry). Unclamped: the clamp applies
    /// to the per-lane sum of terms, in the resolve kernel.
    fn term_entry(
        &self,
        g: usize,
        pin: usize,
        net: u32,
        idx: usize,
        pos_of: &[u32],
    ) -> LeakageBreakdown {
        let vc = &self.vcs[self.vc_base[g] as usize + self.bits_at(g, idx, pos_of)];
        let pins = vc.pins as usize;
        let il = if pin < pins {
            if self.gate_driven[net as usize] {
                let own = self.pin_current_slab[vc.pin_off as usize + pin];
                (self.current_at(net, idx, pos_of) - own).abs()
            } else {
                0.0
            }
        } else {
            self.current_at(net, idx, pos_of).abs()
        };
        self.blut_eval(&self.luts[vc.lut_off as usize + pin], il.abs())
    }

    /// The fused simulation + loading + leakage passes.
    fn run(
        &self,
        scratch: &mut EstimateScratch,
        pi: &[bool],
        states: &[bool],
        mode: EstimatorMode,
    ) -> Result<LeakageBreakdown, EstimateError> {
        let n_gates = self.gate_cell.len();
        scratch.values.clear();
        scratch.values.resize(self.gate_driven.len(), false);
        scratch.gate_vc.clear();
        scratch.gate_vc.resize(n_gates, 0);
        scratch.per_gate.clear();
        scratch.per_gate.resize(n_gates, LeakageBreakdown::ZERO);

        // Fused simulation pass (topo order, like `simulate`): collect
        // each gate's input bits once, resolve its vector-char slab
        // index, and propagate its output level from the precomputed
        // `eval_logic` slab.
        for (net, &v) in self.circuit.inputs().iter().zip(pi) {
            scratch.values[net.0] = v;
        }
        for (net, &state) in self.circuit.state_inputs().iter().zip(states) {
            scratch.values[net.0] = !state;
        }
        for &g in &self.topo {
            let g = g as usize;
            let (s, e) = (self.in_off[g] as usize, self.in_off[g + 1] as usize);
            let mut bits = 0u32;
            for (k, &net) in self.in_nets[s..e].iter().enumerate() {
                bits |= (scratch.values[net as usize] as u32) << k;
            }
            let vc_idx = self.vc_base[g] + bits;
            scratch.gate_vc[g] = vc_idx;
            scratch.values[self.out_net[g] as usize] = self.logic_slab[vc_idx as usize];
        }

        // Loading pass, gate-id order — the accumulation order of
        // `LoadingState::build`, so per-net sums are bit-identical.
        if mode != EstimatorMode::NoLoading {
            scratch.net_current.clear();
            scratch.net_current.resize(self.gate_driven.len(), 0.0);
            for g in 0..n_gates {
                let vc = &self.vcs[scratch.gate_vc[g] as usize];
                let s = self.in_off[g] as usize;
                let pins = vc.pins as usize;
                for k in 0..pins {
                    scratch.net_current[self.in_nets[s + k] as usize] +=
                        self.pin_current_slab[vc.pin_off as usize + k];
                }
            }
        }

        // Leakage pass. Gates are independent given the loading state,
        // so traversal order cannot change any value — the Lut and
        // NoLoading passes run in gate-id order (cache-sequential over
        // every per-gate array), while DirectSolve keeps the reference
        // walk's topo order so solver errors surface for the same gate
        // `estimate()` would report.
        match mode {
            EstimatorMode::NoLoading => {
                for g in 0..n_gates {
                    scratch.per_gate[g] = self.vcs[scratch.gate_vc[g] as usize].nominal;
                }
            }
            EstimatorMode::Lut => {
                for g in 0..n_gates {
                    let vc = &self.vcs[scratch.gate_vc[g] as usize];
                    let pins = vc.pins as usize;
                    let in_off = self.in_off[g] as usize;
                    // `VectorChar::leakage` verbatim: nominal, plus the
                    // per-pin input deltas in pin order, plus the
                    // output delta, clamped non-negative.
                    let mut b = vc.nominal;
                    for k in 0..pins {
                        let il = self.input_loading(scratch, vc, in_off, k);
                        b += self.blut_eval(&self.luts[vc.lut_off as usize + k], il.abs());
                    }
                    let il_out = scratch.net_current[self.out_net[g] as usize].abs();
                    b += self.blut_eval(&self.luts[vc.lut_off as usize + pins], il_out.abs());
                    scratch.per_gate[g] = LeakageBreakdown {
                        sub: b.sub.max(0.0),
                        gate: b.gate.max(0.0),
                        btbt: b.btbt.max(0.0),
                    };
                }
            }
            EstimatorMode::DirectSolve => {
                for &g in &self.topo {
                    let g = g as usize;
                    let vc = &self.vcs[scratch.gate_vc[g] as usize];
                    let pins = vc.pins as usize;
                    let in_off = self.in_off[g] as usize;
                    let mut il_in = [0.0_f64; MAX_PINS];
                    for (k, slot) in il_in[..pins].iter_mut().enumerate() {
                        *slot = self.input_loading(scratch, vc, in_off, k);
                    }
                    let il_out = scratch.net_current[self.out_net[g] as usize].abs();
                    scratch.per_gate[g] = nanoleak_cells::eval_loaded(
                        &self.library.tech,
                        self.library.temp,
                        self.gate_cell[g],
                        vc.vector,
                        &il_in[..pins],
                        il_out,
                    )?
                    .breakdown;
                }
            }
        }

        // The same sequential gate-id-order reduction as
        // `CircuitLeakage::from_gates`.
        Ok(scratch.per_gate.iter().fold(LeakageBreakdown::ZERO, |acc, b| acc + *b))
    }

    /// Input-loading magnitude on one pin: the other gates' summed pin
    /// currents on that net (`LoadingState::input_loading` verbatim —
    /// the gate's own contribution comes straight from the pin-current
    /// slab); zero on ideal-source nets.
    #[inline]
    fn input_loading(
        &self,
        scratch: &EstimateScratch,
        vc: &PlanVectorChar,
        in_off: usize,
        pin: usize,
    ) -> f64 {
        let net = self.in_nets[in_off + pin] as usize;
        if self.gate_driven[net] {
            let own = self.pin_current_slab[vc.pin_off as usize + pin];
            (scratch.net_current[net] - own).abs()
        } else {
            0.0
        }
    }

    /// Evaluates one compiled breakdown table at loading magnitude
    /// `x`: one segment lookup shared across the three components, and
    /// (in the interleaved layout) two adjacent ordinate triples. The
    /// per-component arithmetic is `Lut1::eval`'s, verbatim.
    #[inline]
    fn blut_eval(&self, lut: &PlanBreakdownLut, x: f64) -> LeakageBreakdown {
        match *lut {
            PlanBreakdownLut::Shared { grid, ys } => {
                let grid = self.grids[grid as usize];
                let xs = self.grid_xs(grid);
                let ys = ys as usize;
                match locate(xs, grid.inv_step, x) {
                    Seg::Knot(i) => {
                        let t = &self.ys_slab[ys + 3 * i..ys + 3 * i + 3];
                        LeakageBreakdown { sub: t[0], gate: t[1], btbt: t[2] }
                    }
                    Seg::Interp(s) => {
                        let (x0, x1) = (xs[s], xs[s + 1]);
                        let t = &self.ys_slab[ys + 3 * s..ys + 3 * s + 6];
                        // One division for all three components —
                        // `Lut1::eval` computes the identical `d`.
                        let d = (x - x0) / (x1 - x0);
                        LeakageBreakdown {
                            sub: t[0] + d * (t[3] - t[0]),
                            gate: t[1] + d * (t[4] - t[1]),
                            btbt: t[2] + d * (t[5] - t[2]),
                        }
                    }
                }
            }
            PlanBreakdownLut::Split { sub, gate, btbt } => LeakageBreakdown {
                sub: self.lut_eval(sub, x),
                gate: self.lut_eval(gate, x),
                btbt: self.lut_eval(btbt, x),
            },
        }
    }

    #[inline]
    fn lut_eval(&self, lut: PlanLut1, x: f64) -> f64 {
        let grid = self.grids[lut.grid as usize];
        let xs = self.grid_xs(grid);
        let ys = lut.ys as usize;
        match locate(xs, grid.inv_step, x) {
            Seg::Knot(i) => self.ys_slab[ys + i],
            Seg::Interp(s) => {
                let (x0, x1) = (xs[s], xs[s + 1]);
                let (y0, y1) = (self.ys_slab[ys + s], self.ys_slab[ys + s + 1]);
                let d = (x - x0) / (x1 - x0);
                y0 + d * (y1 - y0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::estimate;
    use nanoleak_cells::CharacterizeOptions;
    use nanoleak_device::Technology;
    use nanoleak_netlist::generate::{random_circuit, RandomCircuitSpec};
    use nanoleak_netlist::normalize::normalize;
    use nanoleak_netlist::CircuitBuilder;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn library() -> Arc<CellLibrary> {
        CellLibrary::shared_with_options(
            &Technology::d25(),
            300.0,
            &CharacterizeOptions::coarse(&CellType::ALL),
        )
    }

    fn assert_bit_identical(
        circuit: &Circuit,
        lib: &CellLibrary,
        pattern: &Pattern,
        mode: EstimatorMode,
    ) {
        let reference = estimate(circuit, lib, pattern, mode).unwrap();
        let plan = CompiledEstimator::compile(circuit, lib).unwrap();
        let mut scratch = plan.scratch();
        let total = plan.estimate_into(&mut scratch, pattern, mode).unwrap();
        assert_eq!(total.total().to_bits(), reference.total.total().to_bits(), "{mode:?}");
        assert_eq!(total, reference.total);
        assert_eq!(scratch.per_gate(), reference.per_gate.as_slice(), "{mode:?}");
    }

    #[test]
    fn compiled_matches_reference_on_fanout_web() {
        let mut b = CircuitBuilder::new("fanout");
        let a = b.add_input("a");
        let mid = b.add_gate(CellType::Inv, &[a], "mid");
        for i in 0..6 {
            let y = b.add_gate(CellType::Inv, &[mid], &format!("y{i}"));
            b.mark_output(y);
        }
        let circuit = b.build().unwrap();
        let lib = library();
        for pi in [false, true] {
            let p = Pattern { pi: vec![pi], states: vec![] };
            for mode in [EstimatorMode::NoLoading, EstimatorMode::Lut, EstimatorMode::DirectSolve] {
                assert_bit_identical(&circuit, &lib, &p, mode);
            }
        }
    }

    #[test]
    fn compiled_index_stream_matches_reference_pattern_stream() {
        let raw = random_circuit(&RandomCircuitSpec::new("plan-idx", 6, 3, 40, 2, 17));
        let circuit = normalize(&raw).unwrap();
        let lib = library();
        let plan = CompiledEstimator::compile(&circuit, &lib).unwrap();
        let mut scratch = plan.scratch();
        for index in 0..16 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(mix(2005, index as u64));
            let pattern = Pattern::random(&circuit, &mut rng);
            let reference = estimate(&circuit, &lib, &pattern, EstimatorMode::Lut).unwrap();
            let total =
                plan.estimate_index_into(&mut scratch, 2005, index, EstimatorMode::Lut).unwrap();
            assert_eq!(total, reference.total, "index {index}");
        }
    }

    #[test]
    fn permuted_plan_matches_recompiled_permuted_circuit() {
        // In-place pin permutation must be bit-identical to compiling
        // a circuit built with that pin order — totals and per-gate
        // breakdowns — in every estimator mode.
        fn build(swap: bool) -> Circuit {
            let mut b = CircuitBuilder::new("perm");
            let a = b.add_input("a");
            let c = b.add_input("b");
            let x = b.add_gate(CellType::Inv, &[c], "x");
            let pins = if swap { [x, a] } else { [a, x] };
            let y = b.add_gate(CellType::Nand2, &pins, "y");
            b.mark_output(y);
            b.build().unwrap()
        }
        let base = build(false);
        let swapped = build(true);
        let lib = library();
        let mut plan = CompiledEstimator::compile(&base, &lib).unwrap();
        let swapped_plan = CompiledEstimator::compile(&swapped, &lib).unwrap();
        let mut s1 = plan.scratch();
        let mut s2 = swapped_plan.scratch();
        let nand = GateId(1);
        for mode in [EstimatorMode::NoLoading, EstimatorMode::Lut, EstimatorMode::DirectSolve] {
            for bits in 0..4u32 {
                let p = Pattern { pi: vec![bits & 1 == 1, bits & 2 == 2], states: vec![] };
                plan.permute_gate_inputs(nand, &[1, 0]);
                let permuted = plan.estimate_into(&mut s1, &p, mode).unwrap();
                let direct = swapped_plan.estimate_into(&mut s2, &p, mode).unwrap();
                assert_eq!(permuted.total().to_bits(), direct.total().to_bits(), "{mode:?}");
                assert_eq!(s1.per_gate(), s2.per_gate(), "{mode:?} {bits}");
                // Undo restores the original plan exactly.
                plan.permute_gate_inputs(nand, &[1, 0]);
                let restored = plan.estimate_into(&mut s1, &p, mode).unwrap();
                let reference = estimate(&base, &lib, &p, mode).unwrap();
                assert_eq!(restored.total().to_bits(), reference.total.total().to_bits());
            }
        }
    }

    #[test]
    fn scratch_state_never_leaks_across_patterns() {
        // Estimating A, then B, then A again must reproduce A exactly
        // even though the scratch was dirtied in between (different
        // vector, different mode).
        let raw = random_circuit(&RandomCircuitSpec::new("plan-reuse", 5, 3, 30, 1, 3));
        let circuit = normalize(&raw).unwrap();
        let lib = library();
        let plan = CompiledEstimator::compile(&circuit, &lib).unwrap();
        let mut scratch = plan.scratch();
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let a = Pattern::random(&circuit, &mut rng);
        let b = Pattern::random(&circuit, &mut rng);
        let first = plan.estimate_into(&mut scratch, &a, EstimatorMode::Lut).unwrap();
        let _ = plan.estimate_into(&mut scratch, &b, EstimatorMode::NoLoading).unwrap();
        let _ = plan.estimate_into(&mut scratch, &b, EstimatorMode::Lut).unwrap();
        let again = plan.estimate_into(&mut scratch, &a, EstimatorMode::Lut).unwrap();
        assert_eq!(first, again);
    }

    #[test]
    fn compile_reports_missing_cells_up_front() {
        let mut b = CircuitBuilder::new("missing");
        let a = b.add_input("a");
        let x = b.add_gate(CellType::Nor2, &[a, a], "x");
        b.mark_output(x);
        let circuit = b.build().unwrap();
        let lib = CellLibrary::shared_with_options(
            &Technology::d25(),
            300.0,
            &CharacterizeOptions::coarse(&[CellType::Inv]),
        );
        assert!(matches!(
            CompiledEstimator::compile(&circuit, &lib),
            Err(EstimateError::MissingCell(CellType::Nor2))
        ));
    }

    #[test]
    fn bad_pattern_arity_rejected() {
        let mut b = CircuitBuilder::new("arity");
        let a = b.add_input("a");
        let y = b.add_gate(CellType::Inv, &[a], "y");
        b.mark_output(y);
        let circuit = b.build().unwrap();
        let lib = library();
        let plan = CompiledEstimator::compile(&circuit, &lib).unwrap();
        let mut scratch = plan.scratch();
        let p = Pattern { pi: vec![], states: vec![] };
        assert!(matches!(
            plan.estimate_into(&mut scratch, &p, EstimatorMode::Lut),
            Err(EstimateError::BadPattern(_))
        ));
    }

    /// Pack `patterns` and check every block entry point reproduces
    /// the scalar path bit-for-bit, lane by lane.
    fn assert_block_bit_identical(
        plan: &CompiledEstimator,
        patterns: &[Pattern],
        mode: EstimatorMode,
    ) {
        assert!(patterns.len() <= LANES);
        let mut block = PatternBlock::for_circuit(plan.circuit());
        for p in patterns {
            block.push(p);
        }
        let mut bs = plan.block_scratch();
        let mut ss = plan.scratch();
        plan.estimate_block_into(&mut bs, &block, mode).unwrap();
        assert_eq!(bs.totals().len(), patterns.len());
        let want: Vec<LeakageBreakdown> =
            patterns.iter().map(|p| plan.estimate_into(&mut ss, p, mode).unwrap()).collect();
        for (lane, (got, want)) in bs.totals().iter().zip(&want).enumerate() {
            assert_eq!(got.total().to_bits(), want.total().to_bits(), "{mode:?} lane {lane}");
            assert_eq!(got, want, "{mode:?} lane {lane}");
        }
        // The explicit per-lane reference kernel agrees too.
        plan.estimate_block_scalar_into(&mut bs, &block, mode).unwrap();
        assert_eq!(bs.totals(), want.as_slice(), "{mode:?} scalar block kernel");
    }

    #[test]
    fn block_path_matches_scalar_on_random_circuit_all_modes() {
        let raw = random_circuit(&RandomCircuitSpec::new("blk", 6, 3, 40, 2, 99));
        let circuit = normalize(&raw).unwrap();
        let lib = library();
        let plan = CompiledEstimator::compile(&circuit, &lib).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        // A full block, and tails of several lengths (incl. one lane).
        for len in [LANES, 1, 7, 63] {
            let patterns: Vec<Pattern> =
                (0..len).map(|_| Pattern::random(&circuit, &mut rng)).collect();
            for mode in [EstimatorMode::NoLoading, EstimatorMode::Lut] {
                assert_block_bit_identical(&plan, &patterns, mode);
            }
        }
    }

    #[test]
    fn block_direct_solve_matches_scalar() {
        let raw = random_circuit(&RandomCircuitSpec::new("blk-ds", 4, 2, 8, 0, 5));
        let circuit = normalize(&raw).unwrap();
        let lib = library();
        let plan = CompiledEstimator::compile(&circuit, &lib).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let patterns: Vec<Pattern> = (0..5).map(|_| Pattern::random(&circuit, &mut rng)).collect();
        assert_block_bit_identical(&plan, &patterns, EstimatorMode::DirectSolve);
    }

    #[test]
    fn block_fallback_gates_match_scalar_on_wide_fanout_hub() {
        // A hub net loading enough 2-pin gates that every gate on the
        // hub exceeds MAX_SUPPORT_BITS — exercising the runtime
        // fallback kernel against the scalar path.
        let mut b = CircuitBuilder::new("hub");
        let a = b.add_input("a");
        let hub = b.add_gate(CellType::Inv, &[a], "hub");
        let mut side = a;
        for i in 0..(MAX_SUPPORT_BITS + 2) {
            side = b.add_gate(CellType::Nand2, &[hub, side], &format!("y{i}"));
            b.mark_output(side);
        }
        let circuit = b.build().unwrap();
        let lib = library();
        let plan = CompiledEstimator::compile(&circuit, &lib).unwrap();
        assert!(plan.block_fallback_gates() > 0, "hub circuit must exercise the fallback");
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let patterns: Vec<Pattern> =
            (0..LANES).map(|_| Pattern::random(&circuit, &mut rng)).collect();
        for mode in [EstimatorMode::NoLoading, EstimatorMode::Lut] {
            assert_block_bit_identical(&plan, &patterns, mode);
        }
    }

    #[test]
    fn block_index_stream_matches_scalar_index_stream() {
        let raw = random_circuit(&RandomCircuitSpec::new("blk-idx", 6, 3, 40, 2, 21));
        let circuit = normalize(&raw).unwrap();
        let lib = library();
        let plan = CompiledEstimator::compile(&circuit, &lib).unwrap();
        let mut bs = plan.block_scratch();
        let mut ss = plan.scratch();
        // Tail count not divisible by LANES, non-zero start.
        plan.estimate_index_block_into(&mut bs, 2005, 130, 41, EstimatorMode::Lut).unwrap();
        assert_eq!(bs.totals().len(), 41);
        for (i, got) in bs.totals().iter().enumerate() {
            let want =
                plan.estimate_index_into(&mut ss, 2005, 130 + i, EstimatorMode::Lut).unwrap();
            assert_eq!(got.total().to_bits(), want.total().to_bits(), "index {}", 130 + i);
        }
        // A default (unsized) scratch warms itself up to the same bits.
        let mut cold = BlockScratch::default();
        plan.estimate_index_block_into(&mut cold, 2005, 130, 41, EstimatorMode::Lut).unwrap();
        assert_eq!(cold.totals(), bs.totals());
    }

    #[test]
    fn permuted_plan_blocks_fall_back_and_stay_correct() {
        // After permute_gate_inputs the response tables no longer
        // describe the live wiring; the block path must detect the
        // divergence and serve lanes through the scalar kernel — and
        // resume table service once the permutation is undone.
        fn build(swap: bool) -> Circuit {
            let mut b = CircuitBuilder::new("perm-blk");
            let a = b.add_input("a");
            let c = b.add_input("b");
            let x = b.add_gate(CellType::Inv, &[c], "x");
            let pins = if swap { [x, a] } else { [a, x] };
            let y = b.add_gate(CellType::Nand2, &pins, "y");
            b.mark_output(y);
            b.build().unwrap()
        }
        let lib = library();
        let base = build(false);
        let mut plan = CompiledEstimator::compile(&base, &lib).unwrap();
        let swapped = build(true);
        let swapped_plan = CompiledEstimator::compile(&swapped, &lib).unwrap();
        plan.prepare_block(); // tables built against the original wiring
        let mut block = PatternBlock::for_arity(2, 0);
        for bits in 0..4u32 {
            block.push(&Pattern { pi: vec![bits & 1 == 1, bits & 2 == 2], states: vec![] });
        }
        let mut bs = plan.block_scratch();
        let mut want = swapped_plan.block_scratch();
        plan.permute_gate_inputs(GateId(1), &[1, 0]);
        plan.estimate_block_into(&mut bs, &block, EstimatorMode::Lut).unwrap();
        swapped_plan.estimate_block_into(&mut want, &block, EstimatorMode::Lut).unwrap();
        assert_eq!(bs.totals(), want.totals(), "permuted block must match the swapped compile");
        // Undo: the compiled wiring is restored, tables serve again.
        plan.permute_gate_inputs(GateId(1), &[1, 0]);
        let mut ss = plan.scratch();
        plan.estimate_block_into(&mut bs, &block, EstimatorMode::Lut).unwrap();
        let mut p = Pattern::default();
        for lane in 0..block.len() {
            block.get_into(lane, &mut p);
            let want = plan.estimate_into(&mut ss, &p, EstimatorMode::Lut).unwrap();
            assert_eq!(bs.totals()[lane].total().to_bits(), want.total().to_bits());
        }
    }

    #[test]
    fn block_arity_mismatch_rejected() {
        let mut b = CircuitBuilder::new("blk-arity");
        let a = b.add_input("a");
        let y = b.add_gate(CellType::Inv, &[a], "y");
        b.mark_output(y);
        let circuit = b.build().unwrap();
        let lib = library();
        let plan = CompiledEstimator::compile(&circuit, &lib).unwrap();
        let mut bs = plan.block_scratch();
        let block = PatternBlock::for_arity(3, 0);
        assert!(matches!(
            plan.estimate_block_into(&mut bs, &block, EstimatorMode::Lut),
            Err(EstimateError::BadPattern(_))
        ));
    }

    #[test]
    fn empty_block_yields_no_totals() {
        let raw = random_circuit(&RandomCircuitSpec::new("blk-empty", 4, 2, 10, 0, 1));
        let circuit = normalize(&raw).unwrap();
        let lib = library();
        let plan = CompiledEstimator::compile(&circuit, &lib).unwrap();
        let mut bs = plan.block_scratch();
        let block = PatternBlock::for_circuit(&circuit);
        plan.estimate_block_into(&mut bs, &block, EstimatorMode::Lut).unwrap();
        assert!(bs.totals().is_empty());
    }

    #[test]
    fn resolve_lanes_maps_auto_and_rejects_garbage() {
        assert_eq!(resolve_lanes(0), LANES);
        assert_eq!(resolve_lanes(1), 1);
        assert_eq!(resolve_lanes(LANES), LANES);
        assert!(std::panic::catch_unwind(|| resolve_lanes(2)).is_err());
    }

    #[test]
    fn uniform_segment_index_agrees_with_binary_search_everywhere() {
        // Drive locate through knots, midpoints, boundaries, below,
        // beyond, and NaN on a grid laid out exactly like
        // `CharacterizeOptions::grid`.
        let n = 11;
        let max = 7.0e-6;
        let xs: Vec<f64> = (0..n).map(|i| max * i as f64 / (n - 1) as f64).collect();
        let grid = PlanGrid::describe(&xs, 0);
        assert!(!grid.inv_step.is_nan(), "grid() layout must be detected uniform");
        let mut probes: Vec<f64> = vec![-1.0, -1e-12, 0.0, 1e-9, max, max + 1e-7, 1e-3, f64::NAN];
        for w in xs.windows(2) {
            probes.push(w[0]);
            probes.push((w[0] + w[1]) / 2.0);
            probes.push(f64::midpoint(w[0], w[1]).next_up());
            probes.push(w[1].next_down());
        }
        for &x in &probes {
            let a = locate_uniform(&xs, grid.inv_step, x);
            let b = locate_binary(&xs, x);
            let key = |s: &Seg| match *s {
                Seg::Knot(i) => (0, i),
                Seg::Interp(i) => (1, i),
            };
            assert_eq!(key(&a), key(&b), "x = {x:e}");
        }
    }

    #[test]
    fn irregular_grids_fall_back_to_binary_search() {
        let g = PlanGrid::describe(&[0.0, 1.0, 10.0, 11.0], 0);
        assert!(g.inv_step.is_nan(), "non-uniform grid must not take the arithmetic path");
        let g = PlanGrid::describe(&[1.0, 2.0, 3.0], 0);
        assert!(g.inv_step.is_nan(), "grids not anchored at zero are not uniform");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The tentpole contract: on random circuits (with DFF state
        /// bits) and random patterns the compiled plan reproduces the
        /// reference `estimate()` bit-for-bit in every mode.
        #[test]
        fn compiled_path_is_bit_identical_to_estimate(seed in any::<u64>()) {
            let lib = library();
            let raw = random_circuit(&RandomCircuitSpec::new("plan-prop", 6, 2, 35, 2, seed));
            let circuit = normalize(&raw).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x706c616e);
            for _ in 0..3 {
                let p = Pattern::random(&circuit, &mut rng);
                for mode in [EstimatorMode::NoLoading, EstimatorMode::Lut] {
                    assert_bit_identical(&circuit, &lib, &p, mode);
                }
            }
        }

        /// Block-path tentpole: packed evaluation reproduces the
        /// scalar path bit-for-bit on random circuits (with DFF state
        /// bits), random patterns, and random tail sizes.
        #[test]
        fn block_path_is_bit_identical_to_scalar(seed in any::<u64>()) {
            let lib = library();
            let raw = random_circuit(&RandomCircuitSpec::new("blk-prop", 6, 2, 35, 2, seed));
            let circuit = normalize(&raw).unwrap();
            let plan = CompiledEstimator::compile(&circuit, &lib).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x626c6b);
            let len = 1 + (seed % LANES as u64) as usize;
            let patterns: Vec<Pattern> =
                (0..len).map(|_| Pattern::random(&circuit, &mut rng)).collect();
            for mode in [EstimatorMode::NoLoading, EstimatorMode::Lut] {
                assert_block_bit_identical(&plan, &patterns, mode);
            }
        }

        /// Direct-solve mode (slow: per-gate transistor re-solves) on
        /// small circuits.
        #[test]
        fn compiled_direct_solve_is_bit_identical(seed in any::<u64>()) {
            let lib = library();
            let raw = random_circuit(&RandomCircuitSpec::new("plan-ds", 4, 2, 8, 0, seed));
            let circuit = normalize(&raw).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x6473);
            let p = Pattern::random(&circuit, &mut rng);
            assert_bit_identical(&circuit, &lib, &p, EstimatorMode::DirectSolve);
        }
    }
}
