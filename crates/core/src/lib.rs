//! # nanoleak-core
//!
//! The primary contribution of the *nanoleak* reproduction of
//! Mukhopadhyay, Bhunia & Roy, DATE 2005: fast, loading-effect-aware
//! estimation of total leakage in nano-scale CMOS logic circuits from
//! their gate-level description.
//!
//! * [`estimator`] — the paper's Fig. 13 algorithm: one topological
//!   pass computing per-net loading currents from characterized
//!   gate-pin tunneling currents, then per-gate leakage as
//!   `f(I_L-IN, I_L-OUT)` lookups. Modes: `NoLoading` (traditional
//!   baseline), `Lut` (the paper's method), `DirectSolve` (ablation).
//! * [`mod@reference`] — the full-circuit nonlinear solver standing in for
//!   SPICE: no truncation, loading propagates everywhere; this is the
//!   accuracy yardstick of Fig. 12a and the denominator of the paper's
//!   ~1000x speedup claim.
//! * [`loading`] — per-net loading-current bookkeeping.
//! * [`plan`] — the compiled estimation pipeline:
//!   [`CompiledEstimator`] flattens a (circuit, library) pair once so
//!   per-pattern evaluation runs allocation-free against a reusable
//!   [`EstimateScratch`], bit-identical to [`estimate`]. This is the
//!   hot path the engine's sweeps and MLV searches run on. Its block
//!   path packs [`LANES`] (= 64) patterns into one `u64` word per net
//!   ([`PatternBlock`]) and evaluates them through a word-parallel
//!   simulate kernel plus a table-driven resolve kernel
//!   ([`CompiledEstimator::estimate_block_into`] /
//!   [`BlockScratch`]), bit-identical to the scalar path.
//! * [`exec`] — the workspace's deterministic parallel-execution
//!   primitives (SplitMix64 seed streams, index-ordered `par_map`).
//! * [`report`] / [`experiment`] — leakage reports, loading-impact
//!   statistics (Figs. 12b/12c) and the batch experiment driver.
//!
//! ## Example
//!
//! ```
//! use nanoleak_cells::{CellLibrary, CellType, CharacterizeOptions};
//! use nanoleak_core::{estimate, EstimatorMode};
//! use nanoleak_device::Technology;
//! use nanoleak_netlist::{CircuitBuilder, Pattern};
//!
//! let tech = Technology::d25();
//! let lib = CellLibrary::shared_with_options(
//!     &tech, 300.0, &CharacterizeOptions::coarse(&[CellType::Inv, CellType::Nand2]));
//!
//! let mut b = CircuitBuilder::new("demo");
//! let a = b.add_input("a");
//! let x = b.add_gate(CellType::Inv, &[a], "x");
//! let y = b.add_gate(CellType::Nand2, &[a, x], "y");
//! b.mark_output(y);
//! let circuit = b.build()?;
//!
//! let with = estimate(&circuit, &lib, &Pattern::zeros(&circuit), EstimatorMode::Lut)?;
//! let without = estimate(&circuit, &lib, &Pattern::zeros(&circuit), EstimatorMode::NoLoading)?;
//! println!("loading changes leakage by {:.2}%",
//!          100.0 * with.total_relative_change(&without));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod error;
pub mod estimator;
pub mod exec;
pub mod experiment;
pub mod loading;
pub mod plan;
pub mod reference;
pub mod report;
pub mod shared;

pub use error::EstimateError;
pub use estimator::{estimate, estimate_batch, EstimatorMode};
pub use experiment::{run_experiment, ExperimentConfig, ExperimentResult};
pub use loading::LoadingState;
pub use plan::{
    resolve_lanes, BlockScratch, CompiledEstimator, EstimateScratch, PatternBlock, LANES,
};
pub use reference::{reference_batch, reference_leakage, ReferenceOptions, ReferenceResult};
pub use report::{accuracy, Accuracy, CircuitLeakage, LoadingImpact};
pub use shared::SharedEstimator;

#[cfg(test)]
mod proptests {
    use super::*;
    use nanoleak_cells::{CellLibrary, CellType, CharacterizeOptions};
    use nanoleak_device::Technology;
    use nanoleak_netlist::generate::{random_circuit, RandomCircuitSpec};
    use nanoleak_netlist::normalize::normalize;
    use nanoleak_netlist::Pattern;
    use proptest::prelude::*;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// On random circuits and patterns, the LUT estimator stays
        /// within a few percent of the untruncated reference, and the
        /// no-loading baseline is finite and positive.
        #[test]
        fn estimator_tracks_reference(seed in any::<u64>()) {
            let tech = Technology::d25();
            let lib = CellLibrary::shared_with_options(
                &tech, 300.0, &CharacterizeOptions::coarse(&CellType::ALL));
            let raw = random_circuit(&RandomCircuitSpec::new("prop", 5, 2, 25, 1, seed));
            let circuit = normalize(&raw).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9e3779b9);
            let p = Pattern::random(&circuit, &mut rng);

            let est = estimate(&circuit, &lib, &p, EstimatorMode::Lut).unwrap();
            let rf = reference_leakage(&circuit, &tech, 300.0, &p, &ReferenceOptions::default())
                .unwrap();
            let acc = accuracy(&est, &rf.leakage);
            prop_assert!(
                acc.total_rel_err.abs() < 0.05,
                "total err {}%", acc.total_rel_err * 100.0
            );
            prop_assert!(est.total.total() > 0.0);
        }
    }
}
