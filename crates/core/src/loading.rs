//! Per-net loading currents from characterized pin currents.
//!
//! The loading current of a net is the sum of the gate-tunneling pin
//! currents of the cells attached to it (paper Section 4). All pins on
//! a net see the same logic level, so their signed pin currents agree
//! in sign and the magnitudes add.

use nanoleak_cells::{CellLibrary, InputVector};
use nanoleak_netlist::{Circuit, GateId};

use crate::error::EstimateError;

/// Per-gate input vectors plus per-net summed pin currents for one
/// pattern — the intermediate state of the Fig. 13 algorithm.
#[derive(Debug, Clone)]
pub struct LoadingState {
    /// Input vector seen by each gate, indexed by `GateId.0`.
    pub gate_vectors: Vec<InputVector>,
    /// Signed pin current of each (gate, pin), indexed like the gate's
    /// inputs \[A\].
    pub pin_currents: Vec<Vec<f64>>,
    /// Sum of pin currents per net \[A\] (signed; all contributors
    /// share a sign).
    pub net_current: Vec<f64>,
}

impl LoadingState {
    /// Builds the loading state for `circuit` under the given net
    /// logic values.
    ///
    /// # Errors
    /// [`EstimateError::MissingCell`] if the library lacks a used cell.
    pub fn build(
        circuit: &Circuit,
        library: &CellLibrary,
        values: &[bool],
    ) -> Result<Self, EstimateError> {
        let n_gates = circuit.gate_count();
        let mut gate_vectors = Vec::with_capacity(n_gates);
        let mut pin_currents = Vec::with_capacity(n_gates);
        let mut net_current = vec![0.0; circuit.net_count()];

        for gid in 0..n_gates {
            let gate = circuit.gate(GateId(gid));
            let bools: Vec<bool> = gate.inputs.iter().map(|n| values[n.0]).collect();
            let vector = InputVector::from_bools(&bools);
            let vc = library
                .vector_char(gate.cell, vector)
                .ok_or(EstimateError::MissingCell(gate.cell))?;
            for (pin, &net) in gate.inputs.iter().enumerate() {
                net_current[net.0] += vc.pin_currents[pin];
            }
            pin_currents.push(vc.pin_currents.clone());
            gate_vectors.push(vector);
        }
        Ok(Self { gate_vectors, pin_currents, net_current })
    }

    /// Input-loading magnitude seen by `gate` on input `pin`: the
    /// summed pin currents of the *other* gates on that net (the gate's
    /// own pin is the measurement fixture's own load and is excluded,
    /// per the paper's definition).
    pub fn input_loading(&self, circuit: &Circuit, gate: GateId, pin: usize) -> f64 {
        let net = circuit.gate(gate).inputs[pin];
        // Ideal sources hold primary-input nets; no loading shift there.
        match circuit.net_driver(net) {
            nanoleak_netlist::Driver::Input | nanoleak_netlist::Driver::StateInput => 0.0,
            nanoleak_netlist::Driver::Gate(_) => {
                (self.net_current[net.0] - self.pin_currents[gate.0][pin]).abs()
            }
        }
    }

    /// Output-loading magnitude seen by `gate`: the summed pin currents
    /// of every gate its output net drives.
    pub fn output_loading(&self, circuit: &Circuit, gate: GateId) -> f64 {
        let net = circuit.gate(gate).output;
        self.net_current[net.0].abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_cells::{CellType, CharacterizeOptions};
    use nanoleak_device::Technology;
    use nanoleak_netlist::logic::simulate;
    use nanoleak_netlist::CircuitBuilder;

    fn library() -> std::sync::Arc<CellLibrary> {
        CellLibrary::shared_with_options(
            &Technology::d25(),
            300.0,
            &CharacterizeOptions::coarse(&[CellType::Inv, CellType::Nand2]),
        )
    }

    /// A driver inverter fanning out to `n` inverters.
    fn fanout_circuit(n: usize) -> Circuit {
        let mut b = CircuitBuilder::new("fanout");
        let a = b.add_input("a");
        let mid = b.add_gate(CellType::Inv, &[a], "mid");
        for i in 0..n {
            let y = b.add_gate(CellType::Inv, &[mid], &format!("y{i}"));
            b.mark_output(y);
        }
        b.build().unwrap()
    }

    #[test]
    fn net_current_sums_fanout_pins() {
        let circuit = fanout_circuit(6);
        let lib = library();
        let values = simulate(&circuit, &[false], &[]);
        let state = LoadingState::build(&circuit, &lib, &values).unwrap();
        let mid = circuit.find_net("mid").unwrap();
        // mid is at logic 1: all six fanout inverters draw current.
        let single = state.pin_currents[1][0];
        assert!(single > 0.0);
        assert!((state.net_current[mid.0] - 6.0 * single).abs() < 1e-15);
    }

    #[test]
    fn own_pin_excluded_from_input_loading() {
        let circuit = fanout_circuit(6);
        let lib = library();
        let values = simulate(&circuit, &[false], &[]);
        let state = LoadingState::build(&circuit, &lib, &values).unwrap();
        // Gate 1 (first fanout inverter): its input loading is the
        // other five pins.
        let il = state.input_loading(&circuit, GateId(1), 0);
        let single = state.pin_currents[1][0].abs();
        assert!((il - 5.0 * single).abs() < 1e-15);
    }

    #[test]
    fn output_loading_counts_all_pins() {
        let circuit = fanout_circuit(6);
        let lib = library();
        let values = simulate(&circuit, &[false], &[]);
        let state = LoadingState::build(&circuit, &lib, &values).unwrap();
        let ol = state.output_loading(&circuit, GateId(0));
        let single = state.pin_currents[1][0].abs();
        assert!((ol - 6.0 * single).abs() < 1e-15);
    }

    #[test]
    fn primary_input_nets_have_zero_input_loading() {
        let circuit = fanout_circuit(2);
        let lib = library();
        let values = simulate(&circuit, &[false], &[]);
        let state = LoadingState::build(&circuit, &lib, &values).unwrap();
        assert_eq!(state.input_loading(&circuit, GateId(0), 0), 0.0);
    }

    #[test]
    fn missing_cell_reported() {
        let mut b = CircuitBuilder::new("nor");
        let a = b.add_input("a");
        let x = b.add_gate(CellType::Nor2, &[a, a], "x");
        b.mark_output(x);
        let circuit = b.build().unwrap();
        let lib = library(); // has only INV and NAND2
        let values = simulate(&circuit, &[false], &[]);
        let err = LoadingState::build(&circuit, &lib, &values).unwrap_err();
        assert!(matches!(err, EstimateError::MissingCell(CellType::Nor2)));
    }
}
