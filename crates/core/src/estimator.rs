//! The paper's fast leakage-estimation algorithm (Fig. 13).
//!
//! For an input pattern: propagate logic values; sum the characterized
//! gate-tunneling pin currents into per-net loading currents; then look
//! up every gate's leakage components as `f(I_L-IN per pin, I_L-OUT)`.
//! The loading effect is truncated at one level (the paper's Section 6
//! argument: a neighbor's-neighbor's gate current barely moves this
//! gate's nodes), which is what removes the need to solve simultaneous
//! KCL equations and makes the estimate a single topological pass.

use nanoleak_cells::eval_loaded;
use nanoleak_netlist::logic::simulate;
use nanoleak_netlist::{Circuit, GateId, Pattern};
use serde::{Deserialize, Serialize};

use crate::error::EstimateError;
use crate::loading::LoadingState;
use crate::report::CircuitLeakage;

/// How per-gate leakage is produced once loading currents are known.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EstimatorMode {
    /// Traditional estimation: nominal per-gate leakage, loading
    /// ignored (the baseline the paper improves on).
    NoLoading,
    /// The paper's method: characterized lookup tables, additive
    /// multi-pin combination (eq. 5). Fast path.
    #[default]
    Lut,
    /// Ablation: per-gate transistor-level re-solve with the computed
    /// loading currents injected (no interpolation, joint multi-pin
    /// handling) — still one-level truncation. Slower; quantifies pure
    /// LUT error.
    DirectSolve,
}

/// Fig. 13: estimates circuit leakage for one pattern.
///
/// The library must cover every cell type in the circuit and match the
/// technology/temperature of interest.
///
/// # Errors
/// * [`EstimateError::BadPattern`] on arity mismatch;
/// * [`EstimateError::MissingCell`] if a cell is uncharacterized;
/// * [`EstimateError::Solver`] from direct-solve mode.
///
/// # Examples
/// ```
/// use nanoleak_cells::{CellLibrary, CellType, CharacterizeOptions};
/// use nanoleak_core::{estimate, EstimatorMode};
/// use nanoleak_device::Technology;
/// use nanoleak_netlist::{CircuitBuilder, Pattern};
///
/// let tech = Technology::d25();
/// let lib = CellLibrary::shared_with_options(
///     &tech, 300.0, &CharacterizeOptions::coarse(&[CellType::Inv]));
/// let mut b = CircuitBuilder::new("pair");
/// let a = b.add_input("a");
/// let x = b.add_gate(CellType::Inv, &[a], "x");
/// let y = b.add_gate(CellType::Inv, &[x], "y");
/// b.mark_output(y);
/// let circuit = b.build()?;
/// let report = estimate(&circuit, &lib, &Pattern::zeros(&circuit), EstimatorMode::Lut)?;
/// assert!(report.total.total() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn estimate(
    circuit: &Circuit,
    library: &nanoleak_cells::CellLibrary,
    pattern: &Pattern,
    mode: EstimatorMode,
) -> Result<CircuitLeakage, EstimateError> {
    if pattern.pi.len() != circuit.inputs().len() {
        return Err(EstimateError::BadPattern(format!(
            "{} primary-input values for {} inputs",
            pattern.pi.len(),
            circuit.inputs().len()
        )));
    }
    if pattern.states.len() != circuit.state_inputs().len() {
        return Err(EstimateError::BadPattern(format!(
            "{} DFF states for {} flip-flops",
            pattern.states.len(),
            circuit.state_inputs().len()
        )));
    }

    let values = simulate(circuit, &pattern.pi, &pattern.states);
    let state = LoadingState::build(circuit, library, &values)?;

    let n_gates = circuit.gate_count();
    let mut per_gate = Vec::with_capacity(n_gates);
    for gid in circuit.topo_order() {
        per_gate.push((gid.0, estimate_gate(circuit, library, &state, *gid, mode)?));
    }
    // topo_order is a permutation of all gates; restore id order.
    let mut ordered = vec![nanoleak_device::LeakageBreakdown::ZERO; n_gates];
    for (gid, bd) in per_gate {
        ordered[gid] = bd;
    }
    Ok(CircuitLeakage::from_gates(ordered))
}

fn estimate_gate(
    circuit: &Circuit,
    library: &nanoleak_cells::CellLibrary,
    state: &LoadingState,
    gid: GateId,
    mode: EstimatorMode,
) -> Result<nanoleak_device::LeakageBreakdown, EstimateError> {
    let gate = circuit.gate(gid);
    let vector = state.gate_vectors[gid.0];
    let vc = library.vector_char(gate.cell, vector).ok_or(EstimateError::MissingCell(gate.cell))?;
    Ok(match mode {
        EstimatorMode::NoLoading => vc.nominal,
        EstimatorMode::Lut => {
            let il_in: Vec<f64> =
                (0..gate.inputs.len()).map(|pin| state.input_loading(circuit, gid, pin)).collect();
            let il_out = state.output_loading(circuit, gid);
            vc.leakage(&il_in, il_out)
        }
        EstimatorMode::DirectSolve => {
            let il_in: Vec<f64> =
                (0..gate.inputs.len()).map(|pin| state.input_loading(circuit, gid, pin)).collect();
            let il_out = state.output_loading(circuit, gid);
            eval_loaded(&library.tech, library.temp, gate.cell, vector, &il_in, il_out)?.breakdown
        }
    })
}

/// Convenience: estimates a batch of patterns on the compiled plan,
/// in parallel across threads when the batch is large.
///
/// The plan is compiled once and each worker keeps one
/// [`crate::EstimateScratch`]; worker counts follow the
/// workspace-wide convention of [`crate::exec::resolve_threads`]
/// (all cores, capped at 16), and results are materialized in pattern
/// order — bit-identical to calling [`estimate`] per pattern, for any
/// core count.
///
/// # Errors
/// [`EstimateError::MissingCell`] if the library lacks a used cell
/// (even before any pattern runs), else the first per-pattern error.
pub fn estimate_batch(
    circuit: &Circuit,
    library: &nanoleak_cells::CellLibrary,
    patterns: &[Pattern],
    mode: EstimatorMode,
) -> Result<Vec<CircuitLeakage>, EstimateError> {
    if patterns.is_empty() {
        return Ok(Vec::new());
    }
    let plan = crate::plan::CompiledEstimator::compile(circuit, library)?;
    let results = crate::exec::par_map_with(
        patterns.len(),
        0,
        || plan.scratch(),
        |scratch, i| plan.estimate_report(scratch, &patterns[i], mode),
    );
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_cells::{CellLibrary, CellType, CharacterizeOptions};
    use nanoleak_device::Technology;
    use nanoleak_netlist::CircuitBuilder;
    use std::sync::Arc;

    fn library() -> Arc<CellLibrary> {
        CellLibrary::shared_with_options(
            &Technology::d25(),
            300.0,
            &CharacterizeOptions::coarse(&[CellType::Inv, CellType::Nand2]),
        )
    }

    fn fanout_circuit(n: usize) -> Circuit {
        let mut b = CircuitBuilder::new("fanout");
        let a = b.add_input("a");
        let mid = b.add_gate(CellType::Inv, &[a], "mid");
        for i in 0..n {
            let y = b.add_gate(CellType::Inv, &[mid], &format!("y{i}"));
            b.mark_output(y);
        }
        b.build().unwrap()
    }

    #[test]
    fn loading_raises_total_over_no_loading_for_fanout_web() {
        // A '1' net loaded by 6 inverter pins: the fanout inverters see
        // input loading (sub rises); the driver sees output loading
        // (all fall). Net effect on this topology is positive.
        let circuit = fanout_circuit(6);
        let lib = library();
        let p = Pattern { pi: vec![false], states: vec![] };
        let no = estimate(&circuit, &lib, &p, EstimatorMode::NoLoading).unwrap();
        let with = estimate(&circuit, &lib, &p, EstimatorMode::Lut).unwrap();
        let rel = with.total_relative_change(&no);
        assert!(rel > 0.005 && rel < 0.15, "loading moved total by {}%", rel * 100.0);
    }

    #[test]
    fn lut_mode_tracks_direct_solve() {
        let circuit = fanout_circuit(6);
        let lib = library();
        let p = Pattern { pi: vec![true], states: vec![] };
        let lut = estimate(&circuit, &lib, &p, EstimatorMode::Lut).unwrap();
        let direct = estimate(&circuit, &lib, &p, EstimatorMode::DirectSolve).unwrap();
        let rel = (lut.total.total() - direct.total.total()).abs() / direct.total.total();
        assert!(rel < 0.01, "LUT vs direct = {}%", rel * 100.0);
    }

    #[test]
    fn per_gate_report_indexed_by_gate_id() {
        let circuit = fanout_circuit(3);
        let lib = library();
        let p = Pattern { pi: vec![false], states: vec![] };
        let rep = estimate(&circuit, &lib, &p, EstimatorMode::Lut).unwrap();
        assert_eq!(rep.per_gate.len(), 4);
        // Gates 1..3 are identical fanout inverters with identical
        // loading: identical leakage.
        assert_eq!(rep.per_gate[1], rep.per_gate[2]);
        assert_eq!(rep.per_gate[2], rep.per_gate[3]);
    }

    #[test]
    fn bad_pattern_arity_rejected() {
        let circuit = fanout_circuit(2);
        let lib = library();
        let p = Pattern { pi: vec![], states: vec![] };
        assert!(matches!(
            estimate(&circuit, &lib, &p, EstimatorMode::Lut),
            Err(EstimateError::BadPattern(_))
        ));
    }

    #[test]
    fn batch_matches_individual_runs() {
        let circuit = fanout_circuit(4);
        let lib = library();
        let patterns = vec![
            Pattern { pi: vec![false], states: vec![] },
            Pattern { pi: vec![true], states: vec![] },
        ];
        let batch = estimate_batch(&circuit, &lib, &patterns, EstimatorMode::Lut).unwrap();
        for (p, b) in patterns.iter().zip(&batch) {
            let single = estimate(&circuit, &lib, p, EstimatorMode::Lut).unwrap();
            assert_eq!(&single, b);
        }
    }
}
