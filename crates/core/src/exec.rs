//! Deterministic parallel execution primitives.
//!
//! The workspace-wide contract is that every batch result is
//! **bit-identical for any thread count**. Two rules make that hold:
//!
//! 1. anything random is derived per *work item* from the base seed
//!    with [`mix`] (SplitMix64), never from a shared RNG stream;
//! 2. per-item outputs are materialized in item order and every
//!    floating-point reduction runs sequentially over that order —
//!    threads only compute, they never reduce.
//!
//! These helpers live in `nanoleak-core` (rather than the engine) so
//! the estimator's own batch entry points share the same threading
//! convention; `nanoleak-engine` re-exports them unchanged.

/// SplitMix64: decorrelates per-item seeds from a base seed.
///
/// The same mixer `nanoleak-variation` uses for Monte-Carlo sample
/// streams, so engine sweeps and MC runs share one seeding discipline.
pub fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9e3779b97f4a7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Resolves a requested worker count: `0` means "all cores" (capped
/// at 16); anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16)
    } else {
        requested
    }
}

/// Maps `f` over `0..n` on up to `threads` workers, returning results
/// in index order.
///
/// Work is split into contiguous index chunks, one per worker; chunk
/// outputs are concatenated in chunk order, so the returned vector is
/// identical to `(0..n).map(f).collect()` regardless of `threads`.
///
/// # Panics
/// Propagates panics from `f`.
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_with(n, threads, || (), |(), i| f(i))
}

/// [`par_map`] with per-worker mutable state: each worker calls `init`
/// once and threads the resulting scratch through every item of its
/// contiguous chunk.
///
/// This is the hot-loop shape of the compiled estimator: `init`
/// builds an `EstimateScratch` (the only allocations), and `f` runs
/// allocation-free per item. Results are still materialized in item
/// order, so the output is identical to
/// `(0..n).map(|i| f(&mut init(), i)).collect()` for any `threads`
/// as long as `f` is deterministic given a warmed scratch (which the
/// estimator guarantees — scratch contents never leak across items).
///
/// # Panics
/// Propagates panics from `init` and `f`.
pub fn par_map_with<S, T, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 {
        let mut scratch = init();
        return (0..n).map(|i| f(&mut scratch, i)).collect();
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let (init, f) = (&init, &f);
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(n);
                scope.spawn(move || {
                    let mut scratch = init();
                    (start..end).map(|i| f(&mut scratch, i)).collect::<Vec<T>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("estimator worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_streams_do_not_collide_trivially() {
        let a: Vec<u64> = (0..64).map(|i| mix(2005, i)).collect();
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len(), "no duplicates in the first 64 streams");
        assert_ne!(mix(2005, 0), mix(2006, 0), "seed changes the stream");
    }

    #[test]
    fn par_map_preserves_index_order_for_any_thread_count() {
        let expect: Vec<usize> = (0..103).map(|i| i * i).collect();
        for threads in [1, 2, 3, 7, 16, 64] {
            assert_eq!(par_map(103, threads, |i| i * i), expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_degenerate_sizes() {
        assert_eq!(par_map(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn par_map_with_initializes_one_scratch_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in [1, 3, 8] {
            let inits = AtomicUsize::new(0);
            let out = par_map_with(
                20,
                threads,
                || {
                    inits.fetch_add(1, Ordering::SeqCst);
                    0usize
                },
                |count, i| {
                    *count += 1;
                    (i, *count)
                },
            );
            // Item order is preserved...
            assert_eq!(
                out.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
                (0..20).collect::<Vec<_>>()
            );
            // ...and scratch state stays within one worker's chunk:
            // per-item counts restart at 1 on each chunk boundary.
            let workers = inits.load(Ordering::SeqCst);
            assert!(workers <= threads.max(1), "{workers} inits for {threads} threads");
            assert_eq!(out.iter().filter(|(_, c)| *c == 1).count(), workers);
        }
    }

    #[test]
    fn requested_threads_are_honored() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }
}
