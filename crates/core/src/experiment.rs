//! The paper's circuit-level experiment (Fig. 12): run a benchmark
//! circuit over random vectors, with and without loading, against the
//! reference simulator.

use nanoleak_cells::CellLibrary;
use nanoleak_device::Technology;
use nanoleak_netlist::{Circuit, Pattern};
use rand::SeedableRng;

use crate::error::EstimateError;
use crate::estimator::{estimate_batch, EstimatorMode};
use crate::reference::{reference_batch, ReferenceOptions};
use crate::report::{accuracy, Accuracy, CircuitLeakage, LoadingImpact};

/// Configuration of a Fig. 12-style run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Number of random vectors (the paper uses 100).
    pub vectors: usize,
    /// RNG seed for the vectors.
    pub seed: u64,
    /// Whether to also run the (much slower) reference simulator.
    pub with_reference: bool,
    /// Reference solver options.
    pub reference: ReferenceOptions,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            vectors: 100,
            seed: 2005,
            with_reference: true,
            reference: ReferenceOptions::default(),
        }
    }
}

/// Results of one circuit's experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Circuit name.
    pub name: String,
    /// Gate count.
    pub gates: usize,
    /// Mean estimated total leakage with loading \[A\].
    pub est_loaded_mean: f64,
    /// Mean estimated total leakage without loading \[A\].
    pub est_unloaded_mean: f64,
    /// Mean reference ("SPICE") total leakage \[A\], when run.
    pub reference_mean: Option<f64>,
    /// Estimator-vs-reference accuracy averaged over vectors.
    pub accuracy_mean: Option<Accuracy>,
    /// Fig. 12b/12c loading-impact statistics (loaded vs unloaded
    /// estimates).
    pub impact: LoadingImpact,
}

/// Runs the experiment for one circuit.
///
/// # Errors
/// Propagates estimation/reference failures.
pub fn run_experiment(
    circuit: &Circuit,
    tech: &Technology,
    library: &CellLibrary,
    config: &ExperimentConfig,
) -> Result<ExperimentResult, EstimateError> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let patterns = Pattern::random_batch(circuit, &mut rng, config.vectors);

    let loaded = estimate_batch(circuit, library, &patterns, EstimatorMode::Lut)?;
    let unloaded = estimate_batch(circuit, library, &patterns, EstimatorMode::NoLoading)?;

    let pairs: Vec<(CircuitLeakage, CircuitLeakage)> =
        loaded.iter().cloned().zip(unloaded.iter().cloned()).collect();
    let impact = LoadingImpact::from_pairs(&pairs);

    let mean =
        |xs: &[CircuitLeakage]| xs.iter().map(|r| r.total.total()).sum::<f64>() / xs.len() as f64;

    let (reference_mean, accuracy_mean) = if config.with_reference {
        let refs = reference_batch(circuit, tech, library.temp, &patterns, &config.reference)?;
        let acc: Vec<Accuracy> =
            loaded.iter().zip(&refs).map(|(e, r)| accuracy(e, &r.leakage)).collect();
        let n = acc.len() as f64;
        let mean_acc = Accuracy {
            total_rel_err: acc.iter().map(|a| a.total_rel_err).sum::<f64>() / n,
            mean_gate_rel_err: acc.iter().map(|a| a.mean_gate_rel_err).sum::<f64>() / n,
            max_gate_rel_err: acc.iter().map(|a| a.max_gate_rel_err).fold(0.0, f64::max),
        };
        let ref_mean = refs.iter().map(|r| r.leakage.total.total()).sum::<f64>() / n;
        (Some(ref_mean), Some(mean_acc))
    } else {
        (None, None)
    };

    Ok(ExperimentResult {
        name: circuit.name().to_string(),
        gates: circuit.gate_count(),
        est_loaded_mean: mean(&loaded),
        est_unloaded_mean: mean(&unloaded),
        reference_mean,
        accuracy_mean,
        impact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_cells::{CellType, CharacterizeOptions};
    use nanoleak_netlist::generate::{random_circuit, RandomCircuitSpec};
    use nanoleak_netlist::normalize::normalize;

    #[test]
    fn small_random_circuit_end_to_end() {
        let tech = Technology::d25();
        let lib = CellLibrary::shared_with_options(
            &tech,
            300.0,
            &CharacterizeOptions::coarse(&CellType::ALL),
        );
        let raw = random_circuit(&RandomCircuitSpec::new("exp", 6, 3, 40, 2, 77));
        let circuit = normalize(&raw).unwrap();
        let config = ExperimentConfig { vectors: 4, with_reference: true, ..Default::default() };
        let result = run_experiment(&circuit, &tech, &lib, &config).unwrap();

        // The estimator must land close to the reference.
        let acc = result.accuracy_mean.unwrap();
        assert!(
            acc.total_rel_err.abs() < 0.03,
            "total error vs reference = {}%",
            acc.total_rel_err * 100.0
        );
        // Loading moves subthreshold up and gate/BTBT down on average
        // (paper Fig. 12b signs).
        assert!(result.impact.avg.sub > 0.0, "{:?}", result.impact);
        assert!(result.impact.avg.gate <= 0.005, "{:?}", result.impact);
        // The net total change is positive and modest (paper: ~5%).
        assert!(
            result.impact.avg_total > 0.0 && result.impact.avg_total < 0.15,
            "avg total change = {}%",
            result.impact.avg_total * 100.0
        );
    }
}
