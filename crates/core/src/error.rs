//! Estimation error types.

use std::error::Error;
use std::fmt;

use nanoleak_cells::CellType;
use nanoleak_solver::SolverError;

/// Errors from circuit-level leakage estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateError {
    /// The cell library lacks a characterization for a used cell type.
    MissingCell(CellType),
    /// A transistor-level solve failed (direct-solve mode or the
    /// reference simulator).
    Solver(SolverError),
    /// Pattern arity did not match the circuit.
    BadPattern(String),
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::MissingCell(cell) => {
                write!(f, "cell library has no characterization for '{cell}'")
            }
            EstimateError::Solver(e) => write!(f, "transistor-level solve failed: {e}"),
            EstimateError::BadPattern(msg) => write!(f, "bad pattern: {msg}"),
        }
    }
}

impl Error for EstimateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EstimateError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolverError> for EstimateError {
    fn from(e: SolverError) -> Self {
        EstimateError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = EstimateError::MissingCell(CellType::Nor3);
        assert!(e.to_string().contains("nor3"));
        let e: EstimateError = SolverError::BadProblem("x".into()).into();
        assert!(e.to_string().contains("solve failed"));
    }

    #[test]
    fn source_chains_solver_errors() {
        let e: EstimateError = SolverError::BadProblem("y".into()).into();
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&EstimateError::MissingCell(CellType::Inv)).is_none());
    }
}
