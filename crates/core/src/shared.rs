//! A self-contained, shareable compiled plan.
//!
//! [`CompiledEstimator`] borrows its circuit and library, which makes
//! it impossible to store in a process-wide cache or hand across
//! threads on its own. [`SharedEstimator`] bundles the plan with
//! `Arc`-owned copies of both borrows, so the whole unit is `'static`,
//! cheap to clone behind an `Arc`, and safe to share — the engine's
//! plan cache stores these.

use std::sync::Arc;

use nanoleak_cells::CellLibrary;
use nanoleak_netlist::Circuit;

use crate::error::EstimateError;
use crate::plan::CompiledEstimator;

/// A compiled plan that owns its circuit and library.
///
/// # Safety rationale
///
/// The plan is compiled against references obtained from the `Arc`s'
/// heap allocations and transmuted to `'static`. This is sound
/// because:
///
/// * the `Arc` pointees live exactly as long as `self` (the fields
///   are private and never replaced), and the heap allocation is
///   stable across moves of `SharedEstimator`;
/// * nothing hands out `&mut` to the circuit or library, so the
///   shared borrows are never invalidated;
/// * [`CompiledEstimator`] is covariant in its lifetime (it only
///   holds `&'a` fields) and has no `Drop` impl touching them, so
///   [`plan`](Self::plan) can shrink `'static` back down to the
///   borrow of `self`, which prevents the references from ever being
///   observed beyond the owner's life.
pub struct SharedEstimator {
    // Declared first so its (trivial) drop glue runs before the Arcs
    // are released; no field of the plan dereferences on drop.
    plan: CompiledEstimator<'static>,
    circuit: Arc<Circuit>,
    library: Arc<CellLibrary>,
}

impl SharedEstimator {
    /// Compiles a plan that co-owns `circuit` and `library`.
    ///
    /// # Errors
    /// Propagates [`CompiledEstimator::compile`] errors.
    pub fn new(circuit: Arc<Circuit>, library: Arc<CellLibrary>) -> Result<Self, EstimateError> {
        // SAFETY: see the type-level rationale — the pointees outlive
        // every use of these references because the Arcs are owned by
        // the same value as the plan and `plan()` reborrows at `&self`
        // lifetime.
        let c: &'static Circuit = unsafe { &*Arc::as_ptr(&circuit) };
        let l: &'static CellLibrary = unsafe { &*Arc::as_ptr(&library) };
        let plan = CompiledEstimator::compile(c, l)?;
        Ok(Self { plan, circuit, library })
    }

    /// The compiled plan, with its lifetime tied back to `self`.
    pub fn plan(&self) -> &CompiledEstimator<'_> {
        &self.plan
    }

    /// The co-owned circuit.
    pub fn circuit(&self) -> &Arc<Circuit> {
        &self.circuit
    }

    /// The co-owned library.
    pub fn library(&self) -> &Arc<CellLibrary> {
        &self.library
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{estimate, EstimatorMode};
    use nanoleak_cells::{CellType, CharacterizeOptions};
    use nanoleak_device::Technology;
    use nanoleak_netlist::generate::{random_circuit, RandomCircuitSpec};
    use nanoleak_netlist::normalize::normalize;
    use nanoleak_netlist::Pattern;
    use rand::SeedableRng;

    #[test]
    fn shared_plan_survives_moves_and_threads() {
        let raw = random_circuit(&RandomCircuitSpec::new("shared", 5, 3, 30, 1, 9));
        let circuit = Arc::new(normalize(&raw).unwrap());
        let library = CellLibrary::shared_with_options(
            &Technology::d25(),
            300.0,
            &CharacterizeOptions::coarse(&CellType::ALL),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let pattern = Pattern::random(&circuit, &mut rng);
        let reference = estimate(&circuit, &library, &pattern, EstimatorMode::Lut).unwrap().total;

        let shared = SharedEstimator::new(circuit, library).unwrap();
        // Move it (heap allocations behind the Arcs are stable).
        let shared = Arc::new(shared);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let shared = Arc::clone(&shared);
            let pattern = pattern.clone();
            handles.push(std::thread::spawn(move || {
                let plan = shared.plan();
                let mut scratch = plan.scratch();
                plan.estimate_into(&mut scratch, &pattern, EstimatorMode::Lut).unwrap()
            }));
        }
        for h in handles {
            let total = h.join().unwrap();
            assert_eq!(total.total().to_bits(), reference.total().to_bits());
        }
    }
}
