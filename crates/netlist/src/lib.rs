//! # nanoleak-netlist
//!
//! Gate-level circuits for the *nanoleak* reproduction of the DATE 2005
//! loading-effect paper: ISCAS89 `.bench` parsing, normalization onto
//! the characterized cell family, logic simulation, and generators for
//! the paper's benchmark suite.
//!
//! * [`raw`] / [`bench_format`] / [`yosys`] — arbitrary-fanin boolean
//!   networks, the `.bench` reader/writer, and the Yosys JSON importer;
//! * [`normalize`](crate::normalize::normalize) — technology mapping to
//!   INV/NAND/NOR cells, with the leakage-equivalent DFF expansion;
//! * [`circuit`] — the validated, topologically-sorted cell-level
//!   graph with per-net driver/fanout queries (what the estimator
//!   walks);
//! * [`logic`] — pattern simulation;
//! * [`generate`] — random logic, ISCAS89-sized synthetic stand-ins,
//!   an array multiplier and an ALU (the paper's `mult88`/`alu88`).
//!
//! ## Example
//!
//! ```
//! use nanoleak_netlist::{normalize::normalize, bench_format::parse_bench, logic::simulate};
//!
//! let raw = parse_bench("half_adder", "\
//! INPUT(a)
//! INPUT(b)
//! OUTPUT(s)
//! OUTPUT(c)
//! s = XOR(a, b)
//! c = AND(a, b)
//! ")?;
//! let circuit = normalize(&raw)?;
//! let values = simulate(&circuit, &[true, true], &[]);
//! assert!(!values[circuit.find_net("s").unwrap().0]);
//! assert!(values[circuit.find_net("c").unwrap().0]);
//! # Ok::<(), nanoleak_netlist::CircuitError>(())
//! ```

pub mod bench_format;
pub mod canonical;
pub mod circuit;
pub mod error;
pub mod generate;
pub mod logic;
pub mod normalize;
pub mod raw;
pub mod stats;
pub mod yosys;

pub use canonical::{canonicalize, canonicalize_raw, CanonReport};
pub use circuit::{Circuit, CircuitBuilder, Driver, Gate, GateId, NetId, NetLoad};
pub use error::CircuitError;
pub use logic::{Pattern, PatternBlock, LANES};
pub use raw::{RawCircuit, RawGate, RawOp, SigId};
pub use stats::CircuitStats;
pub use yosys::parse_yosys_json;

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::generate::{random_circuit, RandomCircuitSpec};
    use proptest::prelude::*;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Any random circuit validates, normalizes, and its topological
        /// order puts every gate after its drivers.
        #[test]
        fn random_circuits_normalize_and_sort(
            seed in any::<u64>(),
            gates in 10usize..150,
            inputs in 2usize..12,
            dffs in 0usize..8,
        ) {
            let spec = RandomCircuitSpec::new("prop", inputs, 2, gates, dffs, seed);
            let raw = random_circuit(&spec);
            raw.validate().unwrap();
            let c = normalize::normalize(&raw).unwrap();
            // Topological validity.
            let mut seen = vec![false; c.gate_count()];
            for &gid in c.topo_order() {
                for &inp in &c.gate(gid).inputs {
                    if let Driver::Gate(src) = c.net_driver(inp) {
                        prop_assert!(seen[src.0], "gate order violation");
                    }
                }
                seen[gid.0] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }

        /// `.bench` round trip preserves structure and function for
        /// random circuits.
        #[test]
        fn bench_round_trip_preserves_function(seed in any::<u64>()) {
            let spec = RandomCircuitSpec::new("rt", 5, 3, 40, 2, seed);
            let raw = random_circuit(&spec);
            let text = bench_format::write_bench(&raw);
            let back = bench_format::parse_bench("rt", &text).unwrap();
            let c1 = normalize::normalize(&raw).unwrap();
            let c2 = normalize::normalize(&back).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabcd);
            for _ in 0..8 {
                let p = Pattern::random(&c1, &mut rng);
                let v1 = logic::simulate(&c1, &p.pi, &p.states);
                let v2 = logic::simulate(&c2, &p.pi, &p.states);
                for (k, &o) in raw.outputs.iter().enumerate() {
                    let name = raw.signal_name(o);
                    let n1 = c1.find_net(name).unwrap();
                    let n2 = c2.find_net(name).unwrap();
                    prop_assert_eq!(v1[n1.0], v2[n2.0], "output {} ({})", k, name);
                }
            }
        }
    }
}
