//! The normalized gate-level circuit: every gate is a library cell, every
//! net has exactly one driver, gates are stored in topological order.
//!
//! Sequential elements (DFFs) are represented by their leakage-equivalent
//! expansion (performed by [`crate::normalize`]): the D pin feeds a real
//! master-stage inverter, and the Q net is driven by a real slave-stage
//! inverter whose input is a *state input* — a pseudo primary input
//! carrying the stored value's complement. This makes flip-flop loading
//! and leakage flow through exactly the same machinery as combinational
//! gates, in both the fast estimator and the reference simulator.

use nanoleak_cells::CellType;
use serde::{Deserialize, Serialize};

use crate::error::CircuitError;

/// Index of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub usize);

/// Index of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GateId(pub usize);

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Driver {
    /// Primary input.
    Input,
    /// DFF state pseudo-input (carries the stored value's complement,
    /// feeding the slave inverter that drives Q).
    StateInput,
    /// Output of a gate.
    Gate(GateId),
}

/// A library-cell instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gate {
    /// The cell type.
    pub cell: CellType,
    /// Input nets, pin order.
    pub inputs: Vec<NetId>,
    /// Output net.
    pub output: NetId,
}

/// One (gate, pin) load on a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetLoad {
    /// Loading gate.
    pub gate: GateId,
    /// Which input pin of that gate.
    pub pin: usize,
}

/// A validated, topologically ordered gate-level circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    name: String,
    net_names: Vec<String>,
    drivers: Vec<Driver>,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    state_inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    /// DFF D-pin nets (pseudo primary outputs), parallel to
    /// `state_inputs`.
    dff_d: Vec<NetId>,
    /// Gates in topological order (inputs before users).
    topo: Vec<GateId>,
    /// Per-net fanout loads.
    loads: Vec<Vec<NetLoad>>,
}

impl Circuit {
    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of DFFs (after expansion; equals the number of state
    /// inputs).
    pub fn dff_count(&self) -> usize {
        self.state_inputs.len()
    }

    /// Primary inputs.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// DFF-state pseudo-inputs (complement of the stored value).
    pub fn state_inputs(&self) -> &[NetId] {
        &self.state_inputs
    }

    /// Primary outputs.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// DFF D-pin nets (pseudo primary outputs).
    pub fn dff_d_nets(&self) -> &[NetId] {
        &self.dff_d
    }

    /// All gates (unordered storage; use [`Circuit::topo_order`] for
    /// evaluation order).
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate with the given id.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.0]
    }

    /// Gates in topological order.
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo
    }

    /// A net's name.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.0]
    }

    /// A net's driver.
    pub fn net_driver(&self, net: NetId) -> Driver {
        self.drivers[net.0]
    }

    /// The (gate, pin) loads on a net.
    pub fn net_loads(&self, net: NetId) -> &[NetLoad] {
        &self.loads[net.0]
    }

    /// Looks up a net by name (linear scan).
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names.iter().position(|n| n == name).map(NetId)
    }

    /// Structural identity hash: FNV-1a over the gate list with nets
    /// renumbered canonically (primary inputs in order, then state
    /// inputs, then gate outputs in gate-id order), plus the output
    /// and DFF-D markers.
    ///
    /// The key is **name-independent but order- and pin-exact**: two
    /// circuits that differ only in net/circuit names hash equal,
    /// while any structural difference — including swapping the pins
    /// of a commutative gate or reordering gate declarations — hashes
    /// differently. Pin order is leakage-relevant (each net loads a
    /// distinct characterized pin) and gate order is the estimator's
    /// FP reduction order, so both must be part of any identity that
    /// keys a shared `CompiledEstimator`: a plan-cache hit is then
    /// guaranteed to reproduce a fresh compile bit-for-bit.
    pub fn structural_key(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0100_0000_01b3;
        fn mix(h: &mut u64, x: u64) {
            for b in x.to_le_bytes() {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(PRIME);
            }
        }
        // Canonical net numbering: every net has exactly one driver,
        // so inputs + state inputs + gate outputs cover all of them.
        let mut canon = vec![0u64; self.net_names.len()];
        let mut next = 0u64;
        for &n in self.inputs.iter().chain(&self.state_inputs) {
            canon[n.0] = next;
            next += 1;
        }
        for g in &self.gates {
            canon[g.output.0] = next;
            next += 1;
        }
        let mut h = OFFSET;
        mix(&mut h, self.inputs.len() as u64);
        mix(&mut h, self.state_inputs.len() as u64);
        mix(&mut h, self.gates.len() as u64);
        for g in &self.gates {
            mix(&mut h, g.cell as u64);
            mix(&mut h, g.inputs.len() as u64);
            for &i in &g.inputs {
                mix(&mut h, canon[i.0]);
            }
            mix(&mut h, canon[g.output.0]);
        }
        mix(&mut h, self.outputs.len() as u64);
        for &o in &self.outputs {
            mix(&mut h, canon[o.0]);
        }
        for &d in &self.dff_d {
            mix(&mut h, canon[d.0]);
        }
        h
    }

    /// Histogram of gate counts per cell type.
    pub fn cell_histogram(&self) -> Vec<(CellType, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for g in &self.gates {
            *counts.entry(g.cell).or_insert(0usize) += 1;
        }
        counts.into_iter().collect()
    }
}

/// Incremental builder for [`Circuit`]; [`CircuitBuilder::build`]
/// validates and topologically sorts.
///
/// ```
/// use nanoleak_cells::CellType;
/// use nanoleak_netlist::CircuitBuilder;
///
/// let mut b = CircuitBuilder::new("demo");
/// let a = b.add_input("a");
/// let c = b.add_input("b");
/// let y = b.add_gate(CellType::Nand2, &[a, c], "y");
/// b.mark_output(y);
/// let circuit = b.build()?;
/// assert_eq!(circuit.gate_count(), 1);
/// # Ok::<(), nanoleak_netlist::CircuitError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct CircuitBuilder {
    name: String,
    net_names: Vec<String>,
    drivers: Vec<Option<Driver>>,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    state_inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    dff_d: Vec<NetId>,
}

impl CircuitBuilder {
    /// Starts an empty circuit.
    pub fn new(name: &str) -> Self {
        Self { name: name.to_string(), ..Default::default() }
    }

    fn add_net_raw(&mut self, name: &str) -> NetId {
        self.net_names.push(name.to_string());
        self.drivers.push(None);
        NetId(self.net_names.len() - 1)
    }

    /// Adds a primary input net.
    pub fn add_input(&mut self, name: &str) -> NetId {
        let id = self.add_net_raw(name);
        self.drivers[id.0] = Some(Driver::Input);
        self.inputs.push(id);
        id
    }

    /// Adds a DFF state pseudo-input net (stored-value complement).
    pub fn add_state_input(&mut self, name: &str) -> NetId {
        let id = self.add_net_raw(name);
        self.drivers[id.0] = Some(Driver::StateInput);
        self.state_inputs.push(id);
        id
    }

    /// Adds a gate, creating its output net with the given name.
    pub fn add_gate(&mut self, cell: CellType, inputs: &[NetId], out_name: &str) -> NetId {
        assert_eq!(inputs.len(), cell.num_inputs(), "{cell}: wrong fanin");
        let out = self.add_net_raw(out_name);
        let gid = GateId(self.gates.len());
        self.gates.push(Gate { cell, inputs: inputs.to_vec(), output: out });
        self.drivers[out.0] = Some(Driver::Gate(gid));
        out
    }

    /// Marks a net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        self.outputs.push(net);
    }

    /// Registers a DFF D-pin net (pseudo primary output), pairing it
    /// with the most recently added state input.
    pub fn mark_dff_d(&mut self, net: NetId) {
        self.dff_d.push(net);
    }

    /// Number of gates added so far.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Validates and freezes the circuit.
    ///
    /// # Errors
    /// * [`CircuitError::UndrivenNet`] if any net lacks a driver;
    /// * [`CircuitError::CombinationalCycle`] if gate dependencies are
    ///   cyclic.
    pub fn build(self) -> Result<Circuit, CircuitError> {
        // Every net must be driven.
        let mut drivers = Vec::with_capacity(self.drivers.len());
        for (i, d) in self.drivers.iter().enumerate() {
            match d {
                Some(d) => drivers.push(*d),
                None => return Err(CircuitError::UndrivenNet { net: self.net_names[i].clone() }),
            }
        }

        // Kahn topological sort over gates.
        let n_gates = self.gates.len();
        let mut indegree = vec![0usize; n_gates];
        let mut users: Vec<Vec<usize>> = vec![Vec::new(); n_gates];
        for (gi, gate) in self.gates.iter().enumerate() {
            for &inp in &gate.inputs {
                if let Driver::Gate(src) = drivers[inp.0] {
                    indegree[gi] += 1;
                    users[src.0].push(gi);
                }
            }
        }
        let mut queue: Vec<usize> = (0..n_gates).filter(|&g| indegree[g] == 0).collect();
        let mut topo = Vec::with_capacity(n_gates);
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            topo.push(GateId(g));
            for &u in &users[g] {
                indegree[u] -= 1;
                if indegree[u] == 0 {
                    queue.push(u);
                }
            }
        }
        if topo.len() != n_gates {
            let stuck = (0..n_gates).find(|&g| indegree[g] > 0).expect("cycle exists");
            return Err(CircuitError::CombinationalCycle {
                net: self.net_names[self.gates[stuck].output.0].clone(),
            });
        }

        // Fanout loads.
        let mut loads: Vec<Vec<NetLoad>> = vec![Vec::new(); self.net_names.len()];
        for (gi, gate) in self.gates.iter().enumerate() {
            for (pin, &inp) in gate.inputs.iter().enumerate() {
                loads[inp.0].push(NetLoad { gate: GateId(gi), pin });
            }
        }

        Ok(Circuit {
            name: self.name,
            net_names: self.net_names,
            drivers,
            gates: self.gates,
            inputs: self.inputs,
            state_inputs: self.state_inputs,
            outputs: self.outputs,
            dff_d: self.dff_d,
            topo,
            loads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_gate_chain() -> Circuit {
        let mut b = CircuitBuilder::new("chain");
        let a = b.add_input("a");
        let x = b.add_gate(CellType::Inv, &[a], "x");
        let y = b.add_gate(CellType::Inv, &[x], "y");
        b.mark_output(y);
        b.build().unwrap()
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let c = two_gate_chain();
        let order = c.topo_order();
        assert_eq!(order.len(), 2);
        assert_eq!(order[0].0, 0);
        assert_eq!(order[1].0, 1);
    }

    #[test]
    fn loads_are_recorded_per_pin() {
        let mut b = CircuitBuilder::new("fanout");
        let a = b.add_input("a");
        let _x = b.add_gate(CellType::Inv, &[a], "x");
        let _y = b.add_gate(CellType::Nand2, &[a, a], "y");
        let c = b.build().unwrap();
        let a = c.find_net("a").unwrap();
        let loads = c.net_loads(a);
        assert_eq!(loads.len(), 3, "inv pin + both nand pins");
        assert_eq!(loads[1].pin, 0);
        assert_eq!(loads[2].pin, 1);
    }

    #[test]
    fn cycles_rejected() {
        // Build manually: g0 input is g1's output and vice versa.
        let mut b = CircuitBuilder::new("cyc");
        let a = b.add_input("a");
        // Forward-declare nets by creating gates in two steps is not
        // possible through the safe API, so craft the cycle directly.
        let x = b.add_gate(CellType::Inv, &[a], "x");
        let y = b.add_gate(CellType::Inv, &[x], "y");
        // Introduce the cycle by rewiring gate 0's input to net y.
        b.gates[0].inputs[0] = y;
        assert!(matches!(b.build(), Err(CircuitError::CombinationalCycle { .. })));
    }

    #[test]
    fn undriven_net_rejected() {
        let mut b = CircuitBuilder::new("undriven");
        let a = b.add_net_raw("floating");
        let _ = b.add_gate(CellType::Inv, &[a], "x");
        assert!(matches!(b.build(), Err(CircuitError::UndrivenNet { .. })));
    }

    #[test]
    fn structural_key_ignores_names_only() {
        fn nand_pair(name: &str, a_name: &str, b_name: &str, swap: bool) -> Circuit {
            let mut b = CircuitBuilder::new(name);
            let a = b.add_input(a_name);
            let c = b.add_input(b_name);
            let pins = if swap { [c, a] } else { [a, c] };
            let y = b.add_gate(CellType::Nand2, &pins, "y");
            b.mark_output(y);
            b.build().unwrap()
        }
        let base = nand_pair("one", "a", "b", false);
        let renamed = nand_pair("two", "p", "q", false);
        let swapped = nand_pair("one", "a", "b", true);
        // Names never matter...
        assert_eq!(base.structural_key(), renamed.structural_key());
        // ...but pin order does: each pin is a distinct characterized
        // load, so a swap is a different circuit to the estimator.
        assert_ne!(base.structural_key(), swapped.structural_key());
    }

    #[test]
    fn structural_key_sees_structure() {
        let chain = two_gate_chain();
        let mut b = CircuitBuilder::new("chain3");
        let a = b.add_input("a");
        let x = b.add_gate(CellType::Inv, &[a], "x");
        let y = b.add_gate(CellType::Inv, &[x], "y");
        let z = b.add_gate(CellType::Inv, &[y], "z");
        b.mark_output(z);
        let chain3 = b.build().unwrap();
        assert_ne!(chain.structural_key(), chain3.structural_key());

        // Output markers are part of identity too.
        let mut b = CircuitBuilder::new("chain");
        let a = b.add_input("a");
        let x = b.add_gate(CellType::Inv, &[a], "x");
        let y = b.add_gate(CellType::Inv, &[x], "y");
        b.mark_output(x);
        b.mark_output(y);
        let two_outs = b.build().unwrap();
        assert_ne!(chain.structural_key(), two_outs.structural_key());
    }

    #[test]
    fn histogram_counts_cells() {
        let c = two_gate_chain();
        let h = c.cell_histogram();
        assert_eq!(h, vec![(CellType::Inv, 2)]);
    }

    #[test]
    fn state_inputs_tracked_separately() {
        let mut b = CircuitBuilder::new("seq");
        let d = b.add_input("d");
        let s = b.add_state_input("ff0.sbar");
        let q = b.add_gate(CellType::Inv, &[s], "q");
        let m = b.add_gate(CellType::Inv, &[d], "m");
        let _ = m;
        b.mark_dff_d(d);
        b.mark_output(q);
        let c = b.build().unwrap();
        assert_eq!(c.dff_count(), 1);
        assert_eq!(c.state_inputs().len(), 1);
        assert_eq!(c.dff_d_nets().len(), 1);
    }

    #[test]
    #[should_panic(expected = "wrong fanin")]
    fn fanin_mismatch_panics() {
        let mut b = CircuitBuilder::new("bad");
        let a = b.add_input("a");
        b.add_gate(CellType::Nand2, &[a], "x");
    }
}
