//! Netlist error types.

use std::error::Error;
use std::fmt;

/// Errors from circuit construction, parsing, or normalization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A net has two drivers (gate outputs / inputs colliding).
    MultipleDrivers {
        /// The offending net's name.
        net: String,
    },
    /// A net is used but never driven.
    UndrivenNet {
        /// The offending net's name.
        net: String,
    },
    /// Combinational feedback loop detected.
    CombinationalCycle {
        /// A net on the cycle.
        net: String,
    },
    /// A gate references a signal that does not exist.
    UnknownSignal {
        /// The referenced name.
        name: String,
    },
    /// `.bench` syntax error.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A gate has an unsupported shape (e.g. zero inputs).
    BadGate(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::MultipleDrivers { net } => write!(f, "net '{net}' has multiple drivers"),
            CircuitError::UndrivenNet { net } => write!(f, "net '{net}' is never driven"),
            CircuitError::CombinationalCycle { net } => {
                write!(f, "combinational cycle through net '{net}'")
            }
            CircuitError::UnknownSignal { name } => write!(f, "unknown signal '{name}'"),
            CircuitError::Parse { line, message } => write!(f, "line {line}: {message}"),
            CircuitError::BadGate(msg) => write!(f, "bad gate: {msg}"),
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_culprit() {
        assert!(CircuitError::MultipleDrivers { net: "n42".into() }.to_string().contains("n42"));
        assert!(CircuitError::Parse { line: 7, message: "bad token".into() }
            .to_string()
            .contains("line 7"));
    }
}
