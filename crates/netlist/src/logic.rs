//! Logic-value propagation over normalized circuits.
//!
//! The paper's Fig. 13 algorithm first propagates logic values from the
//! primary inputs for the applied pattern; every later step (loading
//! currents, leakage lookups) is keyed on the resulting per-gate input
//! vectors.

use nanoleak_cells::InputVector;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::circuit::{Circuit, GateId};

/// Largest cell fanin [`simulate_into`] supports without allocating
/// (the cell family tops out at 4 pins; 8 leaves headroom and matches
/// `InputVector`'s bound).
const MAX_FANIN: usize = 8;

/// Evaluates all net values for primary-input pattern `pi` and DFF
/// stored states `states`.
///
/// Returns one boolean per net (indexable by `NetId.0`). DFF state
/// pseudo-inputs are set to the *complement* of the stored value so the
/// slave inverter reproduces the state on Q.
///
/// # Panics
/// Panics if `pi` or `states` have the wrong length.
pub fn simulate(circuit: &Circuit, pi: &[bool], states: &[bool]) -> Vec<bool> {
    let mut values = Vec::new();
    simulate_into(circuit, pi, states, &mut values);
    values
}

/// [`simulate`] into a caller-owned buffer: `values` is cleared and
/// refilled with one boolean per net (indexable by `NetId.0`).
///
/// Once `values` has reached the circuit's net count this performs no
/// heap allocation — the buffer is reused and per-gate input levels
/// live in a stack array — which is what lets the compiled estimator
/// (`nanoleak-core`'s `CompiledEstimator`) run a whole pattern without
/// touching the allocator.
///
/// # Panics
/// Panics if `pi` or `states` have the wrong length.
pub fn simulate_into(circuit: &Circuit, pi: &[bool], states: &[bool], values: &mut Vec<bool>) {
    assert_eq!(pi.len(), circuit.inputs().len(), "primary input count");
    assert_eq!(states.len(), circuit.state_inputs().len(), "DFF state count");
    values.clear();
    values.resize(circuit.net_count(), false);
    for (net, &v) in circuit.inputs().iter().zip(pi) {
        values[net.0] = v;
    }
    for (net, &state) in circuit.state_inputs().iter().zip(states) {
        values[net.0] = !state;
    }
    let mut ins = [false; MAX_FANIN];
    for &gid in circuit.topo_order() {
        let gate = circuit.gate(gid);
        let k = gate.inputs.len();
        assert!(k <= MAX_FANIN, "gate fanin {k} exceeds {MAX_FANIN}");
        for (slot, &net) in ins[..k].iter_mut().zip(&gate.inputs) {
            *slot = values[net.0];
        }
        values[gate.output.0] = gate.cell.eval_logic(&ins[..k]);
    }
}

/// The input vector a gate sees under the given net values.
pub fn gate_vector(circuit: &Circuit, gate: GateId, values: &[bool]) -> InputVector {
    let g = circuit.gate(gate);
    let bools: Vec<bool> = g.inputs.iter().map(|n| values[n.0]).collect();
    InputVector::from_bools(&bools)
}

/// A primary-input pattern plus DFF states — one "vector" of the
/// paper's 100-random-vector experiments.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pattern {
    /// Primary input values.
    pub pi: Vec<bool>,
    /// DFF stored states.
    pub states: Vec<bool>,
}

impl Pattern {
    /// Draws a uniformly random pattern for `circuit`.
    pub fn random<R: Rng + ?Sized>(circuit: &Circuit, rng: &mut R) -> Self {
        let mut p = Self::default();
        p.fill_random(circuit, rng);
        p
    }

    /// Refills `self` with a uniformly random pattern for `circuit`,
    /// reusing the existing buffers. Draws the same RNG stream as
    /// [`Pattern::random`] (primary inputs first, then DFF states), so
    /// `fill_random` into a reused pattern and `random` into a fresh
    /// one produce identical bits — allocation-free once the buffers
    /// have grown to the circuit's arity.
    pub fn fill_random<R: Rng + ?Sized>(&mut self, circuit: &Circuit, rng: &mut R) {
        self.pi.clear();
        self.pi.extend((0..circuit.inputs().len()).map(|_| rng.gen::<bool>()));
        self.states.clear();
        self.states.extend((0..circuit.state_inputs().len()).map(|_| rng.gen::<bool>()));
    }

    /// Draws `n` random patterns.
    pub fn random_batch<R: Rng + ?Sized>(circuit: &Circuit, rng: &mut R, n: usize) -> Vec<Self> {
        (0..n).map(|_| Self::random(circuit, rng)).collect()
    }

    /// All-zero pattern.
    pub fn zeros(circuit: &Circuit) -> Self {
        Self {
            pi: vec![false; circuit.inputs().len()],
            states: vec![false; circuit.state_inputs().len()],
        }
    }
}

/// Lane count of the word-parallel evaluation path: one bit of a
/// `u64` word per pattern.
pub const LANES: usize = 64;

/// Up to [`LANES`] patterns packed bit-transposed: one `u64` word per
/// primary input (and per DFF state), bit `l` of each word holding
/// lane `l`'s value. This is the input format of the compiled plan's
/// block simulate kernel (`nanoleak-core`'s
/// `CompiledEstimator::estimate_block_into`), which propagates all
/// packed lanes through the topo order at once with bitwise ops.
///
/// Words are sized once by [`PatternBlock::for_arity`]; `clear`/`push`
/// never touch the allocator, so a per-worker block can be refilled
/// per 64-pattern chunk under the same zero-allocation contract as
/// the scalar scratch. Lanes beyond [`len`](Self::len) are zero
/// (all-false patterns); consumers must ignore them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatternBlock {
    pi: Vec<u64>,
    states: Vec<u64>,
    len: usize,
}

impl PatternBlock {
    /// An empty block sized for `circuit`'s input/state arity.
    pub fn for_circuit(circuit: &Circuit) -> Self {
        Self::for_arity(circuit.inputs().len(), circuit.state_inputs().len())
    }

    /// An empty block for the given primary-input and DFF-state counts.
    pub fn for_arity(inputs: usize, states: usize) -> Self {
        Self { pi: vec![0; inputs], states: vec![0; states], len: 0 }
    }

    /// Packed lanes currently in the block.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no lanes are packed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when all [`LANES`] lanes are packed.
    pub fn is_full(&self) -> bool {
        self.len == LANES
    }

    /// Drops all lanes (words are zeroed; capacity is kept).
    pub fn clear(&mut self) {
        self.pi.iter_mut().for_each(|w| *w = 0);
        self.states.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Packs `pattern` into the next free lane and returns its lane
    /// index.
    ///
    /// # Panics
    /// If the block is full or the pattern's arity differs from the
    /// block's.
    pub fn push(&mut self, pattern: &Pattern) -> usize {
        assert!(self.len < LANES, "pattern block is full");
        assert_eq!(pattern.pi.len(), self.pi.len(), "primary input count");
        assert_eq!(pattern.states.len(), self.states.len(), "DFF state count");
        let lane = self.len;
        let bit = 1u64 << lane;
        for (w, &v) in self.pi.iter_mut().zip(&pattern.pi) {
            if v {
                *w |= bit;
            }
        }
        for (w, &v) in self.states.iter_mut().zip(&pattern.states) {
            if v {
                *w |= bit;
            }
        }
        self.len = lane + 1;
        lane
    }

    /// Unpacks lane `lane` into `pattern` (cleared and refilled;
    /// allocation-free once the buffers have grown to the arity).
    ///
    /// # Panics
    /// If `lane >= self.len()`.
    pub fn get_into(&self, lane: usize, pattern: &mut Pattern) {
        assert!(lane < self.len, "lane {lane} out of {}", self.len);
        pattern.pi.clear();
        pattern.pi.extend(self.pi.iter().map(|w| w >> lane & 1 == 1));
        pattern.states.clear();
        pattern.states.extend(self.states.iter().map(|w| w >> lane & 1 == 1));
    }

    /// Packed primary-input words, one per circuit input, lane `l` in
    /// bit `l`.
    pub fn pi_words(&self) -> &[u64] {
        &self.pi
    }

    /// Packed DFF-state words, one per state pseudo-input.
    pub fn state_words(&self) -> &[u64] {
        &self.states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use nanoleak_cells::CellType;
    use rand::SeedableRng;

    fn nand_inv() -> Circuit {
        let mut b = CircuitBuilder::new("t");
        let a = b.add_input("a");
        let c = b.add_input("b");
        let n = b.add_gate(CellType::Nand2, &[a, c], "n");
        let y = b.add_gate(CellType::Inv, &[n], "y");
        b.mark_output(y);
        b.build().unwrap()
    }

    #[test]
    fn nand_inv_is_and() {
        let c = nand_inv();
        let y = c.find_net("y").unwrap();
        for (a, b, expect) in
            [(false, false, false), (false, true, false), (true, false, false), (true, true, true)]
        {
            let values = simulate(&c, &[a, b], &[]);
            assert_eq!(values[y.0], expect, "a={a} b={b}");
        }
    }

    #[test]
    fn gate_vector_reflects_net_values() {
        let c = nand_inv();
        let values = simulate(&c, &[true, false], &[]);
        let v = gate_vector(&c, c.topo_order()[0], &values);
        assert_eq!(v.to_string(), "10");
    }

    #[test]
    fn simulate_into_reuses_the_buffer_and_matches_simulate() {
        let c = nand_inv();
        let mut values = Vec::new();
        for (a, b) in [(false, false), (true, false), (true, true)] {
            simulate_into(&c, &[a, b], &[], &mut values);
            assert_eq!(values, simulate(&c, &[a, b], &[]), "a={a} b={b}");
        }
        // A stale, oversized buffer is fully overwritten.
        values.resize(64, true);
        simulate_into(&c, &[false, true], &[], &mut values);
        assert_eq!(values.len(), c.net_count());
        assert_eq!(values, simulate(&c, &[false, true], &[]));
    }

    #[test]
    fn fill_random_draws_the_same_stream_as_random() {
        let c = nand_inv();
        let mut r1 = rand::rngs::StdRng::seed_from_u64(9);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(9);
        let mut reused = Pattern { pi: vec![true; 7], states: vec![true; 3] };
        for _ in 0..8 {
            reused.fill_random(&c, &mut r1);
            assert_eq!(reused, Pattern::random(&c, &mut r2));
        }
    }

    #[test]
    fn patterns_are_deterministic_per_seed() {
        let c = nand_inv();
        let mut r1 = rand::rngs::StdRng::seed_from_u64(42);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(42);
        assert_eq!(Pattern::random_batch(&c, &mut r1, 5), Pattern::random_batch(&c, &mut r2, 5));
    }

    #[test]
    fn zeros_pattern_has_correct_arity() {
        let c = nand_inv();
        let p = Pattern::zeros(&c);
        assert_eq!(p.pi.len(), 2);
        assert!(p.states.is_empty());
    }

    #[test]
    #[should_panic(expected = "primary input count")]
    fn wrong_pi_arity_panics() {
        let c = nand_inv();
        simulate(&c, &[true], &[]);
    }

    #[test]
    fn pattern_block_round_trips_every_lane() {
        let c = nand_inv();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut block = PatternBlock::for_circuit(&c);
        let patterns: Vec<Pattern> = (0..LANES).map(|_| Pattern::random(&c, &mut rng)).collect();
        for (i, p) in patterns.iter().enumerate() {
            assert!(!block.is_full());
            assert_eq!(block.push(p), i);
        }
        assert!(block.is_full());
        let mut out = Pattern::default();
        for (i, p) in patterns.iter().enumerate() {
            block.get_into(i, &mut out);
            assert_eq!(&out, p, "lane {i}");
        }
        // Clearing zeroes every word and lets the block be refilled.
        block.clear();
        assert!(block.is_empty());
        assert!(block.pi_words().iter().all(|&w| w == 0));
        block.push(&patterns[3]);
        block.get_into(0, &mut out);
        assert_eq!(out, patterns[3]);
    }

    #[test]
    #[should_panic(expected = "pattern block is full")]
    fn pattern_block_overflow_panics() {
        let c = nand_inv();
        let mut block = PatternBlock::for_circuit(&c);
        let p = Pattern::zeros(&c);
        for _ in 0..=LANES {
            block.push(&p);
        }
    }
}
