//! Logic-value propagation over normalized circuits.
//!
//! The paper's Fig. 13 algorithm first propagates logic values from the
//! primary inputs for the applied pattern; every later step (loading
//! currents, leakage lookups) is keyed on the resulting per-gate input
//! vectors.

use nanoleak_cells::InputVector;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::circuit::{Circuit, GateId};

/// Evaluates all net values for primary-input pattern `pi` and DFF
/// stored states `states`.
///
/// Returns one boolean per net (indexable by `NetId.0`). DFF state
/// pseudo-inputs are set to the *complement* of the stored value so the
/// slave inverter reproduces the state on Q.
///
/// # Panics
/// Panics if `pi` or `states` have the wrong length.
pub fn simulate(circuit: &Circuit, pi: &[bool], states: &[bool]) -> Vec<bool> {
    assert_eq!(pi.len(), circuit.inputs().len(), "primary input count");
    assert_eq!(states.len(), circuit.state_inputs().len(), "DFF state count");
    let mut values = vec![false; circuit.net_count()];
    for (net, &v) in circuit.inputs().iter().zip(pi) {
        values[net.0] = v;
    }
    for (net, &state) in circuit.state_inputs().iter().zip(states) {
        values[net.0] = !state;
    }
    for &gid in circuit.topo_order() {
        let gate = circuit.gate(gid);
        let ins: Vec<bool> = gate.inputs.iter().map(|n| values[n.0]).collect();
        values[gate.output.0] = gate.cell.eval_logic(&ins);
    }
    values
}

/// The input vector a gate sees under the given net values.
pub fn gate_vector(circuit: &Circuit, gate: GateId, values: &[bool]) -> InputVector {
    let g = circuit.gate(gate);
    let bools: Vec<bool> = g.inputs.iter().map(|n| values[n.0]).collect();
    InputVector::from_bools(&bools)
}

/// A primary-input pattern plus DFF states — one "vector" of the
/// paper's 100-random-vector experiments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pattern {
    /// Primary input values.
    pub pi: Vec<bool>,
    /// DFF stored states.
    pub states: Vec<bool>,
}

impl Pattern {
    /// Draws a uniformly random pattern for `circuit`.
    pub fn random<R: Rng + ?Sized>(circuit: &Circuit, rng: &mut R) -> Self {
        Self {
            pi: (0..circuit.inputs().len()).map(|_| rng.gen()).collect(),
            states: (0..circuit.state_inputs().len()).map(|_| rng.gen()).collect(),
        }
    }

    /// Draws `n` random patterns.
    pub fn random_batch<R: Rng + ?Sized>(circuit: &Circuit, rng: &mut R, n: usize) -> Vec<Self> {
        (0..n).map(|_| Self::random(circuit, rng)).collect()
    }

    /// All-zero pattern.
    pub fn zeros(circuit: &Circuit) -> Self {
        Self {
            pi: vec![false; circuit.inputs().len()],
            states: vec![false; circuit.state_inputs().len()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use nanoleak_cells::CellType;
    use rand::SeedableRng;

    fn nand_inv() -> Circuit {
        let mut b = CircuitBuilder::new("t");
        let a = b.add_input("a");
        let c = b.add_input("b");
        let n = b.add_gate(CellType::Nand2, &[a, c], "n");
        let y = b.add_gate(CellType::Inv, &[n], "y");
        b.mark_output(y);
        b.build().unwrap()
    }

    #[test]
    fn nand_inv_is_and() {
        let c = nand_inv();
        let y = c.find_net("y").unwrap();
        for (a, b, expect) in
            [(false, false, false), (false, true, false), (true, false, false), (true, true, true)]
        {
            let values = simulate(&c, &[a, b], &[]);
            assert_eq!(values[y.0], expect, "a={a} b={b}");
        }
    }

    #[test]
    fn gate_vector_reflects_net_values() {
        let c = nand_inv();
        let values = simulate(&c, &[true, false], &[]);
        let v = gate_vector(&c, c.topo_order()[0], &values);
        assert_eq!(v.to_string(), "10");
    }

    #[test]
    fn patterns_are_deterministic_per_seed() {
        let c = nand_inv();
        let mut r1 = rand::rngs::StdRng::seed_from_u64(42);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(42);
        assert_eq!(Pattern::random_batch(&c, &mut r1, 5), Pattern::random_batch(&c, &mut r2, 5));
    }

    #[test]
    fn zeros_pattern_has_correct_arity() {
        let c = nand_inv();
        let p = Pattern::zeros(&c);
        assert_eq!(p.pi.len(), 2);
        assert!(p.states.is_empty());
    }

    #[test]
    #[should_panic(expected = "primary input count")]
    fn wrong_pi_arity_panics() {
        let c = nand_inv();
        simulate(&c, &[true], &[]);
    }
}
