//! Raw (pre-normalization) circuits: arbitrary-fanin boolean operators
//! and DFFs, as read from `.bench` files or produced by generators.

use serde::{Deserialize, Serialize};

use crate::error::CircuitError;

/// Index of a raw signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SigId(pub usize);

/// Boolean operators supported by the `.bench` dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RawOp {
    /// Multi-input AND.
    And,
    /// Multi-input OR.
    Or,
    /// Multi-input NAND.
    Nand,
    /// Multi-input NOR.
    Nor,
    /// Inverter (exactly one input).
    Not,
    /// Buffer (exactly one input).
    Buff,
    /// Multi-input XOR (parity).
    Xor,
    /// Multi-input XNOR.
    Xnor,
}

impl RawOp {
    /// The `.bench` keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            RawOp::And => "AND",
            RawOp::Or => "OR",
            RawOp::Nand => "NAND",
            RawOp::Nor => "NOR",
            RawOp::Not => "NOT",
            RawOp::Buff => "BUFF",
            RawOp::Xor => "XOR",
            RawOp::Xnor => "XNOR",
        }
    }

    /// Parses a `.bench` keyword (case-insensitive; `BUF` accepted).
    pub fn from_keyword(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "AND" => Some(RawOp::And),
            "OR" => Some(RawOp::Or),
            "NAND" => Some(RawOp::Nand),
            "NOR" => Some(RawOp::Nor),
            "NOT" | "INV" => Some(RawOp::Not),
            "BUFF" | "BUF" => Some(RawOp::Buff),
            "XOR" => Some(RawOp::Xor),
            "XNOR" => Some(RawOp::Xnor),
            _ => None,
        }
    }

    /// Evaluates the operator.
    ///
    /// # Panics
    /// Panics on an empty input slice.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert!(!inputs.is_empty(), "operator needs at least one input");
        match self {
            RawOp::And => inputs.iter().all(|&b| b),
            RawOp::Or => inputs.iter().any(|&b| b),
            RawOp::Nand => !inputs.iter().all(|&b| b),
            RawOp::Nor => !inputs.iter().any(|&b| b),
            RawOp::Not => !inputs[0],
            RawOp::Buff => inputs[0],
            RawOp::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            RawOp::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
        }
    }
}

/// A raw gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawGate {
    /// Operator.
    pub op: RawOp,
    /// Input signals.
    pub inputs: Vec<SigId>,
    /// Output signal.
    pub output: SigId,
}

/// A raw circuit: named signals, primary IO, gates and DFFs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RawCircuit {
    /// Circuit name.
    pub name: String,
    signals: Vec<String>,
    /// Primary inputs.
    pub inputs: Vec<SigId>,
    /// Primary outputs.
    pub outputs: Vec<SigId>,
    /// Gates in file/creation order (no topological guarantee).
    pub gates: Vec<RawGate>,
    /// DFFs as `(d, q)` pairs.
    pub dffs: Vec<(SigId, SigId)>,
}

impl RawCircuit {
    /// Creates an empty raw circuit.
    pub fn new(name: &str) -> Self {
        Self { name: name.to_string(), ..Default::default() }
    }

    /// Adds (or finds) a signal by name.
    pub fn signal(&mut self, name: &str) -> SigId {
        if let Some(i) = self.signals.iter().position(|s| s == name) {
            return SigId(i);
        }
        self.signals.push(name.to_string());
        SigId(self.signals.len() - 1)
    }

    /// Adds a signal that must be fresh (generators use this to avoid
    /// the linear-scan lookup of [`RawCircuit::signal`]).
    pub fn fresh_signal(&mut self, name: &str) -> SigId {
        self.signals.push(name.to_string());
        SigId(self.signals.len() - 1)
    }

    /// The signal's name.
    pub fn signal_name(&self, id: SigId) -> &str {
        &self.signals[id.0]
    }

    /// Number of signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Declares a primary input.
    pub fn add_input(&mut self, name: &str) -> SigId {
        let id = self.signal(name);
        self.inputs.push(id);
        id
    }

    /// Declares a primary output.
    pub fn add_output(&mut self, name: &str) -> SigId {
        let id = self.signal(name);
        self.outputs.push(id);
        id
    }

    /// Adds a gate computing `op(inputs)` into the named output signal.
    pub fn add_gate(&mut self, op: RawOp, inputs: &[SigId], output: SigId) {
        self.gates.push(RawGate { op, inputs: inputs.to_vec(), output });
    }

    /// Adds a DFF `q = DFF(d)`.
    pub fn add_dff(&mut self, d: SigId, q: SigId) {
        self.dffs.push((d, q));
    }

    /// Basic structural validation: single driver per signal, all gate
    /// inputs exist, fanins non-empty, NOT/BUFF unary.
    ///
    /// # Errors
    /// The first violation found, as a [`CircuitError`].
    pub fn validate(&self) -> Result<(), CircuitError> {
        let mut driven = vec![false; self.signals.len()];
        let mut drive = |id: SigId, name: &str| -> Result<(), CircuitError> {
            if driven[id.0] {
                return Err(CircuitError::MultipleDrivers { net: name.to_string() });
            }
            driven[id.0] = true;
            Ok(())
        };
        for &i in &self.inputs {
            drive(i, self.signal_name(i))?;
        }
        for &(_, q) in &self.dffs {
            drive(q, self.signal_name(q))?;
        }
        for g in &self.gates {
            drive(g.output, self.signal_name(g.output))?;
            if g.inputs.is_empty() {
                return Err(CircuitError::BadGate(format!(
                    "{} gate '{}' has no inputs",
                    g.op.keyword(),
                    self.signal_name(g.output)
                )));
            }
            if matches!(g.op, RawOp::Not | RawOp::Buff) && g.inputs.len() != 1 {
                return Err(CircuitError::BadGate(format!(
                    "{} gate '{}' must be unary",
                    g.op.keyword(),
                    self.signal_name(g.output)
                )));
            }
        }
        for (i, d) in driven.iter().enumerate() {
            if !d {
                return Err(CircuitError::UndrivenNet { net: self.signals[i].clone() });
            }
        }
        Ok(())
    }

    /// Total gate count (excluding DFFs).
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_eval_matrix() {
        assert!(RawOp::And.eval(&[true, true]));
        assert!(!RawOp::And.eval(&[true, false]));
        assert!(RawOp::Or.eval(&[false, true]));
        assert!(RawOp::Nand.eval(&[true, false]));
        assert!(!RawOp::Nor.eval(&[false, true]));
        assert!(RawOp::Xor.eval(&[true, false, false]));
        assert!(!RawOp::Xor.eval(&[true, true]));
        assert!(RawOp::Xnor.eval(&[true, true]));
        assert!(RawOp::Not.eval(&[false]));
        assert!(RawOp::Buff.eval(&[true]));
    }

    #[test]
    fn keywords_round_trip() {
        for op in [
            RawOp::And,
            RawOp::Or,
            RawOp::Nand,
            RawOp::Nor,
            RawOp::Not,
            RawOp::Buff,
            RawOp::Xor,
            RawOp::Xnor,
        ] {
            assert_eq!(RawOp::from_keyword(op.keyword()), Some(op));
        }
        assert_eq!(RawOp::from_keyword("buf"), Some(RawOp::Buff));
        assert_eq!(RawOp::from_keyword("MAJ"), None);
    }

    #[test]
    fn signals_deduplicate_by_name() {
        let mut c = RawCircuit::new("t");
        let a = c.signal("a");
        let a2 = c.signal("a");
        assert_eq!(a, a2);
        assert_eq!(c.signal_count(), 1);
    }

    #[test]
    fn validate_accepts_well_formed() {
        let mut c = RawCircuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let y = c.signal("y");
        c.add_gate(RawOp::Nand, &[a, b], y);
        c.add_output("y");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_double_driver() {
        let mut c = RawCircuit::new("t");
        let a = c.add_input("a");
        let y = c.signal("y");
        c.add_gate(RawOp::Not, &[a], y);
        c.add_gate(RawOp::Buff, &[a], y);
        assert!(matches!(c.validate(), Err(CircuitError::MultipleDrivers { .. })));
    }

    #[test]
    fn validate_rejects_undriven() {
        let mut c = RawCircuit::new("t");
        let ghost = c.signal("ghost");
        let y = c.signal("y");
        c.add_gate(RawOp::Not, &[ghost], y);
        assert!(matches!(c.validate(), Err(CircuitError::UndrivenNet { .. })));
    }

    #[test]
    fn validate_rejects_binary_not() {
        let mut c = RawCircuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let y = c.signal("y");
        c.add_gate(RawOp::Not, &[a, b], y);
        assert!(matches!(c.validate(), Err(CircuitError::BadGate(_))));
    }
}
