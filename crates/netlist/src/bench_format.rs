//! ISCAS89 `.bench` format reader and writer.
//!
//! The dialect accepted is the common one used by the ISCAS85/89
//! benchmark distributions:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G10 = NAND(G0, G1)
//! G11 = DFF(G10)
//! G12 = NOT(G11)
//! ```
//!
//! Parsing produces a [`RawCircuit`]; real ISCAS89 netlists can be
//! dropped into the flow unchanged (the repository ships structurally
//! equivalent generated stand-ins because the originals are not
//! redistributable here — see DESIGN.md).

use std::fmt::Write as _;

use crate::error::CircuitError;
use crate::raw::{RawCircuit, RawOp};

/// Parses `.bench` text into a raw circuit.
///
/// # Errors
/// [`CircuitError::Parse`] with a line number on syntax errors; the
/// result is additionally [`RawCircuit::validate`]d.
pub fn parse_bench(name: &str, text: &str) -> Result<RawCircuit, CircuitError> {
    let mut c = RawCircuit::new(name);
    for (lineno, raw_line) in text.lines().enumerate() {
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let perr = |message: String| CircuitError::Parse { line: lineno, message };

        if let Some(rest) = strip_call(line, "INPUT") {
            c.add_input(rest.trim());
            continue;
        }
        if let Some(rest) = strip_call(line, "OUTPUT") {
            c.add_output(rest.trim());
            continue;
        }
        // Assignment form: `name = OP(args)`.
        let (lhs, rhs) = line
            .split_once('=')
            .ok_or_else(|| perr(format!("expected assignment, got '{line}'")))?;
        let out_name = lhs.trim();
        if out_name.is_empty() {
            return Err(perr("empty assignment target".to_string()));
        }
        let rhs = rhs.trim();
        let open = rhs.find('(').ok_or_else(|| perr(format!("expected OP(...), got '{rhs}'")))?;
        if !rhs.ends_with(')') {
            return Err(perr(format!("missing closing parenthesis in '{rhs}'")));
        }
        let op_name = rhs[..open].trim();
        let args: Vec<&str> = rhs[open + 1..rhs.len() - 1]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if args.is_empty() {
            return Err(perr(format!("operator '{op_name}' has no arguments")));
        }
        if op_name.eq_ignore_ascii_case("DFF") {
            if args.len() != 1 {
                return Err(perr("DFF takes exactly one argument".to_string()));
            }
            let d = c.signal(args[0]);
            let q = c.signal(out_name);
            c.add_dff(d, q);
            continue;
        }
        let op = RawOp::from_keyword(op_name)
            .ok_or_else(|| perr(format!("unknown operator '{op_name}'")))?;
        let inputs: Vec<_> = args.iter().map(|a| c.signal(a)).collect();
        let out = c.signal(out_name);
        c.add_gate(op, &inputs, out);
    }
    c.validate()?;
    Ok(c)
}

fn strip_call<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword).or_else(|| {
        if line.len() >= keyword.len() && line[..keyword.len()].eq_ignore_ascii_case(keyword) {
            Some(&line[keyword.len()..])
        } else {
            None
        }
    })?;
    let rest = rest.trim_start();
    rest.strip_prefix('(')?.trim_end().strip_suffix(')')
}

/// Serializes a raw circuit back to `.bench` text.
pub fn write_bench(c: &RawCircuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", c.name);
    let _ = writeln!(
        out,
        "# {} inputs, {} outputs, {} DFFs, {} gates",
        c.inputs.len(),
        c.outputs.len(),
        c.dffs.len(),
        c.gate_count()
    );
    for &i in &c.inputs {
        let _ = writeln!(out, "INPUT({})", c.signal_name(i));
    }
    for &o in &c.outputs {
        let _ = writeln!(out, "OUTPUT({})", c.signal_name(o));
    }
    for &(d, q) in &c.dffs {
        let _ = writeln!(out, "{} = DFF({})", c.signal_name(q), c.signal_name(d));
    }
    for g in &c.gates {
        let args: Vec<&str> = g.inputs.iter().map(|&s| c.signal_name(s)).collect();
        let _ =
            writeln!(out, "{} = {}({})", c.signal_name(g.output), g.op.keyword(), args.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# tiny sequential sample
INPUT(a)
INPUT(b)
OUTPUT(y)
s0 = DFF(n1)
n1 = NAND(a, b)
n2 = NOT(s0)
y = OR(n2, a)
";

    #[test]
    fn parses_the_sample() {
        let c = parse_bench("tiny", SAMPLE).unwrap();
        assert_eq!(c.inputs.len(), 2);
        assert_eq!(c.outputs.len(), 1);
        assert_eq!(c.dffs.len(), 1);
        assert_eq!(c.gate_count(), 3);
    }

    #[test]
    fn round_trips_through_writer() {
        let c = parse_bench("tiny", SAMPLE).unwrap();
        let text = write_bench(&c);
        let c2 = parse_bench("tiny", &text).unwrap();
        assert_eq!(c.inputs.len(), c2.inputs.len());
        assert_eq!(c.outputs.len(), c2.outputs.len());
        assert_eq!(c.dffs.len(), c2.dffs.len());
        assert_eq!(c.gate_count(), c2.gate_count());
        // Gate structure identical up to signal renumbering: compare by
        // names.
        for (g1, g2) in c.gates.iter().zip(&c2.gates) {
            assert_eq!(g1.op, g2.op);
            assert_eq!(c.signal_name(g1.output), c2.signal_name(g2.output));
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let c = parse_bench("t", "# hello\n\nINPUT(x)\n  # mid\nOUTPUT(x)\n").unwrap();
        assert_eq!(c.inputs.len(), 1);
    }

    #[test]
    fn case_insensitive_keywords() {
        let c = parse_bench("t", "input(a)\noutput(y)\ny = nand(a, a)\n").unwrap();
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn error_carries_line_number() {
        let err = parse_bench("t", "INPUT(a)\nfoo bar\n").unwrap_err();
        match err {
            CircuitError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn unknown_op_rejected() {
        let err = parse_bench("t", "INPUT(a)\ny = MAJ(a, a, a)\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { .. }));
    }

    #[test]
    fn dff_arity_enforced() {
        let err = parse_bench("t", "INPUT(a)\nq = DFF(a, a)\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { .. }));
    }
}
