//! Structural statistics of normalized circuits.

use std::fmt;

use nanoleak_cells::CellType;

use crate::circuit::{Circuit, Driver};

/// Summary statistics of a circuit's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Library-cell count.
    pub gates: usize,
    /// Net count.
    pub nets: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// DFF count (post expansion).
    pub dffs: usize,
    /// Gate counts per cell type.
    pub by_cell: Vec<(CellType, usize)>,
    /// Longest combinational path in gate levels.
    pub max_depth: usize,
    /// Largest net fanout (pin count).
    pub max_fanout: usize,
    /// Mean net fanout over driven-and-used nets.
    pub avg_fanout: f64,
}

impl CircuitStats {
    /// Computes statistics for `circuit`.
    pub fn compute(circuit: &Circuit) -> Self {
        let mut depth = vec![0usize; circuit.net_count()];
        let mut max_depth = 0;
        for &gid in circuit.topo_order() {
            let gate = circuit.gate(gid);
            let d = gate.inputs.iter().map(|n| depth[n.0]).max().unwrap_or(0) + 1;
            depth[gate.output.0] = d;
            max_depth = max_depth.max(d);
        }
        let fanouts: Vec<usize> = (0..circuit.net_count())
            .map(|i| circuit.net_loads(crate::circuit::NetId(i)).len())
            .collect();
        let used: Vec<usize> = fanouts.iter().copied().filter(|&f| f > 0).collect();
        let avg_fanout = if used.is_empty() {
            0.0
        } else {
            used.iter().sum::<usize>() as f64 / used.len() as f64
        };
        Self {
            name: circuit.name().to_string(),
            gates: circuit.gate_count(),
            nets: circuit.net_count(),
            inputs: circuit.inputs().len(),
            outputs: circuit.outputs().len(),
            dffs: circuit.dff_count(),
            by_cell: circuit.cell_histogram(),
            max_depth,
            max_fanout: fanouts.into_iter().max().unwrap_or(0),
            avg_fanout,
        }
    }

    /// Count of drivers of each kind (inputs / state inputs / gates);
    /// useful for sanity checks.
    pub fn driver_counts(circuit: &Circuit) -> (usize, usize, usize) {
        let mut pi = 0;
        let mut st = 0;
        let mut gate = 0;
        for i in 0..circuit.net_count() {
            match circuit.net_driver(crate::circuit::NetId(i)) {
                Driver::Input => pi += 1,
                Driver::StateInput => st += 1,
                Driver::Gate(_) => gate += 1,
            }
        }
        (pi, st, gate)
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} gates, {} nets, {} PI, {} PO, {} DFF, depth {}, fanout avg {:.2} max {}",
            self.name,
            self.gates,
            self.nets,
            self.inputs,
            self.outputs,
            self.dffs,
            self.max_depth,
            self.avg_fanout,
            self.max_fanout
        )?;
        for (cell, count) in &self.by_cell {
            writeln!(f, "  {cell:>6}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;

    #[test]
    fn stats_of_small_chain() {
        let mut b = CircuitBuilder::new("chain");
        let a = b.add_input("a");
        let x = b.add_gate(CellType::Inv, &[a], "x");
        let y = b.add_gate(CellType::Nand2, &[a, x], "y");
        b.mark_output(y);
        let c = b.build().unwrap();
        let s = CircuitStats::compute(&c);
        assert_eq!(s.gates, 2);
        assert_eq!(s.inputs, 1);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.max_fanout, 2, "net a feeds both gates");
        let (pi, st, gate) = CircuitStats::driver_counts(&c);
        assert_eq!((pi, st, gate), (1, 0, 2));
        let shown = s.to_string();
        assert!(shown.contains("2 gates"));
    }
}
