//! Canonicalization rewrite rules, at both levels of the pipeline.
//!
//! [`canonicalize_raw`] runs on [`RawCircuit`]s before technology
//! mapping: buffers become wire aliases, double negations cancel,
//! single-fanout AND/OR trees are flattened back into one wide gate
//! (so [`normalize`](crate::normalize::normalize)'s deterministic
//! chunks-of-four decomposition rebuilds the *canonical* balanced
//! tree), commutative fanins are sorted, and unreachable gates are
//! dropped.
//!
//! [`canonicalize`] runs on mapped [`Circuit`]s: double-inverter
//! elimination, a dead-gate sweep, and ascending-net sorting of each
//! gate's commutative pin prefix. Two netlists that differ only in
//! such non-structural noise canonicalize to circuits with equal
//! [`Circuit::structural_key`]s, which is what lets the engine's plan
//! cache share one `CompiledEstimator` compile between them.
//!
//! Neither pass is leakage-preserving — removing an inverter pair
//! removes real transistors, and pin order *is* the loading-effect
//! degree of freedom — so `nanoleak-opt` applies them score-gated
//! (keep the rewrite only if the estimator agrees it helps). Both
//! passes **are** function-preserving: primary outputs and DFF
//! next-state functions are unchanged (positionally; net names of
//! eliminated gates disappear).
//!
//! The DFF leakage expansion is protected: master- and slave-stage
//! inverters model flip-flop hardware and are never eliminated even
//! though the master's output is unloaded.

use nanoleak_cells::CellType;

use crate::circuit::{Circuit, CircuitBuilder, NetId};
use crate::normalize::raw_topo_order;
use crate::raw::{RawCircuit, RawGate, RawOp, SigId};

/// What [`canonicalize`] did, for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CanonReport {
    /// Gate count going in.
    pub gates_before: usize,
    /// Gate count coming out.
    pub gates_after: usize,
    /// `Inv(Inv(x))` pairs collapsed to `x` (counts second inverters
    /// aliased away; the first dies too unless shared).
    pub inverter_pairs_removed: usize,
    /// Gates dropped because nothing reachable consumes them.
    pub dead_gates_removed: usize,
    /// Gates whose commutative pin prefix was reordered.
    pub commutative_pins_sorted: usize,
}

/// Canonicalizes a mapped circuit: collapses `Inv(Inv(x))`, sweeps
/// dead gates, and sorts each gate's commutative pin prefix by
/// ascending net id. Function-preserving (see module docs), *not*
/// leakage-preserving.
pub fn canonicalize(c: &Circuit) -> (Circuit, CanonReport) {
    let nets = c.net_count();
    let mut report = CanonReport { gates_before: c.gate_count(), ..CanonReport::default() };

    // DFF hardware is never rewritten: slave inverters read state
    // inputs, master inverters load D nets.
    let mut is_state = vec![false; nets];
    for &s in c.state_inputs() {
        is_state[s.0] = true;
    }
    let mut is_dff_d = vec![false; nets];
    for &d in c.dff_d_nets() {
        is_dff_d[d.0] = true;
    }
    let protected = |g: &crate::circuit::Gate| {
        g.cell == CellType::Inv && (is_state[g.inputs[0].0] || is_dff_d[g.inputs[0].0])
    };

    // Pass 1 — double-inverter elimination. `repl[n]` is the net that
    // canonically carries n's value (a fixed point by construction);
    // `inv_src[n]` is Some(w) when n is driven by an inverter whose
    // effective input is w.
    let mut repl: Vec<NetId> = (0..nets).map(NetId).collect();
    let mut inv_src: Vec<Option<NetId>> = vec![None; nets];
    for &gid in c.topo_order() {
        let g = c.gate(gid);
        if g.cell != CellType::Inv {
            continue;
        }
        let e = repl[g.inputs[0].0];
        if !protected(g) {
            if let Some(w) = inv_src[e.0] {
                repl[g.output.0] = w;
                report.inverter_pairs_removed += 1;
                continue;
            }
        }
        inv_src[g.output.0] = Some(e);
    }

    // Pass 2 — liveness from outputs and DFF D nets, in reverse
    // topological order; protected gates stay regardless.
    let mut needed = vec![false; nets];
    for &o in c.outputs() {
        needed[repl[o.0].0] = true;
    }
    for &d in c.dff_d_nets() {
        needed[repl[d.0].0] = true;
    }
    let mut alive = vec![false; c.gate_count()];
    for &gid in c.topo_order().iter().rev() {
        let g = c.gate(gid);
        if repl[g.output.0] != g.output {
            continue; // aliased away by pass 1
        }
        if needed[g.output.0] || protected(g) {
            alive[gid.0] = true;
            for &i in &g.inputs {
                needed[repl[i.0].0] = true;
            }
        }
    }

    // Pass 3 — rebuild in topological order, sorting commutative pin
    // prefixes by the new (topo-assigned) net ids. The rebuilt graph's
    // *own* topological order can differ from the emission order we
    // just used (Kahn on the filtered graph is a different problem),
    // so relabel until gate storage order is a fixed point of the
    // topological sort — that is what makes `canonicalize` idempotent
    // and its `structural_key` a true canonical identity. One extra
    // relabel always suffices (Kahn's FIFO order is idempotent as a
    // storage order); the loop bound is sheer paranoia.
    for (gi, g) in c.gates().iter().enumerate() {
        if repl[g.output.0] == g.output && !alive[gi] {
            report.dead_gates_removed += 1;
        }
    }
    let mut canon = rebuild(c, &repl, &alive, &mut report.commutative_pins_sorted);
    for _ in 0..8 {
        if canon.topo_order().iter().enumerate().all(|(i, g)| g.0 == i) {
            break;
        }
        let ident: Vec<NetId> = (0..canon.net_count()).map(NetId).collect();
        let all = vec![true; canon.gate_count()];
        canon = rebuild(&canon, &ident, &all, &mut report.commutative_pins_sorted);
    }
    debug_assert!(canon.topo_order().iter().enumerate().all(|(i, g)| g.0 == i));
    report.gates_after = canon.gate_count();
    (canon, report)
}

/// Emits the `alive` subgraph of `c` in topological order with inputs
/// rewired through `repl` and commutative pin prefixes sorted by the
/// freshly assigned net ids.
fn rebuild(c: &Circuit, repl: &[NetId], alive: &[bool], pins_sorted: &mut usize) -> Circuit {
    let mut b = CircuitBuilder::new(c.name());
    let unmapped = NetId(usize::MAX);
    let mut new_net = vec![unmapped; c.net_count()];
    for &i in c.inputs() {
        new_net[i.0] = b.add_input(c.net_name(i));
    }
    for &s in c.state_inputs() {
        new_net[s.0] = b.add_state_input(c.net_name(s));
    }
    for &gid in c.topo_order() {
        if !alive[gid.0] {
            continue;
        }
        let g = c.gate(gid);
        let mut ins: Vec<NetId> = g.inputs.iter().map(|&i| new_net[repl[i.0].0]).collect();
        debug_assert!(ins.iter().all(|&n| n != unmapped));
        let p = g.cell.commutative_prefix();
        if !ins[..p].is_sorted_by_key(|n| n.0) {
            ins[..p].sort_unstable_by_key(|n| n.0);
            *pins_sorted += 1;
        }
        new_net[g.output.0] = b.add_gate(g.cell, &ins, c.net_name(g.output));
    }
    for &o in c.outputs() {
        b.mark_output(new_net[repl[o.0].0]);
    }
    for &d in c.dff_d_nets() {
        b.mark_dff_d(new_net[repl[d.0].0]);
    }
    b.build().expect("canonical rebuild of a valid circuit is valid")
}

/// Canonicalizes a raw circuit before technology mapping: aliases
/// `BUFF`s to wires, cancels `NOT(NOT(x))`, flattens single-fanout
/// same-op AND/OR subtrees into one wide gate, sorts every
/// commutative fanin list, and drops unreachable gates. Signal names
/// of surviving gates are preserved.
///
/// Returns the input unchanged when it fails validation or contains a
/// combinational cycle — `normalize` will then report the real error.
pub fn canonicalize_raw(raw: &RawCircuit) -> RawCircuit {
    if raw.validate().is_err() {
        return raw.clone();
    }
    let Ok(order) = raw_topo_order(raw) else {
        return raw.clone();
    };
    let sigs = raw.signal_count();

    let mut producer: Vec<Option<usize>> = vec![None; sigs];
    for (gi, g) in raw.gates.iter().enumerate() {
        producer[g.output.0] = Some(gi);
    }

    // Pass 1 — wire aliases: BUFF outputs and NOT(NOT(x)).
    let mut repl: Vec<SigId> = (0..sigs).map(SigId).collect();
    let mut inv_src: Vec<Option<SigId>> = vec![None; sigs];
    for &gi in &order {
        let g = &raw.gates[gi];
        let e = repl[g.inputs[0].0];
        match g.op {
            RawOp::Buff => repl[g.output.0] = e,
            RawOp::Not => {
                if let Some(w) = inv_src[e.0] {
                    repl[g.output.0] = w;
                } else {
                    inv_src[g.output.0] = Some(e);
                }
            }
            _ => {}
        }
    }

    // Use counts on the aliased graph (PO and DFF D uses included) —
    // a same-op driver may be spliced only when its output has exactly
    // one consumer in total.
    let mut uses = vec![0usize; sigs];
    for g in raw.gates.iter().filter(|g| repl[g.output.0] == g.output) {
        for &i in &g.inputs {
            uses[repl[i.0].0] += 1;
        }
    }
    for &o in &raw.outputs {
        uses[repl[o.0].0] += 1;
    }
    for &(d, _) in &raw.dffs {
        uses[repl[d.0].0] += 1;
    }

    // Pass 2 — flatten + sort fanins, in topological order so spliced
    // drivers are themselves already flat.
    let mut flat: Vec<Vec<SigId>> = vec![Vec::new(); raw.gates.len()];
    for &gi in &order {
        let g = &raw.gates[gi];
        if repl[g.output.0] != g.output {
            continue;
        }
        let mut ins: Vec<SigId> = g.inputs.iter().map(|&i| repl[i.0]).collect();
        if matches!(g.op, RawOp::And | RawOp::Or) {
            let mut k = 0;
            while k < ins.len() {
                let splice = producer[ins[k].0].filter(|&src| {
                    let h = &raw.gates[src];
                    h.op == g.op && repl[h.output.0] == h.output && uses[h.output.0] == 1
                });
                if let Some(src) = splice {
                    // Already-flat driver inputs replace the pin.
                    let sub = flat[src].clone();
                    ins.splice(k..=k, sub);
                    uses[raw.gates[src].output.0] = 0; // now dead
                } else {
                    k += 1;
                }
            }
        }
        if !matches!(g.op, RawOp::Not | RawOp::Buff) {
            ins.sort_unstable_by_key(|s| s.0);
        }
        flat[gi] = ins;
    }

    // Pass 3 — liveness from outputs and DFF D signals.
    let mut needed = vec![false; sigs];
    for &o in &raw.outputs {
        needed[repl[o.0].0] = true;
    }
    for &(d, _) in &raw.dffs {
        needed[repl[d.0].0] = true;
    }
    let mut alive = vec![false; raw.gates.len()];
    for &gi in order.iter().rev() {
        let g = &raw.gates[gi];
        if repl[g.output.0] == g.output && needed[g.output.0] && uses[g.output.0] > 0 {
            alive[gi] = true;
            for &i in &flat[gi] {
                needed[i.0] = true;
            }
        }
    }
    // `uses > 0` above would drop spliced-away gates even when their
    // output sig is transitively needed through the splice; outputs
    // and D nets keep a use, so only true intermediates were zeroed.

    // Pass 4 — rebuild with original names and declaration order.
    let mut out = RawCircuit::new(&raw.name);
    let mut new_sig: Vec<Option<SigId>> = vec![None; sigs];
    fn map_sig(
        raw: &RawCircuit,
        out: &mut RawCircuit,
        new_sig: &mut [Option<SigId>],
        s: SigId,
    ) -> SigId {
        *new_sig[s.0].get_or_insert_with(|| out.fresh_signal(raw.signal_name(s)))
    }
    for &i in &raw.inputs {
        let n = map_sig(raw, &mut out, &mut new_sig, i);
        out.inputs.push(n);
    }
    for &(_, q) in &raw.dffs {
        let _ = map_sig(raw, &mut out, &mut new_sig, q);
    }
    for &gi in &order {
        if !alive[gi] {
            continue;
        }
        let g = &raw.gates[gi];
        let ins: Vec<SigId> =
            flat[gi].iter().map(|&s| map_sig(raw, &mut out, &mut new_sig, s)).collect();
        let o = map_sig(raw, &mut out, &mut new_sig, g.output);
        out.gates.push(RawGate { op: g.op, inputs: ins, output: o });
    }
    for &(d, q) in &raw.dffs {
        let dn = map_sig(raw, &mut out, &mut new_sig, repl[d.0]);
        let qn = map_sig(raw, &mut out, &mut new_sig, q);
        out.dffs.push((dn, qn));
    }
    for &o in &raw.outputs {
        let n = map_sig(raw, &mut out, &mut new_sig, repl[o.0]);
        out.outputs.push(n);
    }
    debug_assert!(out.validate().is_ok());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format::parse_bench;
    use crate::generate::{iscas_like, random_circuit, RandomCircuitSpec};
    use crate::logic::{simulate, Pattern};
    use crate::normalize::normalize;
    use proptest::prelude::*;
    use rand::SeedableRng;

    /// Outputs and DFF next-state nets agree, positionally, for every
    /// pattern tried.
    fn assert_same_function(a: &Circuit, b: &Circuit, cases: usize, seed: u64) {
        assert_eq!(a.inputs().len(), b.inputs().len());
        assert_eq!(a.state_inputs().len(), b.state_inputs().len());
        assert_eq!(a.outputs().len(), b.outputs().len());
        assert_eq!(a.dff_d_nets().len(), b.dff_d_nets().len());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..cases {
            let p = Pattern::random(a, &mut rng);
            let va = simulate(a, &p.pi, &p.states);
            let vb = simulate(b, &p.pi, &p.states);
            for (k, (&oa, &ob)) in a.outputs().iter().zip(b.outputs()).enumerate() {
                assert_eq!(va[oa.0], vb[ob.0], "output {k} for {p:?}");
            }
            for (k, (&da, &db)) in a.dff_d_nets().iter().zip(b.dff_d_nets()).enumerate() {
                assert_eq!(va[da.0], vb[db.0], "dff d {k} for {p:?}");
            }
        }
    }

    #[test]
    fn buff_normalization_pairs_are_removed() {
        // normalize() realizes BUFF as two cascaded inverters; the
        // canonical pass must collapse them back out.
        let raw = parse_bench("buffy", "INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n").unwrap();
        let c = normalize(&raw).unwrap();
        assert_eq!(c.gate_count(), 2, "BUFF maps to two inverters");
        let (canon, report) = canonicalize(&c);
        assert_eq!(report.inverter_pairs_removed, 1);
        assert_eq!(canon.gate_count(), 0, "pure buffer cancels to a wire");
        assert_same_function(&c, &canon, 4, 1);
    }

    #[test]
    fn shared_first_inverter_survives() {
        // y1 = NOT(a) is used directly; y2 = NOT(y1) cancels against
        // it, so y3 = NOT(y2) rewires to NOT(a) and y2 dies. (The pass
        // aliases nets — it does not CSE y3 onto y1.)
        let raw = parse_bench(
            "chain",
            "INPUT(a)\nOUTPUT(y1)\nOUTPUT(y3)\ny1 = NOT(a)\ny2 = NOT(y1)\ny3 = NOT(y2)\n",
        )
        .unwrap();
        let c = normalize(&raw).unwrap();
        assert_eq!(c.gate_count(), 3);
        let (canon, report) = canonicalize(&c);
        assert_eq!(report.inverter_pairs_removed, 1);
        assert_eq!(report.dead_gates_removed, 0, "y2 counts as the pair");
        assert_eq!(canon.gate_count(), 2, "y1 and the rewired y3 remain");
        assert_same_function(&c, &canon, 8, 2);
    }

    #[test]
    fn commutative_pins_sort_to_equal_keys() {
        fn build(swap: bool) -> Circuit {
            let mut b = CircuitBuilder::new("t");
            let a = b.add_input("a");
            let c = b.add_input("b");
            let x = b.add_gate(CellType::Inv, &[c], "x");
            let pins = if swap { [x, a] } else { [a, x] };
            let y = b.add_gate(CellType::Nand2, &pins, "y");
            b.mark_output(y);
            b.build().unwrap()
        }
        let lhs = build(false);
        let rhs = build(true);
        assert_ne!(lhs.structural_key(), rhs.structural_key());
        let (cl, _) = canonicalize(&lhs);
        let (cr, rep) = canonicalize(&rhs);
        assert_eq!(rep.commutative_pins_sorted, 1);
        assert_eq!(cl.structural_key(), cr.structural_key());
        assert_same_function(&lhs, &cr, 8, 3);
    }

    #[test]
    fn dff_hardware_is_protected() {
        let raw =
            parse_bench("seq", "INPUT(a)\nOUTPUT(y)\nq = DFF(n)\nn = NAND(a, q)\ny = NOT(q)\n")
                .unwrap();
        let c = normalize(&raw).unwrap();
        let (canon, _) = canonicalize(&c);
        assert_eq!(canon.dff_count(), 1);
        // The slave Inv, the NAND, and the master Inv must all
        // survive; y = NOT(q) = NOT(NOT(state)) legally aliases to the
        // state net (value-identical in the simulator's encoding).
        assert_eq!(canon.gate_count(), c.gate_count() - 1);
        let d = canon.dff_d_nets()[0];
        assert!(
            canon.net_loads(d).iter().any(|l| canon.gate(l.gate).cell == CellType::Inv),
            "master inverter still loads the D net"
        );
        assert_same_function(&c, &canon, 16, 4);
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let raw = iscas_like("s838").expect("known profile");
        let c = normalize(&raw).unwrap();
        let (c1, _) = canonicalize(&c);
        let (c2, rep2) = canonicalize(&c1);
        assert_eq!(c1.structural_key(), c2.structural_key());
        assert_eq!(rep2.inverter_pairs_removed, 0);
        assert_eq!(rep2.dead_gates_removed, 0);
        assert_eq!(rep2.commutative_pins_sorted, 0);
    }

    #[test]
    fn raw_buffers_and_double_nots_alias_out() {
        let raw = parse_bench(
            "wires",
            "INPUT(a)\nOUTPUT(y)\nb = BUFF(a)\nc = NOT(b)\nd = NOT(c)\ny = AND(d, a)\n",
        )
        .unwrap();
        let canon = canonicalize_raw(&raw);
        assert!(canon.validate().is_ok());
        assert_eq!(canon.gate_count(), 1, "only the AND survives");
        let c1 = normalize(&raw).unwrap();
        let c2 = normalize(&canon).unwrap();
        assert_same_function(&c1, &c2, 8, 5);
    }

    #[test]
    fn raw_single_fanout_and_trees_flatten() {
        let raw = parse_bench(
            "tree",
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n\
             t1 = AND(a, b)\nt2 = AND(c, d)\ny = AND(t1, t2)\n",
        )
        .unwrap();
        let canon = canonicalize_raw(&raw);
        assert_eq!(canon.gate_count(), 1, "tree flattens to one wide AND");
        assert_eq!(canon.gates[0].inputs.len(), 4);
        let c1 = normalize(&raw).unwrap();
        let c2 = normalize(&canon).unwrap();
        assert_same_function(&c1, &c2, 16, 6);
    }

    #[test]
    fn raw_shared_subtree_does_not_flatten() {
        // t1 fans out twice, so splicing it would duplicate logic.
        let raw = parse_bench(
            "shared",
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n\
             t1 = AND(a, b)\ny = AND(t1, c)\nz = NOT(t1)\n",
        )
        .unwrap();
        let canon = canonicalize_raw(&raw);
        assert_eq!(canon.gate_count(), 3);
        let c1 = normalize(&raw).unwrap();
        let c2 = normalize(&canon).unwrap();
        assert_same_function(&c1, &c2, 8, 7);
    }

    #[test]
    fn paper_suite_canonical_gate_counts_are_pinned() {
        // Regression guard: canonicalization results on the paper's
        // fixture suite. Columns: gates after normalize(), after
        // canonicalize(), and after the full
        // canonicalize_raw -> normalize -> canonicalize chain. Any
        // rewrite-rule change that shifts these numbers must be
        // deliberate.
        let pinned = [
            ("s838", 646, 432, 428),
            ("s1196", 741, 498, 491),
            ("s1423", 1011, 751, 737),
            ("s5378", 4040, 2921, 2859),
            ("s9234", 7855, 5380, 5273),
            ("s13207", 11673, 8490, 8350),
            ("alu88", 214, 210, 194),
            ("mult88", 736, 704, 704),
        ];
        for raw in crate::generate::paper_suite_raw() {
            let (_, mapped, canon_n, chain_n) = pinned
                .iter()
                .find(|(n, ..)| *n == raw.name)
                .unwrap_or_else(|| panic!("unpinned fixture {}", raw.name));
            let c = normalize(&raw).unwrap();
            assert_eq!(c.gate_count(), *mapped, "{} normalize", raw.name);
            let (canon, _) = canonicalize(&c);
            assert_eq!(canon.gate_count(), *canon_n, "{} canonicalize", raw.name);
            let chain = normalize(&canonicalize_raw(&raw)).unwrap();
            let (chain, _) = canonicalize(&chain);
            assert_eq!(chain.gate_count(), *chain_n, "{} full chain", raw.name);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Both canonical passes preserve circuit function on random
        /// sequential circuits.
        #[test]
        fn canonical_passes_preserve_function(
            seed in any::<u64>(),
            gates in 10usize..120,
            inputs in 2usize..10,
            dffs in 0usize..6,
        ) {
            let spec = RandomCircuitSpec::new("prop", inputs, 2, gates, dffs, seed);
            let raw = random_circuit(&spec);
            let craw = canonicalize_raw(&raw);
            prop_assert!(craw.validate().is_ok());
            let c1 = normalize(&raw).unwrap();
            let c2 = normalize(&craw).unwrap();
            assert_same_function(&c1, &c2, 6, seed ^ 0x9e37);
            let (canon, report) = canonicalize(&c2);
            prop_assert_eq!(report.gates_after, canon.gate_count());
            assert_same_function(&c2, &canon, 6, seed ^ 0x79b9);
            // Idempotent fixed point.
            let (canon2, _) = canonicalize(&canon);
            prop_assert_eq!(canon.structural_key(), canon2.structural_key());
        }
    }
}
