//! Technology normalization: raw boolean networks to library cells.
//!
//! Every raw operator is rewritten onto the characterized INV/NAND/NOR
//! family:
//!
//! * `NAND`/`NOR` up to 4 inputs map directly; wider gates are
//!   decomposed into balanced trees;
//! * `AND`/`OR` become `NAND`/`NOR` plus an inverter;
//! * `XOR`/`XNOR` become the standard 4-NAND2 network (folded pairwise
//!   for wider parity gates);
//! * `BUFF` becomes two cascaded inverters (its physical realization);
//! * `DFF(d) -> q` becomes its leakage-equivalent expansion: a
//!   master-stage inverter loading the D net, plus a slave-stage
//!   inverter driving Q from a *state input* net carrying the stored
//!   value's complement. Both the fast estimator and the reference
//!   simulator then see the flip-flop through ordinary cells.

use nanoleak_cells::CellType;

use crate::circuit::{Circuit, CircuitBuilder, NetId};
use crate::error::CircuitError;
use crate::raw::{RawCircuit, RawOp};

/// Rewrites a raw circuit onto the standard-cell family.
///
/// # Errors
/// Propagates [`RawCircuit::validate`] failures and
/// [`CircuitBuilder::build`] failures (cycles, undriven nets).
pub fn normalize(raw: &RawCircuit) -> Result<Circuit, CircuitError> {
    raw.validate()?;
    let mut b = CircuitBuilder::new(&raw.name);
    let mut emitter = Emitter { b: &mut b, tmp: 0 };
    let mut map: Vec<Option<NetId>> = vec![None; raw.signal_count()];

    // Primary inputs.
    for &sig in &raw.inputs {
        map[sig.0] = Some(emitter.b.add_input(raw.signal_name(sig)));
    }
    // DFF Q nets: slave inverter from the state pseudo-input.
    for &(_, q) in &raw.dffs {
        let qname = raw.signal_name(q);
        let state = emitter.b.add_state_input(&format!("{qname}__state"));
        let qnet = emitter.b.add_gate(CellType::Inv, &[state], qname);
        map[q.0] = Some(qnet);
    }

    // Topological order over raw gates.
    let order = raw_topo_order(raw)?;

    for gi in order {
        let gate = &raw.gates[gi];
        let ins: Vec<NetId> = gate
            .inputs
            .iter()
            .map(|s| {
                map[s.0].ok_or_else(|| CircuitError::UnknownSignal {
                    name: raw.signal_name(*s).to_string(),
                })
            })
            .collect::<Result<_, _>>()?;
        let out_name = raw.signal_name(gate.output).to_string();
        let out = emitter.emit(gate.op, &ins, &out_name);
        map[gate.output.0] = Some(out);
    }

    // DFF master stages (D nets now all exist) and D-pin bookkeeping.
    for &(d, q) in &raw.dffs {
        let dnet = map[d.0]
            .ok_or_else(|| CircuitError::UnknownSignal { name: raw.signal_name(d).to_string() })?;
        let qname = raw.signal_name(q);
        let _master = emitter.b.add_gate(CellType::Inv, &[dnet], &format!("{qname}__master"));
        emitter.b.mark_dff_d(dnet);
    }

    // Primary outputs.
    for &o in &raw.outputs {
        let net = map[o.0]
            .ok_or_else(|| CircuitError::UnknownSignal { name: raw.signal_name(o).to_string() })?;
        emitter.b.mark_output(net);
    }

    b.build()
}

/// Kahn topological sort of raw gates by signal dependencies.
pub(crate) fn raw_topo_order(raw: &RawCircuit) -> Result<Vec<usize>, CircuitError> {
    let n = raw.gates.len();
    let mut producer: Vec<Option<usize>> = vec![None; raw.signal_count()];
    for (gi, g) in raw.gates.iter().enumerate() {
        producer[g.output.0] = Some(gi);
    }
    let mut indegree = vec![0usize; n];
    let mut users: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (gi, g) in raw.gates.iter().enumerate() {
        for &i in &g.inputs {
            if let Some(src) = producer[i.0] {
                indegree[gi] += 1;
                users[src].push(gi);
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&g| indegree[g] == 0).collect();
    let mut head = 0;
    let mut order = Vec::with_capacity(n);
    while head < queue.len() {
        let g = queue[head];
        head += 1;
        order.push(g);
        for &u in &users[g] {
            indegree[u] -= 1;
            if indegree[u] == 0 {
                queue.push(u);
            }
        }
    }
    if order.len() != n {
        let stuck = (0..n).find(|&g| indegree[g] > 0).expect("cycle exists");
        return Err(CircuitError::CombinationalCycle {
            net: raw.signal_name(raw.gates[stuck].output).to_string(),
        });
    }
    Ok(order)
}

/// Emits normalized gates for raw operators.
struct Emitter<'a> {
    b: &'a mut CircuitBuilder,
    tmp: usize,
}

impl Emitter<'_> {
    fn fresh(&mut self, hint: &str) -> String {
        self.tmp += 1;
        format!("{hint}__n{}", self.tmp)
    }

    fn emit(&mut self, op: RawOp, ins: &[NetId], out_name: &str) -> NetId {
        match op {
            RawOp::Not => self.b.add_gate(CellType::Inv, ins, out_name),
            RawOp::Buff => {
                let mid = self.fresh(out_name);
                let m = self.b.add_gate(CellType::Inv, ins, &mid);
                self.b.add_gate(CellType::Inv, &[m], out_name)
            }
            RawOp::Nand => self.nand(ins, out_name),
            RawOp::Nor => self.nor(ins, out_name),
            RawOp::And => {
                let mid = self.fresh(out_name);
                let n = self.nand(ins, &mid);
                self.b.add_gate(CellType::Inv, &[n], out_name)
            }
            RawOp::Or => {
                let mid = self.fresh(out_name);
                let n = self.nor(ins, &mid);
                self.b.add_gate(CellType::Inv, &[n], out_name)
            }
            RawOp::Xor => self.xor(ins, out_name),
            RawOp::Xnor => {
                let mid = self.fresh(out_name);
                let x = self.xor(ins, &mid);
                self.b.add_gate(CellType::Inv, &[x], out_name)
            }
        }
    }

    /// NAND of any fanin; wide gates become an AND-tree plus inverter.
    fn nand(&mut self, ins: &[NetId], out_name: &str) -> NetId {
        match ins.len() {
            0 => unreachable!("validated: no zero-input gates"),
            1 => self.b.add_gate(CellType::Inv, ins, out_name),
            2..=4 => {
                let cell = CellType::nand(ins.len()).expect("2..=4 checked");
                self.b.add_gate(cell, ins, out_name)
            }
            _ => {
                let a = self.and_tree(ins, out_name);
                self.b.add_gate(CellType::Inv, &[a], out_name)
            }
        }
    }

    /// NOR of any fanin; wide gates become an OR-tree plus inverter.
    fn nor(&mut self, ins: &[NetId], out_name: &str) -> NetId {
        match ins.len() {
            0 => unreachable!("validated: no zero-input gates"),
            1 => self.b.add_gate(CellType::Inv, ins, out_name),
            2..=4 => {
                let cell = CellType::nor(ins.len()).expect("2..=4 checked");
                self.b.add_gate(cell, ins, out_name)
            }
            _ => {
                let o = self.or_tree(ins, out_name);
                self.b.add_gate(CellType::Inv, &[o], out_name)
            }
        }
    }

    /// AND of any fanin as a tree of NAND+INV.
    fn and_tree(&mut self, ins: &[NetId], hint: &str) -> NetId {
        if ins.len() == 1 {
            return ins[0];
        }
        if ins.len() <= 4 {
            let name = self.fresh(hint);
            let n = self.nand(ins, &name);
            let inv_name = self.fresh(hint);
            return self.b.add_gate(CellType::Inv, &[n], &inv_name);
        }
        let reduced: Vec<NetId> = ins.chunks(4).map(|chunk| self.and_tree(chunk, hint)).collect();
        self.and_tree(&reduced, hint)
    }

    /// OR of any fanin as a tree of NOR+INV.
    fn or_tree(&mut self, ins: &[NetId], hint: &str) -> NetId {
        if ins.len() == 1 {
            return ins[0];
        }
        if ins.len() <= 4 {
            let name = self.fresh(hint);
            let n = self.nor(ins, &name);
            let inv_name = self.fresh(hint);
            return self.b.add_gate(CellType::Inv, &[n], &inv_name);
        }
        let reduced: Vec<NetId> = ins.chunks(4).map(|chunk| self.or_tree(chunk, hint)).collect();
        self.or_tree(&reduced, hint)
    }

    /// Parity as cascaded 4-NAND2 XOR stages.
    fn xor(&mut self, ins: &[NetId], out_name: &str) -> NetId {
        assert!(!ins.is_empty());
        if ins.len() == 1 {
            // XOR of one signal is the signal; keep a buffer so the
            // named net exists and is driven.
            let mid = self.fresh(out_name);
            let m = self.b.add_gate(CellType::Inv, &[ins[0]], &mid);
            return self.b.add_gate(CellType::Inv, &[m], out_name);
        }
        let mut acc = ins[0];
        for (i, &next) in ins[1..].iter().enumerate() {
            let last = i + 2 == ins.len();
            let name = if last { out_name.to_string() } else { self.fresh(out_name) };
            acc = self.xor2(acc, next, &name);
        }
        acc
    }

    /// The standard 4-gate NAND2 XOR.
    fn xor2(&mut self, a: NetId, c: NetId, out_name: &str) -> NetId {
        let n1 = self.fresh(out_name);
        let nab = self.b.add_gate(CellType::Nand2, &[a, c], &n1);
        let n2 = self.fresh(out_name);
        let l = self.b.add_gate(CellType::Nand2, &[a, nab], &n2);
        let n3 = self.fresh(out_name);
        let r = self.b.add_gate(CellType::Nand2, &[c, nab], &n3);
        self.b.add_gate(CellType::Nand2, &[l, r], out_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format::parse_bench;
    use crate::logic::simulate;
    use crate::raw::SigId;

    fn check_equivalence(raw: &RawCircuit, cases: usize, seed: u64) {
        use rand::{Rng, SeedableRng};
        let circuit = normalize(raw).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..cases {
            let pi: Vec<bool> = (0..raw.inputs.len()).map(|_| rng.gen()).collect();
            let st: Vec<bool> = (0..raw.dffs.len()).map(|_| rng.gen()).collect();
            // Raw evaluation.
            let raw_vals = eval_raw(raw, &pi, &st);
            // Normalized evaluation.
            let values = simulate(&circuit, &pi, &st);
            for (k, &o) in raw.outputs.iter().enumerate() {
                let net = circuit
                    .find_net(raw.signal_name(o))
                    .unwrap_or_else(|| panic!("output net {} missing", raw.signal_name(o)));
                assert_eq!(
                    values[net.0], raw_vals[o.0],
                    "output {k} mismatch for pi={pi:?} st={st:?}"
                );
            }
        }
    }

    /// Straightforward raw-level evaluator used as the oracle.
    fn eval_raw(raw: &RawCircuit, pi: &[bool], st: &[bool]) -> Vec<bool> {
        let mut vals = vec![false; raw.signal_count()];
        for (k, &i) in raw.inputs.iter().enumerate() {
            vals[i.0] = pi[k];
        }
        for (k, &(_, q)) in raw.dffs.iter().enumerate() {
            vals[q.0] = st[k];
        }
        let order = super::raw_topo_order(raw).unwrap();
        for gi in order {
            let g = &raw.gates[gi];
            let ins: Vec<bool> = g.inputs.iter().map(|s| vals[s.0]).collect();
            vals[g.output.0] = g.op.eval(&ins);
        }
        vals
    }

    #[test]
    fn all_operators_preserve_function() {
        let text = "\
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
OUTPUT(y1)
OUTPUT(y2)
OUTPUT(y3)
OUTPUT(y4)
OUTPUT(y5)
OUTPUT(y6)
y1 = AND(a, b, c, d, e)
y2 = OR(a, b, c, d, e)
y3 = XOR(a, b, c)
y4 = XNOR(a, b)
y5 = NAND(a, b, c, d, e)
y6 = BUFF(a)
";
        let raw = parse_bench("ops", text).unwrap();
        check_equivalence(&raw, 32, 7);
    }

    #[test]
    fn wide_gates_decompose_into_trees() {
        let mut raw = RawCircuit::new("wide");
        let ins: Vec<SigId> = (0..9).map(|i| raw.add_input(&format!("i{i}"))).collect();
        let y = raw.signal("y");
        raw.add_gate(RawOp::And, &ins, y);
        raw.add_output("y");
        let c = normalize(&raw).unwrap();
        // Tree of NAND4/NAND cells plus inverters.
        assert!(c.gate_count() >= 4);
        check_equivalence(&raw, 64, 11);
    }

    #[test]
    fn dff_expansion_structure() {
        let raw =
            parse_bench("seq", "INPUT(a)\nOUTPUT(y)\nq = DFF(n)\nn = NAND(a, q)\ny = NOT(q)\n")
                .unwrap();
        let c = normalize(&raw).unwrap();
        assert_eq!(c.dff_count(), 1);
        // Q is driven by the slave inverter; D net feeds the master.
        let q = c.find_net("q").unwrap();
        assert!(matches!(c.net_driver(q), crate::circuit::Driver::Gate(_)));
        let d = c.dff_d_nets()[0];
        assert_eq!(c.net_name(d), "n");
        // The D net is loaded by the master inverter in addition to any
        // logic fanout.
        assert!(!c.net_loads(d).is_empty());
        // Q = stored state.
        let values = simulate(&c, &[false], &[true]);
        assert!(values[q.0]);
        let values = simulate(&c, &[false], &[false]);
        assert!(!values[q.0]);
    }

    #[test]
    fn sequential_loop_through_dff_is_fine() {
        // q feeds back into the gate producing its own d: legal because
        // the DFF cuts the loop.
        let raw = parse_bench("loop", "INPUT(a)\nOUTPUT(q)\nq = DFF(n)\nn = NAND(a, q)\n").unwrap();
        assert!(normalize(&raw).is_ok());
    }

    #[test]
    fn combinational_loop_rejected() {
        let mut raw = RawCircuit::new("cyc");
        let a = raw.add_input("a");
        let x = raw.signal("x");
        let y = raw.signal("y");
        raw.add_gate(RawOp::Nand, &[a, y], x);
        raw.add_gate(RawOp::Not, &[x], y);
        raw.add_output("y");
        assert!(matches!(normalize(&raw), Err(CircuitError::CombinationalCycle { .. })));
    }
}
