//! Gate-level array multiplier generator (the paper's `mult88`).

use crate::raw::{RawCircuit, RawOp, SigId};

/// Builds an `n x n` unsigned array multiplier (`mult88` is `n = 8`):
/// AND-gate partial products reduced by a ripple array of half/full
/// adders — the classic structure, so the leakage study sees realistic
/// arithmetic-datapath topology (wide XOR usage, long carry chains).
///
/// Inputs are `a0..a{n-1}` and `b0..b{n-1}` (LSB first); outputs are
/// `p0..p{2n-1}`.
///
/// # Panics
/// Panics if `n < 2`.
pub fn multiplier(n: usize) -> RawCircuit {
    assert!(n >= 2, "multiplier needs at least 2 bits");
    let mut c = RawCircuit::new(&format!("mult{n}{n}"));
    let a: Vec<SigId> = (0..n).map(|i| c.add_input(&format!("a{i}"))).collect();
    let b: Vec<SigId> = (0..n).map(|i| c.add_input(&format!("b{i}"))).collect();

    // Partial products pp[i][j] = a[i] AND b[j].
    let mut pp = vec![vec![SigId(0); n]; n];
    for i in 0..n {
        for j in 0..n {
            let out = c.fresh_signal(&format!("pp_{i}_{j}"));
            c.add_gate(RawOp::And, &[a[i], b[j]], out);
            pp[i][j] = out;
        }
    }

    let mut helper = AdderHelper { c: &mut c, tmp: 0 };

    // Row-by-row carry-propagate reduction: row[j] holds the current
    // partial sum bit for output column (row_index + j).
    let mut row: Vec<SigId> = (0..n).map(|j| pp[0][j]).collect();
    let mut products: Vec<SigId> = Vec::with_capacity(2 * n);
    products.push(row[0]);

    for (i, pp_row) in pp.iter().enumerate().take(n).skip(1) {
        let mut carry: Option<SigId> = None;
        let mut next_row: Vec<SigId> = Vec::with_capacity(n);
        for j in 0..n {
            // Add pp_row[j] + row[j+1] (shifted previous sum, which may
            // include last iteration's carry bit) + carry.
            let prev = if j + 1 < row.len() { Some(row[j + 1]) } else { None };
            let (sum, cout) = match (prev, carry) {
                (Some(p), Some(cin)) => {
                    let (s, co) = helper.full_adder(pp_row[j], p, cin, i, j);
                    (s, Some(co))
                }
                (Some(p), None) => {
                    let (s, co) = helper.half_adder(pp_row[j], p, i, j);
                    (s, Some(co))
                }
                (None, Some(cin)) => {
                    let (s, co) = helper.half_adder(pp_row[j], cin, i, j);
                    (s, Some(co))
                }
                (None, None) => (pp_row[j], None),
            };
            next_row.push(sum);
            carry = cout;
        }
        if let Some(co) = carry {
            next_row.push(co);
        }
        products.push(next_row[0]);
        row = next_row;
    }
    // Remaining high bits.
    for &s in row.iter().skip(1) {
        products.push(s);
    }

    for (k, &p) in products.iter().enumerate() {
        let name = c.signal_name(p).to_string();
        // Re-export under the canonical product name via a buffer when
        // the signal is a raw partial product; otherwise just mark it.
        let _ = name;
        let pname = format!("p{k}");
        let out = c.fresh_signal(&pname);
        c.add_gate(RawOp::Buff, &[p], out);
        c.add_output(&pname);
    }
    c
}

struct AdderHelper<'a> {
    c: &'a mut RawCircuit,
    tmp: usize,
}

impl AdderHelper<'_> {
    fn fresh(&mut self, tag: &str, i: usize, j: usize) -> SigId {
        self.tmp += 1;
        self.c.fresh_signal(&format!("{tag}_{i}_{j}_{}", self.tmp))
    }

    /// Half adder: `s = a XOR b`, `co = a AND b`.
    fn half_adder(&mut self, a: SigId, b: SigId, i: usize, j: usize) -> (SigId, SigId) {
        let s = self.fresh("has", i, j);
        self.c.add_gate(RawOp::Xor, &[a, b], s);
        let co = self.fresh("hac", i, j);
        self.c.add_gate(RawOp::And, &[a, b], co);
        (s, co)
    }

    /// Full adder: `s = a XOR b XOR cin`,
    /// `co = NAND(NAND(a,b), NAND(cin, a XOR b))` (the 2-level NAND
    /// majority form).
    fn full_adder(&mut self, a: SigId, b: SigId, cin: SigId, i: usize, j: usize) -> (SigId, SigId) {
        let xab = self.fresh("fax", i, j);
        self.c.add_gate(RawOp::Xor, &[a, b], xab);
        let s = self.fresh("fas", i, j);
        self.c.add_gate(RawOp::Xor, &[xab, cin], s);
        let n1 = self.fresh("fan1", i, j);
        self.c.add_gate(RawOp::Nand, &[a, b], n1);
        let n2 = self.fresh("fan2", i, j);
        self.c.add_gate(RawOp::Nand, &[cin, xab], n2);
        let co = self.fresh("faco", i, j);
        self.c.add_gate(RawOp::Nand, &[n1, n2], co);
        (s, co)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::simulate;
    use crate::normalize::normalize;

    /// Multiplies via the gate-level circuit.
    fn hw_multiply(n: usize, x: u64, y: u64) -> u64 {
        let raw = multiplier(n);
        let circuit = normalize(&raw).unwrap();
        let mut pi = Vec::new();
        for i in 0..n {
            pi.push((x >> i) & 1 == 1);
        }
        for i in 0..n {
            pi.push((y >> i) & 1 == 1);
        }
        let values = simulate(&circuit, &pi, &[]);
        let mut out = 0u64;
        for k in 0..2 * n {
            let net = circuit.find_net(&format!("p{k}")).expect("product bit");
            if values[net.0] {
                out |= 1 << k;
            }
        }
        out
    }

    #[test]
    fn four_bit_multiplier_exhaustive() {
        for x in 0..16u64 {
            for y in 0..16u64 {
                assert_eq!(hw_multiply(4, x, y), x * y, "{x} * {y}");
            }
        }
    }

    #[test]
    fn eight_bit_multiplier_spot_checks() {
        for (x, y) in [(0u64, 0u64), (255, 255), (3, 7), (128, 2), (200, 133), (99, 251)] {
            assert_eq!(hw_multiply(8, x, y), x * y, "{x} * {y}");
        }
    }

    #[test]
    fn mult88_size_is_substantial() {
        let raw = multiplier(8);
        assert_eq!(raw.inputs.len(), 16);
        assert_eq!(raw.outputs.len(), 16);
        let c = normalize(&raw).unwrap();
        assert!(c.gate_count() > 500, "normalized gate count = {}", c.gate_count());
    }
}
