//! Gate-level ALU generator (the paper's `alu88`).

use crate::raw::{RawCircuit, RawOp, SigId};

/// Builds an `n`-bit four-function ALU (`alu88` is `n = 8`):
///
/// * `op = 00` — `a + b` (ripple-carry, with `cin`)
/// * `op = 01` — `a AND b`
/// * `op = 10` — `a OR b`
/// * `op = 11` — `a XOR b`
///
/// Inputs: `a0..`, `b0..` (LSB first), `op0`, `op1`, `cin`; outputs
/// `y0..y{n-1}` and `cout`. Function selection uses AND-OR mux trees,
/// giving the mixed adder/mux topology typical of datapath slices.
///
/// # Panics
/// Panics if `n < 1`.
pub fn alu(n: usize) -> RawCircuit {
    assert!(n >= 1, "alu needs at least one bit");
    let mut c = RawCircuit::new(&format!("alu{n}{n}"));
    let a: Vec<SigId> = (0..n).map(|i| c.add_input(&format!("a{i}"))).collect();
    let b: Vec<SigId> = (0..n).map(|i| c.add_input(&format!("b{i}"))).collect();
    let op0 = c.add_input("op0");
    let op1 = c.add_input("op1");
    let cin = c.add_input("cin");

    let mut t = 0usize;
    let mut fresh = |c: &mut RawCircuit, tag: &str| {
        t += 1;
        c.fresh_signal(&format!("{tag}_{t}"))
    };

    // Select lines: s_add = !op1 & !op0, s_and = !op1 & op0,
    // s_or = op1 & !op0, s_xor = op1 & op0.
    let nop0 = fresh(&mut c, "nop0");
    c.add_gate(RawOp::Not, &[op0], nop0);
    let nop1 = fresh(&mut c, "nop1");
    c.add_gate(RawOp::Not, &[op1], nop1);
    let s_add = fresh(&mut c, "sadd");
    c.add_gate(RawOp::And, &[nop1, nop0], s_add);
    let s_and = fresh(&mut c, "sand");
    c.add_gate(RawOp::And, &[nop1, op0], s_and);
    let s_or = fresh(&mut c, "sor");
    c.add_gate(RawOp::And, &[op1, nop0], s_or);
    let s_xor = fresh(&mut c, "sxor");
    c.add_gate(RawOp::And, &[op1, op0], s_xor);

    let mut carry = cin;
    for i in 0..n {
        // Logic functions.
        let and_i = fresh(&mut c, "and");
        c.add_gate(RawOp::And, &[a[i], b[i]], and_i);
        let or_i = fresh(&mut c, "or");
        c.add_gate(RawOp::Or, &[a[i], b[i]], or_i);
        let xor_i = fresh(&mut c, "xor");
        c.add_gate(RawOp::Xor, &[a[i], b[i]], xor_i);

        // Full adder on (a, b, carry).
        let sum_i = fresh(&mut c, "sum");
        c.add_gate(RawOp::Xor, &[xor_i, carry], sum_i);
        let n1 = fresh(&mut c, "cn1");
        c.add_gate(RawOp::Nand, &[a[i], b[i]], n1);
        let n2 = fresh(&mut c, "cn2");
        c.add_gate(RawOp::Nand, &[carry, xor_i], n2);
        let cout_i = fresh(&mut c, "cout");
        c.add_gate(RawOp::Nand, &[n1, n2], cout_i);
        carry = cout_i;

        // 4-way AND-OR mux.
        let m_add = fresh(&mut c, "madd");
        c.add_gate(RawOp::And, &[s_add, sum_i], m_add);
        let m_and = fresh(&mut c, "mand");
        c.add_gate(RawOp::And, &[s_and, and_i], m_and);
        let m_or = fresh(&mut c, "mor");
        c.add_gate(RawOp::And, &[s_or, or_i], m_or);
        let m_xor = fresh(&mut c, "mxor");
        c.add_gate(RawOp::And, &[s_xor, xor_i], m_xor);
        let y = c.fresh_signal(&format!("y{i}"));
        c.add_gate(RawOp::Or, &[m_add, m_and, m_or, m_xor], y);
        c.add_output(&format!("y{i}"));
    }
    // Carry out (meaningful for ADD; harmless otherwise).
    {
        let name = c.signal_name(carry).to_string();
        let _ = name;
        let out = c.fresh_signal("cout_buf");
        c.add_gate(RawOp::Buff, &[carry], out);
        // Export as "cout".
        let exported = c.fresh_signal("cout");
        c.add_gate(RawOp::Buff, &[out], exported);
        c.add_output("cout");
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::simulate;
    use crate::normalize::normalize;

    fn run_alu(n: usize, a: u64, b: u64, op: u8, cin: bool) -> (u64, bool) {
        let raw = alu(n);
        let circuit = normalize(&raw).unwrap();
        let mut pi = Vec::new();
        for i in 0..n {
            pi.push((a >> i) & 1 == 1);
        }
        for i in 0..n {
            pi.push((b >> i) & 1 == 1);
        }
        pi.push(op & 1 == 1); // op0
        pi.push(op & 2 == 2); // op1
        pi.push(cin);
        let values = simulate(&circuit, &pi, &[]);
        let mut y = 0u64;
        for i in 0..n {
            let net = circuit.find_net(&format!("y{i}")).unwrap();
            if values[net.0] {
                y |= 1 << i;
            }
        }
        let cout = values[circuit.find_net("cout").unwrap().0];
        (y, cout)
    }

    #[test]
    fn add_with_carry() {
        let (y, cout) = run_alu(8, 200, 100, 0b00, false);
        assert_eq!(y, (200 + 100) & 0xff);
        assert!(cout, "200+100 overflows 8 bits");
        let (y, cout) = run_alu(8, 1, 2, 0b00, true);
        assert_eq!(y, 4);
        assert!(!cout);
    }

    #[test]
    fn logic_functions() {
        let (a, b) = (0b1100_1010u64, 0b1010_0110u64);
        assert_eq!(run_alu(8, a, b, 0b01, false).0, a & b);
        assert_eq!(run_alu(8, a, b, 0b10, false).0, a | b);
        assert_eq!(run_alu(8, a, b, 0b11, false).0, a ^ b);
    }

    #[test]
    fn four_bit_adder_exhaustive() {
        for a in 0..16u64 {
            for b in 0..16u64 {
                let (y, cout) = run_alu(4, a, b, 0b00, false);
                assert_eq!(y, (a + b) & 0xf, "{a}+{b}");
                assert_eq!(cout, a + b > 15, "{a}+{b} carry");
            }
        }
    }

    #[test]
    fn alu88_size() {
        let raw = alu(8);
        let c = normalize(&raw).unwrap();
        assert!(c.gate_count() > 200, "normalized gate count = {}", c.gate_count());
        assert_eq!(raw.inputs.len(), 2 * 8 + 3);
        assert_eq!(raw.outputs.len(), 9);
    }
}
