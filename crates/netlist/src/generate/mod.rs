//! Circuit generators: random logic, ISCAS89-sized stand-ins, and the
//! paper's arithmetic benchmarks (`mult88`, `alu88`).

pub mod alu;
pub mod iscas;
pub mod multiplier;
pub mod random;

pub use alu::alu;
pub use iscas::{from_profile, iscas_like, iscas_suite, IscasProfile, ISCAS89_PROFILES};
pub use multiplier::multiplier;
pub use random::{random_circuit, RandomCircuitSpec};

use crate::circuit::Circuit;
use crate::error::CircuitError;
use crate::normalize::normalize;
use crate::raw::RawCircuit;

/// The eight benchmark circuits of the paper's Fig. 12, in order:
/// `s838, s1196, s1423, s5378, s9234, s13207, alu88, mult88` (raw form).
pub fn paper_suite_raw() -> Vec<RawCircuit> {
    let mut suite = iscas_suite();
    suite.push(alu(8));
    suite.push(multiplier(8));
    suite
}

/// The paper suite, normalized to library cells.
///
/// # Errors
/// Propagates normalization failures (none occur for the built-in
/// generators; the `Result` is for API honesty).
pub fn paper_suite() -> Result<Vec<Circuit>, CircuitError> {
    paper_suite_raw().iter().map(normalize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_has_eight_circuits_in_order() {
        let suite = paper_suite_raw();
        let names: Vec<&str> = suite.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["s838", "s1196", "s1423", "s5378", "s9234", "s13207", "alu88", "mult88"]
        );
    }
}
