//! Seeded random logic-network generator.
//!
//! Produces DAG-structured random logic with a realistic operator mix
//! and fanin/fanout statistics. Used both directly (property tests,
//! scaling studies) and as the engine behind the ISCAS89-sized
//! synthetic benchmarks.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::raw::{RawCircuit, RawOp, SigId};

/// Parameters of the random network.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomCircuitSpec {
    /// Circuit name.
    pub name: String,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count (drawn from late gate outputs).
    pub outputs: usize,
    /// Raw gate count.
    pub gates: usize,
    /// DFF count.
    pub dffs: usize,
    /// RNG seed — same seed, same circuit.
    pub seed: u64,
    /// Relative weights of (op, fanin) choices.
    pub op_mix: Vec<(RawOp, usize, f64)>,
    /// Locality window: inputs of a new gate are drawn from the most
    /// recent `window` signals with high probability, giving the deep,
    /// narrow structure of real control logic.
    pub window: usize,
    /// Probability that a gate input connects to a "hub" signal (a DFF
    /// state bit). Real ISCAS89 circuits have heavy-tailed fanout —
    /// state and control nets drive tens of gates — and those
    /// high-fanout nets are exactly where loading currents concentrate.
    pub hub_prob: f64,
}

impl RandomCircuitSpec {
    /// A default mix resembling synthesized control logic: NAND/NOR
    /// heavy, some wide gates, occasional XOR.
    pub fn new(
        name: &str,
        inputs: usize,
        outputs: usize,
        gates: usize,
        dffs: usize,
        seed: u64,
    ) -> Self {
        Self {
            name: name.to_string(),
            inputs,
            outputs,
            gates,
            dffs,
            seed,
            op_mix: vec![
                (RawOp::Nand, 2, 0.24),
                (RawOp::Nand, 3, 0.08),
                (RawOp::Nand, 4, 0.04),
                (RawOp::Nor, 2, 0.16),
                (RawOp::Nor, 3, 0.06),
                (RawOp::And, 2, 0.10),
                (RawOp::Or, 2, 0.08),
                (RawOp::Not, 1, 0.18),
                (RawOp::Buff, 1, 0.02),
                (RawOp::Xor, 2, 0.04),
            ],
            window: 48,
            hub_prob: 0.08,
        }
    }
}

/// Generates the random raw circuit described by `spec`.
///
/// # Panics
/// Panics if `spec` has zero inputs or zero gates.
pub fn random_circuit(spec: &RandomCircuitSpec) -> RawCircuit {
    assert!(spec.inputs > 0, "need at least one input");
    assert!(spec.gates > 0, "need at least one gate");
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    let mut c = RawCircuit::new(&spec.name);

    let mut pool: Vec<SigId> = Vec::new();
    for i in 0..spec.inputs {
        pool.push(c.add_input(&format!("pi{i}")));
    }
    // DFF Q signals are available as sources from the start (their D
    // pins are chosen at the end, which is legal: DFFs cut cycles).
    let mut q_sigs = Vec::with_capacity(spec.dffs);
    for i in 0..spec.dffs {
        let q = c.fresh_signal(&format!("ff{i}_q"));
        q_sigs.push(q);
        pool.push(q);
    }

    let total_weight: f64 = spec.op_mix.iter().map(|(_, _, w)| w).sum();
    for g in 0..spec.gates {
        // Pick an operator.
        let mut pick = rng.gen::<f64>() * total_weight;
        let mut chosen = spec.op_mix[0];
        for &entry in &spec.op_mix {
            if pick < entry.2 {
                chosen = entry;
                break;
            }
            pick -= entry.2;
        }
        let (op, fanin, _) = chosen;
        let fanin = fanin.min(pool.len());
        // Draw distinct inputs, biased toward recent signals.
        let mut ins: Vec<SigId> = Vec::with_capacity(fanin);
        let mut guard = 0;
        while ins.len() < fanin && guard < 200 {
            guard += 1;
            let hub = !q_sigs.is_empty() && rng.gen::<f64>() < spec.hub_prob;
            let local = rng.gen::<f64>() < 0.75 && pool.len() > spec.window;
            let idx = if hub {
                spec.inputs + rng.gen_range(0..q_sigs.len())
            } else if local {
                pool.len() - 1 - rng.gen_range(0..spec.window)
            } else {
                rng.gen_range(0..pool.len())
            };
            let sig = pool[idx];
            if !ins.contains(&sig) {
                ins.push(sig);
            }
        }
        while ins.len() < fanin.max(1) {
            // Degenerate tiny pools: repeat-free fill from the front.
            let extra = pool[ins.len() % pool.len()];
            if ins.contains(&extra) {
                break;
            }
            ins.push(extra);
        }
        let out = c.fresh_signal(&format!("g{g}"));
        c.add_gate(op, &ins, out);
        pool.push(out);
    }

    // DFF D pins from random gate outputs (late-biased).
    let gate_outputs: Vec<SigId> = c.gates.iter().map(|g| g.output).collect();
    for (i, &q) in q_sigs.iter().enumerate() {
        let d = *gate_outputs
            .get(rng.gen_range(gate_outputs.len() / 2..gate_outputs.len()))
            .unwrap_or(&gate_outputs[i % gate_outputs.len()]);
        c.add_dff(d, q);
    }

    // Primary outputs from distinct late gate outputs.
    let mut candidates: Vec<SigId> =
        gate_outputs.iter().rev().take(spec.outputs * 3 + 8).copied().collect();
    candidates.shuffle(&mut rng);
    for (i, sig) in candidates.into_iter().take(spec.outputs).enumerate() {
        let name = c.signal_name(sig).to_string();
        let _ = i;
        c.add_output(&name);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::stats::CircuitStats;

    fn spec() -> RandomCircuitSpec {
        RandomCircuitSpec::new("rnd", 8, 4, 120, 6, 1234)
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_circuit(&spec());
        let b = random_circuit(&spec());
        assert_eq!(a, b);
        let mut other = spec();
        other.seed = 99;
        assert_ne!(a, random_circuit(&other));
    }

    #[test]
    fn validates_and_normalizes() {
        let raw = random_circuit(&spec());
        raw.validate().unwrap();
        let c = normalize(&raw).unwrap();
        assert!(c.gate_count() >= 120, "normalization only adds gates");
        let s = CircuitStats::compute(&c);
        assert_eq!(s.dffs, 6);
        assert!(s.max_depth > 3, "locality window should create depth");
    }

    #[test]
    fn requested_io_counts_respected() {
        let raw = random_circuit(&spec());
        assert_eq!(raw.inputs.len(), 8);
        assert_eq!(raw.outputs.len(), 4);
        assert_eq!(raw.dffs.len(), 6);
        assert_eq!(raw.gate_count(), 120);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_inputs_rejected() {
        let mut s = spec();
        s.inputs = 0;
        random_circuit(&s);
    }

    #[test]
    fn hub_probability_creates_heavy_fanout_tail() {
        // With hubs on, DFF state nets accumulate much higher fanout
        // than the median net (the ISCAS89 control-net signature).
        let mut s = RandomCircuitSpec::new("hub", 8, 4, 400, 8, 99);
        s.hub_prob = 0.10;
        let raw = random_circuit(&s);
        let c = normalize(&raw).unwrap();
        let stats = CircuitStats::compute(&c);
        let mut no_hub = s.clone();
        no_hub.hub_prob = 0.0;
        let raw0 = random_circuit(&no_hub);
        let c0 = normalize(&raw0).unwrap();
        let stats0 = CircuitStats::compute(&c0);
        assert!(
            stats.max_fanout > stats0.max_fanout,
            "hubs {} vs none {}",
            stats.max_fanout,
            stats0.max_fanout
        );
        assert!(stats.max_fanout >= 10, "hub max fanout = {}", stats.max_fanout);
    }
}
