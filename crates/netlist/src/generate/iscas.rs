//! ISCAS89-sized synthetic benchmarks.
//!
//! The paper evaluates on six ISCAS89 circuits (its Fig. 12 labels two
//! of them with the typos "s5372" and "s9378"; the published suite has
//! s5378 and s9234). The original netlists are not redistributable
//! inside this repository, so we generate seeded stand-ins matching the
//! published size statistics (inputs/outputs/DFF/gate counts) and a
//! synthesized-control-logic operator mix. Real `.bench` files drop
//! into [`crate::bench_format::parse_bench`] unchanged if available.

use crate::generate::random::{random_circuit, RandomCircuitSpec};
use crate::raw::RawCircuit;

/// Published size statistics of one ISCAS89 circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IscasProfile {
    /// Canonical name.
    pub name: &'static str,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// D flip-flops.
    pub dffs: usize,
    /// Combinational gates.
    pub gates: usize,
}

/// The six profiles used in the paper's Fig. 12, canonical names.
pub const ISCAS89_PROFILES: [IscasProfile; 6] = [
    IscasProfile { name: "s838", inputs: 34, outputs: 1, dffs: 32, gates: 446 },
    IscasProfile { name: "s1196", inputs: 14, outputs: 14, dffs: 18, gates: 529 },
    IscasProfile { name: "s1423", inputs: 17, outputs: 5, dffs: 74, gates: 657 },
    IscasProfile { name: "s5378", inputs: 35, outputs: 49, dffs: 179, gates: 2779 },
    IscasProfile { name: "s9234", inputs: 36, outputs: 39, dffs: 211, gates: 5597 },
    IscasProfile { name: "s13207", inputs: 62, outputs: 152, dffs: 638, gates: 7951 },
];

/// Generates the synthetic stand-in for a named ISCAS89 circuit
/// (`"s838"`, `"s1196"`, `"s1423"`, `"s5378"`, `"s9234"`, `"s13207"`;
/// the paper's typo'd labels `"s5372"` and `"s9378"` are accepted as
/// aliases).
pub fn iscas_like(name: &str) -> Option<RawCircuit> {
    let canonical = match name {
        "s5372" => "s5378",
        "s9378" => "s9234",
        other => other,
    };
    let profile = ISCAS89_PROFILES.iter().find(|p| p.name == canonical)?;
    Some(from_profile(profile))
}

/// Generates the stand-in for an explicit profile. The seed is derived
/// from the name so every call reproduces the same circuit.
pub fn from_profile(profile: &IscasProfile) -> RawCircuit {
    let seed = profile
        .name
        .bytes()
        .fold(0xcbf29ce484222325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3));
    let spec = RandomCircuitSpec::new(
        profile.name,
        profile.inputs,
        profile.outputs,
        profile.gates,
        profile.dffs,
        seed,
    );
    random_circuit(&spec)
}

/// All six stand-ins, in the paper's Fig. 12 order.
pub fn iscas_suite() -> Vec<RawCircuit> {
    ISCAS89_PROFILES.iter().map(from_profile).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;

    #[test]
    fn names_and_aliases_resolve() {
        assert!(iscas_like("s838").is_some());
        assert!(iscas_like("s5372").is_some(), "paper typo alias");
        assert!(iscas_like("s9378").is_some(), "paper typo alias");
        assert!(iscas_like("c17").is_none());
    }

    #[test]
    fn sizes_match_published_statistics() {
        for p in &ISCAS89_PROFILES {
            let raw = from_profile(p);
            assert_eq!(raw.inputs.len(), p.inputs, "{}", p.name);
            assert_eq!(raw.outputs.len(), p.outputs, "{}", p.name);
            assert_eq!(raw.dffs.len(), p.dffs, "{}", p.name);
            assert_eq!(raw.gate_count(), p.gates, "{}", p.name);
        }
    }

    #[test]
    fn small_ones_normalize_cleanly() {
        for name in ["s838", "s1196", "s1423"] {
            let raw = iscas_like(name).unwrap();
            let c = normalize(&raw).unwrap();
            assert!(c.gate_count() >= raw.gate_count(), "{name}");
        }
    }

    #[test]
    fn regeneration_is_identical() {
        let a = iscas_like("s1196").unwrap();
        let b = iscas_like("s1196").unwrap();
        assert_eq!(a, b);
    }
}
