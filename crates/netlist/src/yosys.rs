//! Yosys JSON netlist importer (`yosys ... write_json design.json`).
//!
//! Reads the gate-level subset of Yosys's JSON dump — a design that
//! has been mapped to the single-bit internal cells (`$_NOT_`,
//! `$_AND_`, `$_NAND_`, `$_OR_`, `$_NOR_`, `$_XOR_`, `$_XNOR_`,
//! `$_BUF_`, `$_DFF_P_`/`$_DFF_N_`), e.g. via `synth; abc; simplemap`
//! — into a [`RawCircuit`], the same entry point the `.bench` parser
//! feeds. Word-level cells (`$add`, `$mux`, ...) are rejected with an
//! error naming the cell: run Yosys's mapping passes first.
//!
//! Net naming follows `netnames`: each bit takes the first public
//! (non-`$`) name that mentions it, in file order, with `name[i]`
//! for bits of multi-bit wires; bits only private names mention fall
//! back to those, and completely anonymous bits become `_bit_<n>`.
//! Clock pins of DFF cells are ignored (the leakage model is
//! steady-state), matching how the `.bench` dialect treats `DFF()`.

use std::collections::HashMap;

use serde::{json, Value};

use crate::error::CircuitError;
use crate::raw::{RawCircuit, RawOp};

/// `CircuitError::Parse` pinned to line 1: the JSON tree has no
/// useful line mapping, so every import error cites the document.
fn perr(message: impl Into<String>) -> CircuitError {
    CircuitError::Parse { line: 1, message: message.into() }
}

/// The field list of one JSON object (`Value::Record`).
type Fields<'v> = &'v [(String, Value)];

fn as_record<'v>(v: &'v Value, what: &str) -> Result<Fields<'v>, CircuitError> {
    match v {
        Value::Record(fields) => Ok(fields),
        other => Err(perr(format!("{what}: expected a JSON object, got {other:?}"))),
    }
}

fn field<'v>(fields: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
}

/// One pin's bit list; gate-level cells carry exactly one bit per
/// pin. Bits are net ids (`Int`) — constant bits (`"0"`, `"1"`,
/// `"x"`) have no representation in [`RawCircuit`] and are rejected.
fn pin_bit(cell: &str, conns: &[(String, Value)], pin: &str) -> Result<u64, CircuitError> {
    let bits = field(conns, pin)
        .ok_or_else(|| perr(format!("cell '{cell}': missing connection '{pin}'")))?;
    let Value::Seq(items) = bits else {
        return Err(perr(format!("cell '{cell}': connection '{pin}' is not a bit list")));
    };
    let [bit] = items.as_slice() else {
        return Err(perr(format!(
            "cell '{cell}': connection '{pin}' has {} bits, expected 1 (map to gate-level cells)",
            items.len()
        )));
    };
    match bit {
        Value::Int(n) if *n >= 0 => Ok(*n as u64),
        Value::Str(c) => Err(perr(format!(
            "cell '{cell}': pin '{pin}' is tied to constant '{c}' — constant folding is not \
             supported, run `opt_clean`/`opt_expr` before export"
        ))),
        other => Err(perr(format!("cell '{cell}': pin '{pin}' has malformed bit {other:?}"))),
    }
}

/// The gate-level cell types accepted, with their input pin order.
fn cell_shape(ty: &str) -> Option<(RawOp, &'static [&'static str])> {
    match ty {
        "$_NOT_" => Some((RawOp::Not, &["A"])),
        "$_BUF_" => Some((RawOp::Buff, &["A"])),
        "$_AND_" => Some((RawOp::And, &["A", "B"])),
        "$_NAND_" => Some((RawOp::Nand, &["A", "B"])),
        "$_OR_" => Some((RawOp::Or, &["A", "B"])),
        "$_NOR_" => Some((RawOp::Nor, &["A", "B"])),
        "$_XOR_" => Some((RawOp::Xor, &["A", "B"])),
        "$_XNOR_" => Some((RawOp::Xnor, &["A", "B"])),
        _ => None,
    }
}

/// Selects the module to import: the one whose `attributes.top` is
/// set, or the only module. Ambiguity is an error naming the choices.
fn select_module(modules: Fields<'_>) -> Result<(&str, Fields<'_>), CircuitError> {
    if modules.is_empty() {
        return Err(perr("no modules in design"));
    }
    let mut chosen: Option<(&str, &[(String, Value)])> = None;
    for (name, module) in modules {
        let module = as_record(module, name)?;
        let is_top = field(module, "attributes")
            .and_then(|a| as_record(a, "attributes").ok())
            .and_then(|a| field(a, "top"))
            .is_some_and(|top| match top {
                Value::Int(n) => *n != 0,
                // Yosys encodes attribute values as bit strings.
                Value::Str(s) => s.contains('1'),
                _ => false,
            });
        if is_top {
            return Ok((name, module));
        }
        chosen = Some((name, module));
    }
    if modules.len() > 1 {
        let names: Vec<&str> = modules.iter().map(|(n, _)| n.as_str()).collect();
        return Err(perr(format!(
            "{} modules and none marked top: {}",
            modules.len(),
            names.join(", ")
        )));
    }
    Ok(chosen.expect("non-empty module list"))
}

/// Parses a Yosys JSON netlist into a [`RawCircuit`] named `name`
/// (the selected module's name is recorded when `name` is empty).
///
/// # Errors
/// [`CircuitError::Parse`] on malformed JSON, ambiguous/missing top
/// modules, word-level or unknown cell types, constant-tied pins, and
/// multi-bit pins; plus anything [`RawCircuit::validate`] rejects
/// (multiple drivers, undriven nets).
pub fn parse_yosys_json(name: &str, text: &str) -> Result<RawCircuit, CircuitError> {
    let root = json::value_from_str(text).map_err(|e| perr(format!("malformed JSON: {e}")))?;
    let root = as_record(&root, "design")?;
    let modules = field(root, "modules").ok_or_else(|| perr("missing 'modules'"))?;
    let modules = as_record(modules, "modules")?;
    let (module_name, module) = select_module(modules)?;

    // Bit → name assignment from `netnames`, in file order. Public
    // names (not starting with '$') win over private ones; the first
    // name of each class wins; a name that would collide with a
    // different bit's is skipped (the bit keeps its fallback).
    let mut public: HashMap<u64, String> = HashMap::new();
    let mut private: HashMap<u64, String> = HashMap::new();
    let mut used: HashMap<String, u64> = HashMap::new();
    if let Some(netnames) = field(module, "netnames") {
        for (net, info) in as_record(netnames, "netnames")? {
            let info = as_record(info, net)?;
            let Some(Value::Seq(bits)) = field(info, "bits") else { continue };
            let wide = bits.len() > 1;
            for (i, bit) in bits.iter().enumerate() {
                let Value::Int(n) = bit else { continue };
                let n = u64::try_from(*n).unwrap_or(u64::MAX);
                let bit_name = if wide { format!("{net}[{i}]") } else { net.clone() };
                let class = if net.starts_with('$') { &mut private } else { &mut public };
                if class.contains_key(&n) || used.get(&bit_name).is_some_and(|&b| b != n) {
                    continue;
                }
                used.insert(bit_name.clone(), n);
                class.insert(n, bit_name);
            }
        }
    }
    let bit_name = |n: u64| -> String {
        public.get(&n).or_else(|| private.get(&n)).cloned().unwrap_or_else(|| format!("_bit_{n}"))
    };

    let mut raw = RawCircuit::new(if name.is_empty() { module_name } else { name });

    // Ports declare the primary IO; everything else is inferred from
    // cell connections.
    let ports = field(module, "ports").ok_or_else(|| perr("missing 'ports'"))?;
    let mut output_bits: Vec<u64> = Vec::new();
    for (port, info) in as_record(ports, "ports")? {
        let info = as_record(info, port)?;
        let direction = match field(info, "direction") {
            Some(Value::Str(d)) => d.as_str(),
            _ => return Err(perr(format!("port '{port}': missing direction"))),
        };
        let Some(Value::Seq(bits)) = field(info, "bits") else {
            return Err(perr(format!("port '{port}': missing bits")));
        };
        for bit in bits {
            let Value::Int(n) = bit else {
                return Err(perr(format!("port '{port}': constant or malformed bit {bit:?}")));
            };
            let n = u64::try_from(*n).map_err(|_| perr(format!("port '{port}': negative bit")))?;
            match direction {
                "input" => {
                    raw.add_input(&bit_name(n));
                }
                "output" => output_bits.push(n),
                other => {
                    return Err(perr(format!(
                        "port '{port}': unsupported direction '{other}' (input/output only)"
                    )))
                }
            }
        }
    }

    if let Some(cells) = field(module, "cells") {
        for (cell, info) in as_record(cells, "cells")? {
            let info = as_record(info, cell)?;
            let ty = match field(info, "type") {
                Some(Value::Str(t)) => t.as_str(),
                _ => return Err(perr(format!("cell '{cell}': missing type"))),
            };
            let conns = match field(info, "connections") {
                Some(v) => as_record(v, cell)?,
                None => return Err(perr(format!("cell '{cell}': missing connections"))),
            };
            if matches!(ty, "$_DFF_P_" | "$_DFF_N_") {
                // Clock edge and pin are irrelevant to steady-state
                // leakage; only the d → q storage relation survives.
                let d = pin_bit(cell, conns, "D")?;
                let q = pin_bit(cell, conns, "Q")?;
                let d = raw.signal(&bit_name(d));
                let q = raw.signal(&bit_name(q));
                raw.add_dff(d, q);
                continue;
            }
            let Some((op, pins)) = cell_shape(ty) else {
                return Err(perr(format!(
                    "cell '{cell}': unsupported type '{ty}' — map the design to gate-level \
                     cells ($_NAND_, $_NOR_, $_NOT_, ...) before export"
                )));
            };
            let mut inputs = Vec::with_capacity(pins.len());
            for pin in pins {
                let n = pin_bit(cell, conns, pin)?;
                inputs.push(raw.signal(&bit_name(n)));
            }
            let y = pin_bit(cell, conns, "Y")?;
            let y = raw.signal(&bit_name(y));
            raw.add_gate(op, &inputs, y);
        }
    }

    for n in output_bits {
        raw.add_output(&bit_name(n));
    }
    raw.validate()?;
    Ok(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::simulate;
    use crate::normalize::normalize;

    /// A hand-written dump of `y = !(a & b)`, `q <= y` with a public
    /// name for every net — the shape `yosys synth; abc -g NAND;
    /// write_json` produces for a tiny design.
    const FIXTURE: &str = r#"{
      "creator": "Yosys",
      "modules": {
        "top": {
          "attributes": { "top": 1 },
          "ports": {
            "a":   { "direction": "input",  "bits": [2] },
            "b":   { "direction": "input",  "bits": [3] },
            "q":   { "direction": "output", "bits": [5] }
          },
          "cells": {
            "g_nand": {
              "type": "$_NAND_",
              "connections": { "A": [2], "B": [3], "Y": [4] }
            },
            "ff": {
              "type": "$_DFF_P_",
              "connections": { "C": [6], "D": [4], "Q": [5] }
            }
          },
          "netnames": {
            "a":   { "bits": [2] },
            "b":   { "bits": [3] },
            "y":   { "bits": [4] },
            "q":   { "bits": [5] },
            "clk": { "bits": [6] }
          }
        }
      }
    }"#;

    #[test]
    fn fixture_imports_with_names_and_dff() {
        let raw = parse_yosys_json("", FIXTURE).unwrap();
        assert_eq!(raw.name, "top");
        assert_eq!(raw.inputs.len(), 2);
        assert_eq!(raw.outputs.len(), 1);
        assert_eq!(raw.gates.len(), 1);
        assert_eq!(raw.dffs.len(), 1);
        assert_eq!(raw.gates[0].op, RawOp::Nand);
        assert_eq!(raw.signal_name(raw.gates[0].output), "y");
        assert_eq!(raw.signal_name(raw.outputs[0]), "q");
        // The clock net is ignored entirely (no signal required).
        let circuit = normalize(&raw).unwrap();
        assert_eq!(circuit.inputs().len(), 2);
        assert_eq!(circuit.state_inputs().len(), 1);
        // y = NAND(a, b) at the D pin.
        for (a, b) in [(false, false), (true, false), (true, true)] {
            let values = simulate(&circuit, &[a, b], &[false]);
            assert_eq!(values[circuit.dff_d_nets()[0].0], !(a && b));
        }
    }

    #[test]
    fn multibit_ports_name_per_bit() {
        let text = r#"{
          "modules": { "m": {
            "ports": {
              "d": { "direction": "input",  "bits": [2, 3] },
              "y": { "direction": "output", "bits": [4] }
            },
            "cells": {
              "g": { "type": "$_XOR_", "connections": { "A": [2], "B": [3], "Y": [4] } }
            },
            "netnames": {
              "d": { "bits": [2, 3] },
              "y": { "bits": [4] }
            }
          } }
        }"#;
        let raw = parse_yosys_json("", text).unwrap();
        assert_eq!(raw.signal_name(raw.inputs[0]), "d[0]");
        assert_eq!(raw.signal_name(raw.inputs[1]), "d[1]");
    }

    #[test]
    fn private_names_lose_to_public_ones() {
        let text = r#"{
          "modules": { "m": {
            "ports": {
              "a": { "direction": "input",  "bits": [2] },
              "y": { "direction": "output", "bits": [3] }
            },
            "cells": {
              "g": { "type": "$_NOT_", "connections": { "A": [2], "Y": [3] } }
            },
            "netnames": {
              "$abc$123$new_n7": { "bits": [3] },
              "y": { "bits": [3] }
            }
          } }
        }"#;
        let raw = parse_yosys_json("", text).unwrap();
        assert_eq!(raw.signal_name(raw.outputs[0]), "y");
    }

    #[test]
    fn word_level_cells_are_rejected_with_the_cell_named() {
        let text = r#"{
          "modules": { "m": {
            "ports": { "a": { "direction": "input", "bits": [2] } },
            "cells": {
              "adder": { "type": "$add", "connections": { "A": [2], "B": [2], "Y": [3] } }
            }
          } }
        }"#;
        let err = parse_yosys_json("", text).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("adder") && msg.contains("$add"), "{msg}");
    }

    #[test]
    fn constant_pins_are_rejected() {
        let text = r#"{
          "modules": { "m": {
            "ports": { "y": { "direction": "output", "bits": [3] } },
            "cells": {
              "g": { "type": "$_NOT_", "connections": { "A": ["1"], "Y": [3] } }
            }
          } }
        }"#;
        let err = parse_yosys_json("", text).unwrap_err();
        assert!(err.to_string().contains("constant"), "{err}");
    }

    #[test]
    fn ambiguous_multi_module_designs_need_a_top() {
        let one = r#"{ "ports": {}, "cells": {} }"#;
        let text = format!(r#"{{ "modules": {{ "m1": {one}, "m2": {one} }} }}"#);
        let err = parse_yosys_json("", &text).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("m1") && msg.contains("m2"), "{msg}");
        // Marking one top resolves it.
        let text = format!(
            r#"{{ "modules": {{ "m1": {one},
                 "m2": {{ "attributes": {{ "top": "00000001" }}, "ports": {{}}, "cells": {{}} }} }} }}"#
        );
        let raw = parse_yosys_json("", &text).unwrap();
        assert_eq!(raw.name, "m2");
    }

    #[test]
    fn structural_problems_surface_as_circuit_errors() {
        // Two drivers on bit 3.
        let text = r#"{
          "modules": { "m": {
            "ports": {
              "a": { "direction": "input",  "bits": [2] },
              "y": { "direction": "output", "bits": [3] }
            },
            "cells": {
              "g1": { "type": "$_NOT_", "connections": { "A": [2], "Y": [3] } },
              "g2": { "type": "$_BUF_", "connections": { "A": [2], "Y": [3] } }
            },
            "netnames": { "y": { "bits": [3] } }
          } }
        }"#;
        assert!(matches!(parse_yosys_json("", text), Err(CircuitError::MultipleDrivers { .. })));
    }
}
