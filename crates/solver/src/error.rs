//! Solver error types.

use std::error::Error;
use std::fmt;

/// Errors produced by the numerical kernels and the DC solver.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// The Jacobian (or a linear system) was numerically singular.
    SingularMatrix {
        /// Pivot column where elimination broke down.
        pivot: usize,
    },
    /// Newton iteration did not reach the residual tolerance.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final residual infinity-norm \[A\].
        residual: f64,
    },
    /// A scalar root could not be bracketed within the search interval.
    BracketFailure {
        /// Lower end of the searched interval.
        lo: f64,
        /// Upper end of the searched interval.
        hi: f64,
    },
    /// The problem was malformed (e.g. zero unknowns where some are
    /// required, or mismatched dimensions).
    BadProblem(String),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::SingularMatrix { pivot } => {
                write!(f, "singular matrix at pivot column {pivot}")
            }
            SolverError::NoConvergence { iterations, residual } => write!(
                f,
                "newton iteration did not converge after {iterations} iterations \
                 (residual {residual:.3e} A)"
            ),
            SolverError::BracketFailure { lo, hi } => {
                write!(f, "no sign change found in [{lo}, {hi}]")
            }
            SolverError::BadProblem(msg) => write!(f, "malformed problem: {msg}"),
        }
    }
}

impl Error for SolverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SolverError::NoConvergence { iterations: 12, residual: 3.2e-9 };
        let s = e.to_string();
        assert!(s.contains("12"));
        assert!(s.contains("newton"));
        let e = SolverError::SingularMatrix { pivot: 3 };
        assert!(e.to_string().contains("pivot column 3"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(SolverError::BadProblem("x".into()));
    }
}
