//! Dense linear algebra: LU factorization with partial pivoting.
//!
//! The offline dependency set has no linear-algebra crate, and the
//! systems solved here are tiny (a handful of circuit nodes per standard
//! cell), so a straightforward dense LU is both sufficient and fast.

use crate::error::SolverError;

/// Solves `A x = b` in place for a dense row-major `n x n` matrix.
///
/// `a` is overwritten with its LU factors and `b` with the solution.
///
/// # Errors
/// Returns [`SolverError::SingularMatrix`] when no usable pivot exists,
/// and [`SolverError::BadProblem`] on dimension mismatch.
///
/// # Examples
/// ```
/// let mut a = vec![2.0, 1.0, 1.0, 3.0];
/// let mut b = vec![3.0, 5.0];
/// nanoleak_solver::linear::lu_solve(&mut a, &mut b).unwrap();
/// assert!((b[0] - 0.8).abs() < 1e-12);
/// assert!((b[1] - 1.4).abs() < 1e-12);
/// ```
pub fn lu_solve(a: &mut [f64], b: &mut [f64]) -> Result<(), SolverError> {
    let n = b.len();
    if a.len() != n * n {
        return Err(SolverError::BadProblem(format!(
            "matrix is {} elements, expected {}",
            a.len(),
            n * n
        )));
    }
    // Forward elimination with partial pivoting.
    for col in 0..n {
        // Pivot search.
        let mut piv = col;
        let mut best = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > best {
                best = v;
                piv = row;
            }
        }
        if best == 0.0 || !best.is_finite() {
            return Err(SolverError::SingularMatrix { pivot: col });
        }
        if piv != col {
            for k in 0..n {
                a.swap(col * n + k, piv * n + k);
            }
            b.swap(col, piv);
        }
        let diag = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            a[row * n + col] = 0.0;
            for k in (col + 1)..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * b[k];
        }
        b[row] = acc / a[row * n + row];
    }
    Ok(())
}

/// Factors `a` in place into `P·A = L·U` with partial pivoting,
/// recording the row swaps in `piv` (one entry per column: the row
/// swapped into that column's pivot position).
///
/// Pair with [`lu_backsolve`] to reuse one factorization across many
/// right-hand sides — the sensitivity extraction solves the same
/// Jacobian once per perturbation axis.
///
/// Elimination order, pivot choice, and arithmetic are identical to
/// [`lu_solve`], so `lu_factor` + `lu_backsolve` reproduces its
/// solutions bit-for-bit.
///
/// # Errors
/// As [`lu_solve`].
pub fn lu_factor(a: &mut [f64], piv: &mut Vec<usize>) -> Result<(), SolverError> {
    let n2 = a.len();
    let n = (n2 as f64).sqrt() as usize;
    if n * n != n2 {
        return Err(SolverError::BadProblem(format!("matrix is {n2} elements, not square")));
    }
    piv.clear();
    piv.reserve(n);
    for col in 0..n {
        let mut p = col;
        let mut best = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > best {
                best = v;
                p = row;
            }
        }
        if best == 0.0 || !best.is_finite() {
            return Err(SolverError::SingularMatrix { pivot: col });
        }
        piv.push(p);
        if p != col {
            for k in 0..n {
                a.swap(col * n + k, p * n + k);
            }
        }
        let diag = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / diag;
            // Store the multiplier where lu_solve writes a zero; the
            // backsolve replays the same `b` updates from it.
            a[row * n + col] = factor;
            if factor == 0.0 {
                continue;
            }
            for k in (col + 1)..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
        }
    }
    Ok(())
}

/// Solves `A x = b` in place from factors produced by [`lu_factor`],
/// overwriting `b` with the solution. Bit-identical to [`lu_solve`]
/// on the same system.
///
/// # Errors
/// [`SolverError::BadProblem`] on dimension mismatch with the factors.
pub fn lu_backsolve(a: &[f64], piv: &[usize], b: &mut [f64]) -> Result<(), SolverError> {
    let n = b.len();
    if a.len() != n * n || piv.len() != n {
        return Err(SolverError::BadProblem(format!(
            "factors are {} elements / {} pivots, expected {} / {n}",
            a.len(),
            piv.len(),
            n * n
        )));
    }
    // Apply every row swap to b first, then forward-substitute with
    // the final multipliers. lu_solve interleaves swaps and updates,
    // but a swap at column c' only permutes rows > c' — rows whose
    // column-c multipliers were swapped along with them — so the two
    // orderings pair exactly the same operand values and the results
    // are bit-identical.
    for (col, &p) in piv.iter().enumerate() {
        if p != col {
            b.swap(col, p);
        }
    }
    for col in 0..n {
        for row in (col + 1)..n {
            let factor = a[row * n + col];
            if factor == 0.0 {
                continue;
            }
            b[row] -= factor * b[col];
        }
    }
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * b[k];
        }
        b[row] = acc / a[row * n + row];
    }
    Ok(())
}

/// Infinity norm of a vector.
#[inline]
pub fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_returns_rhs() {
        let mut a = vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let mut b = vec![4.0, -2.0, 7.0];
        lu_solve(&mut a, &mut b).unwrap();
        assert_eq!(b, vec![4.0, -2.0, 7.0]);
    }

    #[test]
    fn requires_pivoting() {
        // Zero on the initial diagonal forces a row swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![2.0, 3.0];
        lu_solve(&mut a, &mut b).unwrap();
        assert!((b[0] - 3.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert!(matches!(lu_solve(&mut a, &mut b), Err(SolverError::SingularMatrix { .. })));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let mut a = vec![1.0; 5];
        let mut b = vec![1.0, 2.0];
        assert!(matches!(lu_solve(&mut a, &mut b), Err(SolverError::BadProblem(_))));
    }

    #[test]
    fn solves_badly_scaled_conductance_system() {
        // Conductances spanning 9 decades, like a gate leakage network:
        // [1e-3, -1e-3; -1e-3, 1e-3 + 1e-12] x = [1e-9, 0].
        let g1 = 1e-3;
        let g2 = 1e-12;
        let mut a = vec![g1, -g1, -g1, g1 + g2];
        let mut b = vec![1e-9, 0.0];
        lu_solve(&mut a, &mut b).unwrap();
        // x2 = 1e-9/g2 = 1000 V, x1 = x2 + 1e-9/g1. Forming g1 + g2 and
        // cancelling g1 during elimination loses ~9 digits, so ~1e-6
        // relative accuracy is the honest expectation here.
        assert!((b[1] - 1000.0).abs() / 1000.0 < 1e-5);
        assert!(((b[0] - b[1]) / 1e-6 - 1.0).abs() < 1e-2);
    }

    #[test]
    fn random_matrices_round_trip() {
        // Deterministic pseudo-random fill; validate A*x == b.
        let n = 8;
        let mut seed = 0x12345678_u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..20 {
            let a: Vec<f64> = (0..n * n).map(|_| rnd()).collect();
            let x_true: Vec<f64> = (0..n).map(|_| rnd()).collect();
            let mut b = vec![0.0; n];
            for i in 0..n {
                for j in 0..n {
                    b[i] += a[i * n + j] * x_true[j];
                }
            }
            let mut a_work = a.clone();
            lu_solve(&mut a_work, &mut b).unwrap();
            for i in 0..n {
                assert!((b[i] - x_true[i]).abs() < 1e-8, "component {i} off");
            }
        }
    }

    #[test]
    fn factor_backsolve_matches_lu_solve_bitwise() {
        let n = 6;
        let mut seed = 0xfeedbeef_u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..16 {
            let a: Vec<f64> = (0..n * n).map(|_| rnd()).collect();
            let b: Vec<f64> = (0..n).map(|_| rnd()).collect();
            let (mut a1, mut b1) = (a.clone(), b.clone());
            lu_solve(&mut a1, &mut b1).unwrap();
            let mut a2 = a.clone();
            let mut piv = Vec::new();
            lu_factor(&mut a2, &mut piv).unwrap();
            let mut b2 = b.clone();
            lu_backsolve(&a2, &piv, &mut b2).unwrap();
            for i in 0..n {
                assert_eq!(b1[i].to_bits(), b2[i].to_bits(), "component {i}");
            }
            // The factorization is reusable: a second RHS solves too.
            let c: Vec<f64> = (0..n).map(|_| rnd()).collect();
            let (mut a3, mut c1) = (a.clone(), c.clone());
            lu_solve(&mut a3, &mut c1).unwrap();
            let mut c2 = c.clone();
            lu_backsolve(&a2, &piv, &mut c2).unwrap();
            for i in 0..n {
                assert_eq!(c1[i].to_bits(), c2[i].to_bits(), "reused factors, component {i}");
            }
        }
    }

    #[test]
    fn factor_rejects_singular_and_nonsquare() {
        let mut piv = Vec::new();
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(matches!(lu_factor(&mut a, &mut piv), Err(SolverError::SingularMatrix { .. })));
        let mut a = vec![1.0; 5];
        assert!(matches!(lu_factor(&mut a, &mut piv), Err(SolverError::BadProblem(_))));
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let mut b = vec![1.0];
        assert!(matches!(lu_backsolve(&a, &[0, 1], &mut b), Err(SolverError::BadProblem(_))));
    }

    #[test]
    fn inf_norm_basics() {
        assert_eq!(inf_norm(&[]), 0.0);
        assert_eq!(inf_norm(&[-3.0, 2.0]), 3.0);
    }
}
