//! Dense linear algebra: LU factorization with partial pivoting.
//!
//! The offline dependency set has no linear-algebra crate, and the
//! systems solved here are tiny (a handful of circuit nodes per standard
//! cell), so a straightforward dense LU is both sufficient and fast.

use crate::error::SolverError;

/// Solves `A x = b` in place for a dense row-major `n x n` matrix.
///
/// `a` is overwritten with its LU factors and `b` with the solution.
///
/// # Errors
/// Returns [`SolverError::SingularMatrix`] when no usable pivot exists,
/// and [`SolverError::BadProblem`] on dimension mismatch.
///
/// # Examples
/// ```
/// let mut a = vec![2.0, 1.0, 1.0, 3.0];
/// let mut b = vec![3.0, 5.0];
/// nanoleak_solver::linear::lu_solve(&mut a, &mut b).unwrap();
/// assert!((b[0] - 0.8).abs() < 1e-12);
/// assert!((b[1] - 1.4).abs() < 1e-12);
/// ```
pub fn lu_solve(a: &mut [f64], b: &mut [f64]) -> Result<(), SolverError> {
    let n = b.len();
    if a.len() != n * n {
        return Err(SolverError::BadProblem(format!(
            "matrix is {} elements, expected {}",
            a.len(),
            n * n
        )));
    }
    // Forward elimination with partial pivoting.
    for col in 0..n {
        // Pivot search.
        let mut piv = col;
        let mut best = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > best {
                best = v;
                piv = row;
            }
        }
        if best == 0.0 || !best.is_finite() {
            return Err(SolverError::SingularMatrix { pivot: col });
        }
        if piv != col {
            for k in 0..n {
                a.swap(col * n + k, piv * n + k);
            }
            b.swap(col, piv);
        }
        let diag = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            a[row * n + col] = 0.0;
            for k in (col + 1)..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * b[k];
        }
        b[row] = acc / a[row * n + row];
    }
    Ok(())
}

/// Infinity norm of a vector.
#[inline]
pub fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_returns_rhs() {
        let mut a = vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let mut b = vec![4.0, -2.0, 7.0];
        lu_solve(&mut a, &mut b).unwrap();
        assert_eq!(b, vec![4.0, -2.0, 7.0]);
    }

    #[test]
    fn requires_pivoting() {
        // Zero on the initial diagonal forces a row swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![2.0, 3.0];
        lu_solve(&mut a, &mut b).unwrap();
        assert!((b[0] - 3.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert!(matches!(lu_solve(&mut a, &mut b), Err(SolverError::SingularMatrix { .. })));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let mut a = vec![1.0; 5];
        let mut b = vec![1.0, 2.0];
        assert!(matches!(lu_solve(&mut a, &mut b), Err(SolverError::BadProblem(_))));
    }

    #[test]
    fn solves_badly_scaled_conductance_system() {
        // Conductances spanning 9 decades, like a gate leakage network:
        // [1e-3, -1e-3; -1e-3, 1e-3 + 1e-12] x = [1e-9, 0].
        let g1 = 1e-3;
        let g2 = 1e-12;
        let mut a = vec![g1, -g1, -g1, g1 + g2];
        let mut b = vec![1e-9, 0.0];
        lu_solve(&mut a, &mut b).unwrap();
        // x2 = 1e-9/g2 = 1000 V, x1 = x2 + 1e-9/g1. Forming g1 + g2 and
        // cancelling g1 during elimination loses ~9 digits, so ~1e-6
        // relative accuracy is the honest expectation here.
        assert!((b[1] - 1000.0).abs() / 1000.0 < 1e-5);
        assert!(((b[0] - b[1]) / 1e-6 - 1.0).abs() < 1e-2);
    }

    #[test]
    fn random_matrices_round_trip() {
        // Deterministic pseudo-random fill; validate A*x == b.
        let n = 8;
        let mut seed = 0x12345678_u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..20 {
            let a: Vec<f64> = (0..n * n).map(|_| rnd()).collect();
            let x_true: Vec<f64> = (0..n).map(|_| rnd()).collect();
            let mut b = vec![0.0; n];
            for i in 0..n {
                for j in 0..n {
                    b[i] += a[i * n + j] * x_true[j];
                }
            }
            let mut a_work = a.clone();
            lu_solve(&mut a_work, &mut b).unwrap();
            for i in 0..n {
                assert!((b[i] - x_true[i]).abs() < 1e-8, "component {i} off");
            }
        }
    }

    #[test]
    fn inf_norm_basics() {
        assert_eq!(inf_norm(&[]), 0.0);
        assert_eq!(inf_norm(&[-3.0, 2.0]), 3.0);
    }
}
