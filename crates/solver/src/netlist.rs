//! Transistor-level netlist: nodes, MOS devices, rails, and current
//! injections.
//!
//! This is the "deck" the DC solver operates on. Standard cells build
//! one of these per topology; the characterization sweeps then vary the
//! node injections (loading currents) and rail values.

use nanoleak_device::Transistor;

/// Index of a circuit node within a [`MosNetlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A MOSFET instance: a [`Transistor`] plus its four node connections.
#[derive(Debug, Clone)]
pub struct Device {
    /// The transistor model.
    pub transistor: Transistor,
    /// Drain node.
    pub d: NodeId,
    /// Gate node.
    pub g: NodeId,
    /// Source node.
    pub s: NodeId,
    /// Bulk node.
    pub b: NodeId,
}

/// A transistor-level circuit for DC leakage analysis.
///
/// ```
/// use nanoleak_device::{DeviceDesign, MosKind, Transistor};
/// use nanoleak_solver::MosNetlist;
///
/// let mut nl = MosNetlist::new();
/// let vdd = nl.add_fixed_node("vdd", 0.9);
/// let gnd = nl.add_fixed_node("gnd", 0.0);
/// let vin = nl.add_fixed_node("in", 0.0);
/// let out = nl.add_node("out");
/// let n = Transistor::from_design(&DeviceDesign::nano25(MosKind::Nmos));
/// let p = Transistor::from_design(&DeviceDesign::nano25(MosKind::Pmos));
/// nl.add_mos(n, out, vin, gnd, gnd);
/// nl.add_mos(p, out, vin, vdd, vdd);
/// assert_eq!(nl.unknown_nodes(), vec![out]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MosNetlist {
    names: Vec<String>,
    fixed: Vec<Option<f64>>,
    injections: Vec<f64>,
    devices: Vec<Device>,
}

impl MosNetlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a floating (unknown-voltage) node.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        self.names.push(name.to_string());
        self.fixed.push(None);
        self.injections.push(0.0);
        NodeId(self.names.len() - 1)
    }

    /// Adds a node pinned to a rail/source voltage.
    pub fn add_fixed_node(&mut self, name: &str, volts: f64) -> NodeId {
        let id = self.add_node(name);
        self.fixed[id.0] = Some(volts);
        id
    }

    /// Pins an existing node to a voltage (or re-pins a rail).
    ///
    /// # Panics
    /// Panics if the node is out of range.
    pub fn fix(&mut self, node: NodeId, volts: f64) {
        self.fixed[node.0] = Some(volts);
    }

    /// Releases a pinned node back to unknown.
    pub fn unfix(&mut self, node: NodeId) {
        self.fixed[node.0] = None;
    }

    /// Sets the external current injected *into* the node \[A\]
    /// (replaces any previous injection). This is how loading currents
    /// are applied during characterization.
    pub fn set_injection(&mut self, node: NodeId, amps: f64) {
        self.injections[node.0] = amps;
    }

    /// The current injected into a node \[A\].
    pub fn injection(&self, node: NodeId) -> f64 {
        self.injections[node.0]
    }

    /// Clears all injections.
    pub fn clear_injections(&mut self) {
        self.injections.iter_mut().for_each(|i| *i = 0.0);
    }

    /// Adds a MOSFET; returns its device index.
    pub fn add_mos(
        &mut self,
        transistor: Transistor,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
    ) -> usize {
        let max = [d, g, s, b].into_iter().map(|n| n.0).max().unwrap_or(0);
        assert!(max < self.names.len(), "device references node {max} which does not exist");
        self.devices.push(Device { transistor, d, g, s, b });
        self.devices.len() - 1
    }

    /// Number of nodes (fixed + unknown).
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The devices, in insertion order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Mutable device access (e.g. for per-sample process perturbation).
    pub fn devices_mut(&mut self) -> &mut [Device] {
        &mut self.devices
    }

    /// The node's name.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.names[node.0]
    }

    /// The node's pinned voltage, if fixed.
    pub fn fixed_voltage(&self, node: NodeId) -> Option<f64> {
        self.fixed[node.0]
    }

    /// `true` if the node is pinned.
    pub fn is_fixed(&self, node: NodeId) -> bool {
        self.fixed[node.0].is_some()
    }

    /// All unknown (floating) nodes, in index order.
    pub fn unknown_nodes(&self) -> Vec<NodeId> {
        (0..self.names.len()).filter(|&i| self.fixed[i].is_none()).map(NodeId).collect()
    }

    /// Looks a node up by name (linear scan; netlists here are tiny).
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.names.iter().position(|n| n == name).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_device::{DeviceDesign, MosKind};

    fn t() -> Transistor {
        Transistor::from_design(&DeviceDesign::nano25(MosKind::Nmos))
    }

    #[test]
    fn node_bookkeeping() {
        let mut nl = MosNetlist::new();
        let a = nl.add_node("a");
        let b = nl.add_fixed_node("b", 0.9);
        assert_eq!(nl.node_count(), 2);
        assert!(!nl.is_fixed(a));
        assert!(nl.is_fixed(b));
        assert_eq!(nl.fixed_voltage(b), Some(0.9));
        assert_eq!(nl.unknown_nodes(), vec![a]);
        assert_eq!(nl.find_node("b"), Some(b));
        assert_eq!(nl.find_node("zz"), None);
    }

    #[test]
    fn fix_and_unfix() {
        let mut nl = MosNetlist::new();
        let a = nl.add_node("a");
        nl.fix(a, 0.45);
        assert_eq!(nl.fixed_voltage(a), Some(0.45));
        nl.unfix(a);
        assert!(!nl.is_fixed(a));
    }

    #[test]
    fn injections_set_and_clear() {
        let mut nl = MosNetlist::new();
        let a = nl.add_node("a");
        nl.set_injection(a, 2e-6);
        assert_eq!(nl.injection(a), 2e-6);
        nl.clear_injections();
        assert_eq!(nl.injection(a), 0.0);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn dangling_device_rejected() {
        let mut nl = MosNetlist::new();
        let a = nl.add_node("a");
        nl.add_mos(t(), a, a, a, NodeId(5));
    }
}
