//! Damped Newton–Raphson for small nonlinear KCL systems.
//!
//! The residual is the vector of node-current imbalances; the Jacobian
//! is formed by forward differences (the networks have at most a dozen
//! unknowns, so the `n+1` evaluations per iteration are cheap). Two
//! SPICE-style safeguards make the exponential device models tractable:
//! per-component step limiting (voltages move at most `max_step` per
//! iteration) and a backtracking line search on the residual norm.

use std::sync::OnceLock;

use nanoleak_obs::{global, Counter};

use crate::error::SolverError;
use crate::linear::{inf_norm, lu_backsolve, lu_factor, lu_solve};

/// Process-wide Newton telemetry (registered once, incremented per
/// solve; plain atomic adds, so safe from parallel sections).
struct NewtonMetrics {
    solves: Counter,
    failures: Counter,
    iterations: Counter,
}

fn metrics() -> &'static NewtonMetrics {
    static METRICS: OnceLock<NewtonMetrics> = OnceLock::new();
    METRICS.get_or_init(|| NewtonMetrics {
        solves: global()
            .counter("nanoleak_solver_newton_solves_total", "Completed Newton solves (converged)"),
        failures: global().counter(
            "nanoleak_solver_newton_failures_total",
            "Newton solves that failed to converge or degenerated",
        ),
        iterations: global().counter(
            "nanoleak_solver_newton_iterations_total",
            "Newton iterations summed over all solves",
        ),
    })
}

/// Counts one finished solve in the global registry.
fn count_solve(iterations: usize, converged: bool) {
    let m = metrics();
    m.iterations.add(iterations as u64);
    if converged {
        m.solves.inc();
    } else {
        m.failures.inc();
    }
}

/// Options controlling the Newton iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum Newton iterations.
    pub max_iter: usize,
    /// Residual infinity-norm tolerance \[A\].
    pub tol_residual: f64,
    /// Step infinity-norm below which the iteration is declared
    /// stationary (and accepted if the residual is loose-tolerable).
    pub tol_step: f64,
    /// Per-component voltage step limit \[V\].
    pub max_step: f64,
    /// Forward-difference step for the Jacobian \[V\].
    pub jacobian_step: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self {
            max_iter: 120,
            tol_residual: 1e-15,
            tol_step: 1e-13,
            max_step: 0.12,
            jacobian_step: 2e-7,
        }
    }
}

/// Convergence statistics of a successful solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonStats {
    /// Newton iterations performed.
    pub iterations: usize,
    /// Final residual infinity-norm \[A\].
    pub residual: f64,
}

/// Solves `residual(x) = 0`, updating `x` in place.
///
/// `residual(x, f)` must write the residual for state `x` into `f`.
///
/// # Errors
/// [`SolverError::NoConvergence`] if the tolerance is not met within
/// `max_iter` iterations, [`SolverError::SingularMatrix`] if the
/// Jacobian degenerates, [`SolverError::BadProblem`] for a zero-length
/// state.
///
/// # Examples
/// ```
/// // Solve x^2 = 4, y = x (two coupled equations).
/// let mut x = vec![1.0, 0.0];
/// let stats = nanoleak_solver::newton::solve(
///     |x, f| {
///         f[0] = x[0] * x[0] - 4.0;
///         f[1] = x[1] - x[0];
///     },
///     &mut x,
///     &nanoleak_solver::NewtonOptions { max_step: 10.0, ..Default::default() },
/// )?;
/// assert!((x[0] - 2.0).abs() < 1e-9);
/// assert!(stats.iterations > 0);
/// # Ok::<(), nanoleak_solver::SolverError>(())
/// ```
pub fn solve<F>(
    residual: F,
    x: &mut [f64],
    opts: &NewtonOptions,
) -> Result<NewtonStats, SolverError>
where
    F: Fn(&[f64], &mut [f64]),
{
    let result = solve_inner(residual, x, opts);
    match &result {
        Ok(stats) => count_solve(stats.iterations, true),
        Err(SolverError::NoConvergence { iterations, .. }) => count_solve(*iterations, false),
        Err(_) => count_solve(0, false),
    }
    result
}

/// The Newton Jacobian at a converged solution, LU-factored for reuse
/// across many right-hand sides.
///
/// Sensitivity extraction solves `J dv = -∂f/∂p · h` once per
/// perturbation axis; factoring `J` a single time makes each axis one
/// O(n²) backsolve instead of an O(n³) refactorization.
#[derive(Debug, Clone)]
pub struct FactoredJacobian {
    lu: Vec<f64>,
    piv: Vec<usize>,
    n: usize,
}

impl FactoredJacobian {
    /// System dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `J x = b` in place against the factored Jacobian.
    ///
    /// # Errors
    /// [`SolverError::BadProblem`] if `b.len() != dim()`.
    pub fn solve(&self, b: &mut [f64]) -> Result<(), SolverError> {
        lu_backsolve(&self.lu, &self.piv, b)
    }
}

/// [`solve`], additionally returning the forward-difference Jacobian
/// at the solution point, LU-factored.
///
/// The returned `x` is **bit-identical** to a plain [`solve`] of the
/// same problem: the iteration runs unchanged and the Jacobian is
/// built afterwards from a fresh forward-difference sweep around the
/// converged state (the in-loop Jacobian is consumed by `lu_solve` and
/// is one iteration stale anyway).
///
/// # Errors
/// As [`solve`], plus [`SolverError::SingularMatrix`] if the Jacobian
/// at the solution cannot be factored.
pub fn solve_traced<F>(
    residual: F,
    x: &mut [f64],
    opts: &NewtonOptions,
) -> Result<(NewtonStats, FactoredJacobian), SolverError>
where
    F: Fn(&[f64], &mut [f64]),
{
    let stats = solve(&residual, x, opts)?;
    let n = x.len();
    let mut f = vec![0.0; n];
    let mut f_trial = vec![0.0; n];
    let mut jac = vec![0.0; n * n];
    let mut x_pert = vec![0.0; n];
    residual(x, &mut f);
    x_pert.copy_from_slice(x);
    for j in 0..n {
        let h = opts.jacobian_step * (1.0 + x[j].abs());
        x_pert[j] = x[j] + h;
        residual(&x_pert, &mut f_trial);
        for i in 0..n {
            jac[i * n + j] = (f_trial[i] - f[i]) / h;
        }
        x_pert[j] = x[j];
    }
    let mut piv = Vec::new();
    lu_factor(&mut jac, &mut piv)?;
    Ok((stats, FactoredJacobian { lu: jac, piv, n }))
}

fn solve_inner<F>(
    residual: F,
    x: &mut [f64],
    opts: &NewtonOptions,
) -> Result<NewtonStats, SolverError>
where
    F: Fn(&[f64], &mut [f64]),
{
    let n = x.len();
    if n == 0 {
        return Err(SolverError::BadProblem("zero unknowns".to_string()));
    }
    let mut f = vec![0.0; n];
    let mut f_trial = vec![0.0; n];
    let mut jac = vec![0.0; n * n];
    let mut dx = vec![0.0; n];
    let mut x_pert = vec![0.0; n];
    let mut x_trial = vec![0.0; n];

    residual(x, &mut f);
    let mut fnorm = inf_norm(&f);

    for iter in 0..opts.max_iter {
        if fnorm <= opts.tol_residual {
            return Ok(NewtonStats { iterations: iter, residual: fnorm });
        }
        // Forward-difference Jacobian.
        x_pert.copy_from_slice(x);
        for j in 0..n {
            let h = opts.jacobian_step * (1.0 + x[j].abs());
            x_pert[j] = x[j] + h;
            residual(&x_pert, &mut f_trial);
            for i in 0..n {
                jac[i * n + j] = (f_trial[i] - f[i]) / h;
            }
            x_pert[j] = x[j];
        }
        // Newton direction: J dx = -f.
        dx.copy_from_slice(&f);
        for v in dx.iter_mut() {
            *v = -*v;
        }
        lu_solve(&mut jac, &mut dx)?;
        // Per-component voltage limiting.
        let dmax = inf_norm(&dx);
        if dmax > opts.max_step {
            let scale = opts.max_step / dmax;
            for v in dx.iter_mut() {
                *v *= scale;
            }
        }
        // Backtracking line search: accept the first step that reduces
        // the residual norm; fall back to the smallest step otherwise
        // (keeps progress on the stiff exponentials).
        let mut alpha = 1.0;
        let mut accepted = false;
        for _ in 0..8 {
            for i in 0..n {
                x_trial[i] = x[i] + alpha * dx[i];
            }
            residual(&x_trial, &mut f_trial);
            let trial_norm = inf_norm(&f_trial);
            if trial_norm < fnorm {
                x.copy_from_slice(&x_trial);
                f.copy_from_slice(&f_trial);
                fnorm = trial_norm;
                accepted = true;
                break;
            }
            alpha *= 0.5;
        }
        if !accepted {
            // Take the tiny step anyway; if it is truly stationary and
            // the residual is still large, report failure below.
            for i in 0..n {
                x[i] += alpha * dx[i];
            }
            residual(x, &mut f);
            fnorm = inf_norm(&f);
            if inf_norm(&dx) * alpha < opts.tol_step {
                break;
            }
        }
        if inf_norm(&dx).min(dmax) < opts.tol_step && fnorm <= opts.tol_residual.max(1e-12) {
            return Ok(NewtonStats { iterations: iter + 1, residual: fnorm });
        }
    }
    if fnorm <= opts.tol_residual.max(1e-12) {
        // Accept a slightly loose stall: 1e-12 A is far below the nA
        // leakage scale of interest.
        return Ok(NewtonStats { iterations: opts.max_iter, residual: fnorm });
    }
    Err(SolverError::NoConvergence { iterations: opts.max_iter, residual: fnorm })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_system_in_one_iteration_family() {
        // f(x) = A x - b with A = [[2, 1], [1, 3]].
        let mut x = vec![0.0, 0.0];
        let stats = solve(
            |x, f| {
                f[0] = 2.0 * x[0] + x[1] - 3.0;
                f[1] = x[0] + 3.0 * x[1] - 5.0;
            },
            &mut x,
            &NewtonOptions { max_step: 100.0, ..Default::default() },
        )
        .unwrap();
        assert!((x[0] - 0.8).abs() < 1e-9, "{x:?} after {stats:?}");
        assert!((x[1] - 1.4).abs() < 1e-9);
    }

    #[test]
    fn stiff_exponential_diode_divider() {
        // Node between a 1k resistor to 1 V and a diode to ground:
        // (v - 1)/1000 + 1e-14 (exp(v/0.02585) - 1) = 0.
        let vt = 0.02585;
        let mut x = vec![0.5];
        solve(
            |x, f| {
                f[0] = (x[0] - 1.0) / 1000.0 + 1e-14 * ((x[0] / vt).min(40.0).exp() - 1.0);
            },
            &mut x,
            &NewtonOptions::default(),
        )
        .unwrap();
        let v = x[0];
        // Diode drop ~0.55-0.65 V at ~0.4 mA.
        assert!(v > 0.5 && v < 0.7, "v = {v}");
        let res = (v - 1.0) / 1000.0 + 1e-14 * ((v / vt).exp() - 1.0);
        assert!(res.abs() < 1e-12, "residual = {res:e}");
    }

    #[test]
    fn nanoamp_scale_system_meets_tight_tolerance() {
        // Current balance at nA scale: g1 (v - 0.9) + g2 v = 3 nA.
        let g1 = 1e-6;
        let g2 = 5e-7;
        let mut x = vec![0.0];
        let stats = solve(
            |x, f| {
                f[0] = g1 * (x[0] - 0.9) + g2 * x[0] - 3e-9;
            },
            &mut x,
            &NewtonOptions::default(),
        )
        .unwrap();
        assert!(stats.residual <= 1e-15);
        let expect = (g1 * 0.9 + 3e-9) / (g1 + g2);
        assert!((x[0] - expect).abs() < 1e-9);
    }

    #[test]
    fn no_convergence_is_reported() {
        // f(x) = 1 (no root).
        let mut x = vec![0.0];
        let err = solve(|_, f| f[0] = 1.0, &mut x, &NewtonOptions::default());
        assert!(matches!(
            err,
            Err(SolverError::SingularMatrix { .. }) | Err(SolverError::NoConvergence { .. })
        ));
    }

    #[test]
    fn zero_unknowns_rejected() {
        let mut x: Vec<f64> = vec![];
        assert!(matches!(
            solve(|_, _| {}, &mut x, &NewtonOptions::default()),
            Err(SolverError::BadProblem(_))
        ));
    }

    #[test]
    fn traced_solve_is_bit_identical_and_jacobian_inverts() {
        // Same stiff diode divider as above: the traced variant must
        // land on the exact same bits, and its factored Jacobian must
        // predict the response to a small source perturbation.
        let vt = 0.02585;
        let residual = |x: &[f64], f: &mut [f64]| {
            f[0] = (x[0] - 1.0) / 1000.0 + 1e-14 * ((x[0] / vt).min(40.0).exp() - 1.0);
        };
        let mut plain = vec![0.5];
        solve(residual, &mut plain, &NewtonOptions::default()).unwrap();
        let mut traced = vec![0.5];
        let (_, jac) = solve_traced(residual, &mut traced, &NewtonOptions::default()).unwrap();
        assert_eq!(plain[0].to_bits(), traced[0].to_bits());
        assert_eq!(jac.dim(), 1);
        // Raising the source to 1.001 V shifts the node by dv where
        // J dv = -∂f/∂p · dp = 1e-3/1000.
        let mut dv = vec![1e-3 / 1000.0];
        jac.solve(&mut dv).unwrap();
        let mut exact = vec![0.5];
        let shifted = |x: &[f64], f: &mut [f64]| {
            f[0] = (x[0] - 1.001) / 1000.0 + 1e-14 * ((x[0] / vt).min(40.0).exp() - 1.0);
        };
        solve(shifted, &mut exact, &NewtonOptions::default()).unwrap();
        let predicted = traced[0] + dv[0];
        assert!((predicted - exact[0]).abs() < 1e-6, "predicted {predicted}, exact {}", exact[0]);
    }

    #[test]
    fn step_limiting_tames_wild_starts() {
        // Start far away on a cubic; unlimited Newton would overshoot
        // through the inflection.
        let mut x = vec![50.0];
        solve(
            |x, f| f[0] = x[0] * x[0] * x[0] - 8.0,
            &mut x,
            &NewtonOptions { max_step: 5.0, max_iter: 400, ..Default::default() },
        )
        .unwrap();
        assert!((x[0] - 2.0).abs() < 1e-7);
    }
}
