//! # nanoleak-solver
//!
//! DC operating-point solver for transistor-level leakage networks —
//! the "virtual SPICE" of the *nanoleak* reproduction of the DATE 2005
//! loading-effect paper.
//!
//! The paper validates its fast estimation algorithm against HSPICE.
//! Here, that golden role is played by a nonlinear DC solve over the
//! same compact models in [`nanoleak_device`]:
//!
//! * [`linear`] — dense LU with partial pivoting (no external
//!   linear-algebra crate is available in the offline set);
//! * [`newton`] — damped Newton–Raphson with numerical Jacobian,
//!   SPICE-style voltage limiting, and a backtracking line search;
//! * [`scalar`] — bracketed Brent root finding, used by the
//!   circuit-level net relaxation in `nanoleak-core`;
//! * [`netlist`] / [`dc`] — transistor netlists and the operating-point
//!   solve returning per-device leakage breakdowns.
//!
//! ## Example: leakage of an inverter
//!
//! ```
//! use nanoleak_device::{Technology, Transistor};
//! use nanoleak_solver::{solve_dc, MosNetlist, NewtonOptions};
//!
//! let tech = Technology::d25();
//! let mut nl = MosNetlist::new();
//! let vdd = nl.add_fixed_node("vdd", tech.vdd);
//! let gnd = nl.add_fixed_node("gnd", 0.0);
//! let vin = nl.add_fixed_node("in", 0.0);
//! let out = nl.add_node("out");
//! nl.add_mos(Transistor::from_design(&tech.nmos), out, vin, gnd, gnd);
//! nl.add_mos(Transistor::from_design(&tech.pmos), out, vin, vdd, vdd);
//!
//! let sol = solve_dc(&nl, 300.0, None, &NewtonOptions::default())?;
//! assert!(sol.node_voltage(out) > 0.88); // logic 1, minus leakage droop
//! assert!(sol.total_breakdown().total() > 0.0);
//! # Ok::<(), nanoleak_solver::SolverError>(())
//! ```

pub mod dc;
pub mod error;
pub mod linear;
pub mod netlist;
pub mod newton;
pub mod scalar;

pub use dc::{dc_evaluate_at, dc_residual_at, solve_dc, solve_dc_traced, DcSolution, DcTrace};
pub use error::SolverError;
pub use netlist::{Device, MosNetlist, NodeId};
pub use newton::{FactoredJacobian, NewtonOptions, NewtonStats};
pub use scalar::{brent, solve_bracketed, ScalarOptions};

#[cfg(test)]
mod proptests {
    use super::*;
    use nanoleak_device::{Technology, Transistor};
    use proptest::prelude::*;

    fn inverter(vin: f64) -> (MosNetlist, NodeId) {
        let tech = Technology::d25();
        let mut nl = MosNetlist::new();
        let vdd = nl.add_fixed_node("vdd", tech.vdd);
        let gnd = nl.add_fixed_node("gnd", 0.0);
        let input = nl.add_fixed_node("in", vin);
        let out = nl.add_node("out");
        nl.add_mos(Transistor::from_design(&tech.nmos), out, input, gnd, gnd);
        nl.add_mos(Transistor::from_design(&tech.pmos), out, input, vdd, vdd);
        (nl, out)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The solved operating point satisfies KCL for any input level
        /// and any loading injection in the paper's sweep range.
        #[test]
        fn solved_points_satisfy_kcl(
            vin in 0.0f64..=0.9,
            inj_na in -3000.0f64..=3000.0,
        ) {
            let (mut nl, out) = inverter(vin);
            nl.set_injection(out, inj_na * 1e-9);
            let sol = solve_dc(&nl, 300.0, None, &NewtonOptions::default()).unwrap();
            prop_assert!(sol.kcl_residual(&nl) < 1e-13);
        }

        /// Output voltage is a monotone decreasing function of input
        /// voltage for the inverter (DC transfer curve sanity).
        #[test]
        fn inverter_transfer_monotone(vin in 0.0f64..=0.88) {
            let (nl_a, out_a) = inverter(vin);
            let (nl_b, out_b) = inverter(vin + 0.02);
            let va = solve_dc(&nl_a, 300.0, None, &NewtonOptions::default())
                .unwrap().node_voltage(out_a);
            let vb = solve_dc(&nl_b, 300.0, None, &NewtonOptions::default())
                .unwrap().node_voltage(out_b);
            prop_assert!(vb <= va + 1e-6, "V({}) = {va}, V({}) = {vb}", vin, vin + 0.02);
        }

        /// Voltages stay within a whisker of the rails under any
        /// realistic loading.
        #[test]
        fn node_voltages_stay_physical(
            vin in prop_oneof![Just(0.0), Just(0.9)],
            inj_na in -3000.0f64..=3000.0,
        ) {
            let (mut nl, out) = inverter(vin);
            nl.set_injection(out, inj_na * 1e-9);
            let sol = solve_dc(&nl, 300.0, None, &NewtonOptions::default()).unwrap();
            let v = sol.node_voltage(out);
            prop_assert!(v > -0.1 && v < 1.0, "Vout = {v}");
        }
    }
}
