//! Robust scalar root finding (bracket expansion + Brent's method).
//!
//! The circuit-level reference simulator relaxes one net voltage at a
//! time: each net's KCL is a scalar equation whose residual is
//! monotone-ish but very stiff (exponential device currents). Brent's
//! method gives guaranteed convergence once a sign change is bracketed.

use crate::error::SolverError;

/// Options for [`brent`] and [`solve_bracketed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarOptions {
    /// Absolute x tolerance \[V\].
    pub tol_x: f64,
    /// Absolute residual tolerance \[A\].
    pub tol_f: f64,
    /// Maximum iterations.
    pub max_iter: usize,
}

impl Default for ScalarOptions {
    fn default() -> Self {
        Self { tol_x: 1e-12, tol_f: 1e-16, max_iter: 200 }
    }
}

/// Finds a root of `f` in `[a, b]`, which must bracket a sign change.
///
/// # Errors
/// [`SolverError::BracketFailure`] if `f(a)` and `f(b)` have the same
/// sign; [`SolverError::NoConvergence`] if tolerances are not met.
pub fn brent<F>(mut f: F, a: f64, b: f64, opts: &ScalarOptions) -> Result<f64, SolverError>
where
    F: FnMut(f64) -> f64,
{
    let (mut xa, mut xb) = (a, b);
    let (mut fa, mut fb) = (f(xa), f(xb));
    if fa == 0.0 {
        return Ok(xa);
    }
    if fb == 0.0 {
        return Ok(xb);
    }
    if fa.signum() == fb.signum() {
        return Err(SolverError::BracketFailure { lo: a, hi: b });
    }
    let (mut xc, mut fc) = (xa, fa);
    let mut d = xb - xa;
    let mut e = d;
    for _ in 0..opts.max_iter {
        if fb.signum() == fc.signum() {
            xc = xa;
            fc = fa;
            d = xb - xa;
            e = d;
        }
        if fc.abs() < fb.abs() {
            xa = xb;
            xb = xc;
            xc = xa;
            fa = fb;
            fb = fc;
            fc = fa;
        }
        let tol1 = 2.0 * f64::EPSILON * xb.abs() + 0.5 * opts.tol_x;
        let xm = 0.5 * (xc - xb);
        if xm.abs() <= tol1 || fb.abs() <= opts.tol_f {
            return Ok(xb);
        }
        if e.abs() >= tol1 && fa.abs() > fb.abs() {
            // Attempt inverse quadratic interpolation / secant.
            let s = fb / fa;
            let (mut p, mut q);
            if xa == xc {
                p = 2.0 * xm * s;
                q = 1.0 - s;
            } else {
                let qq = fa / fc;
                let r = fb / fc;
                p = s * (2.0 * xm * qq * (qq - r) - (xb - xa) * (r - 1.0));
                q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
            }
            if p > 0.0 {
                q = -q;
            }
            p = p.abs();
            let min1 = 3.0 * xm * q - (tol1 * q).abs();
            let min2 = (e * q).abs();
            if 2.0 * p < min1.min(min2) {
                e = d;
                d = p / q;
            } else {
                d = xm;
                e = d;
            }
        } else {
            d = xm;
            e = d;
        }
        xa = xb;
        fa = fb;
        xb += if d.abs() > tol1 { d } else { tol1.copysign(xm) };
        fb = f(xb);
    }
    Err(SolverError::NoConvergence { iterations: opts.max_iter, residual: fb.abs() })
}

/// Finds a root of `f` near `x0`, expanding a bracket geometrically
/// within `[lo, hi]` first, then polishing with Brent.
///
/// Designed for net-voltage relaxation: `x0` is the current estimate,
/// `[lo, hi]` the physical rail window (slightly widened).
///
/// # Errors
/// [`SolverError::BracketFailure`] when no sign change exists in
/// `[lo, hi]`.
pub fn solve_bracketed<F>(
    mut f: F,
    x0: f64,
    lo: f64,
    hi: f64,
    opts: &ScalarOptions,
) -> Result<f64, SolverError>
where
    F: FnMut(f64) -> f64,
{
    if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) {
        return Err(SolverError::BadProblem(format!("empty interval [{lo}, {hi}]")));
    }
    let x0 = x0.clamp(lo, hi);
    let f0 = f(x0);
    if f0 == 0.0 {
        return Ok(x0);
    }
    // Expand around x0 until the sign changes.
    let mut step = 1e-4 * (hi - lo);
    let (mut a, mut b) = (x0, x0);
    let (mut fa, mut fb) = (f0, f0);
    for _ in 0..64 {
        let mut progressed = false;
        if a > lo {
            a = (a - step).max(lo);
            fa = f(a);
            progressed = true;
            if fa.signum() != f0.signum() || fa == 0.0 {
                return brent(f, a, if fb.signum() != fa.signum() { b } else { x0 }, opts);
            }
        }
        if b < hi {
            b = (b + step).min(hi);
            fb = f(b);
            progressed = true;
            if fb.signum() != f0.signum() || fb == 0.0 {
                return brent(f, if fa.signum() != fb.signum() { a } else { x0 }, b, opts);
            }
        }
        if !progressed {
            break;
        }
        step *= 2.0;
    }
    Err(SolverError::BracketFailure { lo, hi })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brent_finds_simple_root() {
        let r = brent(|x| x * x - 2.0, 0.0, 2.0, &ScalarOptions::default()).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn brent_rejects_unbracketed() {
        assert!(matches!(
            brent(|x| x * x + 1.0, -1.0, 1.0, &ScalarOptions::default()),
            Err(SolverError::BracketFailure { .. })
        ));
    }

    #[test]
    fn brent_handles_stiff_exponential() {
        // Diode-vs-resistor node equation (same as the Newton test).
        let vt = 0.02585;
        let r = brent(
            |v| (v - 1.0) / 1000.0 + 1e-14 * ((v / vt).min(40.0).exp() - 1.0),
            0.0,
            1.0,
            &ScalarOptions::default(),
        )
        .unwrap();
        assert!(r > 0.5 && r < 0.7, "v = {r}");
    }

    #[test]
    fn bracketed_expansion_from_interior_guess() {
        let r = solve_bracketed(|x| x - 0.33, 0.9, 0.0, 1.0, &ScalarOptions::default()).unwrap();
        assert!((r - 0.33).abs() < 1e-9);
    }

    #[test]
    fn bracketed_root_at_guess() {
        let r = solve_bracketed(|x| x - 0.5, 0.5, 0.0, 1.0, &ScalarOptions::default()).unwrap();
        assert_eq!(r, 0.5);
    }

    #[test]
    fn bracketed_fails_without_root() {
        assert!(matches!(
            solve_bracketed(|_| 1.0, 0.5, 0.0, 1.0, &ScalarOptions::default()),
            Err(SolverError::BracketFailure { .. })
        ));
    }

    #[test]
    fn bracketed_rejects_empty_interval() {
        assert!(matches!(
            solve_bracketed(|x| x, 0.0, 1.0, 0.0, &ScalarOptions::default()),
            Err(SolverError::BadProblem(_))
        ));
    }

    #[test]
    fn near_rail_roots_found() {
        // Root microscopically above the lower rail, as loading-effect
        // node voltages are.
        let r = solve_bracketed(|x| 1e-3 * (x - 0.0032), 0.0, 0.0, 1.0, &ScalarOptions::default())
            .unwrap();
        assert!((r - 0.0032).abs() < 1e-9);
    }
}
