//! DC operating-point solve: the "virtual SPICE" entry point.
//!
//! Finds the node voltages at which every floating node satisfies KCL
//! (device currents balance the external injections), then reports the
//! per-device leakage breakdowns at the solution. For leakage analysis
//! this *is* the SPICE run: there are no time constants, only the
//! nonlinear DC equilibrium.

use nanoleak_device::{Bias, LeakageBreakdown, TerminalCurrents};

use crate::error::SolverError;
use crate::netlist::{MosNetlist, NodeId};
use crate::newton::{self, NewtonOptions, NewtonStats};

/// A converged operating point with its leakage accounting.
#[derive(Debug, Clone)]
pub struct DcSolution {
    /// Voltage of every node (fixed and solved), by node index \[V\].
    pub voltages: Vec<f64>,
    /// KCL-ready terminal currents per device.
    pub device_currents: Vec<TerminalCurrents>,
    /// Leakage mechanism breakdown per device.
    pub device_breakdowns: Vec<LeakageBreakdown>,
    /// Newton convergence statistics.
    pub stats: NewtonStats,
}

impl DcSolution {
    /// Voltage of `node` \[V\].
    pub fn node_voltage(&self, node: NodeId) -> f64 {
        self.voltages[node.0]
    }

    /// Sum of the per-device breakdowns — the cell/circuit leakage in
    /// the paper's accounting (`I_total = I_sub + I_gate + I_btbt`).
    pub fn total_breakdown(&self) -> LeakageBreakdown {
        self.device_breakdowns.iter().fold(LeakageBreakdown::ZERO, |acc, b| acc + *b)
    }

    /// Net current flowing from `node` into device terminals \[A\] —
    /// e.g. the VDD rail current when called on the supply node.
    pub fn node_device_current(&self, netlist: &MosNetlist, node: NodeId) -> f64 {
        let mut total = 0.0;
        for (dev, tc) in netlist.devices().iter().zip(&self.device_currents) {
            if dev.d == node {
                total += tc.d;
            }
            if dev.g == node {
                total += tc.g;
            }
            if dev.s == node {
                total += tc.s;
            }
            if dev.b == node {
                total += tc.b;
            }
        }
        total
    }

    /// Worst KCL residual over floating nodes \[A\] — a solution
    /// quality check independent of the Newton report.
    pub fn kcl_residual(&self, netlist: &MosNetlist) -> f64 {
        netlist
            .unknown_nodes()
            .into_iter()
            .map(|n| (self.node_device_current(netlist, n) - netlist.injection(n)).abs())
            .fold(0.0, f64::max)
    }
}

/// Evaluates all device currents/breakdowns at the given full voltage
/// vector.
fn evaluate_devices(
    netlist: &MosNetlist,
    voltages: &[f64],
    temp: f64,
) -> (Vec<TerminalCurrents>, Vec<LeakageBreakdown>) {
    let mut currents = Vec::with_capacity(netlist.device_count());
    let mut breakdowns = Vec::with_capacity(netlist.device_count());
    for dev in netlist.devices() {
        let bias =
            Bias::new(voltages[dev.g.0], voltages[dev.d.0], voltages[dev.s.0], voltages[dev.b.0]);
        let (tc, bd) = dev.transistor.leakage(bias, temp);
        currents.push(tc);
        breakdowns.push(bd);
    }
    (currents, breakdowns)
}

/// Solves the DC operating point of `netlist` at temperature `temp`.
///
/// `guess` optionally seeds every node voltage (length must equal
/// [`MosNetlist::node_count`]); fixed nodes are overridden by their
/// pinned values. Without a guess, unknowns start at half the highest
/// rail.
///
/// # Errors
/// Propagates [`SolverError`] from the Newton kernel; also rejects a
/// guess of the wrong length.
pub fn solve_dc(
    netlist: &MosNetlist,
    temp: f64,
    guess: Option<&[f64]>,
    opts: &NewtonOptions,
) -> Result<DcSolution, SolverError> {
    let n_nodes = netlist.node_count();
    if let Some(g) = guess {
        if g.len() != n_nodes {
            return Err(SolverError::BadProblem(format!(
                "guess has {} entries for {} nodes",
                g.len(),
                n_nodes
            )));
        }
    }
    let unknowns = netlist.unknown_nodes();

    // Assemble the full voltage vector template.
    let vdd_est =
        (0..n_nodes).filter_map(|i| netlist.fixed_voltage(NodeId(i))).fold(0.0_f64, f64::max);
    let mut voltages: Vec<f64> = (0..n_nodes)
        .map(|i| {
            let node = NodeId(i);
            netlist
                .fixed_voltage(node)
                .unwrap_or_else(|| guess.map(|g| g[i]).unwrap_or(0.5 * vdd_est))
        })
        .collect();

    if unknowns.is_empty() {
        let (device_currents, device_breakdowns) = evaluate_devices(netlist, &voltages, temp);
        return Ok(DcSolution {
            voltages,
            device_currents,
            device_breakdowns,
            stats: NewtonStats { iterations: 0, residual: 0.0 },
        });
    }

    // node index -> unknown slot (or None for pinned nodes).
    let mut unknown_slot: Vec<Option<usize>> = vec![None; n_nodes];
    for (k, node) in unknowns.iter().enumerate() {
        unknown_slot[node.0] = Some(k);
    }

    let mut x: Vec<f64> = unknowns.iter().map(|n| voltages[n.0]).collect();
    {
        let template = voltages.clone();
        let residual = |x: &[f64], f: &mut [f64]| {
            let mut v = template.clone();
            for (k, node) in unknowns.iter().enumerate() {
                v[node.0] = x[k];
            }
            f.iter_mut().for_each(|fi| *fi = 0.0);
            for dev in netlist.devices() {
                let bias = Bias::new(v[dev.g.0], v[dev.d.0], v[dev.s.0], v[dev.b.0]);
                let tc = dev.transistor.terminal_currents(bias, temp);
                for (node, i) in [(dev.d, tc.d), (dev.g, tc.g), (dev.s, tc.s), (dev.b, tc.b)] {
                    if let Some(k) = unknown_slot[node.0] {
                        f[k] += i;
                    }
                }
            }
            for (k, node) in unknowns.iter().enumerate() {
                f[k] -= netlist.injection(*node);
            }
        };
        newton::solve(residual, &mut x, opts)?;
    }
    for (k, node) in unknowns.iter().enumerate() {
        voltages[node.0] = x[k];
    }
    let (device_currents, device_breakdowns) = evaluate_devices(netlist, &voltages, temp);

    // Re-derive the final residual for the stats (cheap, n is tiny).
    let mut worst = 0.0_f64;
    for node in &unknowns {
        let mut sum = -netlist.injection(*node);
        for (dev, tc) in netlist.devices().iter().zip(&device_currents) {
            if dev.d == *node {
                sum += tc.d;
            }
            if dev.g == *node {
                sum += tc.g;
            }
            if dev.s == *node {
                sum += tc.s;
            }
            if dev.b == *node {
                sum += tc.b;
            }
        }
        worst = worst.max(sum.abs());
    }

    Ok(DcSolution {
        voltages,
        device_currents,
        device_breakdowns,
        stats: NewtonStats { iterations: 0, residual: worst },
    })
}

/// The solver-side context of a traced DC solve: which nodes floated,
/// and the Newton Jacobian factored at the converged point.
///
/// Sensitivity extraction uses it to predict how the operating point
/// moves under a small parameter change `p → p + Δp` without
/// re-solving: with `f(v*, p₀) = 0`, the perturbed residual
/// `f(v*, p₀+Δp)` equals `∂f/∂p·Δp` to first order, so
/// `Δv = -J⁻¹ f(v*, p₀+Δp)` — one [`dc_residual_at`] on the perturbed
/// netlist plus one backsolve per axis.
#[derive(Debug, Clone)]
pub struct DcTrace {
    /// Floating nodes in solver slot order (the ordering
    /// [`dc_residual_at`] and [`DcTrace::jacobian`] agree on).
    pub unknowns: Vec<NodeId>,
    /// Factored Jacobian at the solution; `None` when every node is
    /// pinned (nothing to perturb).
    pub jacobian: Option<newton::FactoredJacobian>,
}

impl DcTrace {
    /// The solution's voltages at the floating nodes, in slot order.
    pub fn unknown_voltages(&self, sol: &DcSolution) -> Vec<f64> {
        self.unknowns.iter().map(|n| sol.voltages[n.0]).collect()
    }
}

/// Assembles the full node-voltage vector for prescribed unknown
/// voltages `x` (slot order = [`MosNetlist::unknown_nodes`]).
fn assemble_voltages(netlist: &MosNetlist, x: &[f64]) -> Result<Vec<f64>, SolverError> {
    let unknowns = netlist.unknown_nodes();
    if x.len() != unknowns.len() {
        return Err(SolverError::BadProblem(format!(
            "{} unknown voltages for {} floating nodes",
            x.len(),
            unknowns.len()
        )));
    }
    let n_nodes = netlist.node_count();
    let mut v = vec![0.0; n_nodes];
    for (i, vi) in v.iter_mut().enumerate() {
        if let Some(fv) = netlist.fixed_voltage(NodeId(i)) {
            *vi = fv;
        }
    }
    for (k, node) in unknowns.iter().enumerate() {
        v[node.0] = x[k];
    }
    Ok(v)
}

/// KCL residual of `netlist` evaluated at prescribed unknown voltages
/// (no solve). Slot order matches [`MosNetlist::unknown_nodes`], which
/// for a topology-identical rebuild (same construction order, new
/// device parameters) is the same ordering the traced Jacobian used.
///
/// # Errors
/// [`SolverError::BadProblem`] if `x` does not match the floating-node
/// count.
pub fn dc_residual_at(netlist: &MosNetlist, temp: f64, x: &[f64]) -> Result<Vec<f64>, SolverError> {
    let unknowns = netlist.unknown_nodes();
    let v = assemble_voltages(netlist, x)?;
    let n_nodes = netlist.node_count();
    let mut unknown_slot: Vec<Option<usize>> = vec![None; n_nodes];
    for (k, node) in unknowns.iter().enumerate() {
        unknown_slot[node.0] = Some(k);
    }
    let mut f = vec![0.0; unknowns.len()];
    for dev in netlist.devices() {
        let bias = Bias::new(v[dev.g.0], v[dev.d.0], v[dev.s.0], v[dev.b.0]);
        let tc = dev.transistor.terminal_currents(bias, temp);
        for (node, i) in [(dev.d, tc.d), (dev.g, tc.g), (dev.s, tc.s), (dev.b, tc.b)] {
            if let Some(k) = unknown_slot[node.0] {
                f[k] += i;
            }
        }
    }
    for (k, node) in unknowns.iter().enumerate() {
        f[k] -= netlist.injection(*node);
    }
    Ok(f)
}

/// Evaluates every device of `netlist` at prescribed unknown voltages
/// (no solve), returning a full [`DcSolution`] whose `stats.residual`
/// is the KCL imbalance at that point — the linearization-error signal
/// the delta-library check consumes.
///
/// # Errors
/// As [`dc_residual_at`].
pub fn dc_evaluate_at(
    netlist: &MosNetlist,
    temp: f64,
    x: &[f64],
) -> Result<DcSolution, SolverError> {
    let f = dc_residual_at(netlist, temp, x)?;
    let voltages = assemble_voltages(netlist, x)?;
    let (device_currents, device_breakdowns) = evaluate_devices(netlist, &voltages, temp);
    Ok(DcSolution {
        voltages,
        device_currents,
        device_breakdowns,
        stats: NewtonStats { iterations: 0, residual: crate::linear::inf_norm(&f) },
    })
}

/// [`solve_dc`], additionally returning the [`DcTrace`] (unknown
/// ordering + Jacobian factored at the solution).
///
/// The returned [`DcSolution`] is bit-identical to [`solve_dc`] on the
/// same inputs: the iteration is shared and the Jacobian is built in a
/// separate sweep after convergence.
///
/// # Errors
/// As [`solve_dc`], plus [`SolverError::SingularMatrix`] if the
/// Jacobian at the solution cannot be factored.
pub fn solve_dc_traced(
    netlist: &MosNetlist,
    temp: f64,
    guess: Option<&[f64]>,
    opts: &NewtonOptions,
) -> Result<(DcSolution, DcTrace), SolverError> {
    let n_nodes = netlist.node_count();
    if let Some(g) = guess {
        if g.len() != n_nodes {
            return Err(SolverError::BadProblem(format!(
                "guess has {} entries for {} nodes",
                g.len(),
                n_nodes
            )));
        }
    }
    let unknowns = netlist.unknown_nodes();
    let vdd_est =
        (0..n_nodes).filter_map(|i| netlist.fixed_voltage(NodeId(i))).fold(0.0_f64, f64::max);
    let mut voltages: Vec<f64> = (0..n_nodes)
        .map(|i| {
            let node = NodeId(i);
            netlist
                .fixed_voltage(node)
                .unwrap_or_else(|| guess.map(|g| g[i]).unwrap_or(0.5 * vdd_est))
        })
        .collect();

    if unknowns.is_empty() {
        let (device_currents, device_breakdowns) = evaluate_devices(netlist, &voltages, temp);
        let sol = DcSolution {
            voltages,
            device_currents,
            device_breakdowns,
            stats: NewtonStats { iterations: 0, residual: 0.0 },
        };
        return Ok((sol, DcTrace { unknowns, jacobian: None }));
    }

    let mut unknown_slot: Vec<Option<usize>> = vec![None; n_nodes];
    for (k, node) in unknowns.iter().enumerate() {
        unknown_slot[node.0] = Some(k);
    }

    let mut x: Vec<f64> = unknowns.iter().map(|n| voltages[n.0]).collect();
    let jacobian = {
        let template = voltages.clone();
        let residual = |x: &[f64], f: &mut [f64]| {
            let mut v = template.clone();
            for (k, node) in unknowns.iter().enumerate() {
                v[node.0] = x[k];
            }
            f.iter_mut().for_each(|fi| *fi = 0.0);
            for dev in netlist.devices() {
                let bias = Bias::new(v[dev.g.0], v[dev.d.0], v[dev.s.0], v[dev.b.0]);
                let tc = dev.transistor.terminal_currents(bias, temp);
                for (node, i) in [(dev.d, tc.d), (dev.g, tc.g), (dev.s, tc.s), (dev.b, tc.b)] {
                    if let Some(k) = unknown_slot[node.0] {
                        f[k] += i;
                    }
                }
            }
            for (k, node) in unknowns.iter().enumerate() {
                f[k] -= netlist.injection(*node);
            }
        };
        let (_, jac) = newton::solve_traced(residual, &mut x, opts)?;
        jac
    };
    for (k, node) in unknowns.iter().enumerate() {
        voltages[node.0] = x[k];
    }
    let (device_currents, device_breakdowns) = evaluate_devices(netlist, &voltages, temp);

    let mut worst = 0.0_f64;
    for node in &unknowns {
        let mut sum = -netlist.injection(*node);
        for (dev, tc) in netlist.devices().iter().zip(&device_currents) {
            if dev.d == *node {
                sum += tc.d;
            }
            if dev.g == *node {
                sum += tc.g;
            }
            if dev.s == *node {
                sum += tc.s;
            }
            if dev.b == *node {
                sum += tc.b;
            }
        }
        worst = worst.max(sum.abs());
    }

    let sol = DcSolution {
        voltages,
        device_currents,
        device_breakdowns,
        stats: NewtonStats { iterations: 0, residual: worst },
    };
    Ok((sol, DcTrace { unknowns, jacobian: Some(jacobian) }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_device::consts::NA;
    use nanoleak_device::{Technology, Transistor};

    /// Builds a plain inverter with pinned input; returns (netlist, out).
    fn inverter(vin: f64) -> (MosNetlist, NodeId) {
        let tech = Technology::d25();
        let mut nl = MosNetlist::new();
        let vdd = nl.add_fixed_node("vdd", tech.vdd);
        let gnd = nl.add_fixed_node("gnd", 0.0);
        let input = nl.add_fixed_node("in", vin);
        let out = nl.add_node("out");
        nl.add_mos(Transistor::from_design(&tech.nmos), out, input, gnd, gnd);
        nl.add_mos(Transistor::from_design(&tech.pmos), out, input, vdd, vdd);
        (nl, out)
    }

    #[test]
    fn inverter_output_high_for_input_low() {
        let (nl, out) = inverter(0.0);
        let sol = solve_dc(&nl, 300.0, None, &NewtonOptions::default()).unwrap();
        let v = sol.node_voltage(out);
        // Output pulled to VDD minus a leakage-induced droop of at most
        // a few mV.
        assert!(v > 0.88 && v <= 0.9005, "Vout = {v}");
        assert!(sol.kcl_residual(&nl) < 1e-14);
    }

    #[test]
    fn inverter_output_low_for_input_high() {
        let (nl, out) = inverter(0.9);
        let sol = solve_dc(&nl, 300.0, None, &NewtonOptions::default()).unwrap();
        let v = sol.node_voltage(out);
        assert!((-0.0005..0.02).contains(&v), "Vout = {v}");
    }

    #[test]
    fn injection_shifts_output_node() {
        // Pull current out of a logic-1 output: voltage must droop
        // by roughly I/g_on of the PMOS (a few mV at uA scale).
        let (mut nl, out) = inverter(0.0);
        let base = solve_dc(&nl, 300.0, None, &NewtonOptions::default()).unwrap().node_voltage(out);
        nl.set_injection(out, -3e-6);
        let loaded =
            solve_dc(&nl, 300.0, None, &NewtonOptions::default()).unwrap().node_voltage(out);
        let droop = base - loaded;
        assert!(droop > 0.5e-3 && droop < 20e-3, "droop = {} mV", droop * 1e3);
    }

    #[test]
    fn breakdown_magnitudes_match_paper_scale() {
        let (nl, _) = inverter(0.0);
        let sol = solve_dc(&nl, 300.0, None, &NewtonOptions::default()).unwrap();
        let b = sol.total_breakdown();
        assert!(b.sub > 100.0 * NA && b.sub < 900.0 * NA, "sub = {} nA", b.sub / NA);
        assert!(b.gate > 10.0 * NA && b.gate < 500.0 * NA, "gate = {} nA", b.gate / NA);
        assert!(b.btbt > 0.5 * NA && b.btbt < 50.0 * NA, "btbt = {} nA", b.btbt / NA);
    }

    #[test]
    fn vdd_rail_current_is_negative_of_gnd_current_plus_pins() {
        // Conservation: all device terminal currents over all nodes sum
        // to zero, so rail + pinned-input + output currents cancel.
        let (nl, _) = inverter(0.0);
        let sol = solve_dc(&nl, 300.0, None, &NewtonOptions::default()).unwrap();
        let total: f64 =
            (0..nl.node_count()).map(|i| sol.node_device_current(&nl, NodeId(i))).sum();
        assert!(total.abs() < 1e-15, "global conservation violated: {total:e}");
    }

    #[test]
    fn fully_pinned_netlist_needs_no_newton() {
        let tech = Technology::d25();
        let mut nl = MosNetlist::new();
        let vdd = nl.add_fixed_node("vdd", tech.vdd);
        let gnd = nl.add_fixed_node("gnd", 0.0);
        nl.add_mos(Transistor::from_design(&tech.nmos), vdd, gnd, gnd, gnd);
        let sol = solve_dc(&nl, 300.0, None, &NewtonOptions::default()).unwrap();
        assert_eq!(sol.stats.iterations, 0);
        assert!(sol.total_breakdown().total() > 0.0);
    }

    #[test]
    fn wrong_guess_length_rejected() {
        let (nl, _) = inverter(0.0);
        let err = solve_dc(&nl, 300.0, Some(&[0.0]), &NewtonOptions::default());
        assert!(matches!(err, Err(SolverError::BadProblem(_))));
    }

    #[test]
    fn traced_dc_solve_is_bit_identical() {
        let (nl, _) = inverter(0.0);
        let plain = solve_dc(&nl, 300.0, None, &NewtonOptions::default()).unwrap();
        let (traced, trace) = solve_dc_traced(&nl, 300.0, None, &NewtonOptions::default()).unwrap();
        for (a, b) in plain.voltages.iter().zip(&traced.voltages) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in plain.device_breakdowns.iter().zip(&traced.device_breakdowns) {
            assert_eq!(a.total().to_bits(), b.total().to_bits());
        }
        assert_eq!(trace.unknowns, nl.unknown_nodes());
        assert!(trace.jacobian.is_some());
        // The residual at the converged unknowns is (numerically) zero.
        let x = trace.unknown_voltages(&traced);
        let f = dc_residual_at(&nl, 300.0, &x).unwrap();
        assert!(inf_norm_of(&f) < 1e-13, "residual at solution: {f:?}");
    }

    fn inf_norm_of(v: &[f64]) -> f64 {
        v.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }

    #[test]
    fn jacobian_predicts_perturbed_operating_point() {
        // Perturb the technology (Vt shift) and predict the new output
        // voltage from the nominal trace: Δv = -J⁻¹ f(v*, p').
        let tech = Technology::d25();
        let build = |dvth: f64| {
            let p = nanoleak_device::Perturbation { dvth, ..Default::default() };
            let design_n = p.apply(&tech.nmos);
            let design_p = p.apply(&tech.pmos);
            let mut nl = MosNetlist::new();
            let vdd = nl.add_fixed_node("vdd", tech.vdd);
            let gnd = nl.add_fixed_node("gnd", 0.0);
            let input = nl.add_fixed_node("in", 0.0);
            let out = nl.add_node("out");
            nl.add_mos(Transistor::from_design(&design_n), out, input, gnd, gnd);
            nl.add_mos(Transistor::from_design(&design_p), out, input, vdd, vdd);
            (nl, out)
        };
        let (nominal, out) = build(0.0);
        let (sol, trace) =
            solve_dc_traced(&nominal, 300.0, None, &NewtonOptions::default()).unwrap();
        let x_star = trace.unknown_voltages(&sol);
        let dvth = 5e-3;
        let (perturbed, _) = build(dvth);
        // f(v*, p') ≈ ∂f/∂p · Δp since f(v*, p0) = 0.
        let mut f = dc_residual_at(&perturbed, 300.0, &x_star).unwrap();
        for fi in f.iter_mut() {
            *fi = -*fi;
        }
        trace.jacobian.as_ref().unwrap().solve(&mut f).unwrap();
        let predicted_out = {
            let slot = trace.unknowns.iter().position(|n| *n == out).unwrap();
            x_star[slot] + f[slot]
        };
        let exact =
            solve_dc(&perturbed, 300.0, None, &NewtonOptions::default()).unwrap().node_voltage(out);
        assert!((predicted_out - exact).abs() < 2e-4, "predicted {predicted_out}, exact {exact}");
        // And dc_evaluate_at reports consistent breakdowns plus the
        // KCL imbalance the linearization check reads.
        let eval = dc_evaluate_at(&perturbed, 300.0, &x_star).unwrap();
        assert!(eval.total_breakdown().total() > 0.0);
        assert!(eval.stats.residual > 0.0, "perturbed netlist at nominal point has imbalance");
    }

    #[test]
    fn nand2_stack_node_settles_low() {
        // Two series NMOS (both OFF, inputs 00): the stack node rises to
        // tens of mV — the classic stacking effect (paper Section 4).
        let tech = Technology::d25();
        let mut nl = MosNetlist::new();
        let vdd = nl.add_fixed_node("vdd", tech.vdd);
        let gnd = nl.add_fixed_node("gnd", 0.0);
        let a = nl.add_fixed_node("a", 0.0);
        let bpin = nl.add_fixed_node("b", 0.0);
        let out = nl.add_node("out");
        let mid = nl.add_node("mid");
        let n = Transistor::from_design(&tech.nmos).scaled_width(2.0);
        let p = Transistor::from_design(&tech.pmos);
        nl.add_mos(n, out, a, mid, gnd);
        nl.add_mos(n, mid, bpin, gnd, gnd);
        nl.add_mos(p, out, a, vdd, vdd);
        nl.add_mos(p, out, bpin, vdd, vdd);
        let sol = solve_dc(&nl, 300.0, None, &NewtonOptions::default()).unwrap();
        let vmid = sol.node_voltage(mid);
        assert!(vmid > 0.01 && vmid < 0.30, "stack node = {} V", vmid);
        assert!(sol.node_voltage(out) > 0.85);
    }
}
