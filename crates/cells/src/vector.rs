//! Compact input vectors for cells (up to 8 pins).

use std::fmt;

use serde::{Deserialize, Serialize};

/// An assignment of logic levels to a cell's input pins.
///
/// Bit `i` corresponds to input pin `i`; the display form prints pin 0
/// first, matching the paper's `"01"` / `"10"` NAND-vector notation
/// where the first character is Input-1.
///
/// ```
/// use nanoleak_cells::InputVector;
/// let v = InputVector::from_bits(0b10, 2); // pin0 = 0, pin1 = 1
/// assert_eq!(v.to_string(), "01");
/// assert!(!v.bit(0));
/// assert!(v.bit(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InputVector {
    bits: u8,
    len: u8,
}

impl InputVector {
    /// Creates a vector from a bit pattern (`bit i` = pin `i`) and a pin
    /// count.
    ///
    /// # Panics
    /// Panics if `len > 8` or if `bits` has bits set beyond `len`.
    pub fn from_bits(bits: u8, len: usize) -> Self {
        assert!(len <= 8, "at most 8 pins supported");
        assert!(len == 8 || bits < (1u8 << len), "bits beyond pin count");
        Self { bits, len: len as u8 }
    }

    /// Creates a vector from booleans (index = pin).
    pub fn from_bools(levels: &[bool]) -> Self {
        assert!(levels.len() <= 8, "at most 8 pins supported");
        let mut bits = 0u8;
        for (i, &b) in levels.iter().enumerate() {
            if b {
                bits |= 1 << i;
            }
        }
        Self { bits, len: levels.len() as u8 }
    }

    /// Parses the display form (`"01"` = pin0 low, pin1 high).
    pub fn parse(s: &str) -> Option<Self> {
        if s.len() > 8 || s.is_empty() {
            return None;
        }
        let mut bits = 0u8;
        for (i, ch) in s.chars().enumerate() {
            match ch {
                '0' => {}
                '1' => bits |= 1 << i,
                _ => return None,
            }
        }
        Some(Self { bits, len: s.len() as u8 })
    }

    /// Logic level of pin `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len as usize, "pin {i} out of range");
        self.bits & (1 << i) != 0
    }

    /// Number of pins.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Dense index (`bits` as usize) for table lookups.
    pub fn index(&self) -> usize {
        self.bits as usize
    }

    /// Iterates the pin levels, pin 0 first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len as usize).map(move |i| self.bit(i))
    }

    /// Pin levels as a `Vec<bool>`.
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// All `2^len` vectors for a pin count, in index order.
    pub fn all(len: usize) -> impl Iterator<Item = InputVector> {
        assert!(len <= 8, "at most 8 pins supported");
        (0..(1usize << len)).map(move |bits| InputVector::from_bits(bits as u8, len))
    }

    /// Returns a copy with pin `i` flipped.
    #[must_use]
    pub fn flipped(&self, i: usize) -> Self {
        assert!(i < self.len as usize, "pin {i} out of range");
        Self { bits: self.bits ^ (1 << i), len: self.len }
    }

    /// Number of pins at logic 1.
    pub fn count_ones(&self) -> usize {
        self.bits.count_ones() as usize
    }
}

impl fmt::Display for InputVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len as usize {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_layout_and_display() {
        let v = InputVector::from_bools(&[true, false, false]);
        assert_eq!(v.to_string(), "100");
        assert!(v.bit(0));
        assert!(!v.bit(1));
        assert_eq!(v.index(), 1);
    }

    #[test]
    fn parse_round_trips() {
        for s in ["0", "1", "01", "10", "1101"] {
            assert_eq!(InputVector::parse(s).unwrap().to_string(), s);
        }
        assert_eq!(InputVector::parse("2"), None);
        assert_eq!(InputVector::parse(""), None);
    }

    #[test]
    fn all_enumerates_every_vector() {
        let all: Vec<_> = InputVector::all(2).collect();
        assert_eq!(all.len(), 4);
        let strings: Vec<String> = all.iter().map(|v| v.to_string()).collect();
        assert_eq!(strings, vec!["00", "10", "01", "11"]);
    }

    #[test]
    fn flip_and_count() {
        let v = InputVector::parse("01").unwrap();
        assert_eq!(v.flipped(0).to_string(), "11");
        assert_eq!(v.count_ones(), 1);
        assert_eq!(v.flipped(1).count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_bit_panics() {
        InputVector::parse("01").unwrap().bit(2);
    }

    #[test]
    #[should_panic(expected = "beyond pin count")]
    fn stray_bits_rejected() {
        InputVector::from_bits(0b100, 2);
    }
}
