//! Transistor-level topologies of the standard cells.
//!
//! Cells are *added into* an existing [`MosNetlist`], with their pins
//! mapped onto caller-provided nodes. This composability is what lets
//! the characterization build the paper's Fig. 5 fixture (driver +
//! device-under-test + loading injections) and lets the reference
//! simulator instantiate whole circuits gate by gate.

use nanoleak_device::{Technology, Transistor};
use nanoleak_solver::{MosNetlist, NodeId};

use crate::cell_type::CellType;

/// Node bookkeeping for one instantiated cell.
#[derive(Debug, Clone)]
pub struct CellPins {
    /// Input pin nodes, in pin order.
    pub inputs: Vec<NodeId>,
    /// Output node.
    pub output: NodeId,
    /// Internal (stack) nodes, each with a suggested initial voltage
    /// for the Newton solve.
    pub internals: Vec<(NodeId, f64)>,
    /// Device index range of this cell inside the netlist.
    pub device_range: std::ops::Range<usize>,
}

/// Instantiates `cell` into `nl` with its pins bound to the given nodes.
///
/// Sizing follows standard-cell practice: series NMOS stacks of a
/// k-input NAND are drawn k-times wider (likewise PMOS stacks of NOR),
/// parallel devices stay at unit width. Input pin 0 always gates the
/// stack transistor nearest the output, which is what makes the paper's
/// NAND vectors `01` and `10` (Fig. 7) inequivalent.
///
/// # Panics
/// Panics if `inputs.len() != cell.num_inputs()`.
#[allow(clippy::too_many_arguments)] // mirrors the netlist fixture: rails + pins + naming
pub fn add_cell(
    nl: &mut MosNetlist,
    tech: &Technology,
    cell: CellType,
    inputs: &[NodeId],
    output: NodeId,
    vdd: NodeId,
    gnd: NodeId,
    prefix: &str,
) -> CellPins {
    assert_eq!(inputs.len(), cell.num_inputs(), "{cell}: wrong pin count");
    let dev_start = nl.device_count();
    let n_unit = Transistor::from_design(&tech.nmos);
    let p_unit = Transistor::from_design(&tech.pmos);
    let k = cell.num_inputs();
    let mut internals = Vec::new();

    match cell {
        CellType::Inv => {
            nl.add_mos(n_unit, output, inputs[0], gnd, gnd);
            nl.add_mos(p_unit, output, inputs[0], vdd, vdd);
        }
        CellType::Nand2 | CellType::Nand3 | CellType::Nand4 => {
            // Series NMOS chain: output -> x1 -> ... -> gnd, pin 0 on top.
            let n_stack = n_unit.scaled_width(k as f64);
            let mut upper = output;
            for (i, &pin) in inputs.iter().enumerate() {
                let lower = if i + 1 == k {
                    gnd
                } else {
                    let node = nl.add_node(&format!("{prefix}.x{}", i + 1));
                    internals.push((node, 0.05));
                    node
                };
                nl.add_mos(n_stack, upper, pin, lower, gnd);
                upper = lower;
            }
            // Parallel PMOS pull-up.
            for &pin in inputs {
                nl.add_mos(p_unit, output, pin, vdd, vdd);
            }
        }
        CellType::Nor2 | CellType::Nor3 | CellType::Nor4 => {
            // Series PMOS chain: vdd -> y1 -> ... -> output, pin 0 at
            // the bottom (nearest the output).
            let p_stack = p_unit.scaled_width(k as f64);
            let vdd_v = tech.vdd;
            let mut lower = output;
            for (i, &pin) in inputs.iter().enumerate() {
                let upper = if i + 1 == k {
                    vdd
                } else {
                    let node = nl.add_node(&format!("{prefix}.y{}", i + 1));
                    internals.push((node, vdd_v - 0.05));
                    node
                };
                nl.add_mos(p_stack, lower, pin, upper, vdd);
                lower = upper;
            }
            // Parallel NMOS pull-down.
            for &pin in inputs {
                nl.add_mos(n_unit, output, pin, gnd, gnd);
            }
        }
        CellType::Aoi21 => {
            // Y = !((A AND B) OR C).
            // PDN: series A-B pair (2x) in parallel with single C (1x).
            let n_stack = n_unit.scaled_width(2.0);
            let x = nl.add_node(&format!("{prefix}.x1"));
            internals.push((x, 0.05));
            nl.add_mos(n_stack, output, inputs[0], x, gnd);
            nl.add_mos(n_stack, x, inputs[1], gnd, gnd);
            nl.add_mos(n_unit, output, inputs[2], gnd, gnd);
            // PUN: (A parallel B) in series with C; the series path has
            // depth 2, so all pull-up devices are drawn 2x.
            let p_stack = p_unit.scaled_width(2.0);
            let y = nl.add_node(&format!("{prefix}.y1"));
            internals.push((y, tech.vdd - 0.05));
            nl.add_mos(p_stack, y, inputs[0], vdd, vdd);
            nl.add_mos(p_stack, y, inputs[1], vdd, vdd);
            nl.add_mos(p_stack, output, inputs[2], y, vdd);
        }
        CellType::Oai21 => {
            // Y = !((A OR B) AND C).
            // PDN: (A parallel B) in series with C, depth-2 path (2x).
            let n_stack = n_unit.scaled_width(2.0);
            let x = nl.add_node(&format!("{prefix}.x1"));
            internals.push((x, 0.05));
            nl.add_mos(n_stack, output, inputs[2], x, gnd);
            nl.add_mos(n_stack, x, inputs[0], gnd, gnd);
            nl.add_mos(n_stack, x, inputs[1], gnd, gnd);
            // PUN: series A-B pair (2x) in parallel with single C (1x).
            let p_stack = p_unit.scaled_width(2.0);
            let y = nl.add_node(&format!("{prefix}.y1"));
            internals.push((y, tech.vdd - 0.05));
            nl.add_mos(p_stack, output, inputs[0], y, vdd);
            nl.add_mos(p_stack, y, inputs[1], vdd, vdd);
            nl.add_mos(p_unit, output, inputs[2], vdd, vdd);
        }
    }

    CellPins {
        inputs: inputs.to_vec(),
        output,
        internals,
        device_range: dev_start..nl.device_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_device::Technology;
    use nanoleak_solver::{solve_dc, NewtonOptions};

    fn fixture(cell: CellType, levels: &[bool]) -> (MosNetlist, CellPins, f64) {
        let tech = Technology::d25();
        let vdd_v = tech.vdd;
        let mut nl = MosNetlist::new();
        let vdd = nl.add_fixed_node("vdd", vdd_v);
        let gnd = nl.add_fixed_node("gnd", 0.0);
        let ins: Vec<NodeId> = levels
            .iter()
            .enumerate()
            .map(|(i, &b)| nl.add_fixed_node(&format!("in{i}"), if b { vdd_v } else { 0.0 }))
            .collect();
        let out = nl.add_node("out");
        let pins = add_cell(&mut nl, &tech, cell, &ins, out, vdd, gnd, "dut");
        (nl, pins, vdd_v)
    }

    fn solved_output(cell: CellType, levels: &[bool]) -> f64 {
        let (nl, pins, _) = fixture(cell, levels);
        let sol = solve_dc(&nl, 300.0, None, &NewtonOptions::default()).unwrap();
        sol.node_voltage(pins.output)
    }

    #[test]
    fn transistor_counts_match() {
        for cell in CellType::ALL {
            let levels = vec![false; cell.num_inputs()];
            let (nl, pins, _) = fixture(cell, &levels);
            assert_eq!(pins.device_range.len(), cell.num_transistors(), "{cell}");
            assert_eq!(nl.device_count(), cell.num_transistors(), "{cell}");
        }
    }

    #[test]
    fn internal_node_counts() {
        let (_, pins, _) = fixture(CellType::Nand4, &[false; 4]);
        assert_eq!(pins.internals.len(), 3);
        let (_, pins, _) = fixture(CellType::Inv, &[false]);
        assert!(pins.internals.is_empty());
    }

    #[test]
    fn every_cell_realizes_its_truth_table() {
        // Solve the transistor network at every input vector and check
        // the output lands at the correct rail (within leakage droop).
        for cell in CellType::ALL {
            for v in crate::InputVector::all(cell.num_inputs()) {
                let levels = v.to_bools();
                let expect = cell.eval_logic(&levels);
                let vout = solved_output(cell, &levels);
                if expect {
                    assert!(vout > 0.8, "{cell} {v}: Vout = {vout}");
                } else {
                    assert!(vout < 0.1, "{cell} {v}: Vout = {vout}");
                }
            }
        }
    }

    #[test]
    fn aoi_stack_effect_on_series_branch() {
        // AOI21 with A=B=0, C=0 (output 1): the A-B series pair shows
        // the stacking effect; the lone C pull-down does not benefit,
        // so it dominates the subthreshold leakage.
        let (nl, pins, _) = fixture(CellType::Aoi21, &[false, false, false]);
        let sol = solve_dc(&nl, 300.0, None, &NewtonOptions::default()).unwrap();
        let (x, _) = pins.internals[0];
        let vx = sol.node_voltage(x);
        assert!(vx > 0.01 && vx < 0.3, "AOI stack node = {vx} V");
    }

    #[test]
    fn oai_complement_structure() {
        // OAI21's pull-up series pair mirrors AOI21's pull-down pair.
        let (nl, pins, vdd) = fixture(CellType::Oai21, &[true, true, true]);
        let sol = solve_dc(&nl, 300.0, None, &NewtonOptions::default()).unwrap();
        let (y, _) = pins.internals.last().copied().unwrap();
        let vy = sol.node_voltage(y);
        assert!(vy < vdd - 0.01 && vy > vdd - 0.3, "OAI pull-up stack node = {vy} V");
    }

    #[test]
    #[should_panic(expected = "wrong pin count")]
    fn pin_count_validated() {
        let tech = Technology::d25();
        let mut nl = MosNetlist::new();
        let vdd = nl.add_fixed_node("vdd", 0.9);
        let gnd = nl.add_fixed_node("gnd", 0.0);
        let a = nl.add_fixed_node("a", 0.0);
        let out = nl.add_node("out");
        add_cell(&mut nl, &tech, CellType::Nand2, &[a], out, vdd, gnd, "x");
    }
}
