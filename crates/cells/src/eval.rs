//! Cell-level DC leakage evaluation, isolated or under loading.
//!
//! [`eval_loaded`] reproduces the paper's measurement fixture (Figs. 5–8):
//! every input of the device-under-test is driven by a real
//! transistor-level inverter (so the node has the correct kΩ-scale
//! stiffness), a *loading current* of the chosen magnitude is injected
//! into the input and/or output nodes with the physically correct sign
//! for the node's logic level, and the DUT's leakage components are read
//! from the converged operating point.

use nanoleak_device::{LeakageBreakdown, Technology};
use nanoleak_solver::{
    dc_evaluate_at, solve_dc, solve_dc_traced, DcTrace, MosNetlist, NewtonOptions, NodeId,
    SolverError,
};

use crate::cell_type::CellType;
use crate::topology::{add_cell, CellPins};
use crate::vector::InputVector;

/// Result of one cell evaluation.
#[derive(Debug, Clone)]
pub struct CellSolution {
    /// Leakage breakdown of the DUT (driver devices excluded).
    pub breakdown: LeakageBreakdown,
    /// Signed current flowing from each input net *into* the DUT's gate
    /// pins \[A\] (positive values pull the net down; this is the
    /// quantity summed into the loading currents of neighbors).
    pub input_pin_currents: Vec<f64>,
    /// Solved input node voltages \[V\].
    pub input_voltages: Vec<f64>,
    /// Solved output node voltage \[V\].
    pub output_voltage: f64,
    /// Logic level of the output for this vector.
    pub output_level: bool,
    /// Solved internal (stack) node voltages \[V\].
    pub internal_voltages: Vec<f64>,
}

/// Signed injection for a loading magnitude at a node of the given
/// logic level: fanout gate pins *inject into* a logic-0 net (lifting
/// it above ground) and *draw from* a logic-1 net (sagging it below
/// VDD).
#[inline]
pub fn loading_injection(magnitude: f64, level: bool) -> f64 {
    if level {
        -magnitude
    } else {
        magnitude
    }
}

/// Leakage of a cell in isolation: inputs pinned to ideal rails, no
/// loading anywhere. This is the traditional (non-loading-aware)
/// per-gate leakage.
///
/// # Errors
/// Propagates solver failures.
pub fn eval_isolated(
    tech: &Technology,
    temp: f64,
    cell: CellType,
    vector: InputVector,
) -> Result<CellSolution, SolverError> {
    assert_eq!(vector.len(), cell.num_inputs(), "{cell}: vector arity mismatch");
    let vdd_v = tech.vdd;
    let mut nl = MosNetlist::new();
    let vdd = nl.add_fixed_node("vdd", vdd_v);
    let gnd = nl.add_fixed_node("gnd", 0.0);
    let ins: Vec<NodeId> = vector
        .iter()
        .enumerate()
        .map(|(i, b)| nl.add_fixed_node(&format!("in{i}"), if b { vdd_v } else { 0.0 }))
        .collect();
    let out = nl.add_node("out");
    let pins = add_cell(&mut nl, tech, cell, &ins, out, vdd, gnd, "dut");

    let output_level = cell.eval_logic(&vector.to_bools());
    let mut guess = vec![0.5 * vdd_v; nl.node_count()];
    guess[out.0] = if output_level { vdd_v } else { 0.0 };
    for &(node, v) in &pins.internals {
        guess[node.0] = v;
    }
    let sol = solve_dc(&nl, temp, Some(&guess), &NewtonOptions::default())?;
    Ok(extract(&nl, &sol, &pins, &ins, output_level))
}

/// Leakage of a cell under loading, in the paper's fixture:
///
/// * each input pin is driven by a standard inverter whose input is
///   pinned so the pin sits at its `vector` level;
/// * `il_in[k]` \[A, magnitude >= 0\] is injected at input `k` with the
///   sign given by [`loading_injection`];
/// * `il_out` \[A, magnitude >= 0\] is likewise applied to the output.
///
/// With all magnitudes zero this is the *nominal* loaded operating
/// point: the paper's `L_NOM` reference for the `LD` metrics.
///
/// # Errors
/// Rejects negative magnitudes or wrong `il_in` arity as
/// [`SolverError::BadProblem`]; propagates solver failures.
pub fn eval_loaded(
    tech: &Technology,
    temp: f64,
    cell: CellType,
    vector: InputVector,
    il_in: &[f64],
    il_out: f64,
) -> Result<CellSolution, SolverError> {
    let fx = loaded_fixture(tech, cell, vector, il_in, il_out)?;
    let sol = solve_dc(&fx.nl, temp, Some(&fx.guess), &NewtonOptions::default())?;
    Ok(extract(&fx.nl, &sol, &fx.pins, &fx.ins, fx.output_level))
}

/// The measurement fixture of [`eval_loaded`] before solving: netlist,
/// node bookkeeping, and the Newton initial guess. Built separately so
/// the sensitivity characterization can rebuild the *same* fixture
/// under a perturbed technology and re-evaluate it at a prescribed
/// operating point without another Newton solve.
pub(crate) struct LoadedFixture {
    pub nl: MosNetlist,
    pub ins: Vec<NodeId>,
    pub pins: CellPins,
    pub guess: Vec<f64>,
    pub output_level: bool,
}

pub(crate) fn loaded_fixture(
    tech: &Technology,
    cell: CellType,
    vector: InputVector,
    il_in: &[f64],
    il_out: f64,
) -> Result<LoadedFixture, SolverError> {
    assert_eq!(vector.len(), cell.num_inputs(), "{cell}: vector arity mismatch");
    if il_in.len() != cell.num_inputs() {
        return Err(SolverError::BadProblem(format!(
            "{cell}: {} loading entries for {} inputs",
            il_in.len(),
            cell.num_inputs()
        )));
    }
    if il_in.iter().any(|&x| x < 0.0) || il_out < 0.0 {
        return Err(SolverError::BadProblem("loading magnitudes must be non-negative".to_string()));
    }

    let vdd_v = tech.vdd;
    let mut nl = MosNetlist::new();
    let vdd = nl.add_fixed_node("vdd", vdd_v);
    let gnd = nl.add_fixed_node("gnd", 0.0);

    // Drivers: one inverter per input pin, input pinned to the
    // complement so the pin carries the requested level.
    let mut ins = Vec::with_capacity(cell.num_inputs());
    for (i, level) in vector.iter().enumerate() {
        let drv_in = nl.add_fixed_node(&format!("drv_in{i}"), if level { 0.0 } else { vdd_v });
        let pin = nl.add_node(&format!("in{i}"));
        add_cell(&mut nl, tech, CellType::Inv, &[drv_in], pin, vdd, gnd, &format!("drv{i}"));
        nl.set_injection(pin, loading_injection(il_in[i], level));
        ins.push(pin);
    }

    let out = nl.add_node("out");
    let pins = add_cell(&mut nl, tech, cell, &ins, out, vdd, gnd, "dut");
    let output_level = cell.eval_logic(&vector.to_bools());
    nl.set_injection(out, loading_injection(il_out, output_level));

    let mut guess = vec![0.5 * vdd_v; nl.node_count()];
    for (i, level) in vector.iter().enumerate() {
        guess[ins[i].0] = if level { vdd_v } else { 0.0 };
    }
    guess[out.0] = if output_level { vdd_v } else { 0.0 };
    for &(node, v) in &pins.internals {
        guess[node.0] = v;
    }
    Ok(LoadedFixture { nl, ins, pins, guess, output_level })
}

/// A loaded evaluation that also keeps the solver trace (unknown
/// ordering plus the factored Jacobian at the solution). The `solution`
/// is bit-identical to [`eval_loaded`] on the same inputs; only extra
/// bookkeeping is returned.
pub(crate) struct TracedEval {
    pub solution: CellSolution,
    pub trace: DcTrace,
    /// Unknown-node voltages at the solution, in `trace.unknowns` order.
    pub x_star: Vec<f64>,
}

pub(crate) fn eval_loaded_traced(
    tech: &Technology,
    temp: f64,
    cell: CellType,
    vector: InputVector,
    il_in: &[f64],
    il_out: f64,
) -> Result<TracedEval, SolverError> {
    let fx = loaded_fixture(tech, cell, vector, il_in, il_out)?;
    let (sol, trace) = solve_dc_traced(&fx.nl, temp, Some(&fx.guess), &NewtonOptions::default())?;
    let x_star = trace.unknown_voltages(&sol);
    let solution = extract(&fx.nl, &sol, &fx.pins, &fx.ins, fx.output_level);
    Ok(TracedEval { solution, trace, x_star })
}

/// Evaluates a fixture at prescribed unknown voltages — no Newton
/// solve, just the device equations at that operating point.
#[allow(dead_code)]
pub(crate) fn eval_fixture_at(
    fx: &LoadedFixture,
    temp: f64,
    x: &[f64],
) -> Result<CellSolution, SolverError> {
    let sol = dc_evaluate_at(&fx.nl, temp, x)?;
    Ok(extract(&fx.nl, &sol, &fx.pins, &fx.ins, fx.output_level))
}

/// Solves a fixture from an explicit full-node guess (the sensitivity
/// probes warm-start from a Jacobian-predicted operating point).
pub(crate) fn solve_fixture(
    fx: &LoadedFixture,
    temp: f64,
    guess: &[f64],
) -> Result<CellSolution, SolverError> {
    let sol = solve_dc(&fx.nl, temp, Some(guess), &NewtonOptions::default())?;
    Ok(extract(&fx.nl, &sol, &fx.pins, &fx.ins, fx.output_level))
}

/// Collects the DUT-only quantities from a converged solution.
fn extract(
    nl: &MosNetlist,
    sol: &nanoleak_solver::DcSolution,
    pins: &crate::topology::CellPins,
    ins: &[NodeId],
    output_level: bool,
) -> CellSolution {
    let mut breakdown = LeakageBreakdown::ZERO;
    let mut pin_currents = vec![0.0; ins.len()];
    for idx in pins.device_range.clone() {
        breakdown += sol.device_breakdowns[idx];
        let dev = &nl.devices()[idx];
        if let Some(k) = ins.iter().position(|n| *n == dev.g) {
            pin_currents[k] += sol.device_currents[idx].g;
        }
    }
    CellSolution {
        breakdown,
        input_pin_currents: pin_currents,
        input_voltages: ins.iter().map(|n| sol.node_voltage(*n)).collect(),
        output_voltage: sol.node_voltage(pins.output),
        output_level,
        internal_voltages: pins.internals.iter().map(|(n, _)| sol.node_voltage(*n)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_device::consts::NA;

    fn tech() -> Technology {
        Technology::d25()
    }

    #[test]
    fn isolated_inverter_components_in_range() {
        let s =
            eval_isolated(&tech(), 300.0, CellType::Inv, InputVector::parse("0").unwrap()).unwrap();
        assert!(s.output_level);
        assert!(s.breakdown.sub > 100.0 * NA && s.breakdown.sub < 900.0 * NA);
        assert!(s.breakdown.gate > 10.0 * NA && s.breakdown.gate < 500.0 * NA);
        assert!(s.breakdown.btbt > 0.5 * NA && s.breakdown.btbt < 60.0 * NA);
    }

    #[test]
    fn nominal_loaded_matches_isolated_within_percent() {
        // Adding the driver without loading current shifts the input
        // node by only the DUT's own pin current times the driver's
        // output resistance — a couple of mV, so leakage moves < 4%.
        let v = InputVector::parse("0").unwrap();
        let iso = eval_isolated(&tech(), 300.0, CellType::Inv, v).unwrap();
        let nom = eval_loaded(&tech(), 300.0, CellType::Inv, v, &[0.0], 0.0).unwrap();
        let rel = (nom.breakdown.total() - iso.breakdown.total()).abs() / iso.breakdown.total();
        assert!(rel < 0.04, "driver-only shift = {}%", rel * 100.0);
    }

    #[test]
    fn input_loading_lifts_a_low_input_node() {
        let v = InputVector::parse("0").unwrap();
        let s = eval_loaded(&tech(), 300.0, CellType::Inv, v, &[3000.0 * NA], 0.0).unwrap();
        assert!(
            s.input_voltages[0] > 1e-3 && s.input_voltages[0] < 30e-3,
            "Vin = {} mV",
            s.input_voltages[0] * 1e3
        );
    }

    #[test]
    fn input_loading_sags_a_high_input_node() {
        let v = InputVector::parse("1").unwrap();
        let s = eval_loaded(&tech(), 300.0, CellType::Inv, v, &[3000.0 * NA], 0.0).unwrap();
        let droop = tech().vdd - s.input_voltages[0];
        assert!(droop > 0.5e-3 && droop < 30e-3, "droop = {} mV", droop * 1e3);
    }

    #[test]
    fn input_loading_raises_subthreshold_leakage() {
        // Paper Fig. 5a: LD_IN on the subthreshold component is
        // strongly positive with input '0'.
        let v = InputVector::parse("0").unwrap();
        let nom = eval_loaded(&tech(), 300.0, CellType::Inv, v, &[0.0], 0.0).unwrap();
        let load = eval_loaded(&tech(), 300.0, CellType::Inv, v, &[3000.0 * NA], 0.0).unwrap();
        let ld_sub = (load.breakdown.sub - nom.breakdown.sub) / nom.breakdown.sub;
        assert!(ld_sub > 0.04 && ld_sub < 0.30, "LD_IN(sub) = {}%", ld_sub * 100.0);
        // ... while the gate component mildly decreases.
        assert!(load.breakdown.gate < nom.breakdown.gate);
    }

    #[test]
    fn output_loading_reduces_all_components() {
        // Paper Fig. 5b: all three components fall under output loading.
        let v = InputVector::parse("0").unwrap();
        let nom = eval_loaded(&tech(), 300.0, CellType::Inv, v, &[0.0], 0.0).unwrap();
        let load = eval_loaded(&tech(), 300.0, CellType::Inv, v, &[0.0], 3000.0 * NA).unwrap();
        assert!(load.breakdown.sub < nom.breakdown.sub);
        assert!(load.breakdown.gate < nom.breakdown.gate);
        assert!(load.breakdown.btbt < nom.breakdown.btbt);
        let ld_total = (load.breakdown.total() - nom.breakdown.total()) / nom.breakdown.total();
        assert!(ld_total < 0.0 && ld_total > -0.08, "LD_OUT(total) = {}%", ld_total * 100.0);
    }

    #[test]
    fn pin_current_signs_follow_levels() {
        // Net at '1': DUT pin draws (positive); net at '0': pin injects
        // (negative).
        let hi = eval_loaded(
            &tech(),
            300.0,
            CellType::Inv,
            InputVector::parse("1").unwrap(),
            &[0.0],
            0.0,
        )
        .unwrap();
        assert!(hi.input_pin_currents[0] > 10.0 * NA, "{} nA", hi.input_pin_currents[0] / NA);
        let lo = eval_loaded(
            &tech(),
            300.0,
            CellType::Inv,
            InputVector::parse("0").unwrap(),
            &[0.0],
            0.0,
        )
        .unwrap();
        assert!(lo.input_pin_currents[0] < -NA, "{} nA", lo.input_pin_currents[0] / NA);
    }

    #[test]
    fn nand_stacking_effect_suppresses_00_leakage() {
        // Paper Section 4 / ref [8]: with both series NMOS off, the
        // stack node rises and subthreshold leakage collapses relative
        // to the single-off-transistor vectors.
        let l00 = eval_isolated(&tech(), 300.0, CellType::Nand2, InputVector::parse("00").unwrap())
            .unwrap();
        let l01 = eval_isolated(&tech(), 300.0, CellType::Nand2, InputVector::parse("01").unwrap())
            .unwrap();
        let l10 = eval_isolated(&tech(), 300.0, CellType::Nand2, InputVector::parse("10").unwrap())
            .unwrap();
        assert!(l00.breakdown.sub < 0.5 * l01.breakdown.sub, "stacking vs 01");
        assert!(l00.breakdown.sub < 0.5 * l10.breakdown.sub, "stacking vs 10");
        assert!(!l00.internal_voltages.is_empty());
        assert!(l00.internal_voltages[0] > 0.01, "stack node must float up");
    }

    #[test]
    fn nand_vector_dependence_for_sub_dominated_device() {
        // For the subthreshold-dominated D25, '00' is the minimum
        // leakage vector (paper Section 4, citing ref [8]).
        let totals: Vec<f64> = InputVector::all(2)
            .map(|v| eval_isolated(&tech(), 300.0, CellType::Nand2, v).unwrap().breakdown.total())
            .collect();
        let min_idx =
            totals.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(min_idx, InputVector::parse("00").unwrap().index(), "totals = {totals:?}");
    }

    #[test]
    fn gate_dominated_device_prefers_a_different_vector() {
        // Paper Section 4: for a gate-leakage dominated device the
        // minimum-leakage NAND vector is NOT '00' (it has an ON gate
        // path); one of the mixed vectors wins.
        let tech = Technology::d25_g();
        let totals: Vec<f64> = InputVector::all(2)
            .map(|v| eval_isolated(&tech, 300.0, CellType::Nand2, v).unwrap().breakdown.total())
            .collect();
        let min_idx =
            totals.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_ne!(min_idx, InputVector::parse("00").unwrap().index(), "totals = {totals:?}");
    }

    #[test]
    fn negative_magnitudes_rejected() {
        let v = InputVector::parse("0").unwrap();
        assert!(matches!(
            eval_loaded(&tech(), 300.0, CellType::Inv, v, &[-1.0], 0.0),
            Err(SolverError::BadProblem(_))
        ));
        assert!(matches!(
            eval_loaded(&tech(), 300.0, CellType::Inv, v, &[0.0], -1.0),
            Err(SolverError::BadProblem(_))
        ));
    }

    #[test]
    fn wrong_loading_arity_rejected() {
        let v = InputVector::parse("00").unwrap();
        assert!(matches!(
            eval_loaded(&tech(), 300.0, CellType::Nand2, v, &[0.0], 0.0),
            Err(SolverError::BadProblem(_))
        ));
    }
}
