//! First-order sensitivity characterization and delta-derived libraries.
//!
//! The Monte-Carlo workload perturbs only four technology scalars per
//! die — channel length, oxide thickness, threshold voltage and supply
//! — yet the baseline re-runs the full Newton characterization for
//! every sample. [`characterize_with_sensitivity`] instead runs the
//! *nominal* characterization once with traced solves and, for each
//! variation axis, predicts the perturbed operating point from the
//! factored Jacobian at the solution: with `f(x*, p0) = 0`, a probe
//! step `h` on axis `a` gives `dx ≈ -J⁻¹ · f(x*, p0 + h·e_a)`.
//!
//! The prediction seeds an exact (warm-started, ~2 Newton steps) probe
//! solve, and every stored library value is reduced to a polynomial
//! model of its *logarithm*: each axis is probed at `±h` and `±2h`
//! (`h` ≈ 1σ of the variation model) and fitted with the five-point
//! quartic stencil, which *interpolates* the probes exactly; each axis
//! pair gets a `(+2h,+2h)`/`(-2h,-2h)` corner pair from which a secant
//! cross coefficient `c_ab` is fitted after subtracting the single-axis
//! parts. Leakage is exponential in the threshold shift (a 1σ Vt draw
//! moves subthreshold current severalfold) and its log-slope itself
//! moves with channel length (DIBL and swing), so the log-space form,
//! the high-order single-axis terms, and the cross terms all matter: a
//! die library is derived as
//! `v = v0 · exp(Σ_a P_a(δ_a) + Σ_{a<b} δ_a·δ_b·c_ab)` with `P_a` the
//! per-axis quartic. Values of zero stay zero and sign flips between
//! nominal and probe disable the offending term, so signs are always
//! preserved.
//!
//! [`delta_library`] derives a per-die library from those
//! sensitivities. Each `(cell, vector)` entry is guarded by a
//! linearization-error check: the odd part of what the model misses at
//! the measured corner probes (the cubic-order cross error `μ_k`, the
//! dominant residual term) is extrapolated to the die's draw, and an
//! entry whose estimate exceeds the tolerance falls back to a full
//! Newton characterization of that vector.

use std::collections::BTreeMap;

use nanoleak_device::{LeakageBreakdown, Perturbation, Technology};
use nanoleak_solver::{dc_residual_at, SolverError};

use crate::cell_type::CellType;
use crate::characterize::{
    characterize_vector, record_characterized, CellChar, CharacterizeOptions, VectorChar,
};
use crate::eval::{eval_loaded_traced, loaded_fixture, solve_fixture, CellSolution};
use crate::library::CellLibrary;
use crate::lut::{BreakdownLut, Lut1};
use crate::vector::InputVector;

/// Number of sensitivity axes: Δl, Δtox, ΔVt, ΔVdd — exactly the four
/// fields of a die [`Perturbation`].
pub const SENS_AXES: usize = 4;

/// Single-axis probe step per axis, in physical units
/// (\[m\], \[m\], \[V\], \[V\]). Each axis is probed at `±h` and `±2h`,
/// giving a five-point stencil whose quartic log fit *interpolates*
/// the probes exactly. The steps are roughly one sigma of the default
/// variation model, so `±2h` brackets the draws real dies land on and
/// typical derivations interpolate rather than extrapolate.
pub const PROBE_STEPS: [f64; SENS_AXES] = [2.0e-9, 6.7e-11, 4.2e-2, 3.3e-2];

/// Corner-probe deltas per axis for the pairwise cross terms: `2h`,
/// matching the outermost single-axis probes, so the secant-fitted
/// cross coefficients and the measured corner misfits are
/// representative at ~2σ — the scale that decides whether a die can be
/// delta-derived.
pub const CORNER_STEPS: [f64; SENS_AXES] =
    [2.0 * PROBE_STEPS[0], 2.0 * PROBE_STEPS[1], 2.0 * PROBE_STEPS[2], 2.0 * PROBE_STEPS[3]];

/// Axis pairs carrying a cross-curvature term, in storage order.
pub const SENS_PAIRS: [(usize, usize); 6] = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];

/// Default linearization tolerance, as an estimated *relative* error
/// at the entry's dominant current scale: an entry is delta-derived
/// only while its estimated model error
/// ([`VectorSens::error_estimate`], the measured corner-probe log
/// misfits extrapolated to the draw and weighted by each value's
/// relative magnitude) stays below this bound. The estimate is
/// deliberately conservative; calibration against bit-exact
/// re-characterization puts typical accepted-entry deviations well
/// under 2% (and the Monte-Carlo deviation probe reports the realized
/// error on every fast run).
pub const DEFAULT_DELTA_TOL: f64 = 0.15;

/// `nominal` with the axis deltas applied exactly the way the MC
/// sampler applies a die draw: geometry/threshold deltas on both device
/// flavors, the supply delta on the circuit.
pub fn apply_deltas(nominal: &Technology, deltas: &[f64; SENS_AXES]) -> Technology {
    let p = Perturbation { dl: deltas[0], dtox: deltas[1], dvth: deltas[2], dvdd: deltas[3] };
    let mut tech = nominal.clone();
    tech.nmos = p.apply(&tech.nmos);
    tech.pmos = p.apply(&tech.pmos);
    tech.vdd += deltas[3];
    tech
}

/// Recovers the axis deltas that turn `nominal` into `die`, or `None`
/// when `die` is not expressible as a die draw on `nominal` (different
/// technology family, per-flavor asymmetry, a clamped geometry, any
/// field outside the four axes). The candidate deltas are read off the
/// NMOS design and the supply, then *verified* by reapplying them:
/// only an exact reconstruction qualifies, so a false positive is
/// impossible — at worst a representable die fails the round trip and
/// takes the full-characterization path.
pub fn infer_deltas(nominal: &Technology, die: &Technology) -> Option<[f64; SENS_AXES]> {
    let deltas = [
        die.nmos.geometry.l - nominal.nmos.geometry.l,
        die.nmos.geometry.tox - nominal.nmos.geometry.tox,
        die.nmos.flavor.vth_shift - nominal.nmos.flavor.vth_shift,
        die.vdd - nominal.vdd,
    ];
    if deltas.iter().any(|d| !d.is_finite()) {
        return None;
    }
    (apply_deltas(nominal, &deltas) == *die).then_some(deltas)
}

/// Sensitivity record for one `(cell, vector)` entry.
#[derive(Debug, Clone)]
pub struct VectorSens {
    /// Per-axis log-space slopes for every flattened value of the
    /// entry's [`VectorChar`], in [`flatten_values`] order.
    sens: Vec<[f64; SENS_AXES]>,
    /// Per-axis log-space curvatures, same layout.
    curv: Vec<[f64; SENS_AXES]>,
    /// Per-axis third log-derivatives (zero when the wide probes were
    /// unusable for the value), same layout.
    cub: Vec<[f64; SENS_AXES]>,
    /// Per-axis fourth log-derivatives, same layout.
    qrt: Vec<[f64; SENS_AXES]>,
    /// Pairwise log-space cross curvatures, [`SENS_PAIRS`] order.
    cross: Vec<[f64; 6]>,
    /// Odd corner-probe misfit per pair: the part of the measured
    /// corner shift the single-axis + quadratic-cross model misses and
    /// that flips sign with the corner — cubic-order cross error at the
    /// 2σ corner scale, in log units.
    mu: Vec<[f64; 6]>,
    /// Relative magnitude of each value at the nominal,
    /// `|v_i| / max_j |v_j|`. A log-space misfit on a value only
    /// matters in proportion to the value's share of the entry's
    /// currents: near-zero response-LUT deltas routinely carry huge
    /// log misfits while moving the evaluated leakage by nothing, and
    /// an unweighted gate would clamp most of the fast path's win
    /// away on them.
    weight: Vec<f64>,
}

impl VectorSens {
    /// The delta-derived entry for a die: every value scaled by the
    /// log-space model — per-axis quartic plus pairwise cross terms.
    fn apply(&self, template: &VectorChar, deltas: &[f64; SENS_AXES]) -> VectorChar {
        let v0 = flatten_values(template);
        debug_assert_eq!(v0.len(), self.sens.len());
        let vals: Vec<f64> =
            v0.iter().enumerate().map(|(i, v)| v * self.exponent(i, deltas).exp()).collect();
        rebuild_from_values(template, &vals)
    }

    /// Estimated relative model error at a die draw, extrapolated
    /// from the *measured* corner-probe misfits: the odd (cubic-order)
    /// log misfit `μ_k` grows like `r_a·r_b·max(r_a,r_b)`, where
    /// `r_a = δ_a/h_a` is the draw in corner-step units, and each
    /// value's extrapolated misfit is weighted by the value's relative
    /// magnitude `|v_i| / max_j |v_j|` — a small log error ε on a
    /// value v shifts the entry's currents by ≈ `|v|·ε`, so the
    /// weighted worst is an estimated *relative* error at the entry's
    /// dominant current scale, directly comparable to a relative
    /// tolerance like [`DEFAULT_DELTA_TOL`]. Single-axis error is
    /// excluded by construction (the quartic fit interpolates the
    /// single-axis probes exactly), matching the observation that
    /// cross terms dominate what the model misses. Monotone in the
    /// draw magnitude and costs no solver work.
    fn error_estimate(&self, deltas: &[f64; SENS_AXES]) -> f64 {
        let r: Vec<f64> = (0..SENS_AXES).map(|a| (deltas[a] / CORNER_STEPS[a]).abs()).collect();
        let mut worst = 0.0_f64;
        for i in 0..self.mu.len() {
            let mut est = 0.0;
            for (k, &(a, b)) in SENS_PAIRS.iter().enumerate() {
                est += self.mu[i][k].abs() * r[a] * r[b] * r[a].max(r[b]);
            }
            worst = worst.max(self.weight[i] * est);
        }
        worst
    }

    /// The model exponent for one flattened value at arbitrary deltas
    /// (the same sum [`VectorSens::apply`] exponentiates).
    fn exponent(&self, i: usize, deltas: &[f64; SENS_AXES]) -> f64 {
        let (s, c, t, q, x) =
            (&self.sens[i], &self.curv[i], &self.cub[i], &self.qrt[i], &self.cross[i]);
        let mut e = 0.0;
        for a in 0..SENS_AXES {
            let d = deltas[a];
            let d2 = d * d;
            e += d * s[a] + 0.5 * d2 * c[a] + d2 * d * t[a] / 6.0 + d2 * d2 * q[a] / 24.0;
        }
        for (k, &(a, b)) in SENS_PAIRS.iter().enumerate() {
            e += deltas[a] * deltas[b] * x[k];
        }
        e
    }
}

/// Sensitivities for every vector of one cell, in index order.
#[derive(Debug, Clone)]
pub struct CellSens {
    vectors: Vec<VectorSens>,
}

/// Sensitivities for a whole library, keyed like the library itself.
/// Held in RAM next to the nominal [`CellLibrary`]; never serialized.
#[derive(Debug, Clone)]
pub struct LibrarySens {
    cells: BTreeMap<CellType, CellSens>,
}

/// Outcome of one [`delta_library`] derivation.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaReport {
    /// `(cell, vector)` entries processed.
    pub entries: usize,
    /// Entries that breached the tolerance and were fully re-solved.
    pub fallbacks: usize,
    /// Largest estimated relative model error among all entries
    /// (delta-derived or not) — the signal the fallback gate compares
    /// against `tol`.
    pub max_est: f64,
}

/// Characterizes like [`CellLibrary::characterize`] — the returned
/// library is bit-identical to it — while also extracting per-axis
/// sensitivities from the traced solves. Costs roughly one extra
/// Jacobian factorization plus `4` residual probes per Newton solve; no
/// additional solves.
///
/// # Errors
/// Propagates solver failures, including a singular Jacobian at any
/// solution point.
pub fn characterize_with_sensitivity(
    tech: &Technology,
    temp: f64,
    opts: &CharacterizeOptions,
) -> Result<(CellLibrary, LibrarySens), SolverError> {
    let mut cells = BTreeMap::new();
    let mut sens = BTreeMap::new();
    for &cell in &opts.cells {
        let _span = nanoleak_obs::span!("characterize", cell = cell);
        let started = std::time::Instant::now();
        let mut vectors = Vec::with_capacity(cell.num_vectors());
        let mut svectors = Vec::with_capacity(cell.num_vectors());
        for v in InputVector::all(cell.num_inputs()) {
            let (vc, vs) = characterize_vector_traced(tech, temp, cell, v, opts)?;
            vectors.push(vc);
            svectors.push(vs);
        }
        record_characterized(started.elapsed());
        cells.insert(cell, CellChar::from_vectors(cell, vectors));
        sens.insert(cell, CellSens { vectors: svectors });
    }
    let lib = CellLibrary::from_parts(tech.clone(), temp, opts.clone(), cells);
    Ok((lib, LibrarySens { cells: sens }))
}

/// Derives the library of the die `apply_deltas(nominal.tech, deltas)`
/// from the nominal library and its sensitivities.
///
/// Every entry's model error at `deltas` is estimated from the
/// corner-probe misfits recorded at characterization time
/// ([`VectorSens::error_estimate`]); entries whose estimate exceeds
/// `tol` are fully re-characterized against the die technology.
/// `tol = f64::INFINITY` accepts every entry unconditionally (used for
/// the probe libraries the block-kernel delta tables are compiled
/// from).
///
/// # Errors
/// Propagates solver failures from fallback solves.
pub fn delta_library(
    nominal: &CellLibrary,
    sens: &LibrarySens,
    deltas: &[f64; SENS_AXES],
    tol: f64,
) -> Result<(CellLibrary, DeltaReport), SolverError> {
    let die_tech = apply_deltas(&nominal.tech, deltas);
    let mut report = DeltaReport::default();
    let mut cells = BTreeMap::new();
    for cell in nominal.cell_types() {
        let nchar = nominal.cell(cell).expect("iterating the library's own cells");
        let csens = sens
            .cells
            .get(&cell)
            .ok_or_else(|| SolverError::BadProblem(format!("no sensitivities for {cell}")))?;
        let mut vectors = Vec::with_capacity(nchar.vectors().len());
        for (vc, vs) in nchar.vectors().iter().zip(&csens.vectors) {
            report.entries += 1;
            let est = vs.error_estimate(deltas);
            report.max_est = report.max_est.max(est);
            if est > tol {
                report.fallbacks += 1;
                vectors.push(characterize_vector(
                    &die_tech,
                    nominal.temp,
                    cell,
                    vc.vector,
                    &nominal.options,
                )?);
            } else {
                vectors.push(vs.apply(vc, deltas));
            }
        }
        cells.insert(cell, CellChar::from_vectors(cell, vectors));
    }
    let lib = CellLibrary::from_parts(die_tech, nominal.temp, nominal.options.clone(), cells);
    Ok((lib, report))
}

/// Characterizes one `(cell, vector)` entry with traced solves,
/// returning the entry (bit-identical to
/// [`characterize_vector`]) plus its sensitivity record. For
/// every Newton solve in the sweep, each axis is probed by rebuilding
/// the same fixture under the probe technology, pushing the residual at
/// the nominal solution through the factored Jacobian, and re-reading
/// the leakage at the predicted operating point — so the probe library
/// values follow exactly the quantities the real characterization
/// stores.
fn characterize_vector_traced(
    tech: &Technology,
    temp: f64,
    cell: CellType,
    vector: InputVector,
    opts: &CharacterizeOptions,
) -> Result<(VectorChar, VectorSens), SolverError> {
    // Probe technologies: ±h for each axis (probe `2a` / `2a+1` are
    // the two signs of axis `a`), then a (+h,+h) / (-h,-h) corner pair
    // for each axis pair (probes `8+2k` / `8+2k+1` for pair `k`), then
    // ±2h for each axis (probes `20+2a` / `20+2a+1`) so every axis gets
    // a five-point stencil for the cubic/quartic log terms.
    const CORNER0: usize = 2 * SENS_AXES;
    const WIDE0: usize = CORNER0 + 2 * SENS_PAIRS.len();
    const N_PROBES: usize = WIDE0 + 2 * SENS_AXES;
    let grid = opts.grid();
    let zeros = vec![0.0; cell.num_inputs()];
    let probes: Vec<Technology> = (0..N_PROBES)
        .map(|p| {
            let mut d = [0.0; SENS_AXES];
            let sign = if p % 2 == 0 { 1.0 } else { -1.0 };
            if p < CORNER0 {
                d[p / 2] = sign * PROBE_STEPS[p / 2];
            } else if p < WIDE0 {
                let (a, b) = SENS_PAIRS[(p - CORNER0) / 2];
                d[a] = sign * CORNER_STEPS[a];
                d[b] = sign * CORNER_STEPS[b];
            } else {
                let a = (p - WIDE0) / 2;
                d[a] = sign * 2.0 * PROBE_STEPS[a];
            }
            apply_deltas(tech, &d)
        })
        .collect();

    struct Traced {
        nominal: CellSolution,
        probes: Vec<CellSolution>,
    }
    let eval_all = |il_in: &[f64], il_out: f64| -> Result<Traced, SolverError> {
        let t = eval_loaded_traced(tech, temp, cell, vector, il_in, il_out)?;
        let jac = t
            .trace
            .jacobian
            .as_ref()
            .ok_or_else(|| SolverError::BadProblem("fixture has no unknowns".into()))?;
        let mut probe_sols = Vec::with_capacity(N_PROBES);
        for ptech in &probes {
            let pfx = loaded_fixture(ptech, cell, vector, il_in, il_out)?;
            // f(x*, p0) = 0, so the residual under the probe tech is
            // ∂f/∂p · h and dx = -J⁻¹ f' is the first-order shift of
            // the operating point.
            let mut r = dc_residual_at(&pfx.nl, temp, &t.x_star)?;
            jac.solve(&mut r)?;
            let dv: Vec<f64> = r.iter().map(|d| -d).collect();
            // Solve the probe point exactly, warm-started from the
            // prediction (a couple of Newton steps): the curvature
            // extraction needs true probe values — second differences
            // of *predicted* values would only measure the O(h²)
            // prediction error itself.
            let mut pguess = pfx.guess.clone();
            for (slot, node) in t.trace.unknowns.iter().enumerate() {
                pguess[node.0] = t.x_star[slot] + dv[slot];
            }
            probe_sols.push(solve_fixture(&pfx, temp, &pguess)?);
        }
        Ok(Traced { nominal: t.solution, probes: probe_sols })
    };

    // Mirror characterize_vector's solve sequence exactly: nominal
    // first, then per-pin input sweeps, then the output sweep.
    let nom = eval_all(&zeros, 0.0)?;
    let nominal = nom.nominal.breakdown;
    let probe_nominals: Vec<LeakageBreakdown> = nom.probes.iter().map(|s| s.breakdown).collect();

    let degenerate = |axis: &str| SolverError::BadProblem(format!("degenerate {axis} sweep"));
    let mut input_resp = Vec::with_capacity(cell.num_inputs());
    let mut probe_input_resp: Vec<Vec<BreakdownLut>> = vec![Vec::new(); N_PROBES];
    for pin in 0..cell.num_inputs() {
        let mut deltas = Vec::with_capacity(grid.len());
        let mut pdeltas: Vec<Vec<LeakageBreakdown>> =
            (0..N_PROBES).map(|_| Vec::with_capacity(grid.len())).collect();
        for &x in &grid {
            if x == 0.0 {
                deltas.push(LeakageBreakdown::ZERO);
                for pd in &mut pdeltas {
                    pd.push(LeakageBreakdown::ZERO);
                }
                continue;
            }
            let mut il = zeros.clone();
            il[pin] = x;
            let t = eval_all(&il, 0.0)?;
            deltas.push(t.nominal.breakdown - nominal);
            for (a, pd) in pdeltas.iter_mut().enumerate() {
                pd.push(t.probes[a].breakdown - probe_nominals[a]);
            }
        }
        input_resp
            .push(BreakdownLut::from_samples(&grid, &deltas).ok_or_else(|| degenerate("input"))?);
        for (resp, pd) in probe_input_resp.iter_mut().zip(&pdeltas) {
            resp.push(BreakdownLut::from_samples(&grid, pd).ok_or_else(|| degenerate("input"))?);
        }
    }

    let mut out_deltas = Vec::with_capacity(grid.len());
    let mut probe_out_deltas: Vec<Vec<LeakageBreakdown>> =
        (0..N_PROBES).map(|_| Vec::with_capacity(grid.len())).collect();
    for &x in &grid {
        if x == 0.0 {
            out_deltas.push(LeakageBreakdown::ZERO);
            for pd in &mut probe_out_deltas {
                pd.push(LeakageBreakdown::ZERO);
            }
            continue;
        }
        let t = eval_all(&zeros, x)?;
        out_deltas.push(t.nominal.breakdown - nominal);
        for (a, pd) in probe_out_deltas.iter_mut().enumerate() {
            pd.push(t.probes[a].breakdown - probe_nominals[a]);
        }
    }
    let output_resp =
        BreakdownLut::from_samples(&grid, &out_deltas).ok_or_else(|| degenerate("output"))?;
    let probe_output_resp: Vec<BreakdownLut> = probe_out_deltas
        .iter()
        .map(|pd| BreakdownLut::from_samples(&grid, pd).ok_or_else(|| degenerate("output")))
        .collect::<Result<_, _>>()?;

    let vc = VectorChar {
        cell,
        vector,
        output_level: nom.nominal.output_level,
        nominal,
        pin_currents: nom.nominal.input_pin_currents.clone(),
        input_resp,
        output_resp,
    };

    // Per-probe entries assembled with the same formulas, then reduced
    // to per-axis log-space slope and curvature value by value.
    let v0 = flatten_values(&vc);
    let probe_vals: Vec<Vec<f64>> = probe_input_resp
        .into_iter()
        .zip(probe_output_resp)
        .enumerate()
        .map(|(p, (p_input, p_output))| {
            flatten_values(&VectorChar {
                cell,
                vector,
                output_level: nom.nominal.output_level,
                nominal: probe_nominals[p],
                pin_currents: nom.probes[p].input_pin_currents.clone(),
                input_resp: p_input,
                output_resp: p_output,
            })
        })
        .collect();
    let mut sens = vec![[0.0_f64; SENS_AXES]; v0.len()];
    let mut curv = vec![[0.0_f64; SENS_AXES]; v0.len()];
    let mut cub = vec![[0.0_f64; SENS_AXES]; v0.len()];
    let mut qrt = vec![[0.0_f64; SENS_AXES]; v0.len()];
    let mut cross = vec![[0.0_f64; 6]; v0.len()];
    for a in 0..SENS_AXES {
        let h = PROBE_STEPS[a];
        for (i, &x0) in v0.iter().enumerate() {
            let (s, c, t, q) = log_poly(
                x0,
                probe_vals[2 * a][i],
                probe_vals[2 * a + 1][i],
                probe_vals[WIDE0 + 2 * a][i],
                probe_vals[WIDE0 + 2 * a + 1][i],
                h,
            );
            sens[i][a] = s;
            curv[i][a] = c;
            cub[i][a] = t;
            qrt[i][a] = q;
        }
    }
    let mut mu = vec![[0.0_f64; 6]; v0.len()];
    // Per pair: subtract the (exactly interpolating) single-axis model
    // from each measured corner shift; the even part of what remains is
    // the secant cross coefficient, the odd part is the cubic-order
    // cross misfit that feeds the fallback gate.
    let e_sing = |i: usize, a: usize, d: f64| {
        let d2 = d * d;
        d * sens[i][a]
            + 0.5 * d2 * curv[i][a]
            + d2 * d * cub[i][a] / 6.0
            + d2 * d2 * qrt[i][a] / 24.0
    };
    for (k, &(a, b)) in SENS_PAIRS.iter().enumerate() {
        let (da, db) = (CORNER_STEPS[a], CORNER_STEPS[b]);
        let (pp, mm) = (CORNER0 + 2 * k, CORNER0 + 2 * k + 1);
        for (i, &x0) in v0.iter().enumerate() {
            let (vp, vm) = (probe_vals[pp][i], probe_vals[mm][i]);
            let usable = |v: f64| v != 0.0 && (v < 0.0) == (x0 < 0.0);
            if x0 == 0.0 || !usable(vp) || !usable(vm) {
                continue;
            }
            let l0 = x0.abs().ln();
            let xp = (vp.abs().ln() - l0) - e_sing(i, a, da) - e_sing(i, b, db);
            let xm = (vm.abs().ln() - l0) - e_sing(i, a, -da) - e_sing(i, b, -db);
            cross[i][k] = 0.5 * (xp + xm) / (da * db);
            mu[i][k] = 0.5 * (xp - xm);
        }
    }

    let vmax = v0.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    let weight =
        v0.iter().map(|v| if vmax > 0.0 { v.abs() / vmax } else { 0.0 }).collect::<Vec<_>>();

    Ok((vc, VectorSens { sens, curv, cub, qrt, cross, mu, weight }))
}

/// Log-space slope and curvature of one stored value from its `±h`
/// probes. A zero nominal value, or a probe that is zero or flips
/// sign, degrades gracefully: one-sided slope if a single probe is
/// usable, `(0, 0)` (the value is treated as insensitive) otherwise —
/// so `v0 · exp(·)` always keeps the nominal sign and maps exact
/// zeroes to exact zeroes.
fn log_slope_curv(v0: f64, v_plus: f64, v_minus: f64, h: f64) -> (f64, f64) {
    let usable = |v: f64| v != 0.0 && (v < 0.0) == (v0 < 0.0);
    if v0 == 0.0 {
        return (0.0, 0.0);
    }
    let l0 = v0.abs().ln();
    match (usable(v_plus), usable(v_minus)) {
        (true, true) => {
            let (lp, lm) = (v_plus.abs().ln(), v_minus.abs().ln());
            ((lp - lm) / (2.0 * h), (lp - 2.0 * l0 + lm) / (h * h))
        }
        (true, false) => ((v_plus.abs().ln() - l0) / h, 0.0),
        (false, true) => ((l0 - v_minus.abs().ln()) / h, 0.0),
        (false, false) => (0.0, 0.0),
    }
}

/// Five-point log-polynomial fit for one axis: slope, curvature, third
/// and fourth log-derivatives of `ln|v|` from probes at `±h` and `±2h`.
/// The four stencils are exact for a quartic, so the model *exactly*
/// interpolates all five probe values in log space. When the wide
/// probes are unusable the fit degrades to the three-point slope +
/// curvature; when the near probes are partial it degrades further
/// (one-sided slope or nothing) — exactly [`log_slope_curv`].
fn log_poly(v0: f64, v_p: f64, v_m: f64, v_p2: f64, v_m2: f64, h: f64) -> (f64, f64, f64, f64) {
    let usable = |v: f64| v != 0.0 && (v < 0.0) == (v0 < 0.0);
    let (s, c) = log_slope_curv(v0, v_p, v_m, h);
    if v0 == 0.0 || !usable(v_p) || !usable(v_m) || !usable(v_p2) || !usable(v_m2) {
        return (s, c, 0.0, 0.0);
    }
    let l0 = v0.abs().ln();
    let (lp, lm, lp2, lm2) = (v_p.abs().ln(), v_m.abs().ln(), v_p2.abs().ln(), v_m2.abs().ln());
    let s4 = (lm2 - 8.0 * lm + 8.0 * lp - lp2) / (12.0 * h);
    let c4 = (-lm2 + 16.0 * lm - 30.0 * l0 + 16.0 * lp - lp2) / (12.0 * h * h);
    let t = (-lm2 + 2.0 * lm - 2.0 * lp + lp2) / (2.0 * h * h * h);
    let q = (lm2 - 4.0 * lm + 6.0 * l0 - 4.0 * lp + lp2) / (h * h * h * h);
    (s4, c4, t, q)
}

/// Canonical flattening of every f64 a [`VectorChar`] stores: nominal
/// components, pin currents, then the `ys` of each response table
/// (inputs in pin order, output last; `sub`, `gate`, `btbt` per table).
/// [`rebuild_from_values`] consumes the same order.
fn flatten_values(vc: &VectorChar) -> Vec<f64> {
    let mut out = vec![vc.nominal.sub, vc.nominal.gate, vc.nominal.btbt];
    out.extend_from_slice(&vc.pin_currents);
    for lut in vc.input_resp.iter().chain(std::iter::once(&vc.output_resp)) {
        out.extend_from_slice(lut.sub.ys());
        out.extend_from_slice(lut.gate.ys());
        out.extend_from_slice(lut.btbt.ys());
    }
    out
}

/// Rebuilds a [`VectorChar`] from flattened values, taking grids and
/// discrete fields from `template`.
fn rebuild_from_values(template: &VectorChar, vals: &[f64]) -> VectorChar {
    struct Cursor<'a> {
        vals: &'a [f64],
        pos: usize,
    }
    impl<'a> Cursor<'a> {
        fn take(&mut self, n: usize) -> &'a [f64] {
            let s = &self.vals[self.pos..self.pos + n];
            self.pos += n;
            s
        }
        fn lut(&mut self, tpl: &Lut1) -> Lut1 {
            Lut1::new(tpl.xs().to_vec(), self.take(tpl.ys().len()).to_vec())
                .expect("template grid stays valid")
        }
        fn blut(&mut self, tpl: &BreakdownLut) -> BreakdownLut {
            BreakdownLut {
                sub: self.lut(&tpl.sub),
                gate: self.lut(&tpl.gate),
                btbt: self.lut(&tpl.btbt),
            }
        }
    }
    let mut c = Cursor { vals, pos: 0 };
    let nom = c.take(3);
    let nominal = LeakageBreakdown { sub: nom[0], gate: nom[1], btbt: nom[2] };
    let pin_currents = c.take(template.pin_currents.len()).to_vec();
    let input_resp = template.input_resp.iter().map(|tpl| c.blut(tpl)).collect();
    let output_resp = c.blut(&template.output_resp);
    debug_assert_eq!(c.pos, vals.len());
    VectorChar {
        cell: template.cell,
        vector: template.vector,
        output_level: template.output_level,
        nominal,
        pin_currents,
        input_resp,
        output_resp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> CharacterizeOptions {
        CharacterizeOptions::coarse(&[CellType::Inv, CellType::Nand2])
    }

    #[test]
    fn sensitivity_characterization_is_bit_identical_to_plain() {
        let tech = Technology::d25();
        let plain = CellLibrary::characterize(&tech, 300.0, &opts()).unwrap();
        let (lib, _sens) = characterize_with_sensitivity(&tech, 300.0, &opts()).unwrap();
        assert_eq!(lib, plain, "traced characterization must not move a single bit");
    }

    #[test]
    fn zero_deltas_reproduce_the_nominal_library_exactly() {
        let tech = Technology::d25();
        let (lib, sens) = characterize_with_sensitivity(&tech, 300.0, &opts()).unwrap();
        let (derived, report) =
            delta_library(&lib, &sens, &[0.0; SENS_AXES], DEFAULT_DELTA_TOL).unwrap();
        assert_eq!(derived, lib, "exp(0) scaling must be the identity");
        assert_eq!(report.fallbacks, 0, "a zero draw cannot breach the tolerance");
        assert_eq!(report.max_est, 0.0, "the error estimate is identically zero at zero deltas");
    }

    #[test]
    fn one_sigma_die_is_predicted_within_a_few_percent() {
        let tech = Technology::d25();
        let copts = CharacterizeOptions::coarse(&[CellType::Inv]);
        let (lib, sens) = characterize_with_sensitivity(&tech, 300.0, &copts).unwrap();
        // A representative 1-sigma die draw of the default MC model.
        let deltas = [2.0e-9, 6.7e-11, 0.03, -0.033];
        let (derived, report) = delta_library(&lib, &sens, &deltas, DEFAULT_DELTA_TOL).unwrap();
        assert_eq!(report.fallbacks, 0, "1-sigma must ride the fast path");
        let die = apply_deltas(&tech, &deltas);
        assert_eq!(derived.tech, die);
        let exact = CellLibrary::characterize(&die, 300.0, &copts).unwrap();
        let v = InputVector::parse("0").unwrap();
        let d = derived.vector_char(CellType::Inv, v).unwrap();
        let e = exact.vector_char(CellType::Inv, v).unwrap();
        let rel = (d.nominal.total() - e.nominal.total()).abs() / e.nominal.total();
        assert!(rel < 0.03, "nominal total off by {}%", rel * 100.0);
        // Loaded estimates track too (tables and nominal together).
        let l_d = d.leakage(&[2.0e-6], 1.0e-6).total();
        let l_e = e.leakage(&[2.0e-6], 1.0e-6).total();
        let rel = (l_d - l_e).abs() / l_e;
        assert!(rel < 0.03, "loaded estimate off by {}%", rel * 100.0);
        // And the exact library moved far enough that the delta model
        // is doing real work.
        let nom_total = lib.vector_char(CellType::Inv, v).unwrap().nominal.total();
        assert!(
            (e.nominal.total() - nom_total).abs() / nom_total > 0.3,
            "die draw should move leakage by tens of percent"
        );
    }

    #[test]
    fn tight_tolerance_forces_full_fallback_bit_equal_to_exact() {
        let tech = Technology::d25();
        let copts = CharacterizeOptions::coarse(&[CellType::Inv]);
        let (lib, sens) = characterize_with_sensitivity(&tech, 300.0, &copts).unwrap();
        // Multi-axis so the cross-misfit estimate is strictly positive
        // (single-axis draws are interpolated and estimate zero).
        let deltas = [1.0e-9, 0.0, 0.02, 0.0];
        let (derived, report) = delta_library(&lib, &sens, &deltas, 0.0).unwrap();
        assert_eq!(report.fallbacks, report.entries);
        let die = apply_deltas(&tech, &deltas);
        let exact = CellLibrary::characterize(&die, 300.0, &copts).unwrap();
        assert_eq!(derived, exact, "fallback entries are real solves");
    }

    #[test]
    fn infer_deltas_round_trips_mc_style_draws() {
        let tech = Technology::d25();
        let deltas = [1.3e-9, -2.5e-11, 0.017, -0.008];
        let die = apply_deltas(&tech, &deltas);
        let got = infer_deltas(&tech, &die).expect("die draw must be recognized");
        assert_eq!(apply_deltas(&tech, &got), die);
        // Identity die.
        assert_eq!(infer_deltas(&tech, &tech.clone()), Some([0.0; SENS_AXES]));
        // A technology that differs outside the four axes is rejected.
        let mut alien = die.clone();
        alien.nmos.geometry.w *= 1.01;
        assert_eq!(infer_deltas(&tech, &alien), None);
        // Per-flavor asymmetry (intra-cell mismatch) is rejected too.
        let mut skewed = die.clone();
        skewed.pmos.flavor.vth_shift += 0.01;
        assert_eq!(infer_deltas(&tech, &skewed), None);
    }

    #[test]
    fn probe_library_matches_unchecked_single_axis_delta() {
        // The block-kernel delta tables are compiled from unchecked
        // single-axis probe libraries; their values must be exactly
        // v0 * exp(s * h) with the recorded sensitivity.
        let tech = Technology::d25();
        let copts = CharacterizeOptions::coarse(&[CellType::Inv]);
        let (lib, sens) = characterize_with_sensitivity(&tech, 300.0, &copts).unwrap();
        let mut deltas = [0.0; SENS_AXES];
        deltas[2] = PROBE_STEPS[2];
        let (probe, report) = delta_library(&lib, &sens, &deltas, f64::INFINITY).unwrap();
        assert_eq!(report.fallbacks, 0);
        let v = InputVector::parse("1").unwrap();
        let p = probe.vector_char(CellType::Inv, v).unwrap();
        let n = lib.vector_char(CellType::Inv, v).unwrap();
        // Raising Vt by ~1 sigma (42 mV) must *lower* subthreshold
        // leakage severalfold (the exponential the log-space model
        // captures), and by construction the probe value is exactly
        // interpolated, so the huge shift is still accurate.
        assert!(p.nominal.sub < 0.7 * n.nominal.sub);
        assert!(p.nominal.sub > 0.05 * n.nominal.sub);
    }
}
