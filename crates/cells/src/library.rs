//! The characterized cell library and its process-wide cache.

use std::collections::BTreeMap;
use std::sync::Arc;

use nanoleak_device::Technology;
use nanoleak_solver::SolverError;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::cell_type::CellType;
use crate::characterize::{CellChar, CharacterizeOptions, VectorChar};
use crate::vector::InputVector;

/// A fully characterized standard-cell library for one technology and
/// temperature — the `f(I_L, O_L)` data the paper's Fig. 13 algorithm
/// takes as input.
///
/// Libraries are serde-serializable so a harness can cache them on disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    /// The technology the library was characterized for.
    pub tech: Technology,
    /// Characterization temperature \[K\].
    pub temp: f64,
    /// Options used for the sweeps.
    pub options: CharacterizeOptions,
    cells: BTreeMap<CellType, CellChar>,
}

impl CellLibrary {
    /// Characterizes every cell in `opts.cells`.
    ///
    /// # Errors
    /// Propagates solver failures from the underlying sweeps.
    pub fn characterize(
        tech: &Technology,
        temp: f64,
        opts: &CharacterizeOptions,
    ) -> Result<Self, SolverError> {
        let mut cells = BTreeMap::new();
        for &cell in &opts.cells {
            cells.insert(cell, CellChar::characterize(tech, temp, cell, opts)?);
        }
        Ok(Self { tech: tech.clone(), temp, options: opts.clone(), cells })
    }

    /// Assembles a library from already-characterized cells (the
    /// sensitivity and delta-derivation paths build the map themselves).
    pub(crate) fn from_parts(
        tech: Technology,
        temp: f64,
        options: CharacterizeOptions,
        cells: BTreeMap<CellType, CellChar>,
    ) -> Self {
        Self { tech, temp, options, cells }
    }

    /// The characterization of one cell type, if present.
    pub fn cell(&self, cell: CellType) -> Option<&CellChar> {
        self.cells.get(&cell)
    }

    /// The characterization of one (cell, vector) state, if present.
    pub fn vector_char(&self, cell: CellType, vector: InputVector) -> Option<&VectorChar> {
        self.cells.get(&cell).map(|c| c.vector(vector))
    }

    /// Iterates the characterized cell types.
    pub fn cell_types(&self) -> impl Iterator<Item = CellType> + '_ {
        self.cells.keys().copied()
    }

    /// Number of characterized cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// A process-wide shared library for `tech` at `temp` with default
    /// options, characterized on first use. Characterization takes a
    /// few seconds for the full family; sharing avoids re-running it in
    /// every test or benchmark.
    pub fn shared(tech: &Technology, temp: f64) -> Arc<CellLibrary> {
        Self::shared_with_options(tech, temp, &CharacterizeOptions::default())
    }

    /// Like [`CellLibrary::shared`], but keyed on explicit options.
    ///
    /// The memo key is [`CellLibrary::request_key`] — a hash of the
    /// *full* serialized `(tech, temp, opts)` request — so two
    /// technologies that share a name but differ in any device
    /// parameter (a scaled `vdd`, a tweaked oxide thickness, ...) are
    /// distinct cache entries, matching the discipline of the engine's
    /// on-disk `*.nlc` cache.
    ///
    /// # Panics
    /// Panics if the characterization fails to converge (the default
    /// technologies are guaranteed to).
    pub fn shared_with_options(
        tech: &Technology,
        temp: f64,
        opts: &CharacterizeOptions,
    ) -> Arc<CellLibrary> {
        static CACHE: Mutex<Vec<(u64, Arc<CellLibrary>)>> = Mutex::new(Vec::new());
        let key = Self::request_key(tech, temp, opts);
        let mut cache = CACHE.lock();
        // The key is a 64-bit hash; re-check the full request on a hit
        // so a hash collision can never hand back the wrong physics.
        let matches =
            |lib: &CellLibrary| lib.tech == *tech && lib.temp == temp && lib.options == *opts;
        if let Some((_, lib)) = cache.iter().find(|(k, lib)| *k == key && matches(lib)) {
            return Arc::clone(lib);
        }
        let lib = Arc::new(
            Self::characterize(tech, temp, opts)
                .expect("shared-library characterization must converge"),
        );
        cache.push((key, Arc::clone(&lib)));
        lib
    }

    /// A stable 64-bit key for one characterization request: FNV-1a
    /// over the serialized `(tech, temp, opts)` triple. Every field of
    /// the technology (device designs included) participates, so e.g.
    /// a supply-voltage tweak yields a different key even when the
    /// technology name is unchanged. The engine's disk and RAM caches
    /// key on this same hash.
    pub fn request_key(tech: &Technology, temp: f64, opts: &CharacterizeOptions) -> u64 {
        let request = (tech.clone(), temp, opts.clone());
        let bytes = serde::to_bytes(&request);
        // FNV-1a.
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in &bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts() -> CharacterizeOptions {
        CharacterizeOptions::coarse(&[CellType::Inv, CellType::Nand2])
    }

    #[test]
    fn characterizes_requested_cells_only() {
        let tech = Technology::d25();
        let lib = CellLibrary::characterize(&tech, 300.0, &small_opts()).unwrap();
        assert_eq!(lib.cell_count(), 2);
        assert!(lib.cell(CellType::Inv).is_some());
        assert!(lib.cell(CellType::Nor2).is_none());
        assert!(lib.vector_char(CellType::Nand2, InputVector::parse("10").unwrap()).is_some());
        assert!(lib.vector_char(CellType::Nor3, InputVector::parse("000").unwrap()).is_none());
    }

    #[test]
    fn library_equality_after_clone() {
        let tech = Technology::d25();
        let lib =
            CellLibrary::characterize(&tech, 300.0, &CharacterizeOptions::coarse(&[CellType::Inv]))
                .unwrap();
        let copy = lib.clone();
        assert_eq!(copy, lib);
    }

    #[test]
    fn shared_cache_returns_same_instance() {
        let tech = Technology::d25();
        let opts = CharacterizeOptions::coarse(&[CellType::Inv]);
        let a = CellLibrary::shared_with_options(&tech, 300.0, &opts);
        let b = CellLibrary::shared_with_options(&tech, 300.0, &opts);
        assert!(Arc::ptr_eq(&a, &b));
        // A different temperature is a different cache entry.
        let c = CellLibrary::shared_with_options(&tech, 310.0, &opts);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn shared_cache_distinguishes_same_named_technologies() {
        // Regression: the memo used to key on tech.name (plus a few
        // scalar options), so a scaled-vdd Technology with the same
        // name collided with the pristine one. The full-request key
        // must separate them *and* characterize genuinely different
        // libraries.
        let tech = Technology::d25();
        let mut scaled = tech.clone();
        scaled.vdd *= 0.9;
        assert_eq!(tech.name, scaled.name, "precondition: same name");
        let opts = CharacterizeOptions::coarse(&[CellType::Inv]);
        let a = CellLibrary::shared_with_options(&tech, 300.0, &opts);
        let b = CellLibrary::shared_with_options(&scaled, 300.0, &opts);
        assert!(!Arc::ptr_eq(&a, &b), "scaled-vdd request must not hit the nominal entry");
        assert_ne!(a.tech.vdd, b.tech.vdd);
        let v = InputVector::parse("0").unwrap();
        assert_ne!(
            a.vector_char(CellType::Inv, v).unwrap().nominal,
            b.vector_char(CellType::Inv, v).unwrap().nominal,
            "different supply, different leakage"
        );
        // And the same scaled request hits its own entry.
        let c = CellLibrary::shared_with_options(&scaled, 300.0, &opts);
        assert!(Arc::ptr_eq(&b, &c));
    }

    #[test]
    fn request_keys_separate_full_tech_state() {
        let tech = Technology::d25();
        let opts = CharacterizeOptions::coarse(&[CellType::Inv]);
        let base = CellLibrary::request_key(&tech, 300.0, &opts);
        assert_ne!(base, CellLibrary::request_key(&tech, 310.0, &opts));
        let mut scaled = tech.clone();
        scaled.vdd *= 0.95;
        assert_ne!(base, CellLibrary::request_key(&scaled, 300.0, &opts));
        let denser = CharacterizeOptions { points: opts.points + 1, ..opts.clone() };
        assert_ne!(base, CellLibrary::request_key(&tech, 300.0, &denser));
        // Deterministic across calls.
        assert_eq!(base, CellLibrary::request_key(&tech, 300.0, &opts));
    }
}
