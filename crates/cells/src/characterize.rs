//! Loading-response characterization of standard cells.
//!
//! For every (cell, input vector) this produces what the paper's fast
//! algorithm (Fig. 13) consumes: the nominal leakage components, the
//! signed gate-pin currents (the cell's own contribution to its nets'
//! loading), and per-pin/per-output lookup tables of the leakage
//! *change* as a function of loading-current magnitude. Multi-input
//! loading is combined additively per the paper's eq. (5).

use std::sync::OnceLock;

use nanoleak_device::{LeakageBreakdown, Technology};
use nanoleak_obs::{global, Counter, Histogram};
use nanoleak_solver::SolverError;
use serde::{Deserialize, Serialize};

use crate::cell_type::CellType;
use crate::eval::eval_loaded;
use crate::lut::BreakdownLut;
use crate::vector::InputVector;

/// Process-wide characterization telemetry.
struct CellMetrics {
    cells: Counter,
    seconds: Histogram,
}

impl CellMetrics {
    fn record(&self, elapsed: std::time::Duration) {
        self.cells.inc();
        self.seconds.record_duration(elapsed);
    }
}

pub(crate) fn record_characterized(elapsed: std::time::Duration) {
    cell_metrics().record(elapsed);
}

fn cell_metrics() -> &'static CellMetrics {
    static METRICS: OnceLock<CellMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CellMetrics {
        cells: global().counter(
            "nanoleak_cells_characterized_total",
            "Cell types characterized (all vectors of one cell)",
        ),
        seconds: global().histogram(
            "nanoleak_cells_characterize_seconds",
            "Wall time to characterize one cell type",
        ),
    })
}

/// Options for the characterization sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizeOptions {
    /// Largest loading-current magnitude sampled \[A\]. The paper's
    /// single-gate sweeps reach 3 uA; high-fanout nets in the paper's
    /// benchmark circuits carry more, so the default grid extends to
    /// 7 uA before the tables extrapolate.
    pub max_loading: f64,
    /// Number of samples per axis (including zero).
    pub points: usize,
    /// Cell types to characterize.
    pub cells: Vec<CellType>,
}

impl Default for CharacterizeOptions {
    fn default() -> Self {
        Self { max_loading: 7.0e-6, points: 11, cells: CellType::ALL.to_vec() }
    }
}

impl CharacterizeOptions {
    /// A coarse, fast option set for tests (4 points, given cells).
    pub fn coarse(cells: &[CellType]) -> Self {
        Self { max_loading: 3.5e-6, points: 4, cells: cells.to_vec() }
    }

    /// The loading-magnitude grid.
    pub fn grid(&self) -> Vec<f64> {
        let n = self.points.max(2);
        (0..n).map(|i| self.max_loading * i as f64 / (n - 1) as f64).collect()
    }
}

/// Characterized loading response of one (cell, vector) state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorChar {
    /// Cell type.
    pub cell: CellType,
    /// Input vector.
    pub vector: InputVector,
    /// Output logic level.
    pub output_level: bool,
    /// Nominal leakage components (driver-held pins, zero loading) —
    /// the paper's `L_NOM`.
    pub nominal: LeakageBreakdown,
    /// Signed current each input pin draws from its net at nominal \[A\]
    /// (positive = pulls a logic-1 net down; negative = lifts a
    /// logic-0 net). Summed by the estimator into net loading currents.
    pub pin_currents: Vec<f64>,
    /// Per-input-pin delta tables vs. input-loading magnitude.
    pub input_resp: Vec<BreakdownLut>,
    /// Delta table vs. output-loading magnitude.
    pub output_resp: BreakdownLut,
}

impl VectorChar {
    /// Loading-aware leakage estimate: nominal plus the additive
    /// per-pin input deltas and the output delta (paper eq. 5),
    /// clamped to non-negative components.
    ///
    /// # Panics
    /// Panics if `il_in.len()` differs from the pin count.
    pub fn leakage(&self, il_in: &[f64], il_out: f64) -> LeakageBreakdown {
        assert_eq!(il_in.len(), self.input_resp.len(), "{}: loading arity", self.cell);
        let mut b = self.nominal;
        for (lut, &il) in self.input_resp.iter().zip(il_in) {
            b += lut.eval(il.abs());
        }
        b += self.output_resp.eval(il_out.abs());
        LeakageBreakdown { sub: b.sub.max(0.0), gate: b.gate.max(0.0), btbt: b.btbt.max(0.0) }
    }

    /// The paper's overall loading effect `LD_ALL` (eq. 4) as a
    /// fraction: `(L(il_in, il_out) - L_NOM) / L_NOM` on total leakage.
    pub fn ld_all(&self, il_in: &[f64], il_out: f64) -> f64 {
        let nom = self.nominal.total();
        (self.leakage(il_in, il_out).total() - nom) / nom
    }

    /// Sum of pin-current magnitudes \[A\] — the loading this cell
    /// presents to the nets driving it.
    pub fn total_pin_magnitude(&self) -> f64 {
        self.pin_currents.iter().map(|c| c.abs()).sum()
    }
}

/// Characterizes one (cell, vector) state.
///
/// # Errors
/// Propagates solver failures; malformed sweeps surface as
/// [`SolverError::BadProblem`].
pub fn characterize_vector(
    tech: &Technology,
    temp: f64,
    cell: CellType,
    vector: InputVector,
    opts: &CharacterizeOptions,
) -> Result<VectorChar, SolverError> {
    let grid = opts.grid();
    let zeros = vec![0.0; cell.num_inputs()];
    let nominal_sol = eval_loaded(tech, temp, cell, vector, &zeros, 0.0)?;
    let nominal = nominal_sol.breakdown;

    let mut input_resp = Vec::with_capacity(cell.num_inputs());
    for pin in 0..cell.num_inputs() {
        let mut deltas = Vec::with_capacity(grid.len());
        for &x in &grid {
            if x == 0.0 {
                deltas.push(LeakageBreakdown::ZERO);
                continue;
            }
            let mut il = zeros.clone();
            il[pin] = x;
            let sol = eval_loaded(tech, temp, cell, vector, &il, 0.0)?;
            deltas.push(sol.breakdown - nominal);
        }
        input_resp.push(
            BreakdownLut::from_samples(&grid, &deltas)
                .ok_or_else(|| SolverError::BadProblem("degenerate input sweep".into()))?,
        );
    }

    let mut out_deltas = Vec::with_capacity(grid.len());
    for &x in &grid {
        if x == 0.0 {
            out_deltas.push(LeakageBreakdown::ZERO);
            continue;
        }
        let sol = eval_loaded(tech, temp, cell, vector, &zeros, x)?;
        out_deltas.push(sol.breakdown - nominal);
    }
    let output_resp = BreakdownLut::from_samples(&grid, &out_deltas)
        .ok_or_else(|| SolverError::BadProblem("degenerate output sweep".into()))?;

    Ok(VectorChar {
        cell,
        vector,
        output_level: nominal_sol.output_level,
        nominal,
        pin_currents: nominal_sol.input_pin_currents,
        input_resp,
        output_resp,
    })
}

/// Characterized responses for every vector of one cell type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellChar {
    /// The cell type.
    pub cell: CellType,
    /// One entry per input vector, indexed by [`InputVector::index`].
    vectors: Vec<VectorChar>,
}

impl CellChar {
    /// Characterizes all `2^k` vectors of `cell`.
    ///
    /// # Errors
    /// Propagates solver failures.
    pub fn characterize(
        tech: &Technology,
        temp: f64,
        cell: CellType,
        opts: &CharacterizeOptions,
    ) -> Result<Self, SolverError> {
        let _span = nanoleak_obs::span!("characterize", cell = cell);
        let started = std::time::Instant::now();
        let mut vectors = Vec::with_capacity(cell.num_vectors());
        for v in InputVector::all(cell.num_inputs()) {
            vectors.push(characterize_vector(tech, temp, cell, v, opts)?);
        }
        cell_metrics().record(started.elapsed());
        Ok(Self { cell, vectors })
    }

    /// Assembles a characterization from per-vector entries already in
    /// [`InputVector::index`] order (the sensitivity path builds these
    /// itself, mixing delta-derived and fully re-solved vectors).
    pub(crate) fn from_vectors(cell: CellType, vectors: Vec<VectorChar>) -> Self {
        assert_eq!(vectors.len(), cell.num_vectors(), "{cell}: vector count");
        Self { cell, vectors }
    }

    /// The characterization for an input vector.
    ///
    /// # Panics
    /// Panics if the vector arity does not match the cell.
    pub fn vector(&self, v: InputVector) -> &VectorChar {
        assert_eq!(v.len(), self.cell.num_inputs(), "{}: vector arity", self.cell);
        &self.vectors[v.index()]
    }

    /// All characterized vectors, in index order.
    pub fn vectors(&self) -> &[VectorChar] {
        &self.vectors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_device::consts::NA;

    fn opts() -> CharacterizeOptions {
        CharacterizeOptions::coarse(&[CellType::Inv])
    }

    #[test]
    fn inverter_characterization_matches_direct_eval() {
        let tech = Technology::d25();
        let v = InputVector::parse("0").unwrap();
        let ch = characterize_vector(&tech, 300.0, CellType::Inv, v, &opts()).unwrap();
        // At a grid knot the LUT must reproduce the direct solve
        // exactly (input axis).
        let il = 3.5e-6 / 3.0; // second knot of the 4-point grid
        let direct = eval_loaded(&tech, 300.0, CellType::Inv, v, &[il], 0.0).unwrap();
        let lut = ch.leakage(&[il], 0.0);
        let rel = (lut.total() - direct.breakdown.total()).abs() / direct.breakdown.total();
        assert!(rel < 1e-9, "knot mismatch {rel}");
        // Between knots, interpolation stays within a fraction of a
        // percent of the direct solve.
        let il = 0.8e-6;
        let direct = eval_loaded(&tech, 300.0, CellType::Inv, v, &[il], 0.0).unwrap();
        let lut = ch.leakage(&[il], 0.0);
        let rel = (lut.total() - direct.breakdown.total()).abs() / direct.breakdown.total();
        assert!(rel < 5e-3, "interp error {rel}");
    }

    #[test]
    fn ld_all_zero_at_zero_loading() {
        let tech = Technology::d25();
        let v = InputVector::parse("0").unwrap();
        let ch = characterize_vector(&tech, 300.0, CellType::Inv, v, &opts()).unwrap();
        assert!(ch.ld_all(&[0.0], 0.0).abs() < 1e-12);
    }

    #[test]
    fn input_loading_effect_positive_for_low_input() {
        let tech = Technology::d25();
        let v = InputVector::parse("0").unwrap();
        let ch = characterize_vector(&tech, 300.0, CellType::Inv, v, &opts()).unwrap();
        let ld = ch.ld_all(&[3000.0 * NA], 0.0);
        assert!(ld > 0.01 && ld < 0.25, "LD_ALL = {}%", ld * 100.0);
    }

    #[test]
    fn output_loading_effect_negative() {
        let tech = Technology::d25();
        let v = InputVector::parse("0").unwrap();
        let ch = characterize_vector(&tech, 300.0, CellType::Inv, v, &opts()).unwrap();
        let ld = ch.ld_all(&[0.0], 3000.0 * NA);
        assert!(ld < 0.0 && ld > -0.10, "LD_ALL = {}%", ld * 100.0);
    }

    #[test]
    fn nan_loading_clamps_instead_of_panicking() {
        // A NaN loading magnitude (e.g. from upstream numerical junk)
        // must not panic the segment search; the NaN propagates through
        // the delta tables and the non-negative clamp turns each
        // poisoned component into 0.0.
        let tech = Technology::d25();
        let v = InputVector::parse("0").unwrap();
        let ch = characterize_vector(&tech, 300.0, CellType::Inv, v, &opts()).unwrap();
        let out = ch.leakage(&[f64::NAN], 0.0);
        assert_eq!((out.sub, out.gate, out.btbt), (0.0, 0.0, 0.0));
        let out = ch.leakage(&[0.0], f64::NAN);
        assert_eq!(out.total(), 0.0);
    }

    #[test]
    fn cell_char_indexes_all_vectors() {
        let tech = Technology::d25();
        let copts = CharacterizeOptions::coarse(&[CellType::Nand2]);
        let ch = CellChar::characterize(&tech, 300.0, CellType::Nand2, &copts).unwrap();
        assert_eq!(ch.vectors().len(), 4);
        for v in InputVector::all(2) {
            assert_eq!(ch.vector(v).vector, v);
            assert_eq!(ch.vector(v).output_level, CellType::Nand2.eval_logic(&v.to_bools()));
        }
    }

    #[test]
    fn nand_additive_combination_close_to_joint_solve() {
        // Ablation for eq. (5): loading both NAND2 pins at once; the
        // additive model must stay within ~1% of the joint direct
        // solve on total leakage.
        let tech = Technology::d25();
        let v = InputVector::parse("01").unwrap();
        let copts = CharacterizeOptions::coarse(&[CellType::Nand2]);
        let ch = characterize_vector(&tech, 300.0, CellType::Nand2, v, &copts).unwrap();
        let il = [2000.0 * NA, 2000.0 * NA];
        let joint = eval_loaded(&tech, 300.0, CellType::Nand2, v, &il, 1000.0 * NA).unwrap();
        let additive = ch.leakage(&il, 1000.0 * NA);
        let rel = (additive.total() - joint.breakdown.total()).abs() / joint.breakdown.total();
        assert!(rel < 0.01, "additive vs joint = {}%", rel * 100.0);
    }
}
