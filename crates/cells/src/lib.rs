//! # nanoleak-cells
//!
//! Transistor-level standard cells, loading-aware DC evaluation, and
//! leakage characterization — the cell layer of the *nanoleak*
//! reproduction of the DATE 2005 loading-effect paper.
//!
//! * [`CellType`] / [`topology`] — static-CMOS INV/NAND/NOR topologies
//!   with series-stack internal nodes (the stacking effect emerges from
//!   the solve, not from a formula);
//! * [`eval`] — the paper's Fig. 5 measurement fixture: every input
//!   held by a real transistor-level driver, loading currents injected
//!   with the physically correct sign for the node's logic level;
//! * [`characterize`] / [`CellLibrary`] — per-(cell, vector) nominal
//!   leakage, signed gate-pin currents, and loading-response lookup
//!   tables: exactly the `f(I_L-IN, I_L-OUT)` data the paper's Fig. 13
//!   algorithm consumes;
//! * [`sensitivity`] — delta-from-nominal characterization: traced
//!   Newton solves record per-axis log-sensitivities during the nominal
//!   characterization, so a Monte-Carlo die's library can be *derived*
//!   ([`delta_library`]) instead of re-solved, guarded by a per-entry
//!   linearization-error check;
//! * [`operating`] / [`OperatingPoint`] — first-class operating
//!   conditions (temperature, supply scale) that derive the scaled
//!   [`Technology`](nanoleak_device::Technology) and its characterized
//!   library through the shared request-key cache discipline — the one
//!   condition-derivation path the server's grid jobs, the figure
//!   bins, and the Monte-Carlo workloads all flow through.
//!
//! ## Example: the loading effect on an inverter
//!
//! ```
//! use nanoleak_cells::{eval_loaded, CellType, InputVector};
//! use nanoleak_device::Technology;
//!
//! let tech = Technology::d25();
//! let v = InputVector::parse("0").unwrap();
//! let nominal = eval_loaded(&tech, 300.0, CellType::Inv, v, &[0.0], 0.0)?;
//! let loaded = eval_loaded(&tech, 300.0, CellType::Inv, v, &[2e-6], 0.0)?;
//! // Input loading raises subthreshold leakage (paper Fig. 5a).
//! assert!(loaded.breakdown.sub > nominal.breakdown.sub);
//! # Ok::<(), nanoleak_solver::SolverError>(())
//! ```

pub mod cell_type;
pub mod characterize;
pub mod eval;
pub mod library;
pub mod lut;
pub mod operating;
pub mod sensitivity;
pub mod topology;
pub mod vector;

pub use cell_type::CellType;
pub use characterize::{CellChar, CharacterizeOptions, VectorChar};
pub use eval::{eval_isolated, eval_loaded, loading_injection, CellSolution};
pub use library::CellLibrary;
pub use lut::{BreakdownLut, Lut1};
pub use operating::OperatingPoint;
pub use sensitivity::{
    apply_deltas, characterize_with_sensitivity, delta_library, infer_deltas, DeltaReport,
    LibrarySens, DEFAULT_DELTA_TOL, PROBE_STEPS, SENS_AXES,
};
pub use topology::{add_cell, CellPins};
pub use vector::InputVector;

#[cfg(test)]
mod proptests {
    use super::*;
    use nanoleak_device::Technology;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Any loading combination on any inverter/nand2 state solves
        /// and produces finite, non-negative leakage components.
        #[test]
        fn loaded_eval_always_well_formed(
            cell_pick in 0usize..2,
            vec_bits in 0u8..4,
            il0 in 0.0f64..3.0e-6,
            il1 in 0.0f64..3.0e-6,
            ilo in 0.0f64..3.0e-6,
        ) {
            let tech = Technology::d25();
            let cell = [CellType::Inv, CellType::Nand2][cell_pick];
            let k = cell.num_inputs();
            let v = InputVector::from_bits(vec_bits & ((1u8 << k) - 1), k);
            let il: Vec<f64> = [il0, il1][..k].to_vec();
            let sol = eval_loaded(&tech, 300.0, cell, v, &il, ilo).unwrap();
            prop_assert!(sol.breakdown.sub.is_finite() && sol.breakdown.sub >= 0.0);
            prop_assert!(sol.breakdown.gate.is_finite() && sol.breakdown.gate >= 0.0);
            prop_assert!(sol.breakdown.btbt.is_finite() && sol.breakdown.btbt >= 0.0);
            // Nodes stay near the rails (loading shifts are mV-scale).
            for &vi in &sol.input_voltages {
                prop_assert!(vi > -0.05 && vi < 0.95, "Vin = {vi}");
            }
        }

        /// Subthreshold leakage responds monotonically to input loading
        /// magnitude for the canonical '0'-input inverter.
        #[test]
        fn sub_monotone_in_input_loading(lo in 0.0f64..1.4e-6) {
            let tech = Technology::d25();
            let v = InputVector::parse("0").unwrap();
            let hi = lo + 0.8e-6;
            let a = eval_loaded(&tech, 300.0, CellType::Inv, v, &[lo], 0.0).unwrap();
            let b = eval_loaded(&tech, 300.0, CellType::Inv, v, &[hi], 0.0).unwrap();
            prop_assert!(b.breakdown.sub >= a.breakdown.sub * 0.999);
        }
    }
}
