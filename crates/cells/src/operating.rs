//! First-class operating conditions.
//!
//! Every workload in the stack eventually asks the same question:
//! *analyze this circuit under which conditions?* Before this module,
//! each front-end answered it privately — the server's condition-grid
//! job scaled `Technology::vdd` inline, the temperature figure bins
//! converted Celsius by hand, and the Monte-Carlo fixtures carried a
//! bare `temp` field. [`OperatingPoint`] is the one shared answer: a
//! (temperature, supply-scale) pair that derives the scaled
//! [`Technology`] and, from it, the characterized [`CellLibrary`] —
//! always through [`CellLibrary::request_key`], so the process-wide
//! memo, the engine's RAM memo, and the `*.nlc` disk cache all agree
//! on request identity.
//!
//! The derivation is deliberately tiny (`vdd * vdd_scale`, bit-for-bit
//! the expression the server's grid job used to inline), because its
//! value is not the arithmetic: it is that a `temps × vdd_scales`
//! matrix, a CLI flag pair, and a Monte-Carlo nominal all name the
//! same cache entry when they mean the same physics.

use nanoleak_device::Technology;
use nanoleak_solver::SolverError;
use serde::{Deserialize, Serialize};

use crate::characterize::CharacterizeOptions;
use crate::library::CellLibrary;

/// One operating condition: the temperature the cells run at and the
/// factor applied to the technology's nominal supply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Temperature \[K\].
    pub temp: f64,
    /// Multiplier on the technology's nominal `vdd` (`1.0` = nominal).
    pub vdd_scale: f64,
}

impl Default for OperatingPoint {
    /// Room temperature at nominal supply — the conditions every
    /// single-point workload (CLI estimate/sweep/mlv defaults, the
    /// paper's Section 4 experiments) runs at.
    fn default() -> Self {
        Self { temp: 300.0, vdd_scale: 1.0 }
    }
}

impl OperatingPoint {
    /// An operating point at `temp` kelvin and `vdd_scale` times the
    /// nominal supply.
    pub fn new(temp: f64, vdd_scale: f64) -> Self {
        Self { temp, vdd_scale }
    }

    /// Nominal supply at `temp` kelvin.
    pub fn at_temp(temp: f64) -> Self {
        Self { temp, vdd_scale: 1.0 }
    }

    /// Nominal supply at `t_c` Celsius (the paper's figure axes are in
    /// Celsius; the solver works in kelvin).
    pub fn from_celsius(t_c: f64) -> Self {
        Self::at_temp(t_c + 273.15)
    }

    /// Checks the point is physical: finite positive kelvin and a
    /// finite positive supply scale.
    ///
    /// # Errors
    /// A human-readable description of the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.temp.is_finite() && self.temp > 0.0) {
            return Err(format!("temperature must be positive kelvin, got {}", self.temp));
        }
        if !(self.vdd_scale.is_finite() && self.vdd_scale > 0.0) {
            return Err(format!("vdd scale must be a positive factor, got {}", self.vdd_scale));
        }
        Ok(())
    }

    /// Derives the technology at this operating point: `base` with its
    /// supply scaled by [`OperatingPoint::vdd_scale`].
    ///
    /// The expression is exactly `vdd * vdd_scale` — the same floating
    /// multiply the server's grid job used to perform inline — so
    /// condition matrices produced through this path are bit-identical
    /// to the pre-refactor derivation (and `vdd_scale == 1.0` is an
    /// exact no-op on the supply).
    pub fn tech(&self, base: &Technology) -> Technology {
        let mut scaled = base.clone();
        scaled.vdd *= self.vdd_scale;
        scaled
    }

    /// The cache key of this point's characterization request: the
    /// derived technology and this temperature hashed through
    /// [`CellLibrary::request_key`] — the same key the engine's RAM
    /// memo and `*.nlc` disk cache use.
    pub fn request_key(&self, base: &Technology, opts: &CharacterizeOptions) -> u64 {
        CellLibrary::request_key(&self.tech(base), self.temp, opts)
    }

    /// Characterizes `base` at this operating point (no caching; the
    /// cached paths are [`OperatingPoint::shared_library`] and the
    /// engine's `MemoLibraryCache`).
    ///
    /// # Errors
    /// Propagates solver failures from the characterization sweeps.
    pub fn characterize(
        &self,
        base: &Technology,
        opts: &CharacterizeOptions,
    ) -> Result<CellLibrary, SolverError> {
        CellLibrary::characterize(&self.tech(base), self.temp, opts)
    }

    /// The process-wide shared library for `base` at this operating
    /// point (see [`CellLibrary::shared_with_options`]).
    ///
    /// # Panics
    /// Panics if the characterization fails to converge.
    pub fn shared_library(
        &self,
        base: &Technology,
        opts: &CharacterizeOptions,
    ) -> std::sync::Arc<CellLibrary> {
        CellLibrary::shared_with_options(&self.tech(base), self.temp, opts)
    }

    /// The row-major `temps × vdd_scales` condition matrix: the cell
    /// at flat index `i` is `(temps[i / vdd_scales.len()],
    /// vdd_scales[i % vdd_scales.len()])` — the iteration order of the
    /// server's grid job and of every sequential reference it is
    /// tested against.
    pub fn grid(temps: &[f64], vdd_scales: &[f64]) -> Vec<OperatingPoint> {
        let mut points = Vec::with_capacity(temps.len() * vdd_scales.len());
        for &temp in temps {
            for &vdd_scale in vdd_scales {
                points.push(Self { temp, vdd_scale });
            }
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell_type::CellType;

    #[test]
    fn default_is_room_temperature_nominal_supply() {
        let op = OperatingPoint::default();
        assert_eq!((op.temp, op.vdd_scale), (300.0, 1.0));
        let tech = Technology::d25();
        // Scaling by exactly 1.0 must not move a bit of the supply.
        assert_eq!(op.tech(&tech), tech);
    }

    #[test]
    fn tech_derivation_matches_the_legacy_inline_scaling() {
        // The pre-refactor grid job computed `tech.vdd *= scale`
        // inline; the shared derivation must be bit-identical so
        // refactored condition matrices cannot move.
        let base = Technology::d25();
        for scale in [0.8, 0.9, 1.0, 1.1] {
            let mut legacy = base.clone();
            legacy.vdd *= scale;
            let derived = OperatingPoint::new(300.0, scale).tech(&base);
            assert_eq!(derived, legacy, "scale = {scale}");
            assert_eq!(derived.vdd.to_bits(), legacy.vdd.to_bits(), "scale = {scale}");
        }
    }

    #[test]
    fn celsius_constructor_offsets_exactly() {
        let op = OperatingPoint::from_celsius(25.0);
        assert_eq!(op.temp, 25.0 + 273.15);
        assert_eq!(op.vdd_scale, 1.0);
    }

    #[test]
    fn validation_rejects_nonphysical_points() {
        assert!(OperatingPoint::default().validate().is_ok());
        assert!(OperatingPoint::new(-5.0, 1.0).validate().is_err());
        assert!(OperatingPoint::new(f64::NAN, 1.0).validate().is_err());
        assert!(OperatingPoint::new(300.0, 0.0).validate().is_err());
        assert!(OperatingPoint::new(300.0, f64::INFINITY).validate().is_err());
    }

    #[test]
    fn grid_is_row_major_over_temps_then_scales() {
        let g = OperatingPoint::grid(&[300.0, 350.0], &[0.9, 1.0, 1.1]);
        assert_eq!(g.len(), 6);
        // Flat index i maps to (temps[i / cols], scales[i % cols]).
        for (i, op) in g.iter().enumerate() {
            assert_eq!(op.temp, [300.0, 350.0][i / 3]);
            assert_eq!(op.vdd_scale, [0.9, 1.0, 1.1][i % 3]);
        }
    }

    #[test]
    fn request_keys_follow_the_shared_cache_discipline() {
        let base = Technology::d25();
        let opts = CharacterizeOptions::coarse(&[CellType::Inv]);
        let nominal = OperatingPoint::default().request_key(&base, &opts);
        // Same point, same key (deterministic)...
        assert_eq!(nominal, OperatingPoint::default().request_key(&base, &opts));
        // ...and either axis moving changes it.
        assert_ne!(nominal, OperatingPoint::at_temp(310.0).request_key(&base, &opts));
        assert_ne!(nominal, OperatingPoint::new(300.0, 0.9).request_key(&base, &opts));
        // The key equals hashing the derived request directly — the
        // memo/disk layers cannot disagree with the operating point.
        let op = OperatingPoint::new(325.0, 0.95);
        assert_eq!(
            op.request_key(&base, &opts),
            CellLibrary::request_key(&op.tech(&base), 325.0, &opts)
        );
    }

    #[test]
    fn shared_library_reuses_the_process_memo() {
        let base = Technology::d25();
        let opts = CharacterizeOptions::coarse(&[CellType::Inv]);
        let op = OperatingPoint::new(300.0, 0.97);
        let a = op.shared_library(&base, &opts);
        let b = op.shared_library(&base, &opts);
        assert!(std::sync::Arc::ptr_eq(&a, &b), "one characterization per point");
        assert_eq!(a.temp, 300.0);
        assert_eq!(a.tech.vdd, base.vdd * 0.97);
    }
}
