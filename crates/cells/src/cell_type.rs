//! The static-CMOS standard-cell family.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The cell types with transistor-level topologies in this library.
///
/// Every combinational function in the gate-level flow is normalized to
/// these primitives (plus inverters) by `nanoleak-netlist`, mirroring
/// how the paper's benchmarks map onto a leakage-characterized library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CellType {
    /// Inverter.
    Inv,
    /// 2-input NAND (series NMOS stack, parallel PMOS).
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 4-input NAND.
    Nand4,
    /// 2-input NOR (parallel NMOS, series PMOS stack).
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 4-input NOR.
    Nor4,
    /// AND-OR-INVERT: `Y = !((A AND B) OR C)` — series NMOS pair in
    /// parallel with a single pull-down, the dual on the pull-up.
    Aoi21,
    /// OR-AND-INVERT: `Y = !((A OR B) AND C)` — the AOI dual.
    Oai21,
}

impl CellType {
    /// All cell types, smallest first.
    pub const ALL: [CellType; 9] = [
        CellType::Inv,
        CellType::Nand2,
        CellType::Nand3,
        CellType::Nand4,
        CellType::Nor2,
        CellType::Nor3,
        CellType::Nor4,
        CellType::Aoi21,
        CellType::Oai21,
    ];

    /// Number of input pins.
    pub fn num_inputs(self) -> usize {
        match self {
            CellType::Inv => 1,
            CellType::Nand2 | CellType::Nor2 => 2,
            CellType::Nand3 | CellType::Nor3 | CellType::Aoi21 | CellType::Oai21 => 3,
            CellType::Nand4 | CellType::Nor4 => 4,
        }
    }

    /// Number of transistors in the topology.
    pub fn num_transistors(self) -> usize {
        2 * self.num_inputs()
    }

    /// Canonical lowercase name (`"nand2"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            CellType::Inv => "inv",
            CellType::Nand2 => "nand2",
            CellType::Nand3 => "nand3",
            CellType::Nand4 => "nand4",
            CellType::Nor2 => "nor2",
            CellType::Nor3 => "nor3",
            CellType::Nor4 => "nor4",
            CellType::Aoi21 => "aoi21",
            CellType::Oai21 => "oai21",
        }
    }

    /// Parses a canonical name (case-insensitive).
    pub fn from_name(s: &str) -> Option<Self> {
        let lower = s.to_ascii_lowercase();
        Self::ALL.into_iter().find(|c| c.name() == lower)
    }

    /// The NAND cell with `n` inputs (2..=4).
    pub fn nand(n: usize) -> Option<Self> {
        match n {
            2 => Some(CellType::Nand2),
            3 => Some(CellType::Nand3),
            4 => Some(CellType::Nand4),
            _ => None,
        }
    }

    /// The NOR cell with `n` inputs (2..=4).
    pub fn nor(n: usize) -> Option<Self> {
        match n {
            2 => Some(CellType::Nor2),
            3 => Some(CellType::Nor3),
            4 => Some(CellType::Nor4),
            _ => None,
        }
    }

    /// `true` for the NAND family (including the inverter, which is a
    /// 1-input NAND for stack purposes).
    pub fn is_nand_like(self) -> bool {
        matches!(self, CellType::Inv | CellType::Nand2 | CellType::Nand3 | CellType::Nand4)
    }

    /// How many leading input pins are logically interchangeable: the
    /// full fanin for the symmetric NAND/NOR families, the two pins of
    /// the inner AND/OR pair for AOI21/OAI21 (pin 2 is the lone
    /// branch), and trivially 1 for the inverter.
    ///
    /// Permuting nets within this prefix never changes the cell's
    /// boolean function — but it *does* change which characterized pin
    /// each net loads, which is exactly the leakage degree of freedom
    /// the loading model exposes (and `nanoleak-opt` exploits).
    pub fn commutative_prefix(self) -> usize {
        match self {
            CellType::Aoi21 | CellType::Oai21 => 2,
            other => other.num_inputs(),
        }
    }

    /// Boolean function of the cell.
    ///
    /// # Panics
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval_logic(self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.num_inputs(), "{self}: wrong input count");
        match self {
            CellType::Inv => !inputs[0],
            CellType::Nand2 | CellType::Nand3 | CellType::Nand4 => !inputs.iter().all(|&b| b),
            CellType::Nor2 | CellType::Nor3 | CellType::Nor4 => !inputs.iter().any(|&b| b),
            CellType::Aoi21 => !((inputs[0] && inputs[1]) || inputs[2]),
            CellType::Oai21 => !((inputs[0] || inputs[1]) && inputs[2]),
        }
    }

    /// Number of distinct input vectors (`2^num_inputs`).
    pub fn num_vectors(self) -> usize {
        1 << self.num_inputs()
    }
}

impl fmt::Display for CellType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for c in CellType::ALL {
            assert_eq!(CellType::from_name(c.name()), Some(c));
            assert_eq!(CellType::from_name(&c.name().to_uppercase()), Some(c));
        }
        assert_eq!(CellType::from_name("xor2"), None);
    }

    #[test]
    fn input_counts() {
        assert_eq!(CellType::Inv.num_inputs(), 1);
        assert_eq!(CellType::Nand3.num_inputs(), 3);
        assert_eq!(CellType::Nor4.num_inputs(), 4);
        assert_eq!(CellType::Nor4.num_transistors(), 8);
    }

    #[test]
    fn nand_truth_table() {
        let c = CellType::Nand2;
        assert!(c.eval_logic(&[false, false]));
        assert!(c.eval_logic(&[false, true]));
        assert!(c.eval_logic(&[true, false]));
        assert!(!c.eval_logic(&[true, true]));
    }

    #[test]
    fn nor_truth_table() {
        let c = CellType::Nor2;
        assert!(c.eval_logic(&[false, false]));
        assert!(!c.eval_logic(&[false, true]));
        assert!(!c.eval_logic(&[true, false]));
        assert!(!c.eval_logic(&[true, true]));
    }

    #[test]
    fn inverter_truth_table() {
        assert!(CellType::Inv.eval_logic(&[false]));
        assert!(!CellType::Inv.eval_logic(&[true]));
    }

    #[test]
    fn commutative_prefix_is_symmetric() {
        // The claimed prefix really is symmetric: permuting any two
        // pins inside it never changes the boolean function.
        for c in CellType::ALL {
            let k = c.num_inputs();
            let p = c.commutative_prefix();
            assert!(p >= 1 && p <= k, "{c}");
            for bits in 0..c.num_vectors() {
                let ins: Vec<bool> = (0..k).map(|i| bits >> i & 1 == 1).collect();
                let base = c.eval_logic(&ins);
                for i in 0..p {
                    for j in i + 1..p {
                        let mut swapped = ins.clone();
                        swapped.swap(i, j);
                        assert_eq!(c.eval_logic(&swapped), base, "{c} pins {i}<->{j}");
                    }
                }
            }
        }
        // AOI/OAI pin 2 is genuinely asymmetric.
        assert_eq!(CellType::Aoi21.commutative_prefix(), 2);
        assert!(
            CellType::Aoi21.eval_logic(&[false, false, true])
                != CellType::Aoi21.eval_logic(&[false, true, false])
        );
    }

    #[test]
    fn builders_by_arity() {
        assert_eq!(CellType::nand(2), Some(CellType::Nand2));
        assert_eq!(CellType::nand(5), None);
        assert_eq!(CellType::nor(4), Some(CellType::Nor4));
        assert_eq!(CellType::nor(1), None);
    }

    #[test]
    #[should_panic(expected = "wrong input count")]
    fn wrong_arity_panics() {
        CellType::Nand2.eval_logic(&[true]);
    }
}
