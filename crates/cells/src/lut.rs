//! Small interpolation tables for the characterized loading responses.

use nanoleak_device::LeakageBreakdown;
use serde::{Deserialize, Serialize};

/// A one-dimensional piecewise-linear table `y(x)` with linear
/// extrapolation beyond the sampled range.
///
/// ```
/// use nanoleak_cells::Lut1;
/// let lut = Lut1::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 15.0]).unwrap();
/// assert_eq!(lut.eval(0.5), 5.0);
/// assert_eq!(lut.eval(3.0), 20.0); // extrapolated from the last segment
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lut1 {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl Lut1 {
    /// Creates a table from strictly increasing abscissae.
    ///
    /// Returns `None` if fewer than two points are given, lengths
    /// differ, or `xs` is not strictly increasing.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Option<Self> {
        if xs.len() < 2 || xs.len() != ys.len() {
            return None;
        }
        if xs.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return None;
        }
        Some(Self { xs, ys })
    }

    /// Interpolated (or extrapolated) value at `x`.
    ///
    /// A NaN `x` yields a NaN result (it total-orders above every
    /// finite knot, so the last segment's extrapolation propagates the
    /// NaN) — never a panic.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        // Segment selection: clamp to the end segments for
        // extrapolation. total_cmp keeps the search well-defined for
        // NaN inputs, where partial_cmp would panic.
        let seg = match self.xs.binary_search_by(|v| v.total_cmp(&x)) {
            Ok(i) => return self.ys[i],
            Err(0) => 0,
            Err(i) if i >= n => n - 2,
            Err(i) => i - 1,
        };
        let (x0, x1) = (self.xs[seg], self.xs[seg + 1]);
        let (y0, y1) = (self.ys[seg], self.ys[seg + 1]);
        // Lerp with the normalized offset factored out: one division,
        // and the exact operation order the compiled estimator
        // (`nanoleak-core`'s plan) replicates for bit-identity.
        let d = (x - x0) / (x1 - x0);
        y0 + d * (y1 - y0)
    }

    /// The sampled abscissae.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The sampled ordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Largest sampled abscissa.
    pub fn x_max(&self) -> f64 {
        *self.xs.last().expect("lut has at least two points")
    }
}

/// Per-component delta tables: loading magnitude \[A\] to leakage
/// *change* \[A\] for each mechanism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakdownLut {
    /// Subthreshold delta.
    pub sub: Lut1,
    /// Gate-tunneling delta.
    pub gate: Lut1,
    /// Junction BTBT delta.
    pub btbt: Lut1,
}

impl BreakdownLut {
    /// Builds the three tables from a common abscissa grid and sampled
    /// breakdown deltas. Returns `None` on malformed inputs.
    pub fn from_samples(xs: &[f64], deltas: &[LeakageBreakdown]) -> Option<Self> {
        if xs.len() != deltas.len() {
            return None;
        }
        Some(Self {
            sub: Lut1::new(xs.to_vec(), deltas.iter().map(|d| d.sub).collect())?,
            gate: Lut1::new(xs.to_vec(), deltas.iter().map(|d| d.gate).collect())?,
            btbt: Lut1::new(xs.to_vec(), deltas.iter().map(|d| d.btbt).collect())?,
        })
    }

    /// Interpolated delta breakdown at loading magnitude `x` \[A\].
    pub fn eval(&self, x: f64) -> LeakageBreakdown {
        LeakageBreakdown { sub: self.sub.eval(x), gate: self.gate.eval(x), btbt: self.btbt.eval(x) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_malformed_tables() {
        assert!(Lut1::new(vec![0.0], vec![1.0]).is_none());
        assert!(Lut1::new(vec![0.0, 1.0], vec![1.0]).is_none());
        assert!(Lut1::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_none());
        assert!(Lut1::new(vec![1.0, 0.0], vec![1.0, 2.0]).is_none());
        assert!(Lut1::new(vec![0.0, f64::NAN], vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn exact_knots_are_returned() {
        let lut = Lut1::new(vec![0.0, 1.0, 4.0], vec![1.0, 3.0, 9.0]).unwrap();
        assert_eq!(lut.eval(0.0), 1.0);
        assert_eq!(lut.eval(1.0), 3.0);
        assert_eq!(lut.eval(4.0), 9.0);
    }

    #[test]
    fn interpolation_is_linear_within_segments() {
        let lut = Lut1::new(vec![0.0, 2.0], vec![0.0, 10.0]).unwrap();
        assert!((lut.eval(0.6) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn extrapolation_uses_end_segments() {
        let lut = Lut1::new(vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 4.0]).unwrap();
        assert!((lut.eval(0.0) - 0.0).abs() < 1e-12); // slope 1 below
        assert!((lut.eval(4.0) - 6.0).abs() < 1e-12); // slope 2 above
    }

    #[test]
    fn breakdown_lut_round_trips_samples() {
        let xs = [0.0, 1e-6, 2e-6];
        let deltas = [
            LeakageBreakdown::ZERO,
            LeakageBreakdown { sub: 1e-9, gate: -2e-10, btbt: 0.0 },
            LeakageBreakdown { sub: 2e-9, gate: -3e-10, btbt: -1e-11 },
        ];
        let b = BreakdownLut::from_samples(&xs, &deltas).unwrap();
        let mid = b.eval(0.5e-6);
        assert!((mid.sub - 0.5e-9).abs() < 1e-18);
        assert!((mid.gate + 1e-10).abs() < 1e-18);
        let at = b.eval(2e-6);
        assert!((at.btbt + 1e-11).abs() < 1e-20);
    }

    #[test]
    fn breakdown_lut_rejects_mismatched_lengths() {
        assert!(BreakdownLut::from_samples(&[0.0], &[]).is_none());
    }

    #[test]
    fn nan_input_propagates_instead_of_panicking() {
        let lut = Lut1::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 15.0]).unwrap();
        assert!(lut.eval(f64::NAN).is_nan());
        let b = BreakdownLut::from_samples(
            &[0.0, 1.0],
            &[LeakageBreakdown::ZERO, LeakageBreakdown { sub: 1.0, gate: 2.0, btbt: 3.0 }],
        )
        .unwrap();
        let out = b.eval(f64::NAN);
        assert!(out.sub.is_nan() && out.gate.is_nan() && out.btbt.is_nan());
    }
}
