//! Characterization cost: what it takes to build the f(I_L, O_L)
//! tables the estimator consumes (a one-off per technology).

use criterion::{criterion_group, criterion_main, Criterion};
use nanoleak_cells::{
    characterize::characterize_vector, CellType, CharacterizeOptions, InputVector,
};
use nanoleak_device::Technology;

fn bench_characterize(c: &mut Criterion) {
    let tech = Technology::d25();
    let mut group = c.benchmark_group("characterize");
    group.sample_size(10);
    group.bench_function("inv_vector_8pt", |b| {
        b.iter(|| {
            characterize_vector(
                &tech,
                300.0,
                CellType::Inv,
                InputVector::parse("0").unwrap(),
                &CharacterizeOptions::default(),
            )
            .unwrap()
        })
    });
    group.bench_function("nand2_vector_8pt", |b| {
        b.iter(|| {
            characterize_vector(
                &tech,
                300.0,
                CellType::Nand2,
                InputVector::parse("01").unwrap(),
                &CharacterizeOptions::default(),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_characterize);
criterion_main!(benches);
