//! Ablation timings for the design choices called out in DESIGN.md:
//! LUT lookups vs. per-gate direct solves vs. the no-loading baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use nanoleak_cells::CellLibrary;
use nanoleak_core::{estimate, EstimatorMode};
use nanoleak_device::Technology;
use nanoleak_netlist::generate::{random_circuit, RandomCircuitSpec};
use nanoleak_netlist::normalize::normalize;
use nanoleak_netlist::Pattern;
use rand::SeedableRng;

fn bench_modes(c: &mut Criterion) {
    let tech = Technology::d25();
    let lib = CellLibrary::shared(&tech, 300.0);
    let circuit =
        normalize(&random_circuit(&RandomCircuitSpec::new("abl", 12, 6, 300, 8, 42))).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let pattern = Pattern::random(&circuit, &mut rng);

    let mut group = c.benchmark_group("estimator_modes_300gates");
    group.bench_function("no_loading", |b| {
        b.iter(|| estimate(&circuit, &lib, &pattern, EstimatorMode::NoLoading).unwrap())
    });
    group.bench_function("lut", |b| {
        b.iter(|| estimate(&circuit, &lib, &pattern, EstimatorMode::Lut).unwrap())
    });
    group.sample_size(10);
    group.bench_function("direct_solve", |b| {
        b.iter(|| estimate(&circuit, &lib, &pattern, EstimatorMode::DirectSolve).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
