//! Compiled-plan vs legacy per-pattern estimation on the s1196-sized
//! benchmark, the 64-lane block kernel on the same workload, plus
//! single-thread sweep throughput (vectors/sec) on both the scalar
//! and block engine paths. `cargo run --release -p nanoleak-bench
//! --bin bench_sweep` records the committed `BENCH_sweep.json`
//! baseline from the same workload.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nanoleak_cells::CharacterizeOptions;
use nanoleak_core::{estimate, CompiledEstimator, EstimatorMode, LANES};
use nanoleak_device::Technology;
use nanoleak_engine::{pattern_for_index, sweep, LibraryCache, SweepConfig};
use nanoleak_netlist::generate::iscas_like;
use nanoleak_netlist::normalize::normalize;

fn bench_estimator(c: &mut Criterion) {
    let tech = Technology::d25();
    // Production-resolution library through the disk cache — the same
    // workload `bench_sweep` records as BENCH_sweep.json.
    let (lib, _) = LibraryCache::default_location()
        .load_or_characterize(&tech, 300.0, &CharacterizeOptions::default())
        .expect("characterize library");
    let circuit = normalize(&iscas_like("s1196").unwrap()).unwrap();
    let pattern = pattern_for_index(&circuit, 2005, 0);

    let mut group = c.benchmark_group("estimate_s1196_per_pattern");
    group.sample_size(10);
    group.bench_function("legacy_estimate", |b| {
        b.iter(|| estimate(&circuit, &lib, black_box(&pattern), EstimatorMode::Lut).unwrap())
    });
    let plan = CompiledEstimator::compile(&circuit, &lib).unwrap();
    let mut scratch = plan.scratch();
    group.bench_function("compiled_estimate_into", |b| {
        b.iter(|| {
            plan.estimate_into(&mut scratch, black_box(&pattern), EstimatorMode::Lut).unwrap()
        })
    });
    // One 64-pattern block through the word-parallel kernel; divide
    // the reported time by 64 for the per-pattern figure.
    plan.prepare_block();
    let mut block_scratch = plan.block_scratch();
    group.bench_function("block_estimate_64_lanes", |b| {
        b.iter(|| {
            plan.estimate_index_block_into(
                &mut block_scratch,
                black_box(2005),
                0,
                LANES,
                EstimatorMode::Lut,
            )
            .unwrap()
        })
    });
    group.finish();

    // End-to-end sweep throughput on the compiled path (pattern
    // generation + estimation + reduction), single thread so the
    // number is comparable across hosts.
    let mut group = c.benchmark_group("sweep_s1196_throughput");
    group.sample_size(10);
    let config = SweepConfig { vectors: 256, threads: 1, lanes: 1, ..Default::default() };
    group.bench_function("compiled_sweep_256v_1t", |b| {
        b.iter(|| sweep(&circuit, &lib, &config).unwrap())
    });
    let block_config = SweepConfig { lanes: 64, ..config };
    group.bench_function("block_sweep_256v_1t", |b| {
        b.iter(|| sweep(&circuit, &lib, &block_config).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_estimator);
criterion_main!(benches);
