//! Cell-level DC solve throughput: the kernel under both the
//! characterization sweeps and the reference simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use nanoleak_cells::{eval_isolated, eval_loaded, CellType, InputVector};
use nanoleak_device::Technology;

fn bench_cells(c: &mut Criterion) {
    let tech = Technology::d25();
    let mut group = c.benchmark_group("cell_eval");
    group.bench_function("inv_isolated", |b| {
        b.iter(|| {
            eval_isolated(&tech, 300.0, CellType::Inv, InputVector::parse("0").unwrap()).unwrap()
        })
    });
    group.bench_function("inv_loaded_fixture", |b| {
        b.iter(|| {
            eval_loaded(
                &tech,
                300.0,
                CellType::Inv,
                InputVector::parse("0").unwrap(),
                &[2e-6],
                1e-6,
            )
            .unwrap()
        })
    });
    group.bench_function("nand4_loaded_fixture", |b| {
        b.iter(|| {
            eval_loaded(
                &tech,
                300.0,
                CellType::Nand4,
                InputVector::parse("0110").unwrap(),
                &[1e-6, 0.0, 2e-6, 0.0],
                1e-6,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cells);
criterion_main!(benches);
