//! Sweep-engine throughput: patterns/sec vs. thread count on the
//! s1196-sized benchmark, plus the single-pattern baseline the engine
//! multiplies.

use criterion::{criterion_group, criterion_main, Criterion};
use nanoleak_cells::{CellLibrary, CellType, CharacterizeOptions};
use nanoleak_device::Technology;
use nanoleak_engine::{sweep, SweepConfig};
use nanoleak_netlist::generate::iscas_like;
use nanoleak_netlist::normalize::normalize;

fn bench_sweep(c: &mut Criterion) {
    let tech = Technology::d25();
    let lib = CellLibrary::shared_with_options(
        &tech,
        300.0,
        &CharacterizeOptions::coarse(&CellType::ALL),
    );
    let circuit = normalize(&iscas_like("s1196").unwrap()).unwrap();
    let vectors = 64;

    let mut group = c.benchmark_group("sweep_s1196_64_vectors");
    group.sample_size(10);
    for threads in [1, 2, 4, 8] {
        let config = SweepConfig { vectors, threads, ..Default::default() };
        group.bench_function(&format!("threads_{threads}"), |b| {
            b.iter(|| sweep(&circuit, &lib, &config).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
