//! The paper's headline runtime claim: the Fig. 13 estimator is
//! ~1000x faster than full (SPICE-class) circuit simulation.
//!
//! Benchmarks one-pattern leakage analysis of the s838-sized benchmark
//! with the LUT estimator vs. the full nonlinear reference.

use criterion::{criterion_group, criterion_main, Criterion};
use nanoleak_cells::CellLibrary;
use nanoleak_core::{estimate, reference_leakage, EstimatorMode, ReferenceOptions};
use nanoleak_device::Technology;
use nanoleak_netlist::generate::iscas_like;
use nanoleak_netlist::normalize::normalize;
use nanoleak_netlist::Pattern;
use rand::SeedableRng;

fn bench_speedup(c: &mut Criterion) {
    let tech = Technology::d25();
    let lib = CellLibrary::shared(&tech, 300.0);
    let circuit = normalize(&iscas_like("s838").unwrap()).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let pattern = Pattern::random(&circuit, &mut rng);

    let mut group = c.benchmark_group("s838_per_vector");
    group.bench_function("estimator_lut", |b| {
        b.iter(|| estimate(&circuit, &lib, &pattern, EstimatorMode::Lut).unwrap())
    });
    group.sample_size(10);
    group.bench_function("reference_full_solve", |b| {
        b.iter(|| {
            reference_leakage(&circuit, &tech, 300.0, &pattern, &ReferenceOptions::default())
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_speedup);
criterion_main!(benches);
