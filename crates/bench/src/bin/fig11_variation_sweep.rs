//! Regenerates paper Fig. 11 (loading vs inter-die Vt sigma).
use nanoleak_bench::figures::fig11;

fn main() {
    let mut opts = fig11::Options::default();
    if let Some(s) = nanoleak_bench::arg_value("--samples") {
        opts.samples = s.parse().expect("--samples takes an integer");
    }
    fig11::run(&opts);
}
