//! Regenerates paper Fig. 5 (inverter input/output loading effect).
use nanoleak_bench::figures::fig05;

fn main() {
    let mut opts = fig05::Options::default();
    if let Some(p) = nanoleak_bench::arg_value("--points") {
        opts.points = p.parse().expect("--points takes an integer");
    }
    fig05::run(&opts);
}
