//! Regenerates paper Fig. 10 (Monte-Carlo leakage distributions).
use nanoleak_bench::figures::fig10;

fn main() {
    let mut opts = fig10::Options::default();
    if let Some(s) = nanoleak_bench::arg_value("--samples") {
        opts.samples = s.parse().expect("--samples takes an integer");
    }
    fig10::run(&opts);
}
