//! Regenerates paper Fig. 9 (temperature dependence of LD_ALL).
use nanoleak_bench::figures::fig09;

fn main() {
    let mut opts = fig09::Options::default();
    if let Some(p) = nanoleak_bench::arg_value("--points") {
        opts.points = p.parse().expect("--points takes an integer");
    }
    fig09::run(&opts);
}
