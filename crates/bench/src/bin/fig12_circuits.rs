//! Regenerates paper Fig. 12 (circuit-level validation and loading
//! statistics on the benchmark suite).
use nanoleak_bench::figures::fig12;

fn main() {
    let mut opts = fig12::Options::default();
    if let Some(v) = nanoleak_bench::arg_value("--vectors") {
        opts.vectors = v.parse().expect("--vectors takes an integer");
    }
    if let Some(v) = nanoleak_bench::arg_value("--reference-vectors") {
        opts.reference_vectors = v.parse().expect("--reference-vectors takes an integer");
    }
    if nanoleak_bench::arg_flag("--skip-reference") {
        opts.skip_reference = true;
    }
    fig12::run(&opts);
}
