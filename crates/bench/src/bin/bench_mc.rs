//! Records the Monte-Carlo throughput baseline (`BENCH_mc.json`):
//! single-thread samples/sec of the variation workloads —
//!
//! * the paper's paired **inverter fixture** (`run_inverter_mc`,
//!   transistor-level, per-device intra-die variation),
//! * the **exact circuit-level MC** (`McMode::Exact`: one perturbed
//!   die per sample characterized into a library and estimated on the
//!   compiled plan) on a small ISCAS circuit, and
//! * the **fast circuit-level MC** (`McMode::Fast`: dies derived from
//!   the nominal library's traced sensitivities, both arms through
//!   the 64-lane block kernel), measured against the exact arm —
//!
//! and verifies along the way that a re-run of each seed reproduces
//! the summary bit-for-bit (the determinism the engine tests pin, here
//! checked on the exact configuration being measured). The fast arm
//! must clear a **5x** speedup floor over the exact arm, and its
//! measured max/mean deviation from the exact path (the engine's
//! deviation probe) is recorded in the JSON.
//!
//! The one traced nominal characterization is warmed into the memo
//! before the fast arm is timed — matching the long-lived server,
//! where the sensitivity build is paid once per nominal request, not
//! per job — and its cost is recorded separately (`sens_build`).
//!
//! Circuit samples pay a per-die characterization, so the baseline is
//! recorded on the coarse 4-point grid (like the CI smoke paths); the
//! JSON carries `grid_points` so numbers are never compared across
//! resolutions. `--coarse` is therefore the default — pass `--full`
//! for the production 11-point grid if you have minutes to spare.
//!
//! ```text
//! cargo run --release -p nanoleak-bench --bin bench_mc -- \
//!     [--circuit s838] [--samples 8] [--fast-samples 64] \
//!     [--fixture-samples 64] [--full] [--out BENCH_mc.json]
//! ```

use std::time::Instant;

use nanoleak_device::Technology;
use nanoleak_engine::{mc_streaming_mode, McMode, MemoLibraryCache};
use nanoleak_netlist::generate::iscas_like;
use nanoleak_netlist::normalize::normalize;
use nanoleak_variation::{char_opts_for, run_inverter_mc, CircuitMcConfig, McConfig};

/// Patterns averaged per die — a full block so the fast arm's loaded
/// and unloaded fixtures both exercise the 64-lane kernel.
const VECTORS: usize = 64;

fn main() {
    let mut circuit_name = "s838".to_string();
    let mut samples = 8usize;
    let mut fast_samples = 64usize;
    let mut fixture_samples = 64usize;
    let mut full = false;
    let mut out = "BENCH_mc.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match arg.as_str() {
            "--circuit" => circuit_name = value("--circuit"),
            "--samples" => samples = value("--samples").parse().expect("--samples: integer"),
            "--fast-samples" => {
                fast_samples = value("--fast-samples").parse().expect("--fast-samples: integer");
            }
            "--fixture-samples" => {
                fixture_samples =
                    value("--fixture-samples").parse().expect("--fixture-samples: integer");
            }
            "--full" => full = true,
            "--coarse" => full = false,
            "--out" => out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(
        samples > 0 && fast_samples > 0 && fixture_samples > 0,
        "need at least one sample per arm"
    );

    let tech = Technology::d25();

    // Capture the run as spans so the baseline JSON records where the
    // wall time went — the fixture stage plus the engine's own
    // estimate/merge/library/characterize/library-sens spans from the
    // cold runs.
    nanoleak_obs::begin_capture();

    // ---- Inverter fixture (transistor level, single thread). ----
    let fixture_cfg =
        McConfig { samples: fixture_samples, seed: 2005, threads: 1, ..Default::default() };
    let t0 = Instant::now();
    let fixture = {
        let _span = nanoleak_obs::span!("fixture", samples = fixture_samples);
        run_inverter_mc(&tech, &fixture_cfg).expect("fixture mc")
    };
    let fixture_secs = t0.elapsed().as_secs_f64();
    let again = run_inverter_mc(&tech, &fixture_cfg).expect("fixture mc rerun");
    assert_eq!(fixture, again, "fixture must reproduce bit-for-bit");
    let fixture_sps = fixture_samples as f64 / fixture_secs.max(1e-9);

    // ---- Circuit-level MC, exact arm (one library per die). ----
    let circuit = normalize(&iscas_like(&circuit_name).expect("known circuit")).unwrap();
    let exact_cfg = CircuitMcConfig {
        samples,
        seed: 2005,
        threads: 1,
        vectors: VECTORS,
        char_opts: char_opts_for(&circuit, !full),
        ..Default::default()
    };
    // One memo for both arms: the fast arm's deviation probe re-runs
    // leading dies exactly, and those libraries are already resident
    // from the exact arm (same seed, same request keys).
    let cache = MemoLibraryCache::memory_only();
    let exact = mc_streaming_mode(&circuit, &tech, &cache, &exact_cfg, McMode::Exact, 0, |_| true)
        .expect("exact circuit mc")
        .expect("not cancelled");
    let exact_sps = exact.telemetry.samples_per_sec;

    // ---- Sensitivity build (the once-per-nominal traced solve). ----
    let t0 = Instant::now();
    cache
        .get_or_characterize_with_sens(
            &exact_cfg.op.tech(&tech),
            exact_cfg.op.temp,
            &exact_cfg.char_opts,
        )
        .expect("traced nominal characterization");
    let sens_build_secs = t0.elapsed().as_secs_f64();

    // ---- Fast arm (dies derived from nominal sensitivities). ----
    let fast_cfg = CircuitMcConfig { samples: fast_samples, ..exact_cfg.clone() };
    let fast = mc_streaming_mode(&circuit, &tech, &cache, &fast_cfg, McMode::fast(), 0, |_| true)
        .expect("fast circuit mc")
        .expect("not cancelled");
    let fast_sps = fast.telemetry.samples_per_sec;
    let fast_report = fast.summary.fast.expect("fast runs self-report");

    // Only the cold runs are captured: the warm re-runs below would
    // double-count the estimate/merge stages.
    let trace = nanoleak_obs::end_capture();
    let stage_ms = |name: &str| trace.total_us(name) as f64 / 1e3;

    // Exact re-run through the warm memo: bit-identical and solver-free.
    let solves = cache.stats().characterizations;
    let warm = mc_streaming_mode(&circuit, &tech, &cache, &exact_cfg, McMode::Exact, 0, |_| true)
        .expect("warm exact mc")
        .expect("not cancelled");
    assert_eq!(exact.summary, warm.summary, "exact MC must reproduce bit-for-bit");
    assert_eq!(cache.stats().characterizations, solves, "warm re-run must not re-solve");
    // Fast re-run: derivation is deterministic, deviation probe included.
    let fast_again =
        mc_streaming_mode(&circuit, &tech, &cache, &fast_cfg, McMode::fast(), 0, |_| true)
            .expect("fast mc rerun")
            .expect("not cancelled");
    assert_eq!(fast.summary, fast_again.summary, "fast MC must reproduce bit-for-bit");

    // The tentpole's floor: delta-from-nominal must buy at least 5x
    // (the recorded baselines land well above; see BENCH_mc.json).
    let speedup = fast_sps / exact_sps.max(1e-9);
    assert!(
        speedup >= 5.0,
        "fast arm speedup {speedup:.2}x below the 5x floor \
         (exact {exact_sps:.3} samples/s, fast {fast_sps:.3} samples/s)"
    );
    assert!(
        fast_report.max_deviation.is_finite() && fast_report.max_deviation < 0.15,
        "fast arm drifted from the exact path: {fast_report:?}"
    );

    let json = format!(
        "{{\n  \"bench\": \"mc_throughput_single_thread\",\n  \
         \"fixture\": {{\n    \"samples\": {fixture_samples},\n    \
         \"samples_per_sec\": {:.2},\n    \"mean_shift_pct\": {:.3}\n  }},\n  \
         \"circuit\": {{\n    \"name\": \"{circuit_name}\",\n    \"gates\": {},\n    \
         \"grid_points\": {},\n    \"vectors\": {VECTORS},\n    \
         \"exact\": {{\n      \"samples\": {samples},\n      \
         \"samples_per_sec\": {:.3},\n      \"mean_shift_pct\": {:.3},\n      \
         \"std_shift_pct\": {:.3}\n    }},\n    \
         \"fast\": {{\n      \"samples\": {fast_samples},\n      \
         \"samples_per_sec\": {:.3},\n      \"mean_shift_pct\": {:.3},\n      \
         \"std_shift_pct\": {:.3},\n      \"dies_derived\": {},\n      \
         \"entry_fallbacks\": {},\n      \"max_error_estimate\": {:.5},\n      \
         \"probed\": {},\n      \"max_deviation_pct\": {:.4},\n      \
         \"mean_deviation_pct\": {:.4}\n    }},\n    \
         \"speedup_fast_over_exact\": {:.2}\n  }},\n  \"timings_ms\": {{\n    \
         \"fixture\": {:.3},\n    \"library\": {:.3},\n    \"characterize\": {:.3},\n    \
         \"sens_build\": {:.3},\n    \"estimate\": {:.3},\n    \"merge\": {:.3}\n  }},\n  \
         \"seed\": 2005,\n  \"bit_identical\": true\n}}\n",
        fixture_sps,
        fixture.mean_shift() * 100.0,
        circuit.gate_count(),
        exact_cfg.char_opts.points,
        exact_sps,
        exact.summary.mean_shift * 100.0,
        exact.summary.std_shift * 100.0,
        fast_sps,
        fast.summary.mean_shift * 100.0,
        fast.summary.std_shift * 100.0,
        fast_report.diag.dies_derived,
        fast_report.diag.entries_fallback,
        fast_report.diag.max_error_estimate,
        fast_report.probed,
        fast_report.max_deviation * 100.0,
        fast_report.mean_deviation * 100.0,
        speedup,
        fixture_secs * 1e3,
        stage_ms("library"),
        stage_ms("characterize"),
        sens_build_secs * 1e3,
        stage_ms("estimate"),
        stage_ms("merge"),
    );
    std::fs::write(&out, &json).expect("write baseline");
    print!("{json}");
    println!("wrote {out}");
}
