//! Records the Monte-Carlo throughput baseline (`BENCH_mc.json`):
//! single-thread samples/sec of the two variation workloads —
//!
//! * the paper's paired **inverter fixture** (`run_inverter_mc`,
//!   transistor-level, per-device intra-die variation), and
//! * the **circuit-level MC** (`mc_streaming`, one perturbed die per
//!   sample characterized into a library and estimated on the
//!   compiled plan) on a small ISCAS circuit —
//!
//! and verifies along the way that a re-run of each seed reproduces
//! the summary bit-for-bit (the determinism the engine tests pin, here
//! checked on the exact configuration being measured).
//!
//! Circuit samples pay a per-die characterization, so the baseline is
//! recorded on the coarse 4-point grid (like the CI smoke paths); the
//! JSON carries `grid_points` so numbers are never compared across
//! resolutions. `--coarse` is therefore the default — pass `--full`
//! for the production 11-point grid if you have minutes to spare.
//!
//! ```text
//! cargo run --release -p nanoleak-bench --bin bench_mc -- \
//!     [--circuit s838] [--samples 8] [--fixture-samples 64] [--full] \
//!     [--out BENCH_mc.json]
//! ```

use std::time::Instant;

use nanoleak_device::Technology;
use nanoleak_engine::{mc_streaming, MemoLibraryCache};
use nanoleak_netlist::generate::iscas_like;
use nanoleak_netlist::normalize::normalize;
use nanoleak_variation::{char_opts_for, run_inverter_mc, CircuitMcConfig, McConfig};

fn main() {
    let mut circuit_name = "s838".to_string();
    let mut samples = 8usize;
    let mut fixture_samples = 64usize;
    let mut full = false;
    let mut out = "BENCH_mc.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match arg.as_str() {
            "--circuit" => circuit_name = value("--circuit"),
            "--samples" => samples = value("--samples").parse().expect("--samples: integer"),
            "--fixture-samples" => {
                fixture_samples =
                    value("--fixture-samples").parse().expect("--fixture-samples: integer");
            }
            "--full" => full = true,
            "--coarse" => full = false,
            "--out" => out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(samples > 0 && fixture_samples > 0, "need at least one sample");

    let tech = Technology::d25();

    // Capture the run as spans so the baseline JSON records where the
    // wall time went — the fixture stage plus the engine's own
    // estimate/merge/library/characterize spans from the cold circuit
    // run.
    nanoleak_obs::begin_capture();

    // ---- Inverter fixture (transistor level, single thread). ----
    let fixture_cfg =
        McConfig { samples: fixture_samples, seed: 2005, threads: 1, ..Default::default() };
    let t0 = Instant::now();
    let fixture = {
        let _span = nanoleak_obs::span!("fixture", samples = fixture_samples);
        run_inverter_mc(&tech, &fixture_cfg).expect("fixture mc")
    };
    let fixture_secs = t0.elapsed().as_secs_f64();
    let again = run_inverter_mc(&tech, &fixture_cfg).expect("fixture mc rerun");
    assert_eq!(fixture, again, "fixture must reproduce bit-for-bit");
    let fixture_sps = fixture_samples as f64 / fixture_secs.max(1e-9);

    // ---- Circuit-level MC (one library per die, single thread). ----
    let circuit = normalize(&iscas_like(&circuit_name).expect("known circuit")).unwrap();
    let mc_cfg = CircuitMcConfig {
        samples,
        seed: 2005,
        threads: 1,
        vectors: 1,
        char_opts: char_opts_for(&circuit, !full),
        ..Default::default()
    };
    let cache = MemoLibraryCache::memory_only();
    let t0 = Instant::now();
    let report = mc_streaming(&circuit, &tech, &cache, &mc_cfg, 0, |_| true)
        .expect("circuit mc")
        .expect("not cancelled");
    let circuit_secs = t0.elapsed().as_secs_f64();
    // Only the cold run is captured: the warm re-run below would
    // double-count the estimate/merge stages.
    let trace = nanoleak_obs::end_capture();
    let stage_ms = |name: &str| trace.total_us(name) as f64 / 1e3;
    // Re-run through the warm memo: must be bit-identical and solver-free.
    let solves = cache.stats().characterizations;
    let warm = mc_streaming(&circuit, &tech, &cache, &mc_cfg, 0, |_| true)
        .expect("warm circuit mc")
        .expect("not cancelled");
    assert_eq!(report.summary, warm.summary, "circuit MC must reproduce bit-for-bit");
    assert_eq!(cache.stats().characterizations, solves, "warm re-run must not re-solve");
    let circuit_sps = samples as f64 / circuit_secs.max(1e-9);

    let json = format!(
        "{{\n  \"bench\": \"mc_throughput_single_thread\",\n  \
         \"fixture\": {{\n    \"samples\": {fixture_samples},\n    \
         \"samples_per_sec\": {:.2},\n    \"mean_shift_pct\": {:.3}\n  }},\n  \
         \"circuit\": {{\n    \"name\": \"{circuit_name}\",\n    \"gates\": {},\n    \
         \"samples\": {samples},\n    \"grid_points\": {},\n    \
         \"samples_per_sec\": {:.3},\n    \"mean_shift_pct\": {:.3},\n    \
         \"std_shift_pct\": {:.3}\n  }},\n  \"timings_ms\": {{\n    \"fixture\": {:.3},\n    \
         \"library\": {:.3},\n    \"characterize\": {:.3},\n    \"estimate\": {:.3},\n    \
         \"merge\": {:.3}\n  }},\n  \"seed\": 2005,\n  \"bit_identical\": true\n}}\n",
        fixture_sps,
        fixture.mean_shift() * 100.0,
        circuit.gate_count(),
        mc_cfg.char_opts.points,
        circuit_sps,
        report.summary.mean_shift * 100.0,
        report.summary.std_shift * 100.0,
        stage_ms("fixture"),
        stage_ms("library"),
        stage_ms("characterize"),
        stage_ms("estimate"),
        stage_ms("merge"),
    );
    std::fs::write(&out, &json).expect("write baseline");
    print!("{json}");
    println!("wrote {out}");
}
