//! Regenerates paper Fig. 6 (LD_ALL surface over both loadings).
use nanoleak_bench::figures::fig06;

fn main() {
    let mut opts = fig06::Options::default();
    if let Some(p) = nanoleak_bench::arg_value("--points") {
        opts.points = p.parse().expect("--points takes an integer");
    }
    fig06::run(&opts);
}
