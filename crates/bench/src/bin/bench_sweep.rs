//! Records the sweep-throughput baseline (`BENCH_sweep.json`):
//! single-thread patterns/sec of the legacy per-pattern path
//! (`estimate()` + a fresh `Pattern` per index), the compiled scalar
//! plan, and the 64-lane block kernel the engine's sweeps now run on,
//! plus their ratios — and verifies all three paths agree bit-for-bit
//! on every pattern while measuring. The block kernel must clear 4x
//! over the compiled scalar path on the recorded (non-`--coarse`)
//! run; the JSON asserts it.
//!
//! The library is the production-resolution characterization
//! (`CharacterizeOptions::default()`, 11-point grid) served through
//! the engine's `*.nlc` disk cache, so only the first run pays the
//! solve. `--coarse` switches to the 4-point test grid (used by the
//! CI smoke step, which only checks the bin runs and the paths agree).
//!
//! ```text
//! cargo run --release -p nanoleak-bench --bin bench_sweep -- \
//!     [--circuit s1196] [--vectors 512] [--repeat 3] [--coarse] \
//!     [--out BENCH_sweep.json]
//! ```

use std::time::Instant;

use nanoleak_cells::{CellType, CharacterizeOptions};
use nanoleak_core::{estimate, CompiledEstimator, EstimatorMode, LANES};
use nanoleak_device::Technology;
use nanoleak_engine::{pattern_for_index, LibraryCache};
use nanoleak_netlist::generate::iscas_like;
use nanoleak_netlist::normalize::normalize;

fn main() {
    let mut circuit_name = "s1196".to_string();
    let mut vectors = 512usize;
    let mut repeat = 3usize;
    let mut coarse = false;
    let mut out = "BENCH_sweep.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match arg.as_str() {
            "--circuit" => circuit_name = value("--circuit"),
            "--vectors" => vectors = value("--vectors").parse().expect("--vectors: integer"),
            "--repeat" => repeat = value("--repeat").parse().expect("--repeat: integer"),
            "--coarse" => coarse = true,
            "--out" => out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(vectors > 0 && repeat > 0, "need at least one vector and one repeat");

    let tech = Technology::d25();
    let opts = if coarse {
        CharacterizeOptions::coarse(&CellType::ALL)
    } else {
        CharacterizeOptions::default()
    };
    // Capture the run as spans so the baseline JSON records where the
    // wall time went (library load/solve, compile+warm, each measured
    // path), not just the final throughput numbers.
    nanoleak_obs::begin_capture();
    let (lib, _) = {
        let _span = nanoleak_obs::span!("library");
        LibraryCache::default_location()
            .load_or_characterize(&tech, 300.0, &opts)
            .expect("characterize library")
    };
    let circuit = normalize(&iscas_like(&circuit_name).expect("known circuit")).unwrap();
    let seed = 2005u64;

    // Warm both paths (page in the library, grow the scratch).
    let plan = {
        let _span = nanoleak_obs::span!("compile");
        CompiledEstimator::compile(&circuit, &lib).unwrap()
    };
    let mut scratch = plan.scratch();
    let warm_pattern = pattern_for_index(&circuit, seed, 0);
    let _ = estimate(&circuit, &lib, &warm_pattern, EstimatorMode::Lut).unwrap();
    let _ = plan.estimate_into(&mut scratch, &warm_pattern, EstimatorMode::Lut).unwrap();

    // Best-of-N on each path: scheduler noise only ever slows a pass
    // down, so the minimum time is the fairest single-thread figure
    // (and both paths get the same treatment).
    let mut legacy_secs = f64::INFINITY;
    let mut legacy = Vec::new();
    {
        let _span = nanoleak_obs::span!("legacy", repeat = repeat);
        for _ in 0..repeat {
            let t0 = Instant::now();
            let totals: Vec<f64> = (0..vectors)
                .map(|i| {
                    let p = pattern_for_index(&circuit, seed, i);
                    estimate(&circuit, &lib, &p, EstimatorMode::Lut).unwrap().total.total()
                })
                .collect();
            legacy_secs = legacy_secs.min(t0.elapsed().as_secs_f64());
            legacy = totals;
        }
    }

    // Compiled path: plan compile + scratch + index stream, like a
    // single-thread engine sweep shard.
    let mut compiled_secs = f64::INFINITY;
    let mut compiled = Vec::new();
    {
        let _span = nanoleak_obs::span!("compiled", repeat = repeat);
        for _ in 0..repeat {
            let t0 = Instant::now();
            let plan = CompiledEstimator::compile(&circuit, &lib).unwrap();
            let mut scratch = plan.scratch();
            let totals: Vec<f64> = (0..vectors)
                .map(|i| {
                    plan.estimate_index_into(&mut scratch, seed, i, EstimatorMode::Lut)
                        .unwrap()
                        .total()
                })
                .collect();
            compiled_secs = compiled_secs.min(t0.elapsed().as_secs_f64());
            compiled = totals;
        }
    }
    // Block kernel: the same index stream packed 64 patterns to the
    // word, exactly as a lanes=64 engine sweep shard runs it. Table
    // construction is charged once to "block_prepare" (amortized over
    // every subsequent sweep through the shared-plan cache), the
    // measured passes see only the steady-state kernel.
    {
        let _span = nanoleak_obs::span!("block_prepare");
        plan.prepare_block();
    }
    let mut block_secs = f64::INFINITY;
    let mut block = Vec::new();
    {
        let _span = nanoleak_obs::span!("block", repeat = repeat);
        for _ in 0..repeat {
            let t0 = Instant::now();
            let mut scratch = plan.block_scratch();
            let mut totals = Vec::with_capacity(vectors);
            let mut start = 0usize;
            while start < vectors {
                let count = LANES.min(vectors - start);
                plan.estimate_index_block_into(
                    &mut scratch,
                    seed,
                    start,
                    count,
                    EstimatorMode::Lut,
                )
                .unwrap();
                totals.extend(scratch.totals()[..count].iter().map(|t| t.total()));
                start += count;
            }
            block_secs = block_secs.min(t0.elapsed().as_secs_f64());
            block = totals;
        }
    }
    let trace = nanoleak_obs::end_capture();
    let stage_ms = |name: &str| trace.total_us(name) as f64 / 1e3;

    let bit_identical = legacy.iter().zip(&compiled).all(|(a, b)| a.to_bits() == b.to_bits())
        && legacy.iter().zip(&block).all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(bit_identical, "compiled/block paths diverged from the reference estimator");

    let legacy_pps = vectors as f64 / legacy_secs.max(1e-9);
    let compiled_pps = vectors as f64 / compiled_secs.max(1e-9);
    let block_pps = vectors as f64 / block_secs.max(1e-9);
    let speedup = compiled_pps / legacy_pps;
    let block_speedup = block_pps / compiled_pps;
    if !coarse {
        // The tentpole acceptance: the word-parallel kernel must beat
        // the compiled scalar baseline 4x on the recorded run.
        assert!(
            block_speedup >= 4.0,
            "block kernel speedup {block_speedup:.2}x is below the 4x floor"
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"sweep_throughput_single_thread\",\n  \"circuit\": \"{}\",\n  \
         \"gates\": {},\n  \"vectors\": {},\n  \"repeat\": {},\n  \"grid_points\": {},\n  \
         \"mode\": \"Lut\",\n  \"seed\": {},\n  \
         \"legacy_patterns_per_sec\": {:.1},\n  \"compiled_patterns_per_sec\": {:.1},\n  \
         \"block_patterns_per_sec\": {:.1},\n  \
         \"speedup\": {:.2},\n  \"block_speedup_vs_compiled\": {:.2},\n  \
         \"timings_ms\": {{\n    \"library\": {:.3},\n    \
         \"characterize\": {:.3},\n    \"compile\": {:.3},\n    \"legacy\": {:.3},\n    \
         \"compiled\": {:.3},\n    \"block_prepare\": {:.3},\n    \"block\": {:.3}\n  }},\n  \
         \"bit_identical\": {}\n}}\n",
        circuit_name,
        circuit.gate_count(),
        vectors,
        repeat,
        opts.points,
        seed,
        legacy_pps,
        compiled_pps,
        block_pps,
        speedup,
        block_speedup,
        stage_ms("library"),
        stage_ms("characterize"),
        stage_ms("compile"),
        stage_ms("legacy"),
        stage_ms("compiled"),
        stage_ms("block_prepare"),
        stage_ms("block"),
        bit_identical,
    );
    std::fs::write(&out, &json).expect("write baseline");
    print!("{json}");
    println!("wrote {out}");
}
