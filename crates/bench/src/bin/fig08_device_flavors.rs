//! Regenerates paper Fig. 8 (loading effect for D25-S / D25-G / D25-JN).
use nanoleak_bench::figures::fig08;

fn main() {
    let mut opts = fig08::Options::default();
    if let Some(p) = nanoleak_bench::arg_value("--points") {
        opts.points = p.parse().expect("--points takes an integer");
    }
    fig08::run(&opts);
}
