//! Regenerates paper Fig. 4 (device leakage-component sweeps).
use nanoleak_bench::figures::fig04;

fn main() {
    let mut opts = fig04::Options::default();
    if let Some(p) = nanoleak_bench::arg_value("--points") {
        opts.points = p.parse().expect("--points takes an integer");
    }
    fig04::run(&opts);
}
