//! Regenerates every figure of the paper in one run.
//!
//! Pass `--quick` for a reduced-size pass (fewer sweep points, fewer
//! Monte-Carlo samples, fewer vectors) suitable for smoke testing.
use nanoleak_bench::figures::*;

fn main() {
    let quick = nanoleak_bench::arg_flag("--quick");
    let points = if quick { 5 } else { 13 };
    let samples = if quick { 400 } else { 10_000 };

    fig04::run(&fig04::Options { points: if quick { 5 } else { 9 } });
    fig05::run(&fig05::Options { points, ..Default::default() });
    fig06::run(&fig06::Options { points: if quick { 4 } else { 7 }, ..Default::default() });
    fig07::run(&fig07::Options { points, ..Default::default() });
    fig08::run(&fig08::Options { points, ..Default::default() });
    fig09::run(&fig09::Options { points: if quick { 4 } else { 7 }, ..Default::default() });
    fig10::run(&fig10::Options { samples, ..Default::default() });
    fig11::run(&fig11::Options { samples, ..Default::default() });
    fig12::run(&fig12::Options {
        vectors: if quick { 10 } else { 100 },
        reference_vectors: if quick { 2 } else { 10 },
        ..Default::default()
    });
    println!("\nall figures regenerated; CSVs in ./results/");
}
