//! Records the optimization-workload baseline (`BENCH_opt.json`):
//!
//! * **plan cache** — cold compile vs warm hit latency of the
//!   process-wide structural plan cache
//!   (`nanoleak_engine::plan_cache::shared_plan`) on an ISCAS
//!   circuit, and the resulting speedup factor;
//! * **optimizer** — single-thread rounds/sec of
//!   `nanoleak_opt::optimize` on the same circuit, with the
//!   guaranteed `improved ≤ baseline` objective and the determinism
//!   of a re-run (bit-identical objective, identical structural key)
//!   asserted on the exact configuration being measured.
//!
//! Like the other `BENCH_*` bins the baseline characterizes on the
//! coarse 4-point grid by default (`--full` for the production grid);
//! the JSON carries `grid_points` so numbers are never compared
//! across resolutions.
//!
//! ```text
//! cargo run --release -p nanoleak-bench --bin bench_opt -- \
//!     [--circuit s1196] [--rounds 2] [--full] [--out BENCH_opt.json]
//! ```

use std::time::Instant;

use nanoleak_cells::{CellLibrary, CellType, CharacterizeOptions};
use nanoleak_device::Technology;
use nanoleak_engine::{plan_cache, MlvConfig, MlvStrategy};
use nanoleak_netlist::generate::iscas_like;
use nanoleak_netlist::normalize::normalize;
use nanoleak_opt::{optimize, OptimizeConfig};

/// Warm lookups averaged for the hit-latency figure.
const WARM_LOOKUPS: u32 = 1000;

fn main() {
    let mut circuit_name = "s1196".to_string();
    let mut rounds = 2usize;
    let mut full = false;
    let mut out = "BENCH_opt.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match arg.as_str() {
            "--circuit" => circuit_name = value("--circuit"),
            "--rounds" => rounds = value("--rounds").parse().expect("--rounds: integer"),
            "--full" => full = true,
            "--coarse" => full = false,
            "--out" => out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(rounds > 0, "need at least one round");

    let circuit = normalize(&iscas_like(&circuit_name).expect("known circuit")).unwrap();
    let options = if full {
        CharacterizeOptions::default()
    } else {
        CharacterizeOptions::coarse(&CellType::ALL)
    };
    let library = CellLibrary::shared_with_options(&Technology::d25(), 300.0, &options);

    // ---- Plan cache: cold compile vs warm hit. ----
    plan_cache::clear();
    let t0 = Instant::now();
    let cold = plan_cache::shared_plan(&circuit, &library).expect("cold compile");
    let cold_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for _ in 0..WARM_LOOKUPS {
        let warm = plan_cache::shared_plan(&circuit, &library).expect("warm hit");
        assert!(std::sync::Arc::ptr_eq(&cold, &warm), "warm lookups must hit the cold plan");
    }
    let warm_secs = t0.elapsed().as_secs_f64() / f64::from(WARM_LOOKUPS);
    let speedup = cold_secs / warm_secs.max(1e-12);

    // ---- Optimizer throughput (single thread). ----
    let config = OptimizeConfig {
        mlv: MlvConfig {
            strategy: MlvStrategy::HillClimb { restarts: 2, max_steps: 16 },
            threads: 1,
            ..Default::default()
        },
        max_rounds: rounds,
        ..Default::default()
    };
    let t0 = Instant::now();
    let result = optimize(&circuit, &library, &config).expect("optimize");
    let opt_secs = t0.elapsed().as_secs_f64();
    assert!(
        result.improved.objective <= result.baseline.objective,
        "optimize must never regress the MLV objective"
    );
    // Re-run: the greedy pass is deterministic, so the rewritten
    // structure and the objective must reproduce exactly.
    let again = optimize(&circuit, &library, &config).expect("optimize rerun");
    assert_eq!(
        result.circuit.structural_key(),
        again.circuit.structural_key(),
        "optimize must reproduce the rewritten structure"
    );
    assert_eq!(
        result.improved.objective.to_bits(),
        again.improved.objective.to_bits(),
        "optimize must reproduce the objective bit-for-bit"
    );
    let rounds_run = result.rounds.len().max(1);
    let rounds_per_sec = rounds_run as f64 / opt_secs.max(1e-9);

    let json = format!(
        "{{\n  \"bench\": \"opt_workload_single_thread\",\n  \
         \"circuit\": \"{circuit_name}\",\n  \"grid_points\": {},\n  \
         \"plan_cache\": {{\n    \"cold_compile_ms\": {:.3},\n    \
         \"warm_hit_us\": {:.3},\n    \"hit_speedup\": {:.0}\n  }},\n  \
         \"optimize\": {{\n    \"gates_before\": {},\n    \"gates_after\": {},\n    \
         \"rounds\": {},\n    \"rounds_per_sec\": {:.3},\n    \
         \"baseline_ua\": {:.4},\n    \"improved_ua\": {:.4},\n    \
         \"improvement_percent\": {:.2},\n    \"evaluations\": {}\n  }},\n  \
         \"seed\": 2005,\n  \"bit_identical\": true\n}}\n",
        options.points,
        cold_secs * 1e3,
        warm_secs * 1e6,
        speedup,
        result.gates_before,
        result.gates_after,
        rounds_run,
        rounds_per_sec,
        result.baseline.objective * 1e6,
        result.improved.objective * 1e6,
        result.improvement_percent(),
        result.evaluations,
    );
    std::fs::write(&out, &json).expect("write baseline");
    print!("{json}");
    println!("wrote {out}");
}
