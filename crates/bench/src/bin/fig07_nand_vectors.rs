//! Regenerates paper Fig. 7 (NAND2 loading effect per input vector).
use nanoleak_bench::figures::fig07;

fn main() {
    let mut opts = fig07::Options::default();
    if let Some(p) = nanoleak_bench::arg_value("--points") {
        opts.points = p.parse().expect("--points takes an integer");
    }
    fig07::run(&opts);
}
