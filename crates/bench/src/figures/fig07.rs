//! Fig. 7 — loading effect (per input pin and output) on the total
//! leakage of a 2-input NAND gate under all four input vectors.

use nanoleak_cells::{eval_loaded, CellType, InputVector};
use nanoleak_device::Technology;

use crate::{fmt, linspace, pct, print_table, write_csv};

/// Options for the Fig. 7 sweeps.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Points per sweep.
    pub points: usize,
    /// Largest loading current \[A\].
    pub max_loading: f64,
    /// Temperature \[K\].
    pub temp: f64,
}

impl Default for Options {
    fn default() -> Self {
        Self { points: 13, max_loading: 3.0e-6, temp: 300.0 }
    }
}

/// Total-leakage LD for loading applied to one port of the NAND.
fn ld_total(tech: &Technology, opts: &Options, v: InputVector, port: Port, il: f64) -> f64 {
    let nominal = eval_loaded(tech, opts.temp, CellType::Nand2, v, &[0.0, 0.0], 0.0)
        .expect("nominal")
        .breakdown
        .total();
    let (il_in, il_out) = match port {
        Port::Input(0) => ([il, 0.0], 0.0),
        Port::Input(_) => ([0.0, il], 0.0),
        Port::Output => ([0.0, 0.0], il),
    };
    let total = eval_loaded(tech, opts.temp, CellType::Nand2, v, &il_in, il_out)
        .expect("loaded")
        .breakdown
        .total();
    (total - nominal) / nominal
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Port {
    Input(usize),
    Output,
}

/// Regenerates the four panels (one per vector).
pub fn run(opts: &Options) {
    let tech = Technology::d25();
    let headers = ["I_L[nA]", "LD(in1)%", "LD(in2)%", "LD(out)%"];
    for (panel, vs) in ["a", "b", "c", "d"].iter().zip(["00", "01", "10", "11"]) {
        let v = InputVector::parse(vs).unwrap();
        let out_level = CellType::Nand2.eval_logic(&v.to_bools());
        let mut rows = Vec::new();
        for il in linspace(0.0, opts.max_loading, opts.points) {
            rows.push(vec![
                fmt(il / 1e-9, 0),
                fmt(pct(ld_total(&tech, opts, v, Port::Input(0), il)), 3),
                fmt(pct(ld_total(&tech, opts, v, Port::Input(1), il)), 3),
                fmt(pct(ld_total(&tech, opts, v, Port::Output, il)), 3),
            ]);
        }
        let title = format!(
            "Fig 7{panel}: NAND2 loading effect, input \"{vs}\" / output '{}'",
            u8::from(out_level)
        );
        print_table(&title, &headers, &rows);
        write_csv(&format!("fig07{panel}_nand_{vs}.csv"), &headers, &rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> Options {
        Options::default()
    }

    #[test]
    fn input_loading_stronger_with_a_zero_input() {
        // Paper: input loading is higher if at least one input is '0'.
        let tech = Technology::d25();
        let ld01 =
            ld_total(&tech, &opts(), InputVector::parse("01").unwrap(), Port::Input(0), 3e-6);
        let ld11 =
            ld_total(&tech, &opts(), InputVector::parse("11").unwrap(), Port::Input(0), 3e-6);
        assert!(ld01 > ld11, "01: {ld01} vs 11: {ld11}");
    }

    #[test]
    fn stacking_damps_the_00_vector() {
        // With '00' the stack suppresses subthreshold, so input loading
        // has less effect than on '01'/'10' (paper Fig. 7a vs 7b/7c).
        let tech = Technology::d25();
        let v00 = InputVector::parse("00").unwrap();
        let v10 = InputVector::parse("10").unwrap();
        let ld00 = ld_total(&tech, &opts(), v00, Port::Input(0), 3e-6);
        let ld10 = ld_total(&tech, &opts(), v10, Port::Input(1), 3e-6);
        assert!(ld00 < ld10, "00: {ld00} vs 10(pin2): {ld10}");
    }

    #[test]
    fn output_loading_reduces_total_when_output_low() {
        // Vector 11 -> output '0': output loading is strongest negative.
        let tech = Technology::d25();
        let ld = ld_total(&tech, &opts(), InputVector::parse("11").unwrap(), Port::Output, 3e-6);
        assert!(ld < -0.002, "LD_OUT(total) = {ld}");
    }

    #[test]
    fn vector_dependence_can_flip_sign() {
        // Depending on the vector, loading may increase or decrease the
        // total leakage (paper Section 4 conclusion).
        let tech = Technology::d25();
        let pos = ld_total(&tech, &opts(), InputVector::parse("01").unwrap(), Port::Input(0), 3e-6);
        let neg = ld_total(&tech, &opts(), InputVector::parse("11").unwrap(), Port::Output, 3e-6);
        assert!(pos > 0.0 && neg < 0.0);
    }
}
