//! Fig. 10 — Monte-Carlo leakage distributions of an inverter
//! (input '0' / output '1') with and without loading (6 + 6 inverters).

use nanoleak_device::Technology;
use nanoleak_variation::{run_inverter_mc, Histogram, McConfig, Series};

use crate::{fmt, na, print_table, write_csv};

/// Options for the Fig. 10 Monte Carlo.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Sample count (the paper uses 10,000).
    pub samples: usize,
    /// Histogram bins.
    pub bins: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self { samples: 10_000, bins: 30, seed: 2005 }
    }
}

/// Regenerates the four histograms.
pub fn run(opts: &Options) {
    let tech = Technology::d25();
    let config = McConfig { samples: opts.samples, seed: opts.seed, ..Default::default() };
    let result = run_inverter_mc(&tech, &config).expect("monte carlo");

    let panels = [
        (Series::Sub, "Subthreshold"),
        (Series::Gate, "Gate"),
        (Series::Btbt, "Junction BTBT"),
        (Series::Total, "Total"),
    ];
    for (series, label) in panels {
        let unloaded = result.series(series, false);
        let loaded = result.series(series, true);
        let hi = unloaded.iter().chain(loaded.iter()).copied().fold(0.0_f64, f64::max) * 1.02;
        let h_un = Histogram::of(&unloaded, 0.0, hi, opts.bins);
        let h_lo = Histogram::of(&loaded, 0.0, hi, opts.bins);
        let rows: Vec<Vec<String>> = h_un
            .centers()
            .iter()
            .zip(h_un.counts.iter().zip(&h_lo.counts))
            .map(|(c, (u, l))| vec![fmt(na(*c), 1), u.to_string(), l.to_string()])
            .collect();
        let headers = ["bin-center[nA]", "no-loading", "with-loading"];
        print_table(&format!("Fig 10: {label} leakage distribution"), &headers, &rows);
        write_csv(
            &format!("fig10_{}.csv", label.to_lowercase().replace(' ', "_")),
            &headers,
            &rows,
        );
    }

    // Summary statistics, the quantitative content of the figure.
    let mut rows = Vec::new();
    for (series, label) in panels {
        let u = result.stats(series, false);
        let l = result.stats(series, true);
        rows.push(vec![
            label.to_string(),
            fmt(na(u.mean), 2),
            fmt(na(l.mean), 2),
            fmt(na(u.std), 2),
            fmt(na(l.std), 2),
        ]);
    }
    let headers = ["component", "mean-no[nA]", "mean-load[nA]", "std-no[nA]", "std-load[nA]"];
    print_table("Fig 10 summary: distribution moments", &headers, &rows);
    write_csv("fig10_summary.csv", &headers, &rows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_variation::Stats;

    #[test]
    fn loading_moves_the_subthreshold_distribution_right() {
        let tech = Technology::d25();
        let config = McConfig { samples: 150, ..Default::default() };
        let result = run_inverter_mc(&tech, &config).unwrap();
        let u = Stats::of(&result.series(Series::Sub, false));
        let l = Stats::of(&result.series(Series::Sub, true));
        assert!(l.mean > u.mean, "loaded {} vs unloaded {}", l.mean, u.mean);
    }
}
