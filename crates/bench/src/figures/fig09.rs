//! Fig. 9 — impact of temperature on the overall loading effect
//! (`LD_ALL`) of an inverter with input '0'.

use nanoleak_cells::{eval_isolated, eval_loaded, CellType, InputVector, OperatingPoint};
use nanoleak_device::Technology;

use crate::{fmt, linspace, pct, print_table, write_csv};

/// Options for the Fig. 9 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Temperature points.
    pub points: usize,
    /// Input loading current \[A\].
    pub il_in: f64,
    /// Output loading current \[A\].
    pub il_out: f64,
}

impl Default for Options {
    fn default() -> Self {
        Self { points: 7, il_in: 1.5e-6, il_out: 1.5e-6 }
    }
}

/// `LD_ALL` per component at one temperature.
///
/// The baseline here is the gate in true isolation (ideal rail
/// inputs), per the paper's `L_NOM` definition. At high temperature
/// the *driver's* swelling subthreshold/junction currents lift the
/// input node by themselves (paper Section 5.2: "the contribution of
/// the subthreshold current and the junction current of the PMOS of
/// the inverter D to node IN increases"), so the measured loading
/// effect on the subthreshold component grows steeply with T.
fn ld_at(tech: &Technology, op: &OperatingPoint, opts: &Options) -> (f64, f64, f64, f64) {
    // The condition derivation flows through the shared OperatingPoint
    // (vdd_scale 1.0 is an exact no-op, so this is bit-identical to
    // evaluating the base technology directly).
    let tech = &op.tech(tech);
    let temp = op.temp;
    let v = InputVector::parse("0").unwrap();
    let nom = eval_isolated(tech, temp, CellType::Inv, v).expect("nominal").breakdown;
    let load = eval_loaded(tech, temp, CellType::Inv, v, &[opts.il_in], opts.il_out)
        .expect("loaded")
        .breakdown;
    let rel = load.relative_to(&nom, 1e-18);
    let total = (load.total() - nom.total()) / nom.total();
    (rel.sub, rel.gate, rel.btbt, total)
}

/// Regenerates the temperature sweep (0–150 C as in the paper).
pub fn run(opts: &Options) {
    let tech = Technology::d25();
    let headers = ["T[C]", "LD(sub)%", "LD(gate)%", "LD(btbt)%", "LD(total)%"];
    let mut rows = Vec::new();
    for t_c in linspace(0.0, 150.0, opts.points) {
        let (sub, gate, btbt, total) = ld_at(&tech, &OperatingPoint::from_celsius(t_c), opts);
        rows.push(vec![
            fmt(t_c, 0),
            fmt(pct(sub), 3),
            fmt(pct(gate), 3),
            fmt(pct(btbt), 3),
            fmt(pct(total), 3),
        ]);
    }
    print_table("Fig 9: LD_ALL vs temperature (inverter, input '0')", &headers, &rows);
    write_csv("fig09_temperature.csv", &headers, &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subthreshold_loading_effect_grows_with_temperature() {
        // Paper Fig. 9: LD_ALL(sub) rises steeply with temperature.
        let tech = Technology::d25();
        let opts = Options::default();
        let (sub_cold, ..) = ld_at(&tech, &OperatingPoint::at_temp(280.0), &opts);
        let (sub_hot, ..) = ld_at(&tech, &OperatingPoint::at_temp(400.0), &opts);
        assert!(sub_hot > 1.5 * sub_cold, "cold {sub_cold} vs hot {sub_hot}");
    }

    #[test]
    fn gate_and_btbt_effects_move_negative_with_temperature() {
        // The hotter node shifts push gate/junction leakage further
        // down (paper Fig. 9's negative-going curves).
        let tech = Technology::d25();
        let opts = Options::default();
        let (_, gate_cold, btbt_cold, _) = ld_at(&tech, &OperatingPoint::at_temp(280.0), &opts);
        let (_, gate_hot, btbt_hot, _) = ld_at(&tech, &OperatingPoint::at_temp(400.0), &opts);
        assert!(gate_hot < gate_cold, "gate: {gate_cold} -> {gate_hot}");
        assert!(btbt_hot < btbt_cold, "btbt: {btbt_cold} -> {btbt_hot}");
    }

    #[test]
    fn total_effect_less_dramatic_than_subthreshold() {
        // Components move in opposite directions, so the total is
        // damped (paper Section 5.2 conclusion).
        let tech = Technology::d25();
        let opts = Options::default();
        let (sub, _, _, total) = ld_at(&tech, &OperatingPoint::at_temp(400.0), &opts);
        assert!(total < sub, "total {total} vs sub {sub}");
        assert!(total > 0.0);
    }
}
