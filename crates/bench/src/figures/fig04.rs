//! Fig. 4 — variation of the leakage components of a single device
//! with (a) halo doping, (b) oxide thickness, and (c) temperature.

use nanoleak_device::{Bias, DeviceDesign, Technology, Transistor};

use crate::{fmt, linspace, na, print_table, write_csv};

/// Options for the Fig. 4 sweeps.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Points per sweep.
    pub points: usize,
}

impl Default for Options {
    fn default() -> Self {
        Self { points: 9 }
    }
}

fn off_components(design: &DeviceDesign, vdd: f64, temp: f64) -> (f64, f64, f64) {
    let t = Transistor::from_design(design);
    let (_, bd) = t.leakage(Bias::new(0.0, vdd, 0.0, 0.0), temp);
    (bd.sub, bd.gate, bd.btbt)
}

/// Oxide-thickness variant with the long-channel threshold re-centered
/// through the flavor shift. The paper's MEDICI devices are re-designed
/// at each Tox (doping retuned for the target Vth), so its Fig. 4b
/// isolates the short-channel physics: thicker oxide means a longer
/// natural length, more DIBL/roll-off, and a worse swing — subthreshold
/// leakage *rises* even as gate tunneling collapses.
fn design_with_tox_iso_vth(base: &DeviceDesign, tox: f64) -> DeviceDesign {
    let nominal = base.derive();
    let d = base.with_geometry(base.geometry.with_tox(tox));
    let p = d.derive();
    let shift = (nominal.gamma - p.gamma) * nominal.phi_s.sqrt();
    let mut flavor = d.flavor;
    flavor.vth_shift += shift;
    d.with_flavor(flavor)
}

/// Regenerates the three panels.
pub fn run(opts: &Options) {
    let tech = Technology::d25();
    let vdd = tech.vdd;

    // (a) Halo doping sweep on the 25 nm NMOS.
    let mut rows = Vec::new();
    for halo in linspace(0.6e25, 2.4e25, opts.points) {
        let design = tech.nmos.with_doping(tech.nmos.doping.with_halo(halo));
        let (sub, gate, btbt) = off_components(&design, vdd, 300.0);
        rows.push(vec![fmt(halo / 1e25, 2), fmt(na(sub), 2), fmt(na(gate), 2), fmt(na(btbt), 4)]);
    }
    let headers = ["halo[1e19cm^-3]", "Isub[nA]", "Igate[nA]", "Ibtbt[nA]"];
    print_table("Fig 4a: leakage components vs halo doping (NMOS, 25nm)", &headers, &rows);
    write_csv("fig04a_halo.csv", &headers, &rows);

    // (b) Oxide thickness sweep (Vth re-centered per point; see
    // `design_with_tox_iso_vth`).
    let mut rows = Vec::new();
    for tox in linspace(0.8e-9, 1.6e-9, opts.points) {
        let design = design_with_tox_iso_vth(&tech.nmos, tox);
        let (sub, gate, btbt) = off_components(&design, vdd, 300.0);
        rows.push(vec![fmt(tox * 1e9, 2), fmt(na(sub), 2), fmt(na(gate), 2), fmt(na(btbt), 4)]);
    }
    let headers = ["tox[nm]", "Isub[nA]", "Igate[nA]", "Ibtbt[nA]"];
    print_table("Fig 4b: leakage components vs oxide thickness (NMOS, 25nm)", &headers, &rows);
    write_csv("fig04b_tox.csv", &headers, &rows);

    // (c) Temperature sweep on the 50 nm device (the paper's Fig. 4c
    // device: gate/junction dominated at room temperature).
    let d50 = Technology::d50();
    let mut rows = Vec::new();
    for temp in linspace(250.0, 400.0, opts.points) {
        let (sub, gate, btbt) = off_components(&d50.nmos, d50.vdd, temp);
        rows.push(vec![fmt(temp, 0), fmt(na(sub), 3), fmt(na(gate), 3), fmt(na(btbt), 3)]);
    }
    let headers = ["T[K]", "Isub[nA]", "Igate[nA]", "Ibtbt[nA]"];
    print_table("Fig 4c: leakage components vs temperature (NMOS, 50nm)", &headers, &rows);
    write_csv("fig04c_temperature.csv", &headers, &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halo_trades_subthreshold_for_btbt() {
        let tech = Technology::d25();
        let lo = tech.nmos.with_doping(tech.nmos.doping.with_halo(0.6e25));
        let hi = tech.nmos.with_doping(tech.nmos.doping.with_halo(2.4e25));
        let (sub_lo, gate_lo, btbt_lo) = off_components(&lo, 0.9, 300.0);
        let (sub_hi, gate_hi, btbt_hi) = off_components(&hi, 0.9, 300.0);
        assert!(sub_hi < sub_lo, "halo up, sub down");
        assert!(btbt_hi > 10.0 * btbt_lo, "halo up, btbt up steeply");
        let gate_rel = (gate_hi - gate_lo).abs() / gate_lo;
        assert!(gate_rel < 0.25, "gate nearly insensitive to halo ({gate_rel})");
    }

    #[test]
    fn tox_trades_gate_for_subthreshold() {
        let tech = Technology::d25();
        let thin = design_with_tox_iso_vth(&tech.nmos, 0.8e-9);
        let thick = design_with_tox_iso_vth(&tech.nmos, 1.6e-9);
        let (sub_thin, gate_thin, btbt_thin) = off_components(&thin, 0.9, 300.0);
        let (sub_thick, gate_thick, btbt_thick) = off_components(&thick, 0.9, 300.0);
        assert!(gate_thick < 0.05 * gate_thin, "tox up, gate collapses");
        assert!(sub_thick > sub_thin, "tox up, SCE up, sub up");
        let btbt_rel = (btbt_thick - btbt_thin).abs() / btbt_thin;
        assert!(btbt_rel < 0.2, "btbt nearly insensitive to tox ({btbt_rel})");
    }

    #[test]
    fn iso_vth_recentring_keeps_long_channel_threshold() {
        let tech = Technology::d25();
        let base = tech.nmos.derive();
        let thick = design_with_tox_iso_vth(&tech.nmos, 1.6e-9).derive();
        // Long-channel part (vth0 + rolloff) must match; only SCE
        // (roll-off, DIBL, swing) differs.
        let long_base = base.vth0 + 0.25 * (base.eta / 0.72); // rolloff = 0.25*sce
        let long_thick = thick.vth0 + 0.25 * (thick.eta / 0.72);
        assert!((long_base - long_thick).abs() < 5e-3, "{long_base} vs {long_thick}");
        assert!(thick.eta > base.eta);
    }

    #[test]
    fn fig4c_crossover_exists() {
        // At 300 K the 50 nm device is gate/junction dominated; by
        // 400 K subthreshold has taken over (paper Section 3).
        let d50 = Technology::d50();
        let (sub_rt, gate_rt, btbt_rt) = off_components(&d50.nmos, d50.vdd, 300.0);
        assert!(sub_rt < gate_rt + btbt_rt, "room temperature: tunneling dominates");
        let (sub_hot, gate_hot, btbt_hot) = off_components(&d50.nmos, d50.vdd, 400.0);
        assert!(sub_hot > gate_hot + btbt_hot, "hot: subthreshold dominates");
    }
}
