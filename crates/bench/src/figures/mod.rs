//! One module per paper figure; each exposes `Options` and `run`.
//!
//! The corresponding binaries (`fig04_device`, …) are thin wrappers so
//! `all_figures` can drive every experiment from one process.

pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
