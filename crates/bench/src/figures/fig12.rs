//! Fig. 12 — circuit-level validation on the paper's benchmark suite:
//! (a) estimated vs. reference ("SPICE") total leakage, (b) average and
//! (c) maximum per-component leakage change due to loading over random
//! vectors.

use std::time::Instant;

use nanoleak_cells::CellLibrary;
use nanoleak_core::{
    accuracy, estimate_batch, reference_batch, Accuracy, EstimatorMode, ReferenceOptions,
};
use nanoleak_device::Technology;
use nanoleak_netlist::generate::paper_suite;
use nanoleak_netlist::Pattern;
use rand::SeedableRng;

use crate::{fmt, pct, print_table, write_csv};

/// Options for the Fig. 12 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Random vectors for the estimator statistics (paper: 100).
    pub vectors: usize,
    /// Vectors run through the reference simulator (it is orders of
    /// magnitude slower; 10 gives tight means already).
    pub reference_vectors: usize,
    /// Skip the reference entirely (loading statistics only).
    pub skip_reference: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self { vectors: 100, reference_vectors: 10, skip_reference: false, seed: 2005 }
    }
}

/// Regenerates the three panels.
pub fn run(opts: &Options) {
    let tech = Technology::d25();
    println!("characterizing cell library ...");
    let lib = CellLibrary::shared(&tech, 300.0);
    let circuits = paper_suite().expect("paper suite generates");

    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut rows_c = Vec::new();

    for circuit in &circuits {
        let name = circuit.name().to_string();
        println!("running {name} ({} gates) ...", circuit.gate_count());
        let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
        let patterns = Pattern::random_batch(circuit, &mut rng, opts.vectors);

        let t0 = Instant::now();
        let loaded =
            estimate_batch(circuit, &lib, &patterns, EstimatorMode::Lut).expect("estimation");
        let est_time = t0.elapsed();
        let unloaded = estimate_batch(circuit, &lib, &patterns, EstimatorMode::NoLoading)
            .expect("baseline estimation");

        let pairs: Vec<_> = loaded.iter().cloned().zip(unloaded.iter().cloned()).collect();
        let impact = nanoleak_core::LoadingImpact::from_pairs(&pairs);

        let est_mean_uw =
            loaded.iter().map(|r| r.power(tech.vdd)).sum::<f64>() / loaded.len() as f64 * 1e6;

        let (ref_mean_uw, acc, ref_time) = if opts.skip_reference {
            (None, None, None)
        } else {
            let n_ref = opts.reference_vectors.min(patterns.len()).max(1);
            let t0 = Instant::now();
            let refs = reference_batch(
                circuit,
                &tech,
                300.0,
                &patterns[..n_ref],
                &ReferenceOptions::default(),
            )
            .expect("reference");
            let ref_time = t0.elapsed();
            let accs: Vec<Accuracy> =
                loaded[..n_ref].iter().zip(&refs).map(|(e, r)| accuracy(e, &r.leakage)).collect();
            let mean_err = accs.iter().map(|a| a.total_rel_err).sum::<f64>() / accs.len() as f64;
            let ref_mean = refs.iter().map(|r| r.leakage.power(tech.vdd)).sum::<f64>()
                / refs.len() as f64
                * 1e6;
            (Some(ref_mean), Some(mean_err), Some((ref_time, n_ref)))
        };

        let speedup = match (&ref_time, est_time.as_secs_f64()) {
            (Some((rt, n_ref)), et) if et > 0.0 => {
                let per_ref = rt.as_secs_f64() / *n_ref as f64;
                let per_est = et / patterns.len() as f64;
                Some(per_ref / per_est)
            }
            _ => None,
        };

        rows_a.push(vec![
            name.clone(),
            circuit.gate_count().to_string(),
            ref_mean_uw.map_or("-".into(), |x| fmt(x, 2)),
            fmt(est_mean_uw, 2),
            acc.map_or("-".into(), |e| fmt(pct(e), 2)),
            speedup.map_or("-".into(), |s| fmt(s, 0)),
        ]);
        rows_b.push(vec![
            name.clone(),
            fmt(pct(impact.avg.sub), 2),
            fmt(pct(impact.avg.gate), 2),
            fmt(pct(impact.avg.btbt), 2),
            fmt(pct(impact.avg_total), 2),
        ]);
        rows_c.push(vec![
            name,
            fmt(pct(impact.max.sub), 2),
            fmt(pct(impact.max.gate), 2),
            fmt(pct(impact.max.btbt), 2),
            fmt(pct(impact.max_total), 2),
        ]);
    }

    let headers_a = ["circuit", "gates", "reference[uW]", "estimated[uW]", "err%", "speedup(x)"];
    print_table("Fig 12a: estimated vs reference leakage", &headers_a, &rows_a);
    write_csv("fig12a_validation.csv", &headers_a, &rows_a);

    let headers_bc = ["circuit", "sub%", "gate%", "btbt%", "total%"];
    print_table("Fig 12b: average leakage variation due to loading", &headers_bc, &rows_b);
    write_csv("fig12b_avg_variation.csv", &headers_bc, &rows_b);
    print_table("Fig 12c: maximum leakage variation due to loading", &headers_bc, &rows_c);
    write_csv("fig12c_max_variation.csv", &headers_bc, &rows_c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_cells::{CellType, CharacterizeOptions};
    use nanoleak_netlist::generate::iscas_like;
    use nanoleak_netlist::normalize::normalize;

    #[test]
    fn s838_standin_shows_paper_scale_loading_impact() {
        // The smallest benchmark end-to-end: average subthreshold
        // increase positive, gate/btbt negative, total a few percent
        // (paper Fig. 12b).
        let tech = Technology::d25();
        let lib = CellLibrary::shared_with_options(
            &tech,
            300.0,
            &CharacterizeOptions::coarse(&CellType::ALL),
        );
        let circuit = normalize(&iscas_like("s838").unwrap()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let patterns = Pattern::random_batch(&circuit, &mut rng, 6);
        let loaded = estimate_batch(&circuit, &lib, &patterns, EstimatorMode::Lut).unwrap();
        let unloaded = estimate_batch(&circuit, &lib, &patterns, EstimatorMode::NoLoading).unwrap();
        let pairs: Vec<_> = loaded.into_iter().zip(unloaded).collect();
        let impact = nanoleak_core::LoadingImpact::from_pairs(&pairs);
        assert!(impact.avg.sub > 0.0, "{:?}", impact.avg);
        assert!(impact.avg.gate < 0.0, "{:?}", impact.avg);
        assert!(impact.avg.btbt < 0.0, "{:?}", impact.avg);
        assert!(
            impact.avg_total > 0.0 && impact.avg_total < 0.12,
            "total {}%",
            impact.avg_total * 100.0
        );
    }
}
