//! Fig. 8 — loading effect for devices with different dominant leakage
//! mechanisms: `D25-S` (subthreshold), `D25-G` (gate), `D25-JN`
//! (junction BTBT).

use nanoleak_cells::{eval_loaded, CellType, InputVector};
use nanoleak_device::Technology;

use crate::{fmt, linspace, pct, print_table, write_csv};

/// Options for the Fig. 8 sweeps.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Points per sweep.
    pub points: usize,
    /// Largest loading current \[A\].
    pub max_loading: f64,
    /// Temperature \[K\].
    pub temp: f64,
}

impl Default for Options {
    fn default() -> Self {
        Self { points: 13, max_loading: 3.0e-6, temp: 300.0 }
    }
}

/// LD on total leakage for a flavor, given loading placement.
fn ld_total(tech: &Technology, opts: &Options, input: bool, on_input: bool, il: f64) -> f64 {
    let v = InputVector::from_bools(&[input]);
    let nominal = eval_loaded(tech, opts.temp, CellType::Inv, v, &[0.0], 0.0)
        .expect("nominal")
        .breakdown
        .total();
    let (il_in, il_out) = if on_input { ([il], 0.0) } else { ([0.0], il) };
    let total = eval_loaded(tech, opts.temp, CellType::Inv, v, &il_in, il_out)
        .expect("loaded")
        .breakdown
        .total();
    (total - nominal) / nominal
}

/// Regenerates the four panels.
pub fn run(opts: &Options) {
    let flavors = Technology::d25_flavors();
    let headers = ["I_L[nA]", "D25-S%", "D25-G%", "D25-JN%"];
    let panels = [
        ("Fig 8a: input loading effect, input '0'", "fig08a_in_input0.csv", false, true),
        ("Fig 8b: output loading effect, input '0'", "fig08b_out_input0.csv", false, false),
        ("Fig 8c: input loading effect, input '1'", "fig08c_in_input1.csv", true, true),
        ("Fig 8d: output loading effect, input '1'", "fig08d_out_input1.csv", true, false),
    ];
    for (title, csv, input, on_input) in panels {
        let mut rows = Vec::new();
        for il in linspace(0.0, opts.max_loading, opts.points) {
            let mut row = vec![fmt(il / 1e-9, 0)];
            for tech in &flavors {
                row.push(fmt(pct(ld_total(tech, opts, input, on_input, il)), 3));
            }
            rows.push(row);
        }
        print_table(title, &headers, &rows);
        write_csv(csv, &headers, &rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> Options {
        Options::default()
    }

    #[test]
    fn input_loading_strongest_for_sub_dominated_device() {
        // Paper Fig. 8a: D25-S shows the most input-loading effect.
        let [s, g, jn] = Technology::d25_flavors();
        let ld_s = ld_total(&s, &opts(), false, true, 3e-6);
        let ld_g = ld_total(&g, &opts(), false, true, 3e-6);
        let ld_jn = ld_total(&jn, &opts(), false, true, 3e-6);
        assert!(ld_s > ld_g, "S {ld_s} vs G {ld_g}");
        assert!(ld_s > ld_jn, "S {ld_s} vs JN {ld_jn}");
    }

    #[test]
    fn output_loading_strongest_for_junction_dominated_device() {
        // Paper Fig. 8b/8d: D25-JN reacts most to output loading.
        let [s, g, jn] = Technology::d25_flavors();
        let mag = |t: &Technology| ld_total(t, &opts(), true, false, 3e-6).abs();
        assert!(mag(&jn) > mag(&s), "JN {} vs S {}", mag(&jn), mag(&s));
        assert!(mag(&jn) > mag(&g), "JN {} vs G {}", mag(&jn), mag(&g));
    }

    #[test]
    fn gate_dominated_device_least_affected_overall() {
        // Paper Section 5.1: "loading has least impact on the gate
        // leakage dominated device".
        let [s, g, jn] = Technology::d25_flavors();
        let footprint = |t: &Technology| {
            ld_total(t, &opts(), false, true, 3e-6).abs()
                + ld_total(t, &opts(), false, false, 3e-6).abs()
        };
        assert!(footprint(&g) < footprint(&s));
        assert!(footprint(&g) < footprint(&jn));
    }
}
