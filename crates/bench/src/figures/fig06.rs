//! Fig. 6 — overall loading effect `LD_ALL(I_L-IN, I_L-OUT)` surface of
//! an inverter, for both input states.

use nanoleak_cells::{eval_loaded, CellType, InputVector};
use nanoleak_device::Technology;

use crate::{fmt, linspace, pct, print_table, write_csv};

/// Options for the Fig. 6 surfaces.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Grid points per axis.
    pub points: usize,
    /// Largest loading current per axis \[A\].
    pub max_loading: f64,
    /// Temperature \[K\].
    pub temp: f64,
}

impl Default for Options {
    fn default() -> Self {
        Self { points: 7, max_loading: 3.0e-6, temp: 300.0 }
    }
}

fn surface(tech: &Technology, opts: &Options, input: bool) -> Vec<Vec<String>> {
    let v = InputVector::from_bools(&[input]);
    let nominal = eval_loaded(tech, opts.temp, CellType::Inv, v, &[0.0], 0.0)
        .expect("nominal solve")
        .breakdown
        .total();
    let grid = linspace(0.0, opts.max_loading, opts.points);
    let mut rows = Vec::new();
    for &il_in in &grid {
        for &il_out in &grid {
            let total = eval_loaded(tech, opts.temp, CellType::Inv, v, &[il_in], il_out)
                .expect("loaded solve")
                .breakdown
                .total();
            rows.push(vec![
                fmt(il_in / 1e-9, 0),
                fmt(il_out / 1e-9, 0),
                fmt(pct((total - nominal) / nominal), 3),
            ]);
        }
    }
    rows
}

/// Regenerates both surfaces.
pub fn run(opts: &Options) {
    let tech = Technology::d25();
    let headers = ["I_L-IN[nA]", "I_L-OUT[nA]", "LD_ALL%"];
    let rows = surface(&tech, opts, false);
    print_table("Fig 6a: LD_ALL surface, input '0' / output '1'", &headers, &rows);
    write_csv("fig06a_surface_input0.csv", &headers, &rows);
    let rows = surface(&tech, opts, true);
    print_table("Fig 6b: LD_ALL surface, input '1' / output '0'", &headers, &rows);
    write_csv("fig06b_surface_input1.csv", &headers, &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_have_expected_signs() {
        let tech = Technology::d25();
        let v = InputVector::parse("0").unwrap();
        let nom = eval_loaded(&tech, 300.0, CellType::Inv, v, &[0.0], 0.0).unwrap().breakdown;
        // Pure input loading: positive LD_ALL; pure output loading:
        // negative; both: input effect wins for input '0' (paper's
        // Fig. 6a tops out positive).
        let lin = eval_loaded(&tech, 300.0, CellType::Inv, v, &[3e-6], 0.0).unwrap().breakdown;
        let lout = eval_loaded(&tech, 300.0, CellType::Inv, v, &[0.0], 3e-6).unwrap().breakdown;
        let both = eval_loaded(&tech, 300.0, CellType::Inv, v, &[3e-6], 3e-6).unwrap().breakdown;
        assert!(lin.total() > nom.total());
        assert!(lout.total() < nom.total());
        assert!(both.total() > nom.total(), "input effect dominates at input '0'");
    }

    #[test]
    fn input0_surface_higher_than_input1() {
        // Paper Section 4: LD_ALL is normally higher with input '0'.
        let tech = Technology::d25();
        let max_ld = |input: bool| {
            let v = InputVector::from_bools(&[input]);
            let nom =
                eval_loaded(&tech, 300.0, CellType::Inv, v, &[0.0], 0.0).unwrap().breakdown.total();
            let loaded = eval_loaded(&tech, 300.0, CellType::Inv, v, &[3e-6], 0.0)
                .unwrap()
                .breakdown
                .total();
            (loaded - nom) / nom
        };
        assert!(max_ld(false) > max_ld(true));
    }
}
