//! Fig. 11 — effect of loading on the mean (left) and standard
//! deviation (right) of total inverter leakage versus the inter-die
//! threshold-voltage sigma.

use nanoleak_cells::OperatingPoint;
use nanoleak_device::Technology;
use nanoleak_variation::{run_inverter_mc, McConfig, VariationSigmas};

use crate::{fmt, pct, print_table, write_csv};

/// Options for the Fig. 11 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Samples per sigma point.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self { samples: 10_000, seed: 2005 }
    }
}

/// Regenerates both panels: the paper fixes sigma_Vt,intra = 30 mV for
/// the mean plot and 90 mV for the std plot.
pub fn run(opts: &Options) {
    let tech = Technology::d25();
    let sweep = [30e-3, 40e-3, 50e-3];

    let mut rows = Vec::new();
    for &vt_inter in &sweep {
        let mean_cfg = McConfig {
            samples: opts.samples,
            seed: opts.seed,
            sigmas: VariationSigmas::paper_nominal().with_vt_inter(vt_inter).with_vt_intra(30e-3),
            // The paper's room-temperature nominal, named through the
            // shared operating-point derivation (no hand-rolled
            // temperature or supply arithmetic in this bin).
            op: OperatingPoint::default(),
            ..Default::default()
        };
        let std_cfg = McConfig {
            sigmas: VariationSigmas::paper_nominal().with_vt_inter(vt_inter).with_vt_intra(90e-3),
            ..mean_cfg
        };
        let mean_result = run_inverter_mc(&tech, &mean_cfg).expect("mc mean");
        let std_result = run_inverter_mc(&tech, &std_cfg).expect("mc std");
        rows.push(vec![
            fmt(vt_inter * 1e3, 0),
            fmt(pct(mean_result.mean_shift()), 2),
            fmt(pct(std_result.std_shift()), 2),
        ]);
    }
    let headers = ["sigmaVt_inter[mV]", "mean-shift%", "std-shift%"];
    print_table(
        "Fig 11: loading effect on mean (intra 30mV) and std (intra 90mV) of total leakage",
        &headers,
        &rows,
    );
    write_csv("fig11_variation_sweep.csv", &headers, &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_shift_grows_with_inter_die_sigma() {
        // Paper Fig. 11 (right): more inter-die Vt spread means the
        // loading effect amplifies the distribution width more.
        let tech = Technology::d25();
        let run_at = |vt_inter: f64| {
            let cfg = McConfig {
                samples: 300,
                seed: 7,
                sigmas: VariationSigmas::paper_nominal()
                    .with_vt_inter(vt_inter)
                    .with_vt_intra(90e-3),
                ..Default::default()
            };
            run_inverter_mc(&tech, &cfg).unwrap().std_shift()
        };
        let lo = run_at(30e-3);
        let hi = run_at(50e-3);
        assert!(hi > 0.0, "hi = {hi}");
        assert!(hi > lo * 0.8, "lo {lo} vs hi {hi} (allowing MC noise)");
    }
}
