//! Fig. 5 — input and output loading effect on the inverter's leakage
//! components, for input '0' (output '1') and input '1' (output '0').

use nanoleak_cells::{eval_loaded, CellType, InputVector};
use nanoleak_device::Technology;

use crate::{fmt, linspace, pct, print_table, write_csv};

/// Options for the Fig. 5 sweeps.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Points per loading sweep.
    pub points: usize,
    /// Largest loading current \[A\] (paper sweeps to 3 uA).
    pub max_loading: f64,
    /// Temperature \[K\].
    pub temp: f64,
}

impl Default for Options {
    fn default() -> Self {
        Self { points: 13, max_loading: 3.0e-6, temp: 300.0 }
    }
}

/// One LD sweep: loading on either the input or output of an inverter.
fn sweep(tech: &Technology, opts: &Options, input: bool, on_input: bool) -> Vec<Vec<String>> {
    let v = InputVector::from_bools(&[input]);
    let nominal = eval_loaded(tech, opts.temp, CellType::Inv, v, &[0.0], 0.0)
        .expect("nominal solve")
        .breakdown;
    let mut rows = Vec::new();
    for il in linspace(0.0, opts.max_loading, opts.points) {
        let (il_in, il_out) = if on_input { ([il], 0.0) } else { ([0.0], il) };
        let b = eval_loaded(tech, opts.temp, CellType::Inv, v, &il_in, il_out)
            .expect("loaded solve")
            .breakdown;
        let ld = b.relative_to(&nominal, 1e-18);
        let ld_total = (b.total() - nominal.total()) / nominal.total();
        rows.push(vec![
            fmt(il / 1e-9, 0),
            fmt(pct(ld.sub), 3),
            fmt(pct(ld.gate), 3),
            fmt(pct(ld.btbt), 3),
            fmt(pct(ld_total), 3),
        ]);
    }
    rows
}

/// Regenerates the four panels.
pub fn run(opts: &Options) {
    let tech = Technology::d25();
    let headers = ["I_L[nA]", "LD(sub)%", "LD(gate)%", "LD(btbt)%", "LD(total)%"];
    let panels = [
        ("Fig 5a: input loading, input '0' / output '1'", "fig05a_in_input0.csv", false, true),
        ("Fig 5b: output loading, input '0' / output '1'", "fig05b_out_input0.csv", false, false),
        ("Fig 5c: input loading, input '1' / output '0'", "fig05c_in_input1.csv", true, true),
        ("Fig 5d: output loading, input '1' / output '0'", "fig05d_out_input1.csv", true, false),
    ];
    for (title, csv, input, on_input) in panels {
        let rows = sweep(&tech, opts, input, on_input);
        print_table(title, &headers, &rows);
        write_csv(csv, &headers, &rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_cells::eval_loaded;

    fn ld_at(input: bool, on_input: bool, il: f64) -> (f64, f64, f64, f64) {
        let tech = Technology::d25();
        let v = InputVector::from_bools(&[input]);
        let nominal = eval_loaded(&tech, 300.0, CellType::Inv, v, &[0.0], 0.0).unwrap().breakdown;
        let (il_in, il_out) = if on_input { ([il], 0.0) } else { ([0.0], il) };
        let b = eval_loaded(&tech, 300.0, CellType::Inv, v, &il_in, il_out).unwrap().breakdown;
        let ld = b.relative_to(&nominal, 1e-18);
        ((b.total() - nominal.total()) / nominal.total(), ld.sub, ld.gate, ld.btbt)
    }

    #[test]
    fn fig5a_shape_input0() {
        // Input '0': subthreshold strongly positive (paper ~+12%),
        // gate slightly negative, total positive.
        let (total, sub, gate, _) = ld_at(false, true, 3.0e-6);
        assert!(sub > 0.04 && sub < 0.30, "LD_IN(sub) = {}", sub);
        assert!(gate < 0.0 && gate > -0.10, "LD_IN(gate) = {}", gate);
        assert!(total > 0.01, "LD_IN(total) = {}", total);
    }

    #[test]
    fn fig5c_weaker_than_fig5a() {
        // Input loading effect is weaker with input '1' (stiffer PMOS
        // holding the node + PMOS's worse swing).
        let (t0, s0, _, _) = ld_at(false, true, 3.0e-6);
        let (t1, s1, _, _) = ld_at(true, true, 3.0e-6);
        assert!(s1 > 0.0, "still positive");
        assert!(s1 < 0.75 * s0, "sub: input1 {} vs input0 {}", s1, s0);
        assert!(t1 < t0, "total: input1 {} vs input0 {}", t1, t0);
    }

    #[test]
    fn fig5b_output_loading_all_negative() {
        let (total, sub, gate, btbt) = ld_at(false, false, 3.0e-6);
        assert!(sub < 0.0 && gate < 0.0 && btbt < 0.0, "{sub} {gate} {btbt}");
        assert!(total < 0.0 && total > -0.08, "LD_OUT(total) = {total}");
        // BTBT is the strongest-affected component (paper Fig. 5b).
        assert!(btbt < sub, "btbt {btbt} vs sub {sub}");
    }

    #[test]
    fn fig5d_stronger_than_fig5b() {
        // Output loading effect is stronger with output '0' (PMOS DIBL
        // and PMOS junction dominate).
        let (t0, ..) = ld_at(false, false, 3.0e-6);
        let (t1, ..) = ld_at(true, false, 3.0e-6);
        assert!(t1 < t0, "output0 {} must dip below output1 {}", t1, t0);
    }

    #[test]
    fn ld_grows_with_loading_current() {
        let (_, s1, ..) = ld_at(false, true, 1.0e-6);
        let (_, s3, ..) = ld_at(false, true, 3.0e-6);
        assert!(s3 > s1, "{s3} > {s1}");
    }
}
