//! # nanoleak-bench
//!
//! Shared harness utilities for the figure-regeneration binaries
//! (`fig04_device` … `fig12_circuits`) and the Criterion benches.
//!
//! Each binary prints the same series the corresponding paper figure
//! plots (aligned table on stdout) and writes a CSV next to it under
//! `results/`. Run them all with `cargo run --release -p nanoleak-bench
//! --bin all_figures`.

pub mod figures;

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Nanoamp conversion for display.
pub fn na(x: f64) -> f64 {
    x / 1e-9
}

/// Percent conversion for display.
pub fn pct(x: f64) -> f64 {
    100.0 * x
}

/// `n` evenly spaced values over `[a, b]` inclusive.
///
/// # Panics
/// Panics if `n < 2`.
pub fn linspace(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    (0..n).map(|i| a + (b - a) * i as f64 / (n - 1) as f64).collect()
}

/// The output directory for CSV artifacts (`results/`, created on
/// demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(std::env::var("NANOLEAK_RESULTS").unwrap_or_else(|_| "results".into()));
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Prints an aligned table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: Vec<String> =
        headers.iter().enumerate().map(|(i, h)| format!("{h:>w$}", w = widths[i])).collect();
    println!("{}", line.join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Writes a CSV artifact into [`results_dir`]; prints the path.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(name);
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    match fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
        Ok(()) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] failed to write {}: {e}", path.display()),
    }
}

/// Simple flag lookup: `--name value` in the binary's argv.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// `true` when `--flag` is present in argv.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Formats a number with the given decimals.
pub fn fmt(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_and_spacing() {
        let v = linspace(0.0, 3.0, 4);
        assert_eq!(v, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn linspace_rejects_single_point() {
        linspace(0.0, 1.0, 1);
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(na(3e-9), 3.0);
        assert_eq!(pct(0.05), 5.0);
        assert_eq!(fmt(1.23456, 2), "1.23");
    }
}
