//! End-to-end integration tests for `nanoleak-serve`: a real server
//! on an ephemeral port, driven by a raw [`TcpStream`] HTTP client.
//!
//! Covers the acceptance criteria of the service PR: `/healthz`
//! answers, a sweep served over HTTP is bit-identical to the same
//! in-process [`sweep`] call, the async job lifecycle runs
//! queued → running → done (and cancels), and malformed JSON /
//! unknown routes come back as structured 4xx errors.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use nanoleak_cells::{CellLibrary, CellType, CharacterizeOptions, OperatingPoint};
use nanoleak_core::EstimatorMode;
use nanoleak_device::Technology;
use nanoleak_engine::{
    mc_streaming, mc_streaming_mode, sweep, McMode, MemoLibraryCache, SweepConfig, SweepStats,
};
use nanoleak_netlist::bench_format::parse_bench;
use nanoleak_netlist::generate::iscas_like;
use nanoleak_netlist::normalize::normalize;
use nanoleak_serve::{ServeConfig, Server, ShutdownHandle};
use nanoleak_variation::{char_opts_for, CircuitMcConfig, McSummary, VariationSigmas};
use serde::{json, Deserialize, Value};

/// A running test server; shuts down (and joins) on drop.
struct TestServer {
    addr: std::net::SocketAddr,
    handle: ShutdownHandle,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn start(threads: usize, queue_capacity: usize) -> Self {
        Self::start_cfg(ServeConfig { threads, queue_capacity, ..Self::base_config() })
    }

    /// Hermetic defaults: ephemeral port, RAM memo only.
    fn base_config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            cache_dir: None,
            disk_cache: false,
            ..Default::default()
        }
    }

    fn start_cfg(config: ServeConfig) -> Self {
        let server = Server::bind(&config).expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound address");
        let handle = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.run());
        Self { addr, handle, thread: Some(thread) }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.request();
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread").expect("server run");
        }
    }
}

/// One HTTP exchange over a raw TcpStream; returns (status, body).
fn request(server: &TestServer, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// Parses a JSON body and extracts a top-level field.
fn field(body: &str, name: &str) -> Value {
    let v = json::value_from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"));
    let Value::Record(fields) = v else { panic!("not an object: {body}") };
    fields
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("no field '{name}' in {body}"))
}

/// Asserts the structured error shape and returns its message.
fn assert_error(body: &str, code: u16) -> String {
    let Value::Record(fields) = field(body, "error") else { panic!("no error object: {body}") };
    let mut message = String::new();
    let mut seen_code = 0i128;
    for (name, value) in fields {
        match (name.as_str(), value) {
            ("code", Value::Int(c)) => seen_code = c,
            ("message", Value::Str(m)) => message = m,
            _ => {}
        }
    }
    assert_eq!(seen_code, i128::from(code), "error.code in {body}");
    assert!(!message.is_empty(), "error.message missing in {body}");
    message
}

#[test]
fn healthz_answers() {
    let server = TestServer::start(1, 8);
    let (status, body) = request(&server, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"status":"ok"}"#);
}

#[test]
fn unknown_routes_and_bad_bodies_are_structured_4xx() {
    let server = TestServer::start(1, 8);

    let (status, body) = request(&server, "GET", "/totally/unknown", "");
    assert_eq!(status, 404);
    assert!(assert_error(&body, 404).contains("/totally/unknown"));

    let (status, body) = request(&server, "POST", "/healthz", "");
    assert_eq!(status, 405);
    assert_error(&body, 405);

    let (status, body) = request(&server, "POST", "/v1/sweep", "{not json");
    assert_eq!(status, 400);
    assert!(assert_error(&body, 400).contains("malformed JSON"));

    let (status, body) = request(&server, "POST", "/v1/sweep", r#"{"vectors": 4}"#);
    assert_eq!(status, 400, "missing target: {body}");
    assert_error(&body, 400);

    let (status, body) = request(&server, "POST", "/v1/estimate", r#"{"target": "sXYZ"}"#);
    assert_eq!(status, 422);
    assert!(assert_error(&body, 422).contains("sXYZ"));

    let (status, body) = request(&server, "GET", "/v1/jobs/999", "");
    assert_eq!(status, 404);
    assert_error(&body, 404);

    let (status, body) = request(&server, "DELETE", "/v1/jobs/not-a-number", "");
    assert_eq!(status, 400);
    assert_error(&body, 400);
}

#[test]
fn estimate_endpoint_reports_loading_impact() {
    let server = TestServer::start(1, 8);
    let (status, body) = request(
        &server,
        "POST",
        "/v1/estimate",
        r#"{"target": "s838", "vectors": 5, "coarse": true}"#,
    );
    assert_eq!(status, 200, "{body}");
    let Value::F64(mean) = field(&body, "mean_total_a") else { panic!("mean_total_a: {body}") };
    assert!(mean > 0.0, "positive leakage, got {mean}");
    let Value::F64(baseline) = field(&body, "mean_no_loading_a") else { panic!("{body}") };
    assert_ne!(mean, baseline, "loading must move the estimate");
}

/// The acceptance criterion: a sweep served over HTTP equals the
/// in-process `sweep()` call for the same seed, bit for bit.
#[test]
fn http_sweep_is_bit_identical_to_in_process_sweep() {
    let server = TestServer::start(2, 8);
    let (status, body) = request(
        &server,
        "POST",
        "/v1/sweep",
        r#"{"target": "s838", "vectors": 12, "seed": 77, "threads": 2, "coarse": true}"#,
    );
    assert_eq!(status, 200, "{body}");
    let http_stats = SweepStats::from_value(&field(&body, "stats")).expect("decode stats");

    let circuit = normalize(&iscas_like("s838").unwrap()).unwrap();
    let lib = CellLibrary::shared_with_options(
        &Technology::d25(),
        300.0,
        &CharacterizeOptions::coarse(&CellType::ALL),
    );
    let config =
        SweepConfig { vectors: 12, seed: 77, threads: 1, mode: EstimatorMode::Lut, lanes: 0 };
    let local = sweep(&circuit, &lib, &config).expect("local sweep");
    assert_eq!(http_stats, local.stats, "HTTP and in-process sweeps must agree exactly");
}

/// Polls one job until it reaches a terminal status.
fn wait_for_job(server: &TestServer, id: i128, deadline: Duration) -> (String, String) {
    let start = Instant::now();
    loop {
        let (status, body) = request(server, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let Value::Str(state) = field(&body, "status") else { panic!("status: {body}") };
        match state.as_str() {
            "done" | "failed" | "cancelled" => return (state, body),
            "queued" | "running" => {
                assert!(
                    start.elapsed() < deadline,
                    "job {id} still '{state}' after {deadline:?}: {body}"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
            other => panic!("unknown status '{other}': {body}"),
        }
    }
}

#[test]
fn grid_job_lifecycle_queued_to_done_with_deterministic_matrix() {
    let server = TestServer::start(1, 8);
    let (status, body) = request(
        &server,
        "POST",
        "/v1/jobs",
        r#"{"type": "grid", "target": "s838", "vectors": 6, "seed": 5, "coarse": true,
            "temps": [300, 340], "vdd_scales": [0.9, 1.0]}"#,
    );
    assert_eq!(status, 202, "{body}");
    let Value::Int(id) = field(&body, "id") else { panic!("id: {body}") };
    let Value::Str(state) = field(&body, "status") else { panic!("status: {body}") };
    assert_eq!(state, "queued");

    let (state, body) = wait_for_job(&server, id, Duration::from_secs(120));
    assert_eq!(state, "done", "{body}");
    let result = field(&body, "result");
    let Value::Record(result_fields) = &result else { panic!("result: {body}") };
    let matrix = result_fields
        .iter()
        .find(|(n, _)| n == "mean_total_a")
        .map(|(_, v)| Vec::<Vec<f64>>::from_value(v).expect("matrix decodes"))
        .expect("mean_total_a present");
    assert_eq!(matrix.len(), 2, "one row per temperature");
    assert!(matrix.iter().all(|row| row.len() == 2), "one column per vdd scale");
    // Hotter rows leak more at every supply point.
    for col in 0..2 {
        assert!(matrix[1][col] > matrix[0][col], "340 K > 300 K leakage: {matrix:?}");
    }

    // Determinism across the HTTP boundary: the (300 K, 1.0) cell is
    // exactly the in-process sweep mean for the same seed.
    let circuit = normalize(&iscas_like("s838").unwrap()).unwrap();
    let lib = CellLibrary::shared_with_options(
        &Technology::d25(),
        300.0,
        &CharacterizeOptions::coarse(&CellType::ALL),
    );
    let config =
        SweepConfig { vectors: 6, seed: 5, threads: 0, mode: EstimatorMode::Lut, lanes: 0 };
    let local = sweep(&circuit, &lib, &config).expect("local sweep");
    assert_eq!(matrix[0][1], local.stats.total.mean, "grid cell equals in-process sweep");
}

#[test]
fn queued_jobs_cancel_and_stats_count_everything() {
    // One worker and a deep queue: the first job occupies the worker
    // while the second is cancelled in place.
    let server = TestServer::start(1, 8);
    let submit = |body: &str| {
        let (status, resp) = request(&server, "POST", "/v1/jobs", body);
        assert_eq!(status, 202, "{resp}");
        let Value::Int(id) = field(&resp, "id") else { panic!("id: {resp}") };
        id
    };
    let first = submit(r#"{"type": "sweep", "target": "s838", "vectors": 8, "coarse": true}"#);
    let second = submit(r#"{"type": "sweep", "target": "s838", "vectors": 8, "coarse": true}"#);

    let (status, body) = request(&server, "DELETE", &format!("/v1/jobs/{second}"), "");
    assert_eq!(status, 200, "{body}");
    // Cancelled while queued (or, if the worker already grabbed it,
    // flagged while running) — either way it terminates cancelled or
    // done-before-cancel; a queued cancel must read "cancelled".
    let (state, _) = wait_for_job(&server, second, Duration::from_secs(120));
    assert!(state == "cancelled" || state == "done", "cancel outcome: {state}");

    let (state, _) = wait_for_job(&server, first, Duration::from_secs(120));
    assert_eq!(state, "done", "undisturbed job completes");

    let (status, body) = request(&server, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    let Value::Record(jobs) = field(&body, "jobs") else { panic!("jobs: {body}") };
    let count = |name: &str| {
        jobs.iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| if let Value::Int(i) = v { Some(*i) } else { None })
            .unwrap_or_else(|| panic!("jobs.{name}: {body}"))
    };
    assert_eq!(count("queued") + count("running"), 0, "everything settled");
    assert!(count("done") >= 1);
    assert_eq!(count("done") + count("cancelled"), 2);
    let Value::Record(cache) = field(&body, "cache") else { panic!("cache: {body}") };
    let characterizations =
        cache.iter().find(|(n, _)| n.as_str() == "characterizations").map(|(_, v)| v.clone());
    assert!(
        matches!(characterizations, Some(Value::Int(n)) if n >= 1),
        "solver ran at least once: {body}"
    );
}

/// Writes one request on an already-open keep-alive stream.
fn write_request(stream: &mut TcpStream, method: &str, path: &str, body: &str) {
    let head =
        format!("{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n", body.len());
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
}

/// Reads exactly one response off a keep-alive stream; `None` on EOF.
/// Returns `(status, connection_header, body)`.
fn read_one_response(reader: &mut BufReader<&TcpStream>) -> Option<(u16, String, String)> {
    let mut line = String::new();
    if reader.read_line(&mut line).expect("read status line") == 0 {
        return None;
    }
    let status: u16 = line.split_whitespace().nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    let mut connection = String::new();
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).expect("read header");
        let t = h.trim();
        if t.is_empty() {
            break;
        }
        if let Some((k, v)) = t.split_once(':') {
            match k.to_ascii_lowercase().as_str() {
                "content-length" => content_length = v.trim().parse().expect("length"),
                "connection" => connection = v.trim().to_string(),
                _ => {}
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    Some((status, connection, String::from_utf8(body).expect("utf8 body")))
}

/// The keep-alive acceptance criterion: one TCP connection serves
/// 100+ sequential requests, each correctly framed and answered.
#[test]
fn keep_alive_serves_100_requests_on_one_connection() {
    let server = TestServer::start(1, 8);
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    let read_stream = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(&read_stream);
    for i in 0..120 {
        // Alternate routes so framing errors can't hide behind
        // identical responses.
        if i % 2 == 0 {
            write_request(&mut stream, "GET", "/healthz", "");
        } else {
            write_request(&mut stream, "GET", "/v1/stats", "");
        }
        let (status, connection, body) =
            read_one_response(&mut reader).unwrap_or_else(|| panic!("EOF at request {i}"));
        assert_eq!(status, 200, "request {i}: {body}");
        assert_eq!(connection, "keep-alive", "request {i}");
        if i % 2 == 0 {
            assert_eq!(body, r#"{"status":"ok"}"#);
        }
    }
    // Server-side request counter proves it was one warm path, not
    // silent reconnects.
    let (status, body) = request(&server, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    let Value::Int(requests) = field(&body, "requests") else { panic!("requests: {body}") };
    assert!(requests >= 121, "all keep-alive requests were counted: {requests}");
}

#[test]
fn connection_close_and_http_10_are_honored() {
    let server = TestServer::start(1, 8);
    // Explicit close: exactly one response, then EOF.
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("write");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    assert!(raw.contains("200 OK") && raw.contains("Connection: close"), "{raw}");

    // HTTP/1.0 defaults to close without asking.
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    stream.write_all(b"GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n").expect("write");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    assert!(raw.contains("Connection: close"), "{raw}");
}

#[test]
fn keep_alive_request_bound_recycles_the_connection() {
    let server = TestServer::start_cfg(ServeConfig {
        threads: 1,
        queue_capacity: 8,
        keep_alive_requests: 3,
        ..TestServer::base_config()
    });
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    let read_stream = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(&read_stream);
    for i in 0..3 {
        write_request(&mut stream, "GET", "/healthz", "");
        let (status, connection, _) = read_one_response(&mut reader).expect("response");
        assert_eq!(status, 200);
        let expect = if i < 2 { "keep-alive" } else { "close" };
        assert_eq!(connection, expect, "request {i} announces the bound");
    }
    assert!(read_one_response(&mut reader).is_none(), "connection closed after the bound");
}

/// The slow-loris case: a complete first request, then a *partial*
/// second request that stalls. The idle deadline must answer 408 and
/// close — not hold the handler thread indefinitely.
#[test]
fn slow_loris_partial_second_request_hits_the_idle_deadline() {
    let server = TestServer::start_cfg(ServeConfig {
        threads: 1,
        queue_capacity: 8,
        keep_alive_idle: Duration::from_millis(250),
        ..TestServer::base_config()
    });
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    let read_stream = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(&read_stream);
    write_request(&mut stream, "GET", "/healthz", "");
    let (status, _, _) = read_one_response(&mut reader).expect("first response");
    assert_eq!(status, 200);

    // Half a request line, then silence.
    stream.write_all(b"GET /healthz HTT").expect("partial write");
    let start = Instant::now();
    let (status, connection, body) =
        read_one_response(&mut reader).expect("the stall gets an answer, not a hang");
    assert_eq!(status, 408, "{body}");
    assert_eq!(connection, "close");
    assert!(assert_error(&body, 408).contains("deadline"));
    assert!(start.elapsed() < Duration::from_secs(5), "answered at the idle deadline");
    assert!(read_one_response(&mut reader).is_none(), "connection closed after 408");
}

/// An idle keep-alive connection is closed quietly (no 408 spam) once
/// the idle deadline passes.
#[test]
fn idle_keep_alive_connection_closes_quietly() {
    let server = TestServer::start_cfg(ServeConfig {
        threads: 1,
        queue_capacity: 8,
        keep_alive_idle: Duration::from_millis(200),
        ..TestServer::base_config()
    });
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    let read_stream = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(&read_stream);
    write_request(&mut stream, "GET", "/healthz", "");
    let (status, _, _) = read_one_response(&mut reader).expect("first response");
    assert_eq!(status, 200);
    // Send nothing more: EOF, not an error response.
    assert!(read_one_response(&mut reader).is_none(), "quiet close on idle");
}

#[test]
fn full_queue_is_backpressure_not_an_error_500() {
    // Capacity-1 queue and one worker: the first job runs, the second
    // waits, the third must bounce with 503.
    let server = TestServer::start(1, 1);
    let body = r#"{"type": "sweep", "target": "s838", "vectors": 64, "coarse": true}"#;
    let mut saw_503 = false;
    for _ in 0..8 {
        let (status, resp) = request(&server, "POST", "/v1/jobs", body);
        match status {
            202 => {}
            503 => {
                assert_error(&resp, 503);
                saw_503 = true;
                break;
            }
            other => panic!("unexpected status {other}: {resp}"),
        }
    }
    assert!(saw_503, "a bounded queue must eventually push back");
}

/// The streaming acceptance criterion over HTTP: a sharded sweep job
/// reports per-shard progress, pages each shard's partial, and its
/// merged stats are bit-identical to the in-process monolithic
/// `sweep()` — across two shard sizes and thread counts.
#[test]
fn sharded_sweep_job_pages_partials_and_merges_bit_identically() {
    let server = TestServer::start(2, 8);

    let circuit = normalize(&iscas_like("s838").unwrap()).unwrap();
    let lib = CellLibrary::shared_with_options(
        &Technology::d25(),
        300.0,
        &CharacterizeOptions::coarse(&CellType::ALL),
    );
    let config =
        SweepConfig { vectors: 12, seed: 77, threads: 1, mode: EstimatorMode::Lut, lanes: 0 };
    let local = sweep(&circuit, &lib, &config).expect("local sweep");

    for (shard_vectors, threads, shards_total) in [(4usize, 2usize, 3i128), (5, 1, 3)] {
        let submit = format!(
            r#"{{"type": "sweep", "target": "s838", "vectors": 12, "seed": 77,
                "threads": {threads}, "shard_vectors": {shard_vectors}, "coarse": true}}"#
        );
        let (status, body) = request(&server, "POST", "/v1/jobs", &submit);
        assert_eq!(status, 202, "{body}");
        let Value::Int(id) = field(&body, "id") else { panic!("id: {body}") };

        let (state, body) = wait_for_job(&server, id, Duration::from_secs(120));
        assert_eq!(state, "done", "{body}");
        assert_eq!(field(&body, "shards_total"), Value::Int(shards_total), "{body}");
        assert_eq!(field(&body, "shards_done"), Value::Int(shards_total), "{body}");

        // The merged result equals the monolithic in-process sweep.
        let result = field(&body, "result");
        let Value::Record(result_fields) = &result else { panic!("result: {body}") };
        let stats_value =
            &result_fields.iter().find(|(n, _)| n == "stats").expect("stats present").1;
        let http_stats = SweepStats::from_value(stats_value).expect("decode stats");
        assert_eq!(
            http_stats, local.stats,
            "sharded job (shard_vectors {shard_vectors}, threads {threads}) \
             must merge bit-identically"
        );

        // Every shard pages independently, with coherent framing.
        let mut total_vectors = 0i128;
        for shard in 0..shards_total {
            let (status, page) =
                request(&server, "GET", &format!("/v1/jobs/{id}/result?shard={shard}"), "");
            assert_eq!(status, 200, "shard {shard}: {page}");
            assert_eq!(field(&page, "shard"), Value::Int(shard));
            assert_eq!(field(&page, "shards_total"), Value::Int(shards_total));
            let Value::Record(partial) = field(&page, "partial") else { panic!("{page}") };
            let vectors = partial
                .iter()
                .find(|(n, _)| n == "vectors")
                .and_then(|(_, v)| if let Value::Int(n) = v { Some(*n) } else { None })
                .expect("partial.vectors");
            total_vectors += vectors;
        }
        assert_eq!(total_vectors, 12, "shards tile the vector space");

        // Out-of-range shards and the no-shard result page behave.
        let (status, page) =
            request(&server, "GET", &format!("/v1/jobs/{id}/result?shard={shards_total}"), "");
        assert_eq!(status, 404, "{page}");
        assert!(assert_error(&page, 404).contains("out of range"));
        let (status, page) = request(&server, "GET", &format!("/v1/jobs/{id}/result"), "");
        assert_eq!(status, 200, "{page}");
        let Value::Record(_) = field(&page, "result") else { panic!("{page}") };
    }
}

/// A shard page of a terminal (cancelled) job must answer 409, not
/// 202 "pending" — pacing clients would otherwise poll forever.
#[test]
fn shard_pages_of_cancelled_jobs_are_conflict_not_pending() {
    let server = TestServer::start(1, 8);
    let (status, body) = request(
        &server,
        "POST",
        "/v1/jobs",
        r#"{"type": "sweep", "target": "s838", "vectors": 20000, "shard_vectors": 500,
            "coarse": true}"#,
    );
    assert_eq!(status, 202, "{body}");
    let Value::Int(id) = field(&body, "id") else { panic!("id: {body}") };

    // Wait until the executor has declared shards and finished at
    // least one, then cancel between shards.
    let start = Instant::now();
    loop {
        let (_, body) = request(&server, "GET", &format!("/v1/jobs/{id}"), "");
        let done = json::value_from_str(&body)
            .ok()
            .and_then(|v| {
                let Value::Record(fields) = v else { return None };
                fields.into_iter().find(|(n, _)| n == "shards_done").map(|(_, v)| v)
            })
            .and_then(|v| if let Value::Int(n) = v { Some(n) } else { None })
            .unwrap_or(0);
        if done >= 1 {
            break;
        }
        assert!(start.elapsed() < Duration::from_secs(120), "no shard progress: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
    let (status, body) = request(&server, "DELETE", &format!("/v1/jobs/{id}"), "");
    assert_eq!(status, 200, "{body}");

    let (state, _) = wait_for_job(&server, id, Duration::from_secs(120));
    if state == "cancelled" {
        // The last shard can never arrive now: 409, not 202.
        let (status, page) = request(&server, "GET", &format!("/v1/jobs/{id}/result?shard=39"), "");
        assert_eq!(status, 409, "{page}");
        assert!(assert_error(&page, 409).contains("cancelled"));
        // Completed shards stay pageable.
        let (status, page) = request(&server, "GET", &format!("/v1/jobs/{id}/result?shard=0"), "");
        assert_eq!(status, 200, "{page}");
    } else {
        // The executor won the race and finished first — legal, just
        // means the cancel landed too late to exercise the 409 path.
        assert_eq!(state, "done");
    }
}

/// The MC tentpole over HTTP: a sharded `"mc"` job reports per-shard
/// progress, pages each shard's distribution partial, and its merged
/// summary is **bit-identical** to the in-process [`mc_streaming`]
/// run of the same configuration — the serde JSON round trip included.
#[test]
fn mc_job_pages_partials_and_matches_in_process_bit_exactly() {
    let server = TestServer::start(2, 8);
    let bench_text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn1 = NAND(a, b)\ny = NOT(n1)\n";
    let submit = format!(
        r#"{{"type": "mc", "bench": "{}", "samples": 5, "seed": 33, "vectors": 2,
            "sigma_vt": 0.05, "shard_samples": 2, "coarse": true, "exact": true}}"#,
        bench_text.replace('\n', "\\n")
    );
    let (status, body) = request(&server, "POST", "/v1/jobs", &submit);
    assert_eq!(status, 202, "{body}");
    let Value::Int(id) = field(&body, "id") else { panic!("id: {body}") };

    let (state, body) = wait_for_job(&server, id, Duration::from_secs(120));
    assert_eq!(state, "done", "{body}");
    assert_eq!(field(&body, "shards_total"), Value::Int(3), "5 samples in shards of 2: {body}");
    assert_eq!(field(&body, "shards_done"), Value::Int(3), "{body}");

    // Every shard pages independently and tiles the sample space.
    let mut total_samples = 0i128;
    for shard in 0..3 {
        let (status, page) =
            request(&server, "GET", &format!("/v1/jobs/{id}/result?shard={shard}"), "");
        assert_eq!(status, 200, "shard {shard}: {page}");
        let Value::Record(partial) = field(&page, "partial") else { panic!("{page}") };
        let int_of = |name: &str| {
            partial
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, v)| if let Value::Int(n) = v { Some(*n) } else { None })
                .unwrap_or_else(|| panic!("partial.{name}: {page}"))
        };
        assert_eq!(int_of("shard"), shard);
        total_samples += int_of("samples");
    }
    assert_eq!(total_samples, 5, "shards tile the sample space");

    // The merged summary equals the in-process run, bit for bit.
    let result = field(&body, "result");
    let Value::Record(result_fields) = &result else { panic!("result: {body}") };
    let summary_value =
        &result_fields.iter().find(|(n, _)| n == "summary").expect("summary present").1;
    let http_summary = McSummary::from_value(summary_value).expect("decode summary");

    let circuit = normalize(&parse_bench("inline", bench_text).unwrap()).unwrap();
    let config = CircuitMcConfig {
        samples: 5,
        seed: 33,
        sigmas: VariationSigmas::paper_nominal().with_vt_inter(0.05),
        op: OperatingPoint::default(),
        vectors: 2,
        pattern_seed: 33,
        threads: 0,
        char_opts: char_opts_for(&circuit, true),
        lanes: 0,
    };
    let cache = MemoLibraryCache::memory_only();
    let local = mc_streaming(&circuit, &Technology::d25(), &cache, &config, 2, |_| true)
        .expect("local mc")
        .expect("not cancelled");
    assert_eq!(http_summary, local.summary, "HTTP MC must equal in-process MC exactly");
    // Sanity on the physics that rides along: loading shifts the mean.
    assert!(http_summary.mean_shift != 0.0, "loading must move the distribution");

    // The default (fast, delta-from-nominal) path holds the same
    // HTTP-vs-in-process contract against its own in-process run.
    let submit_fast = submit.replace(r#""exact": true"#, r#""exact": false"#);
    let (status, body) = request(&server, "POST", "/v1/jobs", &submit_fast);
    assert_eq!(status, 202, "{body}");
    let Value::Int(fast_id) = field(&body, "id") else { panic!("id: {body}") };
    let (state, body) = wait_for_job(&server, fast_id, Duration::from_secs(120));
    assert_eq!(state, "done", "{body}");
    let result = field(&body, "result");
    let Value::Record(result_fields) = &result else { panic!("result: {body}") };
    let summary_value =
        &result_fields.iter().find(|(n, _)| n == "summary").expect("summary present").1;
    let http_fast = McSummary::from_value(summary_value).expect("decode summary");
    let local_fast =
        mc_streaming_mode(&circuit, &Technology::d25(), &cache, &config, McMode::fast(), 2, |_| {
            true
        })
        .expect("local fast mc")
        .expect("not cancelled");
    assert_eq!(http_fast, local_fast.summary, "HTTP fast MC must equal in-process fast MC");
    let report = http_fast.fast.expect("fast runs self-report");
    assert!(report.max_deviation < report.tol, "deviation within tolerance: {report:?}");
}

/// The job-result-leak fix observed over HTTP: under job churn the
/// registry stays at its finished cap, evictions are surfaced in
/// `/v1/stats`, and evicted jobs 404.
#[test]
fn finished_jobs_are_evicted_under_churn() {
    let server = TestServer::start_cfg(ServeConfig {
        threads: 1,
        queue_capacity: 8,
        finished_jobs_cap: 3,
        ..TestServer::base_config()
    });
    let mut ids = Vec::new();
    for _ in 0..8 {
        let (status, body) = request(
            &server,
            "POST",
            "/v1/jobs",
            r#"{"type": "sweep", "target": "s838", "vectors": 2, "coarse": true}"#,
        );
        assert_eq!(status, 202, "{body}");
        let Value::Int(id) = field(&body, "id") else { panic!("id: {body}") };
        let (state, _) = wait_for_job(&server, id, Duration::from_secs(120));
        assert_eq!(state, "done");
        ids.push(id);
    }

    let (status, body) = request(&server, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    let Value::Record(jobs) = field(&body, "jobs") else { panic!("jobs: {body}") };
    let count = |name: &str| {
        jobs.iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| if let Value::Int(i) = v { Some(*i) } else { None })
            .unwrap_or_else(|| panic!("jobs.{name}: {body}"))
    };
    assert_eq!(count("resident"), 3, "registry bounded at the cap: {body}");
    assert_eq!(count("evicted"), 5, "{body}");
    assert_eq!(count("done"), 3, "resident finished jobs: {body}");

    // The oldest jobs are gone; the newest survive.
    let (status, _) = request(&server, "GET", &format!("/v1/jobs/{}", ids[0]), "");
    assert_eq!(status, 404, "evicted job 404s");
    let (status, _) = request(&server, "GET", &format!("/v1/jobs/{}", ids[7]), "");
    assert_eq!(status, 200, "newest job still readable");
}

/// The condition-matrix regression pin: the grid executor now derives
/// every cell through the shared `OperatingPoint` path, and its matrix
/// must be bit-identical to the **pre-refactor** reference — the
/// hand-rolled `tech.vdd *= scale` derivation plus one sequential
/// sweep per cell, written out below exactly as the old executor
/// computed it. (This also pins the grid-fan fix: parallel cells
/// cannot move a bit either.)
#[test]
fn parallel_grid_matrix_is_bit_identical_to_sequential() {
    let server = TestServer::start(4, 8);
    let (status, body) = request(
        &server,
        "POST",
        "/v1/jobs",
        r#"{"type": "grid", "target": "s838", "vectors": 4, "seed": 9, "coarse": true,
            "temps": [300, 350], "vdd_scales": [0.9, 1.0]}"#,
    );
    assert_eq!(status, 202, "{body}");
    let Value::Int(id) = field(&body, "id") else { panic!("id: {body}") };
    let (state, body) = wait_for_job(&server, id, Duration::from_secs(120));
    assert_eq!(state, "done", "{body}");
    assert_eq!(field(&body, "shards_done"), Value::Int(4), "one partial per cell");
    let result = field(&body, "result");
    let Value::Record(result_fields) = &result else { panic!("result: {body}") };
    let matrix = result_fields
        .iter()
        .find(|(n, _)| n == "mean_total_a")
        .map(|(_, v)| Vec::<Vec<f64>>::from_value(v).expect("matrix decodes"))
        .expect("mean_total_a present");

    // Sequential reference: one cell at a time, in row-major order,
    // exactly what the pre-fan executor did.
    let circuit = normalize(&iscas_like("s838").unwrap()).unwrap();
    let config =
        SweepConfig { vectors: 4, seed: 9, threads: 1, mode: EstimatorMode::Lut, lanes: 0 };
    let mut expected = Vec::new();
    for temp in [300.0, 350.0] {
        let mut row = Vec::new();
        for scale in [0.9, 1.0] {
            let mut tech = Technology::d25();
            tech.vdd *= scale;
            // The process-wide shared cache keys on the full
            // serialized tech (vdd included), so scaled requests get
            // their own entries and repeated test runs share them.
            let lib = CellLibrary::shared_with_options(
                &tech,
                temp,
                &CharacterizeOptions::coarse(&CellType::ALL),
            );
            let report = sweep(&circuit, &lib, &config).expect("cell sweep");
            row.push(report.stats.total.mean);
        }
        expected.push(row);
    }
    assert_eq!(matrix, expected, "parallel fan must not move a single bit");
}

/// One HTTP exchange that also returns the response headers
/// (lowercased names), for asserting `X-Request-Id` and
/// `Content-Type`.
fn request_full(
    server: &TestServer,
    method: &str,
    path: &str,
    extra_headers: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\n{extra_headers}Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status");
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

/// Looks up a response header by (lowercase) name.
fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
}

/// The value of one exact series (`name` or `name{labels}`) in a
/// Prometheus text exposition.
fn metric(text: &str, series: &str) -> f64 {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(series) {
            if let Some(v) = rest.strip_prefix(' ') {
                return v.trim().parse().unwrap_or_else(|e| panic!("bad value in '{line}': {e}"));
            }
        }
    }
    panic!("series '{series}' not found in:\n{text}");
}

/// A field of a JSON record `Value` (not the top-level body).
fn record_field<'a>(value: &'a Value, name: &str) -> Option<&'a Value> {
    let Value::Record(fields) = value else { return None };
    fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
}

#[test]
fn metrics_endpoint_serves_parseable_prometheus_text() {
    let server = TestServer::start(1, 8);
    // Touch a couple of routes so counters move.
    let _ = request(&server, "GET", "/healthz", "");
    let _ = request(&server, "GET", "/v1/stats", "");

    let (status, headers, text) = request_full(&server, "GET", "/metrics", "", "");
    assert_eq!(status, 200);
    assert!(
        header(&headers, "content-type").is_some_and(|t| t.starts_with("text/plain")),
        "{headers:?}"
    );

    // Every line is a comment or `series value` with a float value.
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let kind = rest.split_whitespace().next().unwrap_or("");
            assert!(kind == "HELP" || kind == "TYPE", "bad comment line: {line}");
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line: {line}"));
        assert!(!series.is_empty(), "bad line: {line}");
        assert!(value.parse::<f64>().is_ok(), "unparsable value in: {line}");
    }

    // The expected families from all three sections: the per-instance
    // registry, the hand-rendered point-in-time block, and the
    // process-global registry.
    for family in [
        "nanoleak_server_requests_total",
        "nanoleak_server_protocol_errors_total",
        "nanoleak_server_request_seconds_bucket",
        "nanoleak_server_request_seconds_count",
        "nanoleak_jobs_submitted_total",
        "nanoleak_jobs{status=\"queued\"}",
        "nanoleak_server_uptime_seconds",
        "nanoleak_server_workers",
        "nanoleak_server_queue_depth",
        "nanoleak_server_queue_capacity",
        "nanoleak_server_cache_memory_hits_total{cache=\"analysis\"}",
        "nanoleak_server_cache_memory_hits_total{cache=\"mc\"}",
    ] {
        assert!(text.contains(family), "family '{family}' missing from:\n{text}");
    }
    // The /metrics request counts itself, plus healthz and stats.
    assert!(metric(&text, "nanoleak_server_requests_total") >= 3.0, "{text}");
}

#[test]
fn stats_and_metrics_are_views_over_the_same_instruments() {
    let server = TestServer::start(1, 4);

    // A scripted sequence that moves every counter: a sync estimate,
    // a finished job, and a protocol error.
    let (status, _) = request(
        &server,
        "POST",
        "/v1/estimate",
        r#"{"target": "s838", "vectors": 3, "coarse": true}"#,
    );
    assert_eq!(status, 200);
    let (status, body) = request(
        &server,
        "POST",
        "/v1/jobs",
        r#"{"type": "sweep", "target": "s838", "vectors": 4, "seed": 9, "coarse": true}"#,
    );
    assert_eq!(status, 202, "{body}");
    let Value::Int(id) = field(&body, "id") else { panic!("id: {body}") };
    let (state, _) = wait_for_job(&server, id, Duration::from_secs(120));
    assert_eq!(state, "done");

    // The same instruments answer both endpoints. `/metrics` is read
    // first and counts itself; the `/v1/stats` request right after is
    // exactly one more.
    let (status, _, text) = request_full(&server, "GET", "/metrics", "", "");
    assert_eq!(status, 200);
    let (status, stats_body) = request(&server, "GET", "/v1/stats", "");
    assert_eq!(status, 200);

    let stats = |path: &[&str]| -> f64 {
        let mut v = field(&stats_body, path[0]);
        for name in &path[1..] {
            v = record_field(&v, name).unwrap_or_else(|| panic!("{path:?}")).clone();
        }
        match v {
            Value::Int(i) => i as f64,
            Value::F64(f) => f,
            other => panic!("{path:?}: {other:?}"),
        }
    };

    assert_eq!(stats(&["requests"]), metric(&text, "nanoleak_server_requests_total") + 1.0);
    assert_eq!(stats(&["workers"]), metric(&text, "nanoleak_server_workers"));
    assert_eq!(stats(&["queue", "depth"]), metric(&text, "nanoleak_server_queue_depth"));
    assert_eq!(stats(&["queue", "capacity"]), metric(&text, "nanoleak_server_queue_capacity"));
    for status_name in ["queued", "running", "done", "failed", "cancelled"] {
        assert_eq!(
            stats(&["jobs", status_name]),
            metric(&text, &format!("nanoleak_jobs{{status=\"{status_name}\"}}")),
            "jobs.{status_name}"
        );
    }
    assert_eq!(stats(&["jobs", "resident"]), metric(&text, "nanoleak_jobs_resident"));
    assert_eq!(stats(&["jobs", "evicted"]), metric(&text, "nanoleak_jobs_evicted_total"));
    for (stat, series) in [
        ("memory_hits", "nanoleak_server_cache_memory_hits_total{cache=\"analysis\"}"),
        ("disk_hits", "nanoleak_server_cache_disk_hits_total{cache=\"analysis\"}"),
        ("characterizations", "nanoleak_server_cache_characterizations_total{cache=\"analysis\"}"),
        ("resident", "nanoleak_server_cache_resident{cache=\"analysis\"}"),
    ] {
        assert_eq!(stats(&["cache", stat]), metric(&text, series), "cache.{stat}");
    }
    assert_eq!(metric(&text, "nanoleak_jobs_submitted_total"), 1.0);
    assert_eq!(metric(&text, "nanoleak_jobs{status=\"done\"}"), 1.0);
}

#[test]
fn trace_endpoint_returns_span_tree_and_timings_ride_on_job_status() {
    let server = TestServer::start(1, 8);
    let (status, body) = request(
        &server,
        "POST",
        "/v1/jobs",
        r#"{"type": "sweep", "target": "s838", "vectors": 8, "seed": 3, "coarse": true,
            "shard_vectors": 4}"#,
    );
    assert_eq!(status, 202, "{body}");
    let Value::Int(id) = field(&body, "id") else { panic!("id: {body}") };

    // Unknown jobs are 404.
    let (status, body404) = request(&server, "GET", "/v1/jobs/999999/trace", "");
    assert_eq!(status, 404, "{body404}");

    let (state, _) = wait_for_job(&server, id, Duration::from_secs(120));
    assert_eq!(state, "done");

    let (status, body) = request(&server, "GET", &format!("/v1/jobs/{id}/trace"), "");
    assert_eq!(status, 200, "{body}");
    let trace = field(&body, "trace");
    let Some(Value::Seq(roots)) = record_field(&trace, "spans") else {
        panic!("trace.spans: {body}")
    };
    assert_eq!(roots.len(), 1, "one root span: {body}");
    let root = &roots[0];
    assert_eq!(record_field(root, "name"), Some(&Value::Str("job".into())), "{body}");
    let Some(Value::Seq(children)) = record_field(root, "children") else {
        panic!("job span has stage children: {body}")
    };
    let names: Vec<&str> = children
        .iter()
        .filter_map(|c| match record_field(c, "name") {
            Some(Value::Str(n)) => Some(n.as_str()),
            _ => None,
        })
        .collect();
    for stage in ["compile", "estimate", "merge", "serialize"] {
        assert!(names.contains(&stage), "stage '{stage}' missing from {names:?}");
    }
    // One `estimate` child per shard (8 vectors / 4 per shard).
    assert_eq!(names.iter().filter(|n| **n == "estimate").count(), 2, "{names:?}");

    // `?debug=timings` on the job status body.
    let (status, body) = request(&server, "GET", &format!("/v1/jobs/{id}?debug=timings"), "");
    assert_eq!(status, 200, "{body}");
    let timings = field(&body, "timings");
    let ms = |name: &str| match record_field(&timings, name) {
        Some(Value::F64(v)) => *v,
        other => panic!("timings.{name}: {other:?} in {body}"),
    };
    assert!(ms("total_ms") > 0.0, "{body}");
    assert!(ms("estimate_ms") >= 0.0, "{body}");
    assert!(ms("queue_wait_ms") >= 0.0, "{body}");
    assert!(ms("estimate_ms") + ms("compile_ms") <= ms("total_ms"), "{body}");
    for stage in ["characterize_ms", "library_ms", "merge_ms", "serialize_ms"] {
        assert!(ms(stage) >= 0.0, "{body}");
    }
    // Without the debug flag the field is absent.
    let (_, plain) = request(&server, "GET", &format!("/v1/jobs/{id}"), "");
    assert!(!plain.contains("\"timings\""), "{plain}");
}

#[test]
fn request_ids_are_generated_and_client_ids_echoed() {
    let server = TestServer::start(1, 8);

    let (status, headers, _) = request_full(&server, "GET", "/healthz", "", "");
    assert_eq!(status, 200);
    let generated = header(&headers, "x-request-id").expect("generated id");
    assert!(generated.starts_with("req-"), "{generated}");

    let (status, headers, _) =
        request_full(&server, "GET", "/healthz", "X-Request-Id: my-trace-42\r\n", "");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-request-id"), Some("my-trace-42"));

    // Oversized / non-printable client ids are replaced, not echoed.
    let long = "x".repeat(200);
    let (status, headers, _) =
        request_full(&server, "GET", "/healthz", &format!("X-Request-Id: {long}\r\n"), "");
    assert_eq!(status, 200);
    let replaced = header(&headers, "x-request-id").expect("replacement id");
    assert!(replaced.starts_with("req-"), "{replaced}");
}

/// Hostile `timeout_ms` values are structured 400s, never accepted
/// into the queue.
#[test]
fn timeout_ms_validation_rejects_zero_huge_and_non_integer() {
    let server = TestServer::start(1, 8);
    for bad in ["0", "3600001", "\"soon\"", "-5", "1.5"] {
        let body = format!(
            r#"{{"type": "sweep", "target": "s838", "vectors": 8, "coarse": true, "timeout_ms": {bad}}}"#
        );
        let (status, resp) = request(&server, "POST", "/v1/jobs", &body);
        assert_eq!(status, 400, "timeout_ms {bad} accepted: {resp}");
        assert!(assert_error(&resp, 400).contains("timeout_ms"), "{resp}");
    }
    // A sane value is still admitted.
    let body =
        r#"{"type": "sweep", "target": "s838", "vectors": 8, "coarse": true, "timeout_ms": 60000}"#;
    let (status, resp) = request(&server, "POST", "/v1/jobs", body);
    assert_eq!(status, 202, "{resp}");
}

/// A client that pipelines past the per-connection request bound gets
/// each buffered excess request answered with a structured 429 before
/// the close — not silently dropped.
#[test]
fn pipelined_requests_past_the_bound_are_shed_with_429() {
    let server = TestServer::start_cfg(ServeConfig {
        threads: 1,
        queue_capacity: 8,
        keep_alive_requests: 1,
        ..TestServer::base_config()
    });
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    let read_stream = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(&read_stream);
    // Three requests land before the server answers the first.
    for _ in 0..3 {
        write_request(&mut stream, "GET", "/healthz", "");
    }
    let (status, connection, _) = read_one_response(&mut reader).expect("first response");
    assert_eq!(status, 200);
    assert_eq!(connection, "close", "the bound closes the connection");
    for i in 1..3 {
        let (status, _, body) =
            read_one_response(&mut reader).expect("excess request answered, not dropped");
        assert_eq!(status, 429, "excess request {i}: {body}");
        assert!(assert_error(&body, 429).contains("request limit"), "{body}");
    }
    assert!(read_one_response(&mut reader).is_none(), "closed after shedding the excess");
}
