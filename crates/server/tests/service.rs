//! End-to-end integration tests for `nanoleak-serve`: a real server
//! on an ephemeral port, driven by a raw [`TcpStream`] HTTP client.
//!
//! Covers the acceptance criteria of the service PR: `/healthz`
//! answers, a sweep served over HTTP is bit-identical to the same
//! in-process [`sweep`] call, the async job lifecycle runs
//! queued → running → done (and cancels), and malformed JSON /
//! unknown routes come back as structured 4xx errors.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use nanoleak_cells::{CellLibrary, CellType, CharacterizeOptions};
use nanoleak_core::EstimatorMode;
use nanoleak_device::Technology;
use nanoleak_engine::{sweep, SweepConfig, SweepStats};
use nanoleak_netlist::generate::iscas_like;
use nanoleak_netlist::normalize::normalize;
use nanoleak_serve::{ServeConfig, Server, ShutdownHandle};
use serde::{json, Deserialize, Value};

/// A running test server; shuts down (and joins) on drop.
struct TestServer {
    addr: std::net::SocketAddr,
    handle: ShutdownHandle,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn start(threads: usize, queue_capacity: usize) -> Self {
        let server = Server::bind(&ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads,
            queue_capacity,
            cache_dir: None,
            disk_cache: false, // hermetic: RAM memo only
        })
        .expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound address");
        let handle = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.run());
        Self { addr, handle, thread: Some(thread) }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.request();
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread").expect("server run");
        }
    }
}

/// One HTTP exchange over a raw TcpStream; returns (status, body).
fn request(server: &TestServer, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// Parses a JSON body and extracts a top-level field.
fn field(body: &str, name: &str) -> Value {
    let v = json::value_from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"));
    let Value::Record(fields) = v else { panic!("not an object: {body}") };
    fields
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("no field '{name}' in {body}"))
}

/// Asserts the structured error shape and returns its message.
fn assert_error(body: &str, code: u16) -> String {
    let Value::Record(fields) = field(body, "error") else { panic!("no error object: {body}") };
    let mut message = String::new();
    let mut seen_code = 0i128;
    for (name, value) in fields {
        match (name.as_str(), value) {
            ("code", Value::Int(c)) => seen_code = c,
            ("message", Value::Str(m)) => message = m,
            _ => {}
        }
    }
    assert_eq!(seen_code, i128::from(code), "error.code in {body}");
    assert!(!message.is_empty(), "error.message missing in {body}");
    message
}

#[test]
fn healthz_answers() {
    let server = TestServer::start(1, 8);
    let (status, body) = request(&server, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"status":"ok"}"#);
}

#[test]
fn unknown_routes_and_bad_bodies_are_structured_4xx() {
    let server = TestServer::start(1, 8);

    let (status, body) = request(&server, "GET", "/totally/unknown", "");
    assert_eq!(status, 404);
    assert!(assert_error(&body, 404).contains("/totally/unknown"));

    let (status, body) = request(&server, "POST", "/healthz", "");
    assert_eq!(status, 405);
    assert_error(&body, 405);

    let (status, body) = request(&server, "POST", "/v1/sweep", "{not json");
    assert_eq!(status, 400);
    assert!(assert_error(&body, 400).contains("malformed JSON"));

    let (status, body) = request(&server, "POST", "/v1/sweep", r#"{"vectors": 4}"#);
    assert_eq!(status, 400, "missing target: {body}");
    assert_error(&body, 400);

    let (status, body) = request(&server, "POST", "/v1/estimate", r#"{"target": "sXYZ"}"#);
    assert_eq!(status, 422);
    assert!(assert_error(&body, 422).contains("sXYZ"));

    let (status, body) = request(&server, "GET", "/v1/jobs/999", "");
    assert_eq!(status, 404);
    assert_error(&body, 404);

    let (status, body) = request(&server, "DELETE", "/v1/jobs/not-a-number", "");
    assert_eq!(status, 400);
    assert_error(&body, 400);
}

#[test]
fn estimate_endpoint_reports_loading_impact() {
    let server = TestServer::start(1, 8);
    let (status, body) = request(
        &server,
        "POST",
        "/v1/estimate",
        r#"{"target": "s838", "vectors": 5, "coarse": true}"#,
    );
    assert_eq!(status, 200, "{body}");
    let Value::F64(mean) = field(&body, "mean_total_a") else { panic!("mean_total_a: {body}") };
    assert!(mean > 0.0, "positive leakage, got {mean}");
    let Value::F64(baseline) = field(&body, "mean_no_loading_a") else { panic!("{body}") };
    assert_ne!(mean, baseline, "loading must move the estimate");
}

/// The acceptance criterion: a sweep served over HTTP equals the
/// in-process `sweep()` call for the same seed, bit for bit.
#[test]
fn http_sweep_is_bit_identical_to_in_process_sweep() {
    let server = TestServer::start(2, 8);
    let (status, body) = request(
        &server,
        "POST",
        "/v1/sweep",
        r#"{"target": "s838", "vectors": 12, "seed": 77, "threads": 2, "coarse": true}"#,
    );
    assert_eq!(status, 200, "{body}");
    let http_stats = SweepStats::from_value(&field(&body, "stats")).expect("decode stats");

    let circuit = normalize(&iscas_like("s838").unwrap()).unwrap();
    let lib = CellLibrary::shared_with_options(
        &Technology::d25(),
        300.0,
        &CharacterizeOptions::coarse(&CellType::ALL),
    );
    let config = SweepConfig { vectors: 12, seed: 77, threads: 1, mode: EstimatorMode::Lut };
    let local = sweep(&circuit, &lib, &config).expect("local sweep");
    assert_eq!(http_stats, local.stats, "HTTP and in-process sweeps must agree exactly");
}

/// Polls one job until it reaches a terminal status.
fn wait_for_job(server: &TestServer, id: i128, deadline: Duration) -> (String, String) {
    let start = Instant::now();
    loop {
        let (status, body) = request(server, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let Value::Str(state) = field(&body, "status") else { panic!("status: {body}") };
        match state.as_str() {
            "done" | "failed" | "cancelled" => return (state, body),
            "queued" | "running" => {
                assert!(
                    start.elapsed() < deadline,
                    "job {id} still '{state}' after {deadline:?}: {body}"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
            other => panic!("unknown status '{other}': {body}"),
        }
    }
}

#[test]
fn grid_job_lifecycle_queued_to_done_with_deterministic_matrix() {
    let server = TestServer::start(1, 8);
    let (status, body) = request(
        &server,
        "POST",
        "/v1/jobs",
        r#"{"type": "grid", "target": "s838", "vectors": 6, "seed": 5, "coarse": true,
            "temps": [300, 340], "vdd_scales": [0.9, 1.0]}"#,
    );
    assert_eq!(status, 202, "{body}");
    let Value::Int(id) = field(&body, "id") else { panic!("id: {body}") };
    let Value::Str(state) = field(&body, "status") else { panic!("status: {body}") };
    assert_eq!(state, "queued");

    let (state, body) = wait_for_job(&server, id, Duration::from_secs(120));
    assert_eq!(state, "done", "{body}");
    let result = field(&body, "result");
    let Value::Record(result_fields) = &result else { panic!("result: {body}") };
    let matrix = result_fields
        .iter()
        .find(|(n, _)| n == "mean_total_a")
        .map(|(_, v)| Vec::<Vec<f64>>::from_value(v).expect("matrix decodes"))
        .expect("mean_total_a present");
    assert_eq!(matrix.len(), 2, "one row per temperature");
    assert!(matrix.iter().all(|row| row.len() == 2), "one column per vdd scale");
    // Hotter rows leak more at every supply point.
    for col in 0..2 {
        assert!(matrix[1][col] > matrix[0][col], "340 K > 300 K leakage: {matrix:?}");
    }

    // Determinism across the HTTP boundary: the (300 K, 1.0) cell is
    // exactly the in-process sweep mean for the same seed.
    let circuit = normalize(&iscas_like("s838").unwrap()).unwrap();
    let lib = CellLibrary::shared_with_options(
        &Technology::d25(),
        300.0,
        &CharacterizeOptions::coarse(&CellType::ALL),
    );
    let config = SweepConfig { vectors: 6, seed: 5, threads: 0, mode: EstimatorMode::Lut };
    let local = sweep(&circuit, &lib, &config).expect("local sweep");
    assert_eq!(matrix[0][1], local.stats.total.mean, "grid cell equals in-process sweep");
}

#[test]
fn queued_jobs_cancel_and_stats_count_everything() {
    // One worker and a deep queue: the first job occupies the worker
    // while the second is cancelled in place.
    let server = TestServer::start(1, 8);
    let submit = |body: &str| {
        let (status, resp) = request(&server, "POST", "/v1/jobs", body);
        assert_eq!(status, 202, "{resp}");
        let Value::Int(id) = field(&resp, "id") else { panic!("id: {resp}") };
        id
    };
    let first = submit(r#"{"type": "sweep", "target": "s838", "vectors": 8, "coarse": true}"#);
    let second = submit(r#"{"type": "sweep", "target": "s838", "vectors": 8, "coarse": true}"#);

    let (status, body) = request(&server, "DELETE", &format!("/v1/jobs/{second}"), "");
    assert_eq!(status, 200, "{body}");
    // Cancelled while queued (or, if the worker already grabbed it,
    // flagged while running) — either way it terminates cancelled or
    // done-before-cancel; a queued cancel must read "cancelled".
    let (state, _) = wait_for_job(&server, second, Duration::from_secs(120));
    assert!(state == "cancelled" || state == "done", "cancel outcome: {state}");

    let (state, _) = wait_for_job(&server, first, Duration::from_secs(120));
    assert_eq!(state, "done", "undisturbed job completes");

    let (status, body) = request(&server, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    let Value::Record(jobs) = field(&body, "jobs") else { panic!("jobs: {body}") };
    let count = |name: &str| {
        jobs.iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| if let Value::Int(i) = v { Some(*i) } else { None })
            .unwrap_or_else(|| panic!("jobs.{name}: {body}"))
    };
    assert_eq!(count("queued") + count("running"), 0, "everything settled");
    assert!(count("done") >= 1);
    assert_eq!(count("done") + count("cancelled"), 2);
    let Value::Record(cache) = field(&body, "cache") else { panic!("cache: {body}") };
    let characterizations =
        cache.iter().find(|(n, _)| n.as_str() == "characterizations").map(|(_, v)| v.clone());
    assert!(
        matches!(characterizations, Some(Value::Int(n)) if n >= 1),
        "solver ran at least once: {body}"
    );
}

#[test]
fn full_queue_is_backpressure_not_an_error_500() {
    // Capacity-1 queue and one worker: the first job runs, the second
    // waits, the third must bounce with 503.
    let server = TestServer::start(1, 1);
    let body = r#"{"type": "sweep", "target": "s838", "vectors": 64, "coarse": true}"#;
    let mut saw_503 = false;
    for _ in 0..8 {
        let (status, resp) = request(&server, "POST", "/v1/jobs", body);
        match status {
            202 => {}
            503 => {
                assert_error(&resp, 503);
                saw_503 = true;
                break;
            }
            other => panic!("unexpected status {other}: {resp}"),
        }
    }
    assert!(saw_503, "a bounded queue must eventually push back");
}
