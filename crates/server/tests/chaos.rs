//! Chaos drills: the serving stack under injected faults.
//!
//! Each test arms `nanoleak-fault` failpoints against a real server
//! on an ephemeral port and asserts the blast radius stays contained:
//! a panicking shard fails exactly one job, deadlines abort between
//! shards with completed partials intact, and a saturated queue sheds
//! with `503 + Retry-After` instead of melting down.
//!
//! Lives in its own test binary: the fault registry is process-global
//! and must not bleed into the `service.rs` suite. Within this binary
//! the tests serialize on one mutex for the same reason.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use nanoleak_fault::{arm, arm_limited, disarm_all, FaultAction};
use nanoleak_serve::{ServeConfig, Server, ShutdownHandle};
use serde::{json, Value};

fn serial() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = GATE
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    disarm_all();
    guard
}

struct TestServer {
    addr: std::net::SocketAddr,
    handle: ShutdownHandle,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn base_config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            cache_dir: None,
            disk_cache: false,
            ..Default::default()
        }
    }

    fn start_cfg(config: ServeConfig) -> Self {
        let server = Server::bind(&config).expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound address");
        let handle = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.run());
        Self { addr, handle, thread: Some(thread) }
    }

    fn start(threads: usize, queue_capacity: usize) -> Self {
        Self::start_cfg(ServeConfig { threads, queue_capacity, ..Self::base_config() })
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.request();
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread").expect("server run");
        }
    }
}

/// One HTTP exchange; returns `(status, headers, body)`.
fn request(
    server: &TestServer,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status");
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
}

fn field(body: &str, name: &str) -> Option<Value> {
    let v = json::value_from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"));
    let Value::Record(fields) = v else { panic!("not an object: {body}") };
    fields.into_iter().find(|(n, _)| n == name).map(|(_, v)| v)
}

fn str_field(body: &str, name: &str) -> String {
    match field(body, name) {
        Some(Value::Str(s)) => s,
        other => panic!("field '{name}' not a string ({other:?}) in {body}"),
    }
}

fn int_field(body: &str, name: &str) -> i128 {
    match field(body, name) {
        Some(Value::Int(i)) => i,
        other => panic!("field '{name}' not an int ({other:?}) in {body}"),
    }
}

fn submit(server: &TestServer, body: &str) -> i128 {
    let (status, _, resp) = request(server, "POST", "/v1/jobs", body);
    assert_eq!(status, 202, "{resp}");
    int_field(&resp, "id")
}

/// Polls a job to a terminal state; returns `(state, body)`.
fn wait_for_job(server: &TestServer, id: i128, deadline: Duration) -> (String, String) {
    let start = Instant::now();
    loop {
        let (status, _, body) = request(server, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let state = str_field(&body, "status");
        match state.as_str() {
            "done" | "failed" | "cancelled" => return (state, body),
            "queued" | "running" => {
                assert!(
                    start.elapsed() < deadline,
                    "job {id} still '{state}' after {deadline:?}: {body}"
                );
                std::thread::sleep(Duration::from_millis(25));
            }
            other => panic!("unknown status '{other}': {body}"),
        }
    }
}

/// The value of one exact series in a `/metrics` scrape.
fn metric(text: &str, series: &str) -> f64 {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(series) {
            if let Some(v) = rest.strip_prefix(' ') {
                return v.trim().parse().unwrap_or_else(|e| panic!("bad value in '{line}': {e}"));
            }
        }
    }
    panic!("series '{series}' not found in:\n{text}");
}

fn scrape(server: &TestServer) -> String {
    let (status, _, text) = request(server, "GET", "/metrics", "");
    assert_eq!(status, 200);
    text
}

const SWEEP: &str = r#"{"type": "sweep", "target": "s838", "vectors": 16, "coarse": true}"#;

/// The headline isolation drill: a worker panicking mid-shard fails
/// exactly that job — with the panic message in the job record — and
/// the worker itself survives to run the next job. The pool never
/// decays.
#[test]
fn worker_panic_fails_one_job_and_the_pool_survives() {
    let _g = serial();
    let server = TestServer::start(1, 8);
    arm_limited("slow-shard", FaultAction::Panic("chaos drill".into()), Some(1));
    let id = submit(&server, SWEEP);
    let (state, body) = wait_for_job(&server, id, Duration::from_secs(120));
    assert_eq!(state, "failed", "{body}");
    let error = str_field(&body, "error");
    assert!(error.starts_with("job panicked"), "panic not surfaced: {error}");
    assert!(error.contains("chaos drill"), "payload lost: {error}");

    // The fault self-disarmed after one fire: the same worker thread
    // must pick up and finish the next job.
    let id = submit(&server, SWEEP);
    let (state, body) = wait_for_job(&server, id, Duration::from_secs(120));
    assert_eq!(state, "done", "worker died with the job: {body}");

    let text = scrape(&server);
    assert_eq!(metric(&text, "nanoleak_jobs_panicked_total"), 1.0);
    assert_eq!(metric(&text, "nanoleak_server_workers_alive"), 1.0, "pool decayed");
    // Hit counters are process-global and persist across disarm (by
    // design — they are the post-drill evidence), so sibling tests in
    // this binary may already have tripped the same point.
    assert!(metric(&text, "nanoleak_fault_injected_total{point=\"slow-shard\"}") >= 1.0);
    disarm_all();
}

/// Deadline propagation: a job with `timeout_ms` aborts between
/// shards once the deadline passes — completed shards stay paged, the
/// error is exactly `deadline_exceeded`, and the counter ticks.
#[test]
fn deadline_stops_a_sharded_sweep_between_shards() {
    let _g = serial();
    let server = TestServer::start(1, 8);
    // Warm the characterization memo so the drill times shards, not
    // the solver.
    let id = submit(&server, SWEEP);
    wait_for_job(&server, id, Duration::from_secs(120));

    arm("slow-shard", FaultAction::SleepMs(150));
    let id = submit(
        &server,
        r#"{"type": "sweep", "target": "s838", "vectors": 64, "shard_vectors": 8,
            "coarse": true, "timeout_ms": 400}"#,
    );
    let (state, body) = wait_for_job(&server, id, Duration::from_secs(120));
    disarm_all();
    assert_eq!(state, "failed", "{body}");
    assert_eq!(str_field(&body, "error"), "deadline_exceeded");
    let done = int_field(&body, "shards_done");
    let total = int_field(&body, "shards_total");
    assert!(done >= 1, "pre-deadline shards must be kept: {body}");
    assert!(done < total, "the deadline should have cut the sweep short: {body}");

    // The completed shards still page individually.
    let (status, _, page) = request(&server, "GET", &format!("/v1/jobs/{id}/result?shard=0"), "");
    assert_eq!(status, 200, "{page}");
    assert!(field(&page, "partial").is_some(), "{page}");

    let text = scrape(&server);
    assert_eq!(metric(&text, "nanoleak_deadline_exceeded_total"), 1.0);
}

/// The server-wide `--default-job-timeout` is a fallback deadline for
/// requests that carry no `timeout_ms` of their own.
#[test]
fn default_job_timeout_applies_when_the_request_sets_none() {
    let _g = serial();
    let server = TestServer::start_cfg(ServeConfig {
        threads: 1,
        queue_capacity: 8,
        default_job_timeout: Some(Duration::from_millis(1)),
        ..TestServer::base_config()
    });
    let id = submit(&server, SWEEP);
    let (state, body) = wait_for_job(&server, id, Duration::from_secs(120));
    assert_eq!(state, "failed", "{body}");
    assert_eq!(str_field(&body, "error"), "deadline_exceeded");
}

/// Overload shedding: a saturated queue answers `503` with a
/// `Retry-After` hint instead of a bare error, and the shed is
/// accounted under `nanoleak_shed_total{reason="queue_full"}`.
#[test]
fn saturated_queue_sheds_with_retry_after() {
    let _g = serial();
    let server = TestServer::start(1, 1);
    // Slow shards keep the single worker busy while the queue fills.
    arm("slow-shard", FaultAction::SleepMs(200));
    let slow = r#"{"type": "sweep", "target": "s838", "vectors": 64,
                   "shard_vectors": 8, "coarse": true}"#;
    let mut shed = None;
    for _ in 0..8 {
        let (status, headers, resp) = request(&server, "POST", "/v1/jobs", slow);
        match status {
            202 => {}
            503 => {
                shed = Some((headers, resp));
                break;
            }
            other => panic!("unexpected status {other}: {resp}"),
        }
    }
    disarm_all();
    let (headers, resp) = shed.expect("a bounded queue must eventually shed");
    assert!(resp.contains("queue full"), "{resp}");
    let retry: u64 = header(&headers, "retry-after")
        .unwrap_or_else(|| panic!("503 without Retry-After: {headers:?}"))
        .parse()
        .expect("integer Retry-After");
    assert!((1..=60).contains(&retry), "unreasonable hint: {retry}");
    let text = scrape(&server);
    assert!(metric(&text, "nanoleak_shed_total{reason=\"queue_full\"}") >= 1.0);
}

/// An injected characterization failure surfaces as a structured 422
/// on the synchronous path — no 500, no crash — and the next request
/// recovers once the failpoint disarms.
#[test]
fn injected_solver_failure_is_a_structured_422_then_recovers() {
    let _g = serial();
    let server = TestServer::start(1, 8);
    arm_limited("characterize", FaultAction::Error("injected no-convergence".into()), Some(1));
    let body = r#"{"target": "s838", "vectors": 8, "coarse": true}"#;
    let (status, _, resp) = request(&server, "POST", "/v1/sweep", body);
    assert_eq!(status, 422, "{resp}");
    assert!(field(&resp, "error").is_some(), "unstructured failure: {resp}");
    let (status, _, resp) = request(&server, "POST", "/v1/sweep", body);
    assert_eq!(status, 200, "no recovery after disarm: {resp}");
    disarm_all();
}
