//! # nanoleak-serve
//!
//! A long-lived HTTP/JSON leakage-analysis service over
//! `nanoleak-engine`. The paper's estimator is cheap enough to score
//! thousands of vectors per second — a workload shape that wants a
//! resident process with a warm characterization cache, not a
//! cold-start CLI per request. This crate is that process:
//! dependency-free (raw [`std::net`] + the vendored mini-serde JSON
//! codec), deterministic (a sweep served over HTTP is bit-identical
//! to the same [`nanoleak_engine::sweep`] call in-process), and
//! drain-on-shutdown.
//!
//! ## Service
//!
//! | Route | Does |
//! |---|---|
//! | `GET /healthz` | liveness: `{"status":"ok"}` |
//! | `GET /v1/stats` | requests served, cache hit rate, queue depth, job counts |
//! | `POST /v1/estimate` | mean leakage ± loading impact over N random vectors |
//! | `POST /v1/sweep` | full per-vector statistics ([`nanoleak_engine::SweepStats`]) |
//! | `POST /v1/mlv` | min/max-leakage standby-vector search |
//! | `POST /v1/optimize` | leakage-aware netlist rewriting (returns the optimized netlist) |
//! | `POST /v1/jobs` | submit an async job (`"type"`: `sweep`, `mlv`, `grid`, `mc`, or `optimize`) |
//! | `GET /v1/jobs/{id}` | job status with shard progress, and the result once done |
//! | `GET /v1/jobs/{id}/result` | the final result alone (409 until done) |
//! | `GET /v1/jobs/{id}/result?shard=K` | one shard's partial (202 while pending) |
//! | `GET /v1/jobs/{id}/trace` | span tree + timing breakdown of a finished job |
//! | `DELETE /v1/jobs/{id}` | cancel (queued: immediate; running: at the next shard/cell) |
//! | `GET /metrics` | Prometheus text exposition of every registered metric |
//!
//! Request bodies are JSON objects; every analysis field is optional
//! and defaults to the CLI's defaults (`vectors` 100, `seed` 2005,
//! `temp` 300 K, `vdd_scale` 1.0, `mode` `"lut"`). Circuits come as
//! `"target"` (a builtin name like `"s1196"`) or `"bench"` (inline
//! netlist text — the service deliberately never reads files from its
//! own filesystem). `"coarse": true` characterizes on the fast test
//! grid. Per-request work is bounded
//! ([`api::MAX_REQUEST_VECTORS`], [`api::MAX_REQUEST_THREADS`],
//! [`api::MAX_GRID_CELLS`], [`api::MAX_REQUEST_MC_SAMPLES`]). Errors
//! are structured: `{"error": {"code": 422, "message": "..."}}`.
//!
//! Every analysis characterizes at a first-class
//! [`OperatingPoint`](nanoleak_cells::OperatingPoint) (`temp` ×
//! `vdd_scale`), so a single-point request, a grid cell, and a
//! Monte-Carlo nominal at the same conditions share one cache entry.
//!
//! The `"grid"` job type is the batch workhorse: a `temps` ×
//! `vdd_scales` condition matrix (cf. Sultan et al. on
//! leakage-vs-temperature) built by `OperatingPoint::grid`, where
//! every cell characterizes through the shared in-RAM
//! [`MemoLibraryCache`](nanoleak_engine::MemoLibraryCache) and runs
//! one deterministic sweep — cells fan across the worker pool in
//! parallel, reduced back in cell order so the matrix is bit-identical
//! to a sequential run.
//!
//! The `"mc"` job type is the paper's Section 5.3 at circuit scale: a
//! circuit-level Monte-Carlo over die-to-die process variation
//! ([`nanoleak_engine::mc_streaming`]), streaming per-shard
//! distribution partials through the same `shards_done`/`shards_total`
//! progress and `?shard=K` paging protocol as sharded sweeps, with the
//! merged loaded/unloaded summary bit-identical to an in-process run.
//!
//! ## Optimization
//!
//! `POST /v1/optimize` (and the `"optimize"` job type, which reports
//! one progress unit per finished round) runs the
//! [`nanoleak_opt`](nanoleak_opt::optimize_with) greedy rewriter:
//! canonicalization, commutative pin permutations, and De-Morgan
//! NAND↔NOR remaps, each candidate scored with the compiled estimator
//! at the minimum-leakage vector. The response carries the baseline
//! and improved MLV results (`improved_a` ≤ `baseline_a`, guaranteed),
//! per-round telemetry, and the rewritten netlist as structured JSON
//! (named nets and cells in gate order). Every embedded MLV search
//! goes through the process-wide plan cache, so repeated optimize
//! requests against the same structure skip recompilation —
//! `nanoleak_plan_cache_*` and `nanoleak_opt_*` counters on
//! `GET /metrics` make both visible.
//!
//! ## Scale machinery
//!
//! Three mechanisms keep the service alive under 10^6-vector
//! workloads and millions of requests:
//!
//! * **Streaming sharded sweeps** — `"shard_vectors"` on a sweep job
//!   executes the pattern space in index-order shards
//!   ([`nanoleak_engine::sweep_streaming`]); each shard's partial
//!   stats are paged at `GET /v1/jobs/{id}/result?shard=K` as it
//!   lands, the job body reports `shards_done`/`shards_total`, and
//!   the merged stats are bit-identical to a monolithic sweep.
//! * **HTTP/1.1 keep-alive** — connections serve many requests
//!   through one persistent parse buffer (pipelining-safe), with
//!   `Connection:` negotiation, a per-connection request bound
//!   ([`ServeConfig::keep_alive_requests`]), and an idle deadline
//!   ([`ServeConfig::keep_alive_idle`]) that quietly closes idle
//!   sockets but answers 408 to stalled partial requests.
//! * **Bounded job registry** — finished jobs are evicted
//!   oldest-first past [`ServeConfig::finished_jobs_cap`] (and a
//!   TTL), with `evicted`/`resident` counters in `/v1/stats`, so the
//!   registry no longer grows for the process lifetime.
//!
//! ## Resilience
//!
//! The failure-containment contract, exercised continuously by the
//! `nanoleak-fault` failpoint harness (`--faults` /
//! `$NANOLEAK_FAULTS`) and the `tests/chaos.rs` drills:
//!
//! * **Deadline propagation** — a job's `timeout_ms` field (or the
//!   server-wide [`ServeConfig::default_job_timeout`]) becomes a
//!   deadline carried in the job registry and polled at **shard
//!   boundaries only** — never inside a numeric kernel — so an
//!   expired job fails with error `deadline_exceeded` while every
//!   shard it completed stays paged and bit-identical to an
//!   unhurried run. Expiry is also checked before the executor
//!   starts (a job that aged out in the queue never touches the
//!   engine) and counted in `nanoleak_deadline_exceeded_total`.
//! * **Panic isolation** — each job executes under `catch_unwind`;
//!   a panicking shard fails exactly that job (the panic message is
//!   preserved in the job record as `job panicked: …` and counted in
//!   `nanoleak_jobs_panicked_total`), and a second containment ring
//!   around the worker loop plus the `nanoleak_server_workers_alive`
//!   gauge guarantee the pool never silently decays.
//! * **Admission control** — overload is shed at the door with
//!   `503 + Retry-After` (hint = predicted queue drain time,
//!   clamped to 1–60 s): a full queue, a request whose explicit
//!   `timeout_ms` the current backlog is predicted to outlast, and
//!   the accept-loop connection cap all shed rather than degrade;
//!   clients that pipeline past the per-connection request bound get
//!   each buffered excess answered `429` before the close. Sheds are
//!   accounted by reason in `nanoleak_shed_total` and mirrored under
//!   `resilience` in `/v1/stats`.
//! * **Fault injection** — `nanoleak-fault` failpoints (`cache-io`,
//!   `cache-corrupt`, `characterize`, `slow-shard`) are compiled in
//!   but cost one relaxed atomic load when disarmed; armed hits are
//!   exposed as `nanoleak_fault_injected_total{point=…}` on
//!   `/metrics`, so chaos drills are observable end-to-end.
//!
//! ## Telemetry
//!
//! The service is instrumented through [`nanoleak_obs`] — metrics,
//! span tracing, and structured logging — with zero extra
//! dependencies:
//!
//! * **Metrics** — `GET /metrics` serves Prometheus text exposition
//!   composed from two registries: the per-instance one in
//!   [`ServerState::telemetry`] (HTTP traffic, job lifecycle, queue,
//!   cache) and the process-global [`nanoleak_obs::global()`] one
//!   (engine / solver / cells instrumentation). Server families are
//!   prefixed `nanoleak_server_*` and `nanoleak_jobs*`; library
//!   families are `nanoleak_{solver,cells,cache,sweep,mc}_*`.
//!   Per-instance cache counters carry a `cache="analysis"|"mc"`
//!   label. `GET /v1/stats` reads the *same* instruments, so the two
//!   views cannot drift.
//! * **Spans** — job execution runs under a
//!   [`nanoleak_obs::span!`] capture at shard granularity
//!   (`job` → `compile` / `estimate` / `merge` / `serialize`, plus
//!   `library` / `characterize` on cache misses). The resulting span
//!   tree is served at `GET /v1/jobs/{id}/trace`, and an aggregate
//!   per-stage breakdown (queue-wait, characterization, compile,
//!   estimate, merge, serialize, total) rides on the job-status body
//!   under `GET /v1/jobs/{id}?debug=timings`. The per-pattern
//!   estimation path stays span-free, preserving the zero-allocation
//!   contract.
//! * **Logs** — library crates never print; leveled JSON lines go to
//!   stderr (`{"ts_ms":…,"level":…,"target":…,"msg":…,"request_id":…}`)
//!   gated by `NANOLEAK_LOG` or the CLI's `--log-level`. Every HTTP
//!   request gets a request id — the client's `X-Request-Id` header
//!   if present (sanitized, length-capped), else a generated
//!   `req-…` id — which is echoed on the response, stamped on log
//!   lines, and carried into the job's span capture when the request
//!   submits a job.
//!
//! ## Anatomy
//!
//! * [`http`] — minimal HTTP/1.1 parsing and responses;
//! * [`router`] — `(method, path)` dispatch + the job executor;
//! * [`api`] — request schemas, defaults, and the engine calls;
//! * [`jobs`] — job registry and lifecycle (queued → running → done /
//!   failed / cancelled);
//! * [`pool`] — the bounded queue feeding the worker pool.
//!
//! [`Server::run`] hosts everything on a [`std::thread::scope`]: N
//! job workers plus one connection thread per request, so shutdown is
//! a join, not a detach. Ctrl-C / SIGTERM (via
//! [`install_signal_handlers`]) stops the accept loop, closes the
//! queue, drains queued jobs, and exits.
//!
//! ## In-process quickstart
//!
//! ```no_run
//! use nanoleak_serve::{ServeConfig, Server};
//!
//! let server = Server::bind(&ServeConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     ..Default::default()
//! })?;
//! let addr = server.local_addr()?; // resolves the ephemeral port
//! let handle = server.shutdown_handle();
//! std::thread::spawn(move || server.run());
//! // ... drive it over TCP, then:
//! handle.request();
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod api;
pub mod http;
pub mod jobs;
pub mod pool;
pub mod router;

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nanoleak_engine::{LibraryCache, MemoLibraryCache};
use nanoleak_obs::{Counter, Gauge, Histogram, Registry};
use parking_lot::Mutex;
use serde::Serialize;

use jobs::{JobMetrics, JobRegistry};
use pool::{JobQueue, JobReceiver};

/// Configuration of one service instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Job worker threads (`0` = all cores, capped at 16).
    pub threads: usize,
    /// Bound on queued (not yet running) jobs.
    pub queue_capacity: usize,
    /// Characterization disk-cache directory (`None` = the engine's
    /// default location).
    pub cache_dir: Option<PathBuf>,
    /// `false` disables the disk layer (RAM memo only).
    pub disk_cache: bool,
    /// Most requests served over one keep-alive connection before the
    /// server closes it (`0` disables keep-alive: one request per
    /// connection). Bounding this recycles connection threads under
    /// pathological clients.
    pub keep_alive_requests: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub keep_alive_idle: Duration,
    /// Most finished (done / failed / cancelled) jobs retained in the
    /// registry; beyond it the oldest-finished are evicted.
    pub finished_jobs_cap: usize,
    /// Finished jobs older than this are evicted regardless of the
    /// cap.
    pub finished_job_ttl: Duration,
    /// Deadline applied to jobs whose request carries no
    /// `timeout_ms` field (`None` = unbounded). Executors stop at the
    /// first shard boundary past the deadline and the job fails with
    /// `deadline_exceeded`.
    pub default_job_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8425".into(),
            threads: 0,
            queue_capacity: 64,
            cache_dir: None,
            disk_cache: true,
            keep_alive_requests: 1000,
            keep_alive_idle: Duration::from_secs(5),
            finished_jobs_cap: 512,
            finished_job_ttl: Duration::from_secs(3600),
            default_job_timeout: None,
        }
    }
}

/// Per-instance observability instruments (`nanoleak-obs`).
///
/// Server-scoped metrics live in a per-instance [`Registry`] rather
/// than the process-global one so that tests hosting several servers
/// in one process each see their own zeroed counters; `GET /metrics`
/// renders this registry *and* [`nanoleak_obs::global()`].
pub struct Telemetry {
    /// The per-instance metrics registry behind `GET /metrics`.
    pub registry: Registry,
    /// HTTP requests served (all routes, protocol errors included).
    pub requests: Counter,
    /// Requests rejected at the framing layer (bad request line,
    /// oversized headers, slow-loris 408, …).
    pub protocol_errors: Counter,
    /// End-to-end request latency, parse completion to response
    /// serialization.
    pub request_seconds: Histogram,
    /// Work shed because the job queue was saturated
    /// (`nanoleak_shed_total{reason="queue_full"}`).
    pub shed_queue_full: Counter,
    /// Work shed because the queue's predicted drain time already
    /// exceeded the request's own deadline
    /// (`nanoleak_shed_total{reason="predicted_deadline"}`).
    pub shed_predicted_deadline: Counter,
    /// Connections shed at the accept loop's concurrency cap
    /// (`nanoleak_shed_total{reason="connection_limit"}`).
    pub shed_connection_limit: Counter,
    /// Pipelined requests shed past the per-connection request bound
    /// (`nanoleak_shed_total{reason="connection_requests"}`).
    pub shed_connection_requests: Counter,
    /// Job worker threads currently alive. Panic isolation means this
    /// must equal the configured pool size for the process lifetime —
    /// a decay is a contained-panic bug escaping containment.
    pub workers_alive: Gauge,
}

impl Telemetry {
    fn new() -> Self {
        let registry = Registry::new();
        let requests = registry.counter(
            "nanoleak_server_requests_total",
            "HTTP requests served, protocol errors included",
        );
        let protocol_errors = registry.counter(
            "nanoleak_server_protocol_errors_total",
            "Requests rejected at the HTTP framing layer",
        );
        let request_seconds = registry.histogram(
            "nanoleak_server_request_seconds",
            "End-to-end HTTP request latency in seconds",
        );
        const SHED: &str = "nanoleak_shed_total";
        const SHED_HELP: &str = "Work shed by admission control, by reason";
        let shed_queue_full = registry.counter_with(SHED, SHED_HELP, &[("reason", "queue_full")]);
        let shed_predicted_deadline =
            registry.counter_with(SHED, SHED_HELP, &[("reason", "predicted_deadline")]);
        let shed_connection_limit =
            registry.counter_with(SHED, SHED_HELP, &[("reason", "connection_limit")]);
        let shed_connection_requests =
            registry.counter_with(SHED, SHED_HELP, &[("reason", "connection_requests")]);
        let workers_alive = registry.gauge(
            "nanoleak_server_workers_alive",
            "Job worker threads alive (must equal the configured pool size)",
        );
        Self {
            registry,
            requests,
            protocol_errors,
            request_seconds,
            shed_queue_full,
            shed_predicted_deadline,
            shed_connection_limit,
            shed_connection_requests,
            workers_alive,
        }
    }

    /// Total requests shed across every reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full.get()
            + self.shed_predicted_deadline.get()
            + self.shed_connection_limit.get()
            + self.shed_connection_requests.get()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("requests", &self.requests.get()).finish_non_exhaustive()
    }
}

/// Shared state every connection and worker sees.
#[derive(Debug)]
pub struct ServerState {
    /// RAM-first characterization cache (disk-backed unless
    /// disabled).
    pub cache: MemoLibraryCache,
    /// RAM-only cache for Monte-Carlo jobs. Every MC sample is a
    /// unique perturbed die — persisting those libraries would grow
    /// the disk cache without bound (one `.nlc` per die per seed) and
    /// churn the bounded main memo out of its warm nominal entries, so
    /// MC characterizations live in their own bounded RAM memo:
    /// re-submitted same-seed jobs still hit, nothing touches disk.
    pub mc_cache: MemoLibraryCache,
    /// The job registry.
    pub jobs: JobRegistry,
    /// Per-instance metrics instruments (also rendered by
    /// `GET /metrics`).
    pub telemetry: Telemetry,
    queue: Mutex<Option<JobQueue>>,
    queue_capacity: usize,
    workers: usize,
    keep_alive_requests: usize,
    keep_alive_idle: Duration,
    default_job_timeout: Option<Duration>,
    started: Instant,
}

impl ServerState {
    /// A clone of the queue producer, or `None` once shutdown has
    /// closed it.
    pub fn queue_handle(&self) -> Option<JobQueue> {
        self.queue.lock().clone()
    }

    /// Counts one served request (the same counter `GET /metrics`
    /// exposes as `nanoleak_server_requests_total`).
    fn count_request(&self) {
        self.telemetry.requests.inc();
    }

    /// Seconds since the server started.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Job worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Deadline applied to jobs submitted without a `timeout_ms`.
    pub fn default_job_timeout(&self) -> Option<Duration> {
        self.default_job_timeout
    }

    /// Current queue occupancy (depth, capacity).
    pub fn queue_occupancy(&self) -> (u64, usize) {
        (self.queue.lock().as_ref().map_or(0, JobQueue::depth), self.queue_capacity)
    }

    /// The `/v1/stats` snapshot — every counter here is a view over
    /// the same instruments `GET /metrics` renders.
    pub fn stats(&self) -> StatsResponse {
        let cache = self.cache.stats();
        let jobs = self.jobs.counts();
        StatsResponse {
            uptime_s: self.started.elapsed().as_secs_f64(),
            requests: self.telemetry.requests.get(),
            workers: self.workers,
            queue: QueueStats {
                depth: self.queue.lock().as_ref().map_or(0, JobQueue::depth),
                capacity: self.queue_capacity,
            },
            cache: CacheStats {
                memory_hits: cache.memory_hits,
                disk_hits: cache.disk_hits,
                characterizations: cache.characterizations,
                hit_rate: cache.hit_rate(),
                resident: self.cache.resident(),
            },
            jobs: JobStats {
                queued: jobs.queued,
                running: jobs.running,
                done: jobs.done,
                failed: jobs.failed,
                cancelled: jobs.cancelled,
                evicted: jobs.evicted,
                resident: jobs.resident,
            },
            resilience: ResilienceStats {
                shed_queue_full: self.telemetry.shed_queue_full.get(),
                shed_predicted_deadline: self.telemetry.shed_predicted_deadline.get(),
                shed_connection_limit: self.telemetry.shed_connection_limit.get(),
                shed_connection_requests: self.telemetry.shed_connection_requests.get(),
                deadline_exceeded: jobs.deadline_exceeded,
                panicked: jobs.panicked,
                workers_alive: self.telemetry.workers_alive.get().max(0) as u64,
            },
        }
    }
}

/// Body of `GET /v1/stats`.
#[derive(Debug, Clone, Serialize)]
pub struct StatsResponse {
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// HTTP requests served (all routes).
    pub requests: u64,
    /// Job worker threads.
    pub workers: usize,
    /// Queue occupancy.
    pub queue: QueueStats,
    /// Characterization-cache counters.
    pub cache: CacheStats,
    /// Job counts by status.
    pub jobs: JobStats,
    /// Overload-shedding and failure-containment counters.
    pub resilience: ResilienceStats,
}

/// Overload-shedding and failure-containment counters (the same
/// instruments `GET /metrics` exposes as `nanoleak_shed_total`,
/// `nanoleak_deadline_exceeded_total`, `nanoleak_jobs_panicked_total`,
/// and `nanoleak_server_workers_alive`).
#[derive(Debug, Clone, Serialize)]
pub struct ResilienceStats {
    /// Jobs rejected because the queue was saturated.
    pub shed_queue_full: u64,
    /// Jobs rejected because predicted queue drain already exceeded
    /// the request's deadline.
    pub shed_predicted_deadline: u64,
    /// Connections rejected at the concurrency cap.
    pub shed_connection_limit: u64,
    /// Pipelined requests rejected past the per-connection bound.
    pub shed_connection_requests: u64,
    /// Jobs failed with `deadline_exceeded`.
    pub deadline_exceeded: u64,
    /// Jobs whose executor panicked (contained).
    pub panicked: u64,
    /// Worker threads alive (equals the configured pool size while
    /// the server runs; panic isolation keeps it from decaying).
    pub workers_alive: u64,
}

/// Queue occupancy.
#[derive(Debug, Clone, Serialize)]
pub struct QueueStats {
    /// Jobs waiting (submitted, not yet picked up).
    pub depth: u64,
    /// The configured bound.
    pub capacity: usize,
}

/// Characterization-cache counters (see
/// [`nanoleak_engine::MemoCacheStats`]).
#[derive(Debug, Clone, Serialize)]
pub struct CacheStats {
    /// Requests served from process RAM.
    pub memory_hits: u64,
    /// Requests served from `*.nlc` disk files.
    pub disk_hits: u64,
    /// Requests that ran the solver.
    pub characterizations: u64,
    /// Fraction of requests that avoided solver work.
    pub hit_rate: f64,
    /// Libraries resident in RAM.
    pub resident: usize,
}

/// Job counts by status.
#[derive(Debug, Clone, Serialize)]
pub struct JobStats {
    /// Waiting in the queue.
    pub queued: u64,
    /// Executing now.
    pub running: u64,
    /// Finished successfully.
    pub done: u64,
    /// Finished with an error.
    pub failed: u64,
    /// Cancelled.
    pub cancelled: u64,
    /// Finished jobs evicted from the registry (cap or TTL) since the
    /// server started.
    pub evicted: u64,
    /// Jobs currently resident in the registry (all statuses) — stays
    /// bounded under churn by the eviction policy.
    pub resident: u64,
}

/// Asks a running [`Server`] to shut down (idempotent, callable from
/// any thread).
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests shutdown: stop accepting, drain queued jobs, exit.
    pub fn request(&self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// Most concurrent connection-handler threads per server; further
/// connections are answered 503 on the accept thread.
const MAX_CONNECTIONS: u64 = 256;

/// Process-wide flag set by [`install_signal_handlers`]; every
/// server instance honors it in addition to its own handle.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Installs SIGINT (ctrl-c) and SIGTERM handlers that request
/// graceful shutdown of every [`Server::run`] loop in the process.
/// No-op on non-Unix platforms.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" fn on_signal(_sig: i32) {
            SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// A bound, not-yet-running service instance.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: ServerState,
    receiver: JobReceiver,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener and builds the shared state. The server
    /// does not accept connections until [`Server::run`].
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(config: &ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let cache = if config.disk_cache {
            let disk = match &config.cache_dir {
                Some(dir) => LibraryCache::new(dir.clone()),
                None => LibraryCache::default_location(),
            };
            MemoLibraryCache::over(disk)
        } else {
            MemoLibraryCache::memory_only()
        };
        let workers = nanoleak_engine::exec::resolve_threads(config.threads);
        let (queue, receiver) = pool::job_queue(config.queue_capacity.max(1));
        let telemetry = Telemetry::new();
        let jobs = JobRegistry::with_eviction(jobs::EvictionPolicy {
            finished_cap: config.finished_jobs_cap,
            ttl: config.finished_job_ttl,
        })
        .with_metrics(JobMetrics::register(&telemetry.registry));
        Ok(Self {
            listener,
            state: ServerState {
                cache,
                mc_cache: MemoLibraryCache::memory_only(),
                jobs,
                telemetry,
                queue: Mutex::new(Some(queue)),
                queue_capacity: config.queue_capacity.max(1),
                workers,
                keep_alive_requests: config.keep_alive_requests,
                keep_alive_idle: config.keep_alive_idle,
                default_job_timeout: config.default_job_timeout,
                started: Instant::now(),
            },
            receiver,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves port `0` to the real port).
    ///
    /// # Errors
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes [`Server::run`] return.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// Read-only access to the shared state (tests, stats).
    pub fn state(&self) -> &ServerState {
        &self.state
    }

    /// Serves until shutdown is requested (via
    /// [`Server::shutdown_handle`] or a signal after
    /// [`install_signal_handlers`]): accepts connections, answers
    /// requests, executes jobs on the worker pool. On shutdown the
    /// accept loop stops, the job queue closes, queued jobs drain,
    /// and every thread is joined before this returns.
    ///
    /// # Errors
    /// Propagates a failure to configure the listener; per-connection
    /// I/O errors are contained.
    pub fn run(self) -> std::io::Result<()> {
        // Non-blocking accept so the loop can poll the shutdown flag.
        self.listener.set_nonblocking(true)?;
        let state = &self.state;
        let receiver = &self.receiver;
        // Cap on concurrent connection-handler threads: a connection
        // flood (thousands of sockets parked in the read timeout)
        // must not translate into thousands of OS threads. Beyond the
        // cap, new connections get an immediate 503 on the accept
        // thread and are closed.
        let active_connections = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..state.workers {
                scope.spawn(move || {
                    // Self-check gauge: a worker increments on entry
                    // and decrements only at clean queue-closed exit,
                    // so `nanoleak_server_workers_alive` decaying
                    // below the pool size means a panic escaped
                    // containment.
                    state.telemetry.workers_alive.inc();
                    while let Some(id) = receiver.next() {
                        // `execute_job` contains job panics itself;
                        // this outer guard is the last line of
                        // defense so even a panic in the registry
                        // bookkeeping costs one job, never a worker.
                        let contained =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                router::execute_job(state, id)
                            }));
                        if contained.is_err() {
                            nanoleak_obs::warn!(
                                "jobs",
                                "job {} escaped executor containment; worker survives",
                                id
                            );
                        }
                    }
                    state.telemetry.workers_alive.dec();
                });
            }
            loop {
                if self.shutdown.load(Ordering::SeqCst) || SIGNAL_SHUTDOWN.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        if active_connections.load(Ordering::Relaxed) >= MAX_CONNECTIONS {
                            let _ = stream.set_nonblocking(false);
                            state.telemetry.shed_connection_limit.inc();
                            let overloaded = http::Response::json(
                                503,
                                api::ApiError {
                                    status: 503,
                                    message: "too many connections".into(),
                                }
                                .body(),
                            )
                            .with_retry_after(1);
                            let _ = http::write_response(&stream, &overloaded, true);
                            continue;
                        }
                        active_connections.fetch_add(1, Ordering::Relaxed);
                        let active = Arc::clone(&active_connections);
                        let shutdown = Arc::clone(&self.shutdown);
                        scope.spawn(move || {
                            handle_connection(state, stream, &shutdown);
                            active.fetch_sub(1, Ordering::Relaxed);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    // Transient accept errors (aborted handshakes):
                    // keep serving.
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
            // Close the queue: workers drain what was accepted, then
            // exit; in-flight connection threads finish their one
            // response. The scope joins everything.
            state.queue.lock().take();
        });
        Ok(())
    }
}

/// Longest client-supplied `X-Request-Id` honored verbatim; longer
/// (or non-printable) ids are replaced with a generated one.
const MAX_REQUEST_ID_LEN: usize = 64;

/// The request id for one request: the client's `X-Request-Id` when
/// it is printable ASCII within [`MAX_REQUEST_ID_LEN`], else a fresh
/// generated id.
fn resolve_request_id(request: &http::Request) -> String {
    match request.header("x-request-id") {
        Some(id)
            if !id.is_empty()
                && id.len() <= MAX_REQUEST_ID_LEN
                && id.bytes().all(|b| (0x21..=0x7e).contains(&b)) =>
        {
            id.to_string()
        }
        _ => nanoleak_obs::log::next_request_id(),
    }
}

/// Serves one connection: a keep-alive loop reading requests through
/// one persistent [`http::Conn`] buffer until the client closes, asks
/// for `Connection: close`, idles past the deadline, exceeds the
/// per-connection request bound, or the server starts shutting down.
///
/// Every parsed request runs under a thread-local request id
/// (client-supplied or generated) that is stamped on log lines and
/// echoed back as `X-Request-Id`.
fn handle_connection(state: &ServerState, stream: TcpStream, shutdown: &AtomicBool) {
    let _ = stream.set_nonblocking(false);
    let mut conn = http::Conn::new(&stream);
    let mut served: usize = 0;
    let mut bound_hit = false;
    loop {
        // The first request gets the full read budget; follow-ups on
        // a warm connection are bounded by the (shorter) idle
        // deadline, so parked keep-alive sockets release their thread
        // promptly.
        let timeout = if served == 0 { http::READ_TIMEOUT } else { state.keep_alive_idle };
        let (response, keep_alive) = match conn.read_request(timeout) {
            // Clean EOF, or idle past the keep-alive deadline.
            Ok(None) => return,
            Ok(Some(request)) => {
                state.count_request();
                served += 1;
                let request_id = resolve_request_id(&request);
                nanoleak_obs::set_request_id(Some(request_id.clone()));
                let started = Instant::now();
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    router::route(state, &request)
                }));
                let mut response = outcome.unwrap_or_else(|_| {
                    http::Response::json(
                        500,
                        api::ApiError { status: 500, message: "handler panicked".into() }.body(),
                    )
                });
                state.telemetry.request_seconds.record_duration(started.elapsed());
                nanoleak_obs::debug!(
                    "server",
                    "{} {} -> {} in {:.3} ms",
                    request.method,
                    request.path,
                    response.status,
                    started.elapsed().as_secs_f64() * 1e3
                );
                nanoleak_obs::set_request_id(None);
                response.request_id = Some(request_id);
                let keep = request.wants_keep_alive()
                    && served < state.keep_alive_requests
                    && !shutdown.load(Ordering::SeqCst)
                    && !SIGNAL_SHUTDOWN.load(Ordering::SeqCst);
                bound_hit = state.keep_alive_requests > 0 && served >= state.keep_alive_requests;
                (response, keep)
            }
            // Protocol errors (including a stalled partial request —
            // the slow-loris 408) always close: the connection state
            // is unknowable past a framing failure.
            Err(e) => {
                state.count_request();
                state.telemetry.protocol_errors.inc();
                nanoleak_obs::warn!("server", "protocol error {}: {}", e.status, e.message);
                let response = http::Response::json(
                    e.status,
                    api::ApiError { status: e.status, message: e.message }.body(),
                );
                (response, false)
            }
        };
        if http::write_response(&stream, &response, !keep_alive).is_err() {
            return;
        }
        if !keep_alive {
            // A client that pipelined past the per-connection request
            // bound has more requests already buffered; instead of
            // dropping them silently, answer each with a structured
            // 429 + Retry-After before closing. Plain bound-reached
            // closes (no buffered bytes) stay exactly as before.
            while bound_hit && conn.has_buffered() {
                let Ok(Some(_excess)) = conn.read_request(Duration::from_millis(50)) else {
                    break;
                };
                state.count_request();
                state.telemetry.shed_connection_requests.inc();
                let shed = http::Response::json(
                    429,
                    api::ApiError {
                        status: 429,
                        message: format!(
                            "connection request limit reached ({} per connection)",
                            state.keep_alive_requests
                        ),
                    }
                    .body(),
                )
                .with_retry_after(1);
                if http::write_response(&stream, &shed, true).is_err() {
                    break;
                }
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_resolves_ephemeral_ports() {
        let server =
            Server::bind(&ServeConfig { addr: "127.0.0.1:0".into(), ..Default::default() })
                .unwrap();
        let addr = server.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
        assert_eq!(server.state().stats().requests, 0);
    }

    #[test]
    fn run_returns_after_shutdown_request() {
        let server =
            Server::bind(&ServeConfig { addr: "127.0.0.1:0".into(), ..Default::default() })
                .unwrap();
        let handle = server.shutdown_handle();
        let t = std::thread::spawn(move || server.run());
        handle.request();
        t.join().unwrap().unwrap();
    }

    #[test]
    fn stats_snapshot_shape() {
        let server = Server::bind(&ServeConfig {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 7,
            threads: 3,
            disk_cache: false,
            ..Default::default()
        })
        .unwrap();
        let stats = server.state().stats();
        assert_eq!(stats.queue.capacity, 7);
        assert_eq!(stats.workers, 3);
        assert_eq!(stats.cache.resident, 0);
        // The snapshot serializes to parseable JSON.
        let text = serde::json::to_string(&stats);
        assert!(serde::json::value_from_str(&text).is_ok(), "{text}");
    }
}
